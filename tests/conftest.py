"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi_graph, powerlaw_cluster_graph
from repro.graph.graph import Graph


@pytest.fixture
def triangle_graph() -> Graph:
    """The smallest graph with one triangle plus a pendant node.

    Edges: 0-1, 0-2, 1-2 (the triangle) and 2-3 (a pendant edge).
    """
    return Graph(4, edges=[(0, 1), (0, 2), (1, 2), (2, 3)])


@pytest.fixture
def two_triangle_graph() -> Graph:
    """The example graph of the paper's Figure 3: two triangles sharing edge 3-4.

    Nodes 0..4 correspond to the paper's v1..v5 (node 2 is isolated); the
    shared edge (3, 4) supports both triangles, which is exactly the edge
    whose random deletion destroys every triangle in the paper's example.
    """
    return Graph(5, edges=[(0, 3), (0, 4), (1, 3), (1, 4), (3, 4)])


@pytest.fixture
def complete_graph() -> Graph:
    """K6 — every pair connected; C(6,3) = 20 triangles."""
    edges = [(u, v) for u in range(6) for v in range(u + 1, 6)]
    return Graph(6, edges=edges)


@pytest.fixture
def star_graph() -> Graph:
    """A star on 8 nodes (hub 0) — zero triangles, hub degree 7."""
    return Graph(8, edges=[(0, leaf) for leaf in range(1, 8)])


@pytest.fixture
def empty_graph() -> Graph:
    """Ten nodes, no edges."""
    return Graph(10)


@pytest.fixture
def small_random_graph() -> Graph:
    """A dense-ish 30-node Erdős–Rényi graph used by protocol tests."""
    return erdos_renyi_graph(30, 0.3, seed=42)


@pytest.fixture
def medium_cluster_graph() -> Graph:
    """A 120-node power-law-cluster graph with plenty of triangles."""
    return powerlaw_cluster_graph(120, 6, 0.7, seed=7)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests that need explicit randomness."""
    return np.random.default_rng(12345)
