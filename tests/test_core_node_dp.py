"""Tests for repro.core.node_dp — the Node-DP extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cargo import Cargo
from repro.core.config import CargoConfig
from repro.core.node_dp import NodeDpCargo, NodeDpMaxDegreeEstimator, edge_vs_node_dp_gap
from repro.graph.datasets import load_dataset
from repro.graph.generators import powerlaw_cluster_graph


class TestNodeDpMaxDegree:
    def test_sensitivity_is_n_minus_one(self):
        estimator = NodeDpMaxDegreeEstimator(epsilon1=1.0, num_users=101)
        assert estimator.sensitivity == 100.0

    def test_noisier_than_edge_dp(self):
        from repro.core.max_degree import MaxDegreeEstimator

        degrees = [20] * 80
        node_devs = []
        edge_devs = []
        for seed in range(20):
            node = NodeDpMaxDegreeEstimator(epsilon1=1.0, num_users=80).run(degrees, rng=seed)
            edge = MaxDegreeEstimator(epsilon1=1.0).run(degrees, rng=seed)
            node_devs.append(abs(node.noisy_max_degree - 20))
            edge_devs.append(abs(edge.noisy_max_degree - 20))
        assert np.mean(node_devs) > np.mean(edge_devs)

    def test_empty_degrees(self):
        result = NodeDpMaxDegreeEstimator(epsilon1=1.0, num_users=0).run([], rng=0)
        assert result.noisy_max_degree == 1.0

    def test_clamped_to_n_minus_one(self):
        result = NodeDpMaxDegreeEstimator(epsilon1=0.01, num_users=10).run([3] * 10, rng=1)
        assert result.noisy_max_degree <= 9.0


class TestNodeDpCargo:
    def test_runs_and_reports_backend(self):
        graph = powerlaw_cluster_graph(60, 4, 0.6, seed=0)
        result = NodeDpCargo(CargoConfig(epsilon=2.0, seed=0)).run(graph)
        assert result.backend.startswith("node-dp/")
        assert np.isfinite(result.noisy_triangle_count)
        assert result.true_triangle_count > 0

    def test_deterministic_given_seed(self):
        graph = powerlaw_cluster_graph(50, 3, 0.6, seed=1)
        a = NodeDpCargo(CargoConfig(epsilon=2.0, seed=5)).run(graph)
        b = NodeDpCargo(CargoConfig(epsilon=2.0, seed=5)).run(graph)
        assert a.noisy_triangle_count == b.noisy_triangle_count

    def test_node_dp_noisier_than_edge_dp(self):
        """The utility gap that motivates the paper's Edge-DP choice."""
        graph = load_dataset("facebook", num_nodes=120)
        node_losses = []
        edge_losses = []
        for seed in range(3):
            config = CargoConfig(epsilon=2.0, seed=seed)
            node_losses.append(NodeDpCargo(config).run(graph).l2_loss)
            edge_losses.append(Cargo(config).run(graph).l2_loss)
        assert np.mean(node_losses) > np.mean(edge_losses)

    def test_gap_helper(self):
        graph = powerlaw_cluster_graph(60, 4, 0.6, seed=2)
        gap = edge_vs_node_dp_gap(graph, epsilon=2.0, seed=3)
        assert set(gap) == {"edge_dp_l2", "node_dp_l2", "edge_dp_result", "node_dp_result"}
        assert gap["node_dp_l2"] >= 0 and gap["edge_dp_l2"] >= 0

    def test_timings_recorded(self):
        graph = powerlaw_cluster_graph(40, 3, 0.6, seed=4)
        result = NodeDpCargo(CargoConfig(epsilon=2.0, seed=6)).run(graph)
        assert {"max", "project", "count", "perturb", "total"} <= set(result.timings)
