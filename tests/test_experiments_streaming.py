"""Tests for the streaming experiment and its CLI wiring."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.specs import get_experiment, list_experiments
from repro.experiments.streaming import streaming_accuracy_over_time


class TestStreamingExperiment:
    @pytest.fixture(scope="class")
    def report(self):
        return streaming_accuracy_over_time(
            dataset="grqc", num_nodes=80, epsilon=4.0, release_every=60, seed=0
        )

    def test_one_row_per_release(self, report):
        assert len(report.rows) > 3
        assert [row["release"] for row in report.rows] == list(
            range(1, len(report.rows) + 1)
        )

    def test_rows_carry_error_columns(self, report):
        for row in report.rows:
            assert row["l2_loss"] >= 0.0
            # None (JSON null) marks releases where the truth is still zero.
            assert row["relative_error"] is None or row["relative_error"] >= 0.0
            assert row["event_index"] > 0
        assert any(row["relative_error"] is not None for row in report.rows)

    def test_true_count_is_monotone_on_a_replay(self, report):
        counts = [row["true_count"] for row in report.rows]
        assert counts == sorted(counts)

    def test_budget_columns_are_per_release_snapshots(self, report):
        spent = [row["epsilon_spent"] for row in report.rows]
        entries = [row["ledger_entries"] for row in report.rows]
        # Cumulative spend never decreases and never exceeds the budget.
        assert spent == sorted(spent)
        assert spent[-1] <= 4.0 * (1 + 1e-9)
        assert entries == sorted(entries)
        assert entries[-1] < len(report.rows) or len(report.rows) < 10

    def test_anchors_marked_when_enabled(self):
        report = streaming_accuracy_over_time(
            dataset="grqc",
            num_nodes=60,
            epsilon=4.0,
            release_every=80,
            anchor_every=2,
            seed=1,
        )
        assert any(row["is_anchor"] for row in report.rows)

    def test_registered_in_specs(self):
        assert "stream" in list_experiments()
        assert get_experiment("stream").runner is streaming_accuracy_over_time


class TestStreamingCli:
    def test_stream_flag_without_experiment_name(self, capsys):
        assert (
            main(
                [
                    "--stream",
                    "--num-nodes",
                    "60",
                    "--release-every",
                    "80",
                    "--json",
                ]
            )
            == 0
        )
        # json.loads with strict constants: the output must be valid JSON
        # even when early releases have a zero true count (no Infinity).
        def _reject(constant):
            raise AssertionError(f"non-JSON constant {constant} in CLI output")

        payload = json.loads(capsys.readouterr().out, parse_constant=_reject)
        assert payload["name"] == "stream"
        assert payload["rows"]

    def test_explicit_stream_experiment_with_cadence_flags(self, capsys):
        assert (
            main(
                [
                    "stream",
                    "--num-nodes",
                    "60",
                    "--release-every",
                    "100",
                    "--anchor-every",
                    "2",
                    "--epsilon",
                    "6",
                    "--json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert any(row["is_anchor"] for row in payload["rows"])

    def test_missing_experiment_without_stream_flag_errors(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_stream_flag_conflicts_with_other_experiment_name(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig5", "--stream"])

    def test_stream_flag_with_explicit_stream_name_is_fine(self, capsys):
        assert main(["stream", "--stream", "--num-nodes", "60", "--json"]) == 0

    def test_other_experiments_unaffected_by_new_flags(self, capsys):
        assert main(["table2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "table2"
