"""Transcript-level equivalence of the statistic registry refactor.

Two guarantees pinned here:

* ``triangles`` through the statistic registry is **bit-identical** to the
  pre-registry pipeline for every counting backend — the golden values below
  were captured from the code before :class:`~repro.core.cargo.Cargo` was
  generalised, including the per-phase communication ledger;
* each new statistic's secure kernel agrees exactly with its plaintext
  kernel on the projected rows (protocol-level parity), and the private
  estimate converges to the brute-force ground truth as ε grows.
"""

from __future__ import annotations

import pytest

from repro.core import Cargo, CargoConfig
from repro.graph import load_dataset

BACKENDS = ("faithful", "batched", "matrix", "blocked")

#: Captured from the pre-refactor pipeline (PR 3 head) with
#: CargoConfig(batch_size=64, block_size=16, track_communication=True).
GOLDEN_TRIANGLES = {
    (40, 7, 2.0): {
        "noisy": 2037.8189392089844,
        "true": 2041,
        "projected": 2041,
        "dmax": 39.0,
        "messages": {
            "adjacency_share": 80,
            "noise_share": 80,
            "noisy_count_share": 2,
            "noisy_degree": 40,
            "noisy_max_degree": 40,
        },
    },
    (60, 123, 1.0): {
        "noisy": 4823.304641723633,
        "true": 5116,
        "projected": 5116,
        "dmax": 59.0,
        "messages": {
            "adjacency_share": 120,
            "noise_share": 120,
            "noisy_count_share": 2,
            "noisy_degree": 60,
            "noisy_max_degree": 60,
        },
    },
}


class TestTriangleBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("cell", sorted(GOLDEN_TRIANGLES))
    def test_matches_pre_registry_pipeline(self, backend, cell):
        num_nodes, seed, epsilon = cell
        golden = GOLDEN_TRIANGLES[cell]
        graph = load_dataset("facebook", num_nodes=num_nodes)
        result = Cargo(
            CargoConfig(
                epsilon=epsilon,
                seed=seed,
                counting_backend=backend,
                batch_size=64,
                block_size=16,
                track_communication=True,
            )
        ).run(graph)
        assert result.noisy_triangle_count == golden["noisy"]
        assert result.true_triangle_count == golden["true"]
        assert result.projected_triangle_count == golden["projected"]
        assert result.noisy_max_degree == golden["dmax"]
        assert result.statistic == "triangles"
        got_messages = {
            phase: counts["messages"]
            for phase, counts in result.communication_phases.items()
        }
        assert got_messages == golden["messages"]

    def test_aliases_mirror_triangle_fields(self):
        graph = load_dataset("facebook", num_nodes=40)
        result = Cargo(CargoConfig(epsilon=2.0, seed=7)).run(graph)
        assert result.noisy_count == result.noisy_triangle_count
        assert result.true_count == result.true_triangle_count
        assert result.projected_count == result.projected_triangle_count


class TestSecurePlaintextParity:
    """The secure kernels compute exactly their plaintext counterparts."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("statistic", ("kstars", "wedges", "4cycles"))
    def test_secure_equals_projected_at_huge_epsilon(self, backend, statistic):
        # At ε = 1e6 the Laplace noise is ≪ 0.5 with overwhelming
        # probability at this seed, so the estimate must sit on the
        # projected count (which equals the plaintext kernel's value).
        graph = load_dataset("facebook", num_nodes=30)
        result = Cargo(
            CargoConfig(
                epsilon=1e6,
                seed=5,
                statistic=statistic,
                counting_backend=backend,
                batch_size=17,
                block_size=8,
            )
        ).run(graph)
        assert result.statistic == statistic
        assert abs(result.noisy_count - result.projected_count) < 0.5

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_four_cycle_shares_reconstruct_scaled_count(self, backend, small_random_graph):
        from repro.stats import FourCycleStatistic

        statistic = FourCycleStatistic()
        config = CargoConfig(
            statistic="4cycles", counting_backend=backend, batch_size=13, block_size=7
        )
        rows = small_random_graph.adjacency_matrix()
        count_result = statistic.secure_count(
            rows, config=config, share_rng=11, dealer_rng=13
        )
        raw = count_result.reconstruct(config.ring)
        assert raw == 4 * statistic.plain_count(small_random_graph)
        assert raw == 4 * statistic.projected_count(rows)
        assert count_result.num_triples_processed == statistic.num_candidates(
            small_random_graph.num_nodes
        )

    def test_kstar_shares_reconstruct_count(self, medium_cluster_graph):
        from repro.stats import KStarStatistic

        statistic = KStarStatistic(k=3)
        config = CargoConfig(statistic="kstars", star_k=3)
        rows = medium_cluster_graph.adjacency_matrix()
        count_result = statistic.secure_count(rows, config=config, share_rng=3)
        assert count_result.reconstruct(config.ring) == statistic.plain_count(
            medium_cluster_graph
        )
        assert count_result.opening_rounds == 0  # share-only kernel

    def test_four_cycle_pair_stream_matches_matrix_path(self, small_random_graph):
        """Same shares, same count, whichever execution strategy runs."""
        from repro.stats import FourCycleStatistic

        statistic = FourCycleStatistic()
        rows = small_random_graph.adjacency_matrix()
        reconstructed = set()
        for backend, batch, block in (
            ("faithful", 1, 8),
            ("batched", 29, 8),
            ("batched", 4096, 8),
            ("matrix", 1, 8),
            ("blocked", 1, 5),
            ("blocked", 1, 64),
        ):
            config = CargoConfig(
                statistic="4cycles",
                counting_backend=backend,
                batch_size=batch,
                block_size=block,
            )
            result = statistic.secure_count(rows, config=config, share_rng=7, dealer_rng=9)
            reconstructed.add(result.reconstruct(config.ring))
        assert reconstructed == {4 * statistic.plain_count(small_random_graph)}


class TestConvergenceWithEpsilon:
    @pytest.mark.parametrize("statistic", ("triangles", "kstars", "4cycles"))
    def test_relative_error_shrinks_as_epsilon_grows(self, statistic):
        graph = load_dataset("facebook", num_nodes=60)
        errors = {}
        for epsilon in (0.5, 8.0, 1e5):
            # Average a few seeds so a lucky small-ε draw cannot invert the
            # ordering between the extreme budgets.
            trials = [
                Cargo(
                    CargoConfig(epsilon=epsilon, seed=seed, statistic=statistic)
                ).run(graph)
                for seed in (1, 2, 3)
            ]
            errors[epsilon] = sum(
                abs(r.noisy_count - r.true_count) / max(r.true_count, 1)
                for r in trials
            ) / len(trials)
        assert errors[1e5] < errors[0.5]
        assert errors[1e5] < 0.01  # essentially exact once noise vanishes
