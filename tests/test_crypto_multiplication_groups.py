"""Tests for repro.crypto.multiplication_groups."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.multiplication_groups import MultiplicationGroupDealer
from repro.crypto.ring import Ring
from repro.exceptions import DealerError


class TestScalarGroups:
    def test_correlations_hold(self):
        dealer = MultiplicationGroupDealer(seed=0)
        ring = dealer.ring
        x, y, z, w, o, p, q = dealer.scalar_group().plaintext()
        assert o == ring.mul(x, y)
        assert p == ring.mul(x, z)
        assert q == ring.mul(y, z)
        assert w == ring.mul(ring.mul(x, y), z)

    def test_groups_are_fresh(self):
        dealer = MultiplicationGroupDealer(seed=1)
        assert dealer.scalar_group().plaintext() != dealer.scalar_group().plaintext()

    def test_issued_counter(self):
        dealer = MultiplicationGroupDealer(seed=2)
        list(dealer.scalar_groups(4))
        assert dealer.groups_issued == 4

    def test_negative_count_rejected(self):
        with pytest.raises(DealerError):
            list(MultiplicationGroupDealer(seed=3).scalar_groups(-2))

    def test_deterministic_with_seed(self):
        a = MultiplicationGroupDealer(seed=4).scalar_group().plaintext()
        b = MultiplicationGroupDealer(seed=4).scalar_group().plaintext()
        assert a == b

    def test_small_ring_correlations(self):
        dealer = MultiplicationGroupDealer(ring=Ring(bits=8), seed=5)
        x, y, z, w, o, p, q = dealer.scalar_group().plaintext()
        assert w == (x * y * z) % 256
        assert o == (x * y) % 256
        assert p == (x * z) % 256
        assert q == (y * z) % 256


class TestVectorGroups:
    def test_elementwise_correlations(self):
        dealer = MultiplicationGroupDealer(seed=6)
        ring = dealer.ring
        x, y, z, w, o, p, q = dealer.vector_group((9,)).plaintext()
        assert np.array_equal(o, ring.mul(x, y))
        assert np.array_equal(w, ring.mul(ring.mul(x, y), z))
        assert np.array_equal(p, ring.mul(x, z))
        assert np.array_equal(q, ring.mul(y, z))

    def test_bad_shape_rejected(self):
        with pytest.raises(DealerError):
            MultiplicationGroupDealer(seed=7).vector_group((0, 3))

    def test_shares_hide_masks(self):
        dealer = MultiplicationGroupDealer(seed=8)
        pair = dealer.vector_group((100,))
        x, *_ = pair.plaintext()
        assert not np.array_equal(np.asarray(pair.server1.x), np.asarray(x))
