"""Additional property-based tests for the crypto substrate and datasets."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.ot import ObliviousTransferChannel, gilboa_product_shares
from repro.crypto.ring import DEFAULT_RING, Ring
from repro.crypto.secure_ops import secure_matrix_multiply
from repro.crypto.sharing import reconstruct_vector, share_vector
from repro.graph.datasets import load_dataset

ring_values = st.integers(min_value=-(2**32), max_value=2**32)


class TestRingMatmulProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        rows=st.integers(1, 6),
        inner=st.integers(1, 6),
        cols=st.integers(1, 6),
        bits=st.sampled_from([16, 32, 64]),
    )
    def test_matmul_matches_object_precision(self, seed, rows, inner, cols, bits):
        ring = Ring(bits=bits)
        rng = np.random.default_rng(seed)
        a = ring.random_array((rows, inner), rng)
        b = ring.random_array((inner, cols), rng)
        expected = (a.astype(object) @ b.astype(object)) % ring.modulus
        assert np.array_equal(ring.matmul(a, b).astype(object), expected)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(1, 5))
    def test_matmul_identity(self, seed, n):
        ring = DEFAULT_RING
        a = ring.random_array((n, n), np.random.default_rng(seed))
        identity = np.eye(n, dtype=ring.dtype)
        assert np.array_equal(ring.matmul(a, identity), a)


class TestSecureMatrixProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 500),
        rows=st.integers(1, 5),
        inner=st.integers(1, 5),
        cols=st.integers(1, 5),
    )
    def test_secure_product_matches_plaintext(self, seed, rows, inner, cols):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 7, size=(rows, inner))
        b = rng.integers(0, 7, size=(inner, cols))
        dealer = BeaverTripleDealer(seed=seed)
        a_pair = share_vector(a, rng=seed + 1)
        b_pair = share_vector(b, rng=seed + 2)
        triple = dealer.matrix_triple((rows, inner), (inner, cols))
        s1, s2 = secure_matrix_multiply(
            (a_pair.share1, a_pair.share2), (b_pair.share1, b_pair.share2), triple
        )
        assert np.array_equal(reconstruct_vector(s1, s2), (a @ b).astype(np.uint64))


class TestObliviousTransferProperties:
    @settings(max_examples=25, deadline=None)
    @given(a=ring_values, b=ring_values, seed=st.integers(0, 1000))
    def test_gilboa_shares_always_sum_to_product(self, a, b, seed):
        channel = ObliviousTransferChannel()
        sender, receiver = gilboa_product_shares(a, b, channel, rng=seed)
        assert DEFAULT_RING.add(sender, receiver) == DEFAULT_RING.mul(a, b)
        assert channel.transfers == DEFAULT_RING.bits


class TestDatasetProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        name=st.sampled_from(["facebook", "wiki", "grqc", "hepth"]),
        num_nodes=st.integers(40, 120),
    )
    def test_dataset_generation_is_deterministic_and_simple(self, name, num_nodes):
        first = load_dataset(name, num_nodes=num_nodes)
        second = load_dataset(name, num_nodes=num_nodes)
        assert first == second
        assert first.num_nodes == num_nodes
        # Simple graph invariants: no self loops, symmetric adjacency.
        matrix = first.adjacency_matrix()
        assert np.all(np.diag(matrix) == 0)
        assert np.array_equal(matrix, matrix.T)
