"""End-to-end properties of the process-separated runtime.

The distributed runtime's contract is *bit-identity*: for the same seed and
configuration, a release computed by four OS processes over socket links
must equal the in-process engine's release exactly — count, noisy max
degree, communication ledger, adversarial views, MAC counters, and span
structure.  These tests run real forked processes on small graphs, so each
case is one full protocol execution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cargo import Cargo
from repro.core.config import CargoConfig
from repro.crypto.mac import OpeningAuthenticator
from repro.crypto.views import ViewRecorder
from repro.exceptions import (
    CheaterDetectedError,
    ConfigurationError,
    RuntimeProcessError,
)
from repro.graph.datasets import load_dataset
from repro.resilience import FaultKind, FaultPlan, FaultSpec, ResilienceConfig
from repro.runtime import DistributedRuntime, run_distributed

BACKENDS = ("faithful", "batched", "matrix", "blocked")

#: Small enough that the faithful backend's O(n^3) rounds stay quick.
N_SMALL = 24


def make_config(backend="matrix", distributed=False, **overrides):
    kwargs = dict(
        epsilon=2.0,
        seed=11,
        counting_backend=backend,
        batch_size=64,
        block_size=8,
        authenticate=True,
        track_communication=True,
        distributed=distributed,
    )
    kwargs.update(overrides)
    return CargoConfig(**kwargs)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("facebook", num_nodes=N_SMALL)


class TestBitIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_release_identical_to_in_process(self, graph, backend):
        baseline = Cargo(make_config(backend)).run(graph)
        result = run_distributed(graph, make_config(backend, distributed=True))
        assert result.noisy_triangle_count == baseline.noisy_triangle_count
        assert result.true_triangle_count == baseline.true_triangle_count
        assert result.noisy_max_degree == baseline.noisy_max_degree
        assert result.projected_triangle_count == baseline.projected_triangle_count
        assert result.edges_removed == baseline.edges_removed
        assert result.communication_phases == baseline.communication_phases
        assert result.communication == baseline.communication

    def test_cargo_run_delegates_on_distributed_flag(self, graph):
        baseline = Cargo(make_config("matrix")).run(graph)
        result = Cargo(make_config("matrix", distributed=True)).run(graph)
        assert result.noisy_triangle_count == baseline.noisy_triangle_count

    @pytest.mark.parametrize("backend", ("batched", "matrix"))
    def test_adversarial_views_identical(self, graph, backend):
        local_cargo = Cargo(make_config(backend, record_views=True))
        local_cargo.run(graph)
        local_views = local_cargo.views
        remote_views = ViewRecorder()
        run_distributed(
            graph,
            make_config(backend, distributed=True, record_views=True),
            views=remote_views,
        )
        for server_index in (1, 2):
            local = local_views.view(server_index)
            remote = remote_views.view(server_index)
            local_values = local.values()
            remote_values = remote.values()
            assert len(local_values) == len(remote_values)
            for mine, theirs in zip(local_values, remote_values):
                assert np.array_equal(np.asarray(mine), np.asarray(theirs))

    def test_span_structure_matches_in_process(self, graph):
        from repro.telemetry import Telemetry

        local = Telemetry()
        Cargo(make_config("matrix", telemetry=local)).run(graph)
        remote = Telemetry()
        run_distributed(
            graph, make_config("matrix", distributed=True, telemetry=remote)
        )
        assert remote.tracer.structure() == local.tracer.structure()

    def test_mac_counters_match_in_process(self, graph):
        baseline = Cargo(make_config("blocked")).run(graph)
        result = run_distributed(graph, make_config("blocked", distributed=True))
        assert result.telemetry is None and baseline.telemetry is None


class TestTransport:
    def test_transport_section_accounts_for_every_byte(self, graph):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        result = run_distributed(
            graph, make_config("matrix", distributed=True, telemetry=telemetry)
        )
        transport = result.telemetry["transport"]
        assert transport["frames"] > 0
        assert transport["overhead_bytes"] > 0
        assert (
            transport["wire_bytes"]
            == transport["payload_bytes"] + transport["overhead_bytes"]
        )
        # Every ledgered byte is carried on the wire: the ledger's phase
        # totals (minus the broadcast phase, which fans out logically) are a
        # lower bound on the physical payload.
        ledgered = sum(
            stats["bytes"]
            for phase, stats in result.communication_phases.items()
            if phase != "noisy_max_degree"
        )
        assert ledgered <= transport["payload_bytes"]
        assert transport["unledgered_payload_bytes"] >= 0
        for process in ("driver", "server1", "server2", "dealer"):
            assert transport["processes"][process] >= 0.0
        # The release record in the manifest carries the same section.
        releases = [
            record
            for record in telemetry.releases
            if isinstance(record, dict) and "transport" in record
        ]
        assert releases and releases[0]["transport"] == transport

    def test_reconciliation_failure_is_typed(self):
        from repro.runtime.driver import _reconcile_ledger

        ledger_phases = {"noise_share": {"messages": 4, "bytes": 32}}
        with pytest.raises(RuntimeProcessError, match="reconciliation failed"):
            _reconcile_ledger(ledger_phases, {"noise_share": 24})
        assert _reconcile_ledger(ledger_phases, {"noise_share": 32}) == 32


class TestScopeGuards:
    @pytest.mark.parametrize(
        "overrides, match",
        [
            ({"statistic": "kstars"}, "triangles"),
            ({"workers": 2}, "worker pools"),
            ({"tile_window": 2, "counting_backend": "blocked"}, "tile_window"),
            ({"sparse": "force"}, "sparse"),
        ],
    )
    def test_unsupported_configs_rejected(self, overrides, match):
        config = CargoConfig(epsilon=2.0, seed=0, distributed=True, **overrides)
        with pytest.raises(ConfigurationError, match=match):
            DistributedRuntime(config)

    def test_triple_store_rejected(self):
        from repro.parallel import TripleStore

        config = CargoConfig(
            epsilon=2.0, seed=0, distributed=True, triple_store=TripleStore()
        )
        with pytest.raises(ConfigurationError, match="triple stores"):
            DistributedRuntime(config)

    def test_injected_authenticator_rejected(self):
        config = CargoConfig(
            epsilon=2.0,
            seed=0,
            distributed=True,
            authenticator=OpeningAuthenticator(seed=0),
        )
        with pytest.raises(ConfigurationError, match="authenticator"):
            DistributedRuntime(config)


class TestCheaterDetection:
    @pytest.mark.parametrize("role", (1, 2))
    def test_wire_tampering_detected_with_in_process_message(self, graph, role):
        target_round = 1

        def lie(opening):
            if opening.index == target_round:
                opening.messages[role - 1].values[0] += 1

        local_config = CargoConfig(
            epsilon=2.0,
            seed=11,
            counting_backend="matrix",
            track_communication=True,
            authenticator=OpeningAuthenticator(seed=11, tamper=lie),
        )
        with pytest.raises(CheaterDetectedError) as local_error:
            Cargo(local_config).run(graph)

        with pytest.raises(CheaterDetectedError) as remote_error:
            run_distributed(
                graph,
                make_config("matrix", distributed=True),
                tamper=(role, target_round),
            )
        assert str(remote_error.value) == str(local_error.value)
        assert remote_error.value.round_index == target_round

    def test_unauthenticated_tampering_goes_undetected(self, graph):
        honest = run_distributed(
            graph, make_config("matrix", distributed=True, authenticate=False)
        )
        tampered = run_distributed(
            graph,
            make_config("matrix", distributed=True, authenticate=False),
            tamper=(1, 1),
        )
        # No MAC: the lie silently lands in the release instead of aborting.
        assert tampered.noisy_triangle_count != honest.noisy_triangle_count


class TestCrashAndResume:
    def test_mid_round_crash_resumes_bit_identically(self, graph, tmp_path):
        checkpoint = str(tmp_path / "distributed.ckpt")
        resilience = ResilienceConfig(checkpoint_path=checkpoint, resume=True)
        config = make_config("matrix", distributed=True, resilience=resilience)
        baseline = Cargo(make_config("matrix")).run(graph)

        plan = FaultPlan(
            [FaultSpec("runtime.round", FaultKind.CRASH, at=2)]
        ).to_json()
        with pytest.raises(RuntimeProcessError):
            run_distributed(graph, config, fault_plan=plan, fault_target="server1")
        assert (tmp_path / "distributed.ckpt").exists()

        resumed = run_distributed(graph, config)
        assert resumed.noisy_triangle_count == baseline.noisy_triangle_count
        assert resumed.noisy_max_degree == baseline.noisy_max_degree
        assert resumed.communication_phases == baseline.communication_phases

    def test_dead_peer_surfaces_as_typed_error(self, graph):
        plan = FaultPlan(
            [FaultSpec("runtime.round", FaultKind.CRASH, at=1)]
        ).to_json()
        runtime = DistributedRuntime(
            make_config("matrix", distributed=True),
            fault_plan=plan,
            fault_target="server2",
        )
        with pytest.raises(RuntimeProcessError):
            runtime.run(graph)
        # A crashed run poisons the runtime: further use is refused.
        with pytest.raises(RuntimeProcessError, match="closed"):
            runtime.run(graph)


class TestPersistentRuntime:
    def test_one_runtime_serves_many_releases(self, graph):
        other = load_dataset("wiki", num_nodes=26)
        with DistributedRuntime(make_config("batched", distributed=True)) as runtime:
            first = runtime.run(graph)
            second = runtime.run(graph)
            third = runtime.run(other)
        assert first.noisy_triangle_count == second.noisy_triangle_count
        one_shot = run_distributed(other, make_config("batched", distributed=True))
        assert third.noisy_triangle_count == one_shot.noisy_triangle_count

    def test_closed_runtime_refuses_runs(self, graph):
        runtime = DistributedRuntime(make_config("matrix", distributed=True))
        runtime.close()
        with pytest.raises(RuntimeProcessError, match="closed"):
            runtime.run(graph)
