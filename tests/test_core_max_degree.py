"""Tests for repro.core.max_degree (Algorithm 2, `Max`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.max_degree import MaxDegreeEstimator
from repro.crypto.protocol import TwoServerRuntime
from repro.exceptions import PrivacyError


class TestMaxDegreeEstimator:
    def test_noisy_degrees_one_per_user(self):
        estimator = MaxDegreeEstimator(epsilon1=1.0)
        result = estimator.run([3, 5, 2, 8], rng=0)
        assert len(result.noisy_degrees) == 4
        assert result.epsilon1 == 1.0

    def test_noisy_max_close_to_true_max_at_high_epsilon(self):
        estimator = MaxDegreeEstimator(epsilon1=50.0)
        degrees = [10] * 120 + [20, 30, 100]
        result = estimator.run(degrees, rng=1)
        assert result.noisy_max_degree == pytest.approx(100, abs=1.0)

    def test_noise_actually_added(self):
        estimator = MaxDegreeEstimator(epsilon1=0.5)
        result = estimator.run([10] * 20, rng=2)
        assert any(abs(d - 10) > 1e-9 for d in result.noisy_degrees)

    def test_clamped_to_num_users(self):
        estimator = MaxDegreeEstimator(epsilon1=0.01, clamp_to_n=True)
        result = estimator.run([5] * 10, rng=3)
        assert result.noisy_max_degree <= 9

    def test_clamp_disabled(self):
        estimator = MaxDegreeEstimator(epsilon1=0.001, clamp_to_n=False)
        result = estimator.run([5] * 10, rng=4)
        # Without clamping, the max of heavy Laplace noise can exceed n - 1.
        assert result.noisy_max_degree >= 1.0

    def test_floor_at_one(self):
        estimator = MaxDegreeEstimator(epsilon1=0.5)
        result = estimator.run([0, 0, 0], rng=5)
        assert result.noisy_max_degree >= 1.0

    def test_empty_degree_set(self):
        result = MaxDegreeEstimator(epsilon1=1.0).run([], rng=6)
        assert result.noisy_degrees == []
        assert result.noisy_max_degree == 1.0

    def test_deterministic_given_seed(self):
        estimator = MaxDegreeEstimator(epsilon1=1.0)
        assert (
            estimator.run([1, 2, 3], rng=7).noisy_max_degree
            == estimator.run([1, 2, 3], rng=7).noisy_max_degree
        )

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyError):
            MaxDegreeEstimator(epsilon1=0)

    def test_expected_error(self):
        estimator = MaxDegreeEstimator(epsilon1=2.0)
        assert estimator.expected_error(100) == pytest.approx(0.5)
        with pytest.raises(PrivacyError):
            estimator.expected_error(0)

    def test_accuracy_improves_with_epsilon(self):
        """Empirical counterpart of Table V: higher budget -> smaller deviation."""
        degrees = list(np.random.default_rng(0).integers(1, 60, size=200))
        true_max = max(degrees)
        deviations = {}
        for epsilon in (0.05, 5.0):
            estimator = MaxDegreeEstimator(epsilon1=epsilon)
            trials = [
                abs(estimator.run(degrees, rng=seed).noisy_max_degree - true_max)
                for seed in range(20)
            ]
            deviations[epsilon] = np.mean(trials)
        assert deviations[5.0] < deviations[0.05]

    def test_communication_recorded(self):
        runtime = TwoServerRuntime(3)
        MaxDegreeEstimator(epsilon1=1.0).run([1, 2, 3], rng=8, runtime=runtime)
        # 3 noisy degrees to S1 plus a 3-user broadcast of d'_max.
        assert runtime.ledger.total_messages == 6
