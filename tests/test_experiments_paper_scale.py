"""Tests for the paper-scale presets (without running them at full size)."""

from __future__ import annotations

import inspect

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.paper_scale import (
    PAPER_SCALE_OVERRIDES,
    paper_scale_overrides,
    run_at_paper_scale,
)
from repro.experiments.specs import EXPERIMENTS, get_experiment


class TestPresets:
    def test_every_experiment_has_a_preset(self):
        assert set(PAPER_SCALE_OVERRIDES) == set(EXPERIMENTS)

    def test_overrides_are_copies(self):
        first = paper_scale_overrides("fig5")
        first["num_trials"] = 999
        assert paper_scale_overrides("fig5")["num_trials"] == 10

    def test_overrides_match_runner_signatures(self):
        """Every preset key must be an actual keyword of the runner function."""
        for name, overrides in PAPER_SCALE_OVERRIDES.items():
            accepted = set(inspect.signature(get_experiment(name).runner).parameters)
            unknown = set(overrides) - accepted
            assert not unknown, f"{name}: unknown override keys {unknown}"

    def test_paper_parameters_recorded(self):
        assert paper_scale_overrides("fig7")["user_counts"][-1] == 4000
        assert paper_scale_overrides("table5")["num_nodes"] == 2000
        assert paper_scale_overrides("table4")["scale"] == 1.0

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            paper_scale_overrides("fig99")


class TestRunAtPaperScale:
    def test_extra_overrides_win_and_run(self):
        """Run a 'paper-scale' call shrunk back down so the test stays fast."""
        report = run_at_paper_scale(
            "fig9", datasets=("facebook",), thetas=(10,), num_nodes=80, num_trials=1
        )
        assert report.rows

    def test_table2_is_instant(self):
        assert run_at_paper_scale("table2").rows
