"""Tests for repro.core.perturbation (Algorithm 5, `Perturb`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.counting import CountResult
from repro.core.perturbation import DistributedPerturbation
from repro.crypto.protocol import TwoServerRuntime
from repro.crypto.sharing import share_scalar
from repro.exceptions import PrivacyError


def make_count_result(count: int, seed: int = 0) -> CountResult:
    """Secret-share a plaintext count so Perturb can be tested in isolation."""
    pair = share_scalar(count, rng=seed)
    return CountResult(share1=pair.share1, share2=pair.share2, num_triples_processed=0, opening_rounds=0)


class TestDistributedPerturbation:
    def test_output_is_count_plus_noise(self):
        perturbation = DistributedPerturbation(epsilon2=1.0, sensitivity=10.0, num_users=50)
        result = perturbation.run(make_count_result(1000), rng=0)
        assert result.noisy_count == pytest.approx(1000 + result.aggregate_noise, abs=1e-2)

    def test_noise_is_not_zero(self):
        perturbation = DistributedPerturbation(epsilon2=0.5, sensitivity=20.0, num_users=30)
        result = perturbation.run(make_count_result(500), rng=1)
        assert result.aggregate_noise != 0.0

    def test_deterministic_given_seed(self):
        perturbation = DistributedPerturbation(epsilon2=1.0, sensitivity=5.0, num_users=10)
        first = perturbation.run(make_count_result(100), rng=7)
        second = perturbation.run(make_count_result(100), rng=7)
        assert first.noisy_count == second.noisy_count

    def test_shares_hide_noisy_count(self):
        perturbation = DistributedPerturbation(epsilon2=1.0, sensitivity=5.0, num_users=10)
        result = perturbation.run(make_count_result(100), rng=2)
        assert result.noisy_share1 != int(result.noisy_count)

    def test_zero_count(self):
        perturbation = DistributedPerturbation(epsilon2=2.0, sensitivity=1.0, num_users=5)
        result = perturbation.run(make_count_result(0), rng=3)
        assert result.noisy_count == pytest.approx(result.aggregate_noise, abs=1e-3)

    def test_empirical_noise_variance_matches_laplace(self):
        """Aggregated distributed noise has the Laplace variance 2 (Δ/ε2)²."""
        epsilon2, sensitivity, num_users = 1.0, 10.0, 40
        perturbation = DistributedPerturbation(
            epsilon2=epsilon2, sensitivity=sensitivity, num_users=num_users
        )
        noises = [
            perturbation.run(make_count_result(0, seed=seed), rng=seed).noisy_count
            for seed in range(800)
        ]
        expected_variance = 2 * (sensitivity / epsilon2) ** 2
        assert np.var(noises) == pytest.approx(expected_variance, rel=0.25)
        assert abs(np.mean(noises)) < 3 * np.sqrt(expected_variance / len(noises)) + 1.0

    def test_higher_epsilon_less_noise(self):
        count = make_count_result(10_000)
        sizes = {}
        for epsilon2 in (0.1, 10.0):
            perturbation = DistributedPerturbation(epsilon2=epsilon2, sensitivity=50.0, num_users=20)
            deviations = [
                abs(perturbation.run(count, rng=seed).noisy_count - 10_000) for seed in range(30)
            ]
            sizes[epsilon2] = np.mean(deviations)
        assert sizes[10.0] < sizes[0.1]

    def test_communication_recorded(self):
        runtime = TwoServerRuntime(4)
        perturbation = DistributedPerturbation(epsilon2=1.0, sensitivity=2.0, num_users=4)
        perturbation.run(make_count_result(10), rng=4, runtime=runtime)
        # Two noise shares per user plus the final cross-server exchange.
        assert runtime.ledger.total_messages == 4 * 2 + 2

    def test_invalid_num_users(self):
        with pytest.raises(PrivacyError):
            DistributedPerturbation(epsilon2=1.0, sensitivity=1.0, num_users=0)


class TestPerUserFallbackPath:
    """REPRO_FORCE_PER_USER_NOISE=1 exercises the SciPy-less sampler."""

    def test_fallback_is_deterministic_and_consistent(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PER_USER_NOISE", "1")
        perturbation = DistributedPerturbation(epsilon2=1.0, sensitivity=5.0, num_users=10)
        first = perturbation.run(make_count_result(100), rng=7)
        second = perturbation.run(make_count_result(100), rng=7)
        assert first.noisy_count == second.noisy_count
        assert first.noisy_count == pytest.approx(100 + first.aggregate_noise, abs=1e-2)

    def test_fallback_communication_recorded(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_PER_USER_NOISE", "1")
        runtime = TwoServerRuntime(4)
        perturbation = DistributedPerturbation(epsilon2=1.0, sensitivity=2.0, num_users=4)
        perturbation.run(make_count_result(10), rng=4, runtime=runtime)
        assert runtime.ledger.total_messages == 4 * 2 + 2
