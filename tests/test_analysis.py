"""Tests for repro.analysis (wedges, k-stars, private clustering coefficient)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.clustering import PrivateClusteringAnalyzer
from repro.analysis.subgraphs import (
    count_k_stars,
    count_wedges,
    k_star_sensitivity,
    private_k_star_count,
    private_wedge_count,
    wedge_sensitivity,
)
from repro.exceptions import ConfigurationError, PrivacyError
from repro.graph.datasets import load_dataset
from repro.graph.graph import Graph
from repro.graph.statistics import global_clustering_coefficient
from repro.graph.triangles import count_triangles


class TestExactCounts:
    def test_wedges_complete_graph(self, complete_graph):
        # Each of the 6 nodes has degree 5 -> C(5,2)=10 wedges each.
        assert count_wedges(complete_graph) == 60

    def test_wedges_star(self, star_graph):
        assert count_wedges(star_graph) == math.comb(7, 2)

    def test_wedges_empty(self, empty_graph):
        assert count_wedges(empty_graph) == 0

    def test_k_stars_reduce_to_wedges(self, complete_graph):
        assert count_k_stars(complete_graph, 2) == count_wedges(complete_graph)

    def test_k_stars_k1_is_twice_edges(self, triangle_graph):
        assert count_k_stars(triangle_graph, 1) == 2 * triangle_graph.num_edges

    def test_k_stars_invalid_k(self, triangle_graph):
        with pytest.raises(ConfigurationError):
            count_k_stars(triangle_graph, 0)

    def test_transitivity_identity(self, medium_cluster_graph):
        """3T / W equals the library's clustering coefficient."""
        wedges = count_wedges(medium_cluster_graph)
        triangles = count_triangles(medium_cluster_graph)
        assert 3 * triangles / wedges == pytest.approx(
            global_clustering_coefficient(medium_cluster_graph)
        )


class TestSensitivities:
    def test_wedge_sensitivity(self):
        assert wedge_sensitivity(10) == 18.0
        assert wedge_sensitivity(0) == 1.0
        with pytest.raises(PrivacyError):
            wedge_sensitivity(-1)

    def test_k_star_sensitivity_matches_wedges_at_k2(self):
        assert k_star_sensitivity(10, 2) == wedge_sensitivity(10)

    def test_k_star_sensitivity_grows_with_k(self):
        assert k_star_sensitivity(20, 3) > k_star_sensitivity(20, 2)

    def test_k_star_sensitivity_invalid(self):
        with pytest.raises(ConfigurationError):
            k_star_sensitivity(10, 0)
        with pytest.raises(PrivacyError):
            k_star_sensitivity(-1, 2)


class TestPrivateReleases:
    def test_private_wedge_count_close_at_high_epsilon(self, medium_cluster_graph):
        estimate = private_wedge_count(medium_cluster_graph, epsilon=50.0, rng=0)
        assert estimate == pytest.approx(count_wedges(medium_cluster_graph), rel=0.01)

    def test_private_wedge_count_uses_given_degree_bound(self, medium_cluster_graph):
        wide = [
            private_wedge_count(medium_cluster_graph, epsilon=1.0, degree_bound=500, rng=seed)
            for seed in range(30)
        ]
        narrow = [
            private_wedge_count(medium_cluster_graph, epsilon=1.0, degree_bound=5, rng=seed)
            for seed in range(30)
        ]
        truth = count_wedges(medium_cluster_graph)
        assert np.std([w - truth for w in wide]) > np.std([n - truth for n in narrow])

    def test_private_k_star_count_runs(self, medium_cluster_graph):
        estimate = private_k_star_count(medium_cluster_graph, k=3, epsilon=10.0, rng=1)
        assert estimate == pytest.approx(count_k_stars(medium_cluster_graph, 3), rel=0.2)


class TestPrivateClustering:
    def test_estimate_tracks_truth(self):
        graph = load_dataset("facebook", num_nodes=200)
        analyzer = PrivateClusteringAnalyzer(epsilon=2.0, seed=3)
        result = analyzer.run(graph)
        assert 0.0 <= result.clustering_coefficient <= 1.0
        assert result.absolute_error < 0.1
        assert result.exact_clustering_coefficient == pytest.approx(
            global_clustering_coefficient(graph)
        )

    def test_result_components_consistent(self):
        graph = load_dataset("wiki", num_nodes=150)
        result = PrivateClusteringAnalyzer(epsilon=2.0, seed=4).run(graph)
        plug_in = min(max(3 * result.noisy_triangle_count / result.noisy_wedge_count, 0.0), 1.0)
        assert result.clustering_coefficient == pytest.approx(plug_in)
        assert result.epsilon == 2.0

    def test_error_shrinks_with_budget(self):
        graph = load_dataset("hepph", num_nodes=150)
        errors = {}
        for epsilon in (0.3, 5.0):
            trials = [
                PrivateClusteringAnalyzer(epsilon=epsilon, seed=seed).run(graph).absolute_error
                for seed in range(3)
            ]
            errors[epsilon] = np.mean(trials)
        assert errors[5.0] <= errors[0.3] + 1e-6

    def test_wedge_noise_scale_helper(self):
        analyzer = PrivateClusteringAnalyzer(epsilon=2.0, triangle_fraction=0.5)
        assert analyzer.expected_wedge_noise_scale(11) == pytest.approx(20.0 / 1.0)

    def test_invalid_parameters(self):
        with pytest.raises(PrivacyError):
            PrivateClusteringAnalyzer(epsilon=0)
        with pytest.raises(PrivacyError):
            PrivateClusteringAnalyzer(epsilon=1.0, triangle_fraction=1.5)

    def test_zero_wedge_graph(self, empty_graph):
        result = PrivateClusteringAnalyzer(epsilon=2.0, seed=5).run(empty_graph)
        assert 0.0 <= result.clustering_coefficient <= 1.0
