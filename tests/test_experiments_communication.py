"""Tests for repro.experiments.communication and CLI JSON output."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.communication import communication_overhead


class TestCommunicationOverhead:
    @pytest.fixture(scope="class")
    def report(self):
        return communication_overhead(dataset="grqc", user_counts=(30, 60), epsilon=2.0, seed=0)

    def test_one_row_per_user_count(self, report):
        assert [row["num_users"] for row in report.rows] == [30, 60]

    def test_bytes_grow_superlinearly(self, report):
        by_n = {row["num_users"]: row["total_bytes"] for row in report.rows}
        assert by_n[60] > 2 * by_n[30]

    def test_adjacency_upload_dominates(self, report):
        for row in report.rows:
            assert row["adjacency_share_bytes"] > row["noise_share_bytes"]

    def test_message_count_scales_with_users(self, report):
        by_n = {row["num_users"]: row["total_messages"] for row in report.rows}
        assert by_n[60] > by_n[30]

    def test_bytes_per_user_reported(self, report):
        for row in report.rows:
            assert row["bytes_per_user"] == pytest.approx(
                row["total_bytes"] / row["num_users"]
            )

    def test_phase_split_is_exact_not_heuristic(self):
        """The adjacency/noise split comes from send-time phase labels."""
        from repro.core.cargo import Cargo
        from repro.core.config import CargoConfig
        from repro.graph.datasets import load_dataset

        graph = load_dataset("grqc", num_nodes=40)
        result = Cargo(CargoConfig(epsilon=2.0, seed=0, track_communication=True)).run(graph)
        phases = result.communication_phases
        n = graph.num_nodes
        # Each user uploads one n-element int64 share vector to each server.
        assert phases["adjacency_share"]["messages"] == 2 * n
        assert phases["adjacency_share"]["bytes"] == 2 * n * n * 8
        # Each user uploads one scalar noise share to each server.
        assert phases["noise_share"]["messages"] == 2 * n
        assert phases["noise_share"]["bytes"] == 2 * n * 8
        # Phase totals reconcile exactly with the channel totals.
        assert sum(entry["bytes"] for entry in phases.values()) == sum(
            entry["bytes"] for entry in result.communication.values()
        )
        assert sum(entry["messages"] for entry in phases.values()) == sum(
            entry["messages"] for entry in result.communication.values()
        )


class TestCliJsonOutput:
    def test_json_flag_emits_parseable_rows(self, capsys):
        assert main(["table2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "table2"
        assert len(payload["rows"]) == 4

    def test_json_flag_with_overrides(self, capsys):
        assert main(["table4", "--num-nodes", "60", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {row["graph"] for row in payload["rows"]} == {"facebook", "wiki", "hepph", "enron"}
