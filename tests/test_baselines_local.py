"""Tests for the LDP baselines (Local2Rounds and one-round RR)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.local_two_rounds import LocalTwoRoundsTriangleCounting
from repro.baselines.nonprivate import NonPrivateTriangleCounting
from repro.baselines.one_round_ldp import OneRoundLdpTriangleCounting
from repro.exceptions import PrivacyError
from repro.graph.datasets import load_dataset
from repro.graph.generators import powerlaw_cluster_graph
from repro.graph.triangles import count_triangles


class TestLocalTwoRounds:
    def test_runs_and_reports_fields(self):
        graph = load_dataset("facebook", num_nodes=150)
        result = LocalTwoRoundsTriangleCounting(epsilon=2.0).run(graph, rng=0)
        assert result.true_triangle_count == count_triangles(graph)
        assert result.epsilon == 2.0
        assert result.noisy_max_degree >= 1.0
        assert np.isfinite(result.noisy_triangle_count)

    def test_estimator_is_roughly_unbiased(self):
        """Averaged over many runs the estimate should approach the truth."""
        graph = powerlaw_cluster_graph(60, 4, 0.7, seed=1)
        true_count = count_triangles(graph)
        estimates = [
            LocalTwoRoundsTriangleCounting(epsilon=3.0).run(graph, rng=seed).noisy_triangle_count
            for seed in range(60)
        ]
        assert np.mean(estimates) == pytest.approx(true_count, rel=0.35)

    def test_much_noisier_than_central(self):
        """The utility gap the paper closes: LDP error far exceeds CDP error."""
        from repro.baselines.central_lap import CentralLaplaceTriangleCounting

        graph = load_dataset("wiki", num_nodes=150)
        local_losses = [
            LocalTwoRoundsTriangleCounting(epsilon=1.0).run(graph, rng=seed).l2_loss
            for seed in range(5)
        ]
        central_losses = [
            CentralLaplaceTriangleCounting(epsilon=1.0).run(graph, rng=seed).l2_loss
            for seed in range(5)
        ]
        assert np.mean(local_losses) > 10 * np.mean(central_losses)

    def test_deterministic_given_seed(self):
        graph = powerlaw_cluster_graph(50, 3, 0.6, seed=2)
        protocol = LocalTwoRoundsTriangleCounting(epsilon=2.0)
        assert (
            protocol.run(graph, rng=3).noisy_triangle_count
            == protocol.run(graph, rng=3).noisy_triangle_count
        )

    def test_timings_include_rounds(self):
        graph = powerlaw_cluster_graph(40, 3, 0.6, seed=4)
        result = LocalTwoRoundsTriangleCounting(epsilon=2.0).run(graph, rng=5)
        assert {"round1", "round2", "project", "total"} <= set(result.timings)

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyError):
            LocalTwoRoundsTriangleCounting(epsilon=0)

    def test_invalid_split(self):
        with pytest.raises(PrivacyError):
            LocalTwoRoundsTriangleCounting(epsilon=1.0, split=(0.5, 0.5, 0.5))
        with pytest.raises(PrivacyError):
            LocalTwoRoundsTriangleCounting(epsilon=1.0, split=(1.0, -0.5, 0.5))
        with pytest.raises(PrivacyError):
            LocalTwoRoundsTriangleCounting(epsilon=1.0, split=(0.5, 0.5))


class TestOneRoundLdp:
    def test_runs(self):
        graph = powerlaw_cluster_graph(60, 4, 0.7, seed=6)
        result = OneRoundLdpTriangleCounting(epsilon=2.0).run(graph, rng=7)
        assert result.true_triangle_count == count_triangles(graph)
        assert np.isfinite(result.noisy_triangle_count)

    def test_roughly_unbiased(self):
        graph = powerlaw_cluster_graph(50, 4, 0.7, seed=8)
        true_count = count_triangles(graph)
        estimates = [
            OneRoundLdpTriangleCounting(epsilon=4.0).run(graph, rng=seed).noisy_triangle_count
            for seed in range(40)
        ]
        assert np.mean(estimates) == pytest.approx(true_count, rel=0.4)

    def test_noisier_than_central(self):
        from repro.baselines.central_lap import CentralLaplaceTriangleCounting

        graph = load_dataset("hepph", num_nodes=150)
        one_round = [
            OneRoundLdpTriangleCounting(epsilon=1.0).run(graph, rng=seed).l2_loss
            for seed in range(5)
        ]
        central = [
            CentralLaplaceTriangleCounting(epsilon=1.0).run(graph, rng=seed).l2_loss
            for seed in range(5)
        ]
        assert np.mean(one_round) > np.mean(central)

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyError):
            OneRoundLdpTriangleCounting(epsilon=-1)


class TestNonPrivate:
    def test_exact(self, complete_graph):
        result = NonPrivateTriangleCounting().run(complete_graph)
        assert result.noisy_triangle_count == result.true_triangle_count == 20
        assert result.l2_loss == 0.0
        assert result.relative_error == 0.0
