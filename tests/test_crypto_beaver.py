"""Tests for repro.crypto.beaver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.ring import Ring
from repro.exceptions import DealerError


class TestScalarTriples:
    def test_triple_relation_holds(self):
        dealer = BeaverTripleDealer(seed=0)
        triple = dealer.scalar_triple()
        x, y, z = triple.plaintext()
        assert z == dealer.ring.mul(x, y)

    def test_triples_are_fresh(self):
        dealer = BeaverTripleDealer(seed=1)
        first = dealer.scalar_triple().plaintext()
        second = dealer.scalar_triple().plaintext()
        assert first != second

    def test_issued_counter(self):
        dealer = BeaverTripleDealer(seed=2)
        list(dealer.scalar_triples(5))
        assert dealer.triples_issued == 5

    def test_negative_count_rejected(self):
        dealer = BeaverTripleDealer(seed=3)
        with pytest.raises(DealerError):
            list(dealer.scalar_triples(-1))

    def test_deterministic_with_seed(self):
        a = BeaverTripleDealer(seed=4).scalar_triple().plaintext()
        b = BeaverTripleDealer(seed=4).scalar_triple().plaintext()
        assert a == b

    def test_small_ring(self):
        dealer = BeaverTripleDealer(ring=Ring(bits=8), seed=5)
        x, y, z = dealer.scalar_triple().plaintext()
        assert z == (x * y) % 256


class TestVectorTriples:
    def test_elementwise_relation(self):
        dealer = BeaverTripleDealer(seed=6)
        triple = dealer.vector_triple((7,))
        x, y, z = triple.plaintext()
        assert np.array_equal(z, dealer.ring.mul(x, y))

    def test_bad_shape_rejected(self):
        with pytest.raises(DealerError):
            BeaverTripleDealer(seed=7).vector_triple((0,))


class TestMatrixTriples:
    def test_matrix_relation(self):
        dealer = BeaverTripleDealer(seed=8)
        triple = dealer.matrix_triple((4, 3), (3, 5))
        x, y, z = triple.plaintext()
        assert np.array_equal(z, dealer.ring.matmul(x, y))

    def test_incompatible_shapes_rejected(self):
        with pytest.raises(DealerError):
            BeaverTripleDealer(seed=9).matrix_triple((2, 3), (4, 5))

    def test_shares_are_not_plaintext(self):
        dealer = BeaverTripleDealer(seed=10)
        triple = dealer.matrix_triple((3, 3), (3, 3))
        x, _, _ = triple.plaintext()
        assert not np.array_equal(np.asarray(triple.server1.x), np.asarray(x))
