"""Tests for repro.utils.validation."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    check_in_range,
    check_integer,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckType:
    def test_accepts_matching_type(self):
        assert check_type("x", 3, int) == 3

    def test_accepts_tuple_of_types(self):
        assert check_type("x", 3.5, (int, float)) == 3.5

    def test_rejects_wrong_type(self):
        with pytest.raises(ConfigurationError, match="x must be of type int"):
            check_type("x", "no", int)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.1) == 0.1

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ConfigurationError):
            check_positive("x", value)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", float("nan"))

    def test_rejects_infinity(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", float("inf"))

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", True)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", -0.001)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0, 0.5, 1])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ConfigurationError):
            check_probability("p", value)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 5, low=5, high=5) == 5

    def test_exclusive_bounds_reject_endpoint(self):
        with pytest.raises(ConfigurationError):
            check_in_range("x", 5, low=5, inclusive=False)

    def test_upper_bound_violation(self):
        with pytest.raises(ConfigurationError, match="must be <= 10"):
            check_in_range("x", 11, high=10)

    def test_lower_bound_violation(self):
        with pytest.raises(ConfigurationError, match="must be >= 1"):
            check_in_range("x", 0, low=1)


class TestCheckInteger:
    def test_accepts_int(self):
        assert check_integer("n", 7) == 7

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            check_integer("n", 7.0)

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_integer("n", True)
