"""Tests for repro.verify.audit — the protocol-level privacy audit.

The expensive, discriminating runs (honest passes / planted half-noise bug
fails at the tuned defaults) are the CI ``verify-smoke`` gate's job; these
tests pin the machinery at small scale: neighbouring-graph construction,
the audit result's pass rules, parameter validation, and that a small
honest audit runs end to end with views attached.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph
from repro.verify import (
    ProtocolAuditResult,
    audit_experiment,
    audit_protocol,
    neighbouring_graphs,
    worst_case_graph,
)


class TestNeighbouringGraphs:
    def test_worst_case_graph_is_complete(self):
        graph = worst_case_graph(6)
        assert graph.num_nodes == 6
        assert len(graph.edge_list()) == 15

    def test_worst_case_graph_too_small(self):
        with pytest.raises(ConfigurationError):
            worst_case_graph(2)

    def test_edge_neighbour_drops_exactly_one_edge(self):
        graph = worst_case_graph(6)
        original, neighbour = neighbouring_graphs(graph, mode="edge")
        assert original is graph
        assert len(neighbour.edge_list()) == len(graph.edge_list()) - 1
        assert graph.num_nodes == neighbour.num_nodes

    def test_edge_neighbour_targets_max_common_neighbours(self):
        # A triangle plus a pendant edge: only the triangle edges share a
        # common neighbour, so one of them must be the removed edge.
        graph = Graph(5, edges=[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)])
        _, neighbour = neighbouring_graphs(graph, mode="edge")
        removed = set(graph.edge_list()) - set(neighbour.edge_list())
        assert removed.issubset({(0, 1), (0, 2), (1, 2)})
        assert len(removed) == 1

    def test_node_neighbour_isolates_highest_degree_node(self):
        graph = Graph(5, edges=[(0, 1), (0, 2), (0, 3), (1, 2), (3, 4)])
        _, neighbour = neighbouring_graphs(graph, mode="node")
        assert neighbour.degrees()[0] == 0
        assert neighbour.num_nodes == graph.num_nodes

    def test_original_graph_untouched(self):
        graph = worst_case_graph(5)
        before = graph.edge_list()
        neighbouring_graphs(graph, mode="edge")
        neighbouring_graphs(graph, mode="node")
        assert graph.edge_list() == before

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            neighbouring_graphs(worst_case_graph(5), mode="triangle")

    def test_empty_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            neighbouring_graphs(Graph(4, edges=[]), mode="edge")


class TestProtocolAuditResult:
    def _result(self, bound: float, claimed: float = 2.0, **kwargs) -> ProtocolAuditResult:
        defaults = dict(
            epsilon_lower_bound=bound,
            claimed_epsilon=claimed,
            realized_epsilon=claimed,
            num_trials=100,
            num_bins=24,
            mode="edge",
            statistic="triangles",
            backend="matrix",
            node_dp=False,
        )
        defaults.update(kwargs)
        return ProtocolAuditResult(**defaults)

    def test_pass_rule_tolerates_estimator_slack(self):
        assert self._result(2.0).passes
        assert self._result(2.15).passes  # 2.0 * 1.05 + 0.05
        assert not self._result(2.16).passes

    def test_view_pass_rule(self):
        assert self._result(1.0).view_passes  # no view audit attached
        assert self._result(1.0, view_divergence=0.01, view_threshold=0.05).view_passes
        assert not self._result(
            1.0, view_divergence=0.2, view_threshold=0.05
        ).view_passes


class TestAuditProtocol:
    def test_small_honest_audit_runs(self):
        result = audit_protocol(
            worst_case_graph(6), num_trials=40, num_bins=8, seed=0
        )
        assert result.num_trials == 40
        assert result.epsilon_lower_bound >= 0.0
        assert result.claimed_epsilon == 2.0
        assert result.realized_epsilon == 2.0
        assert result.view_divergence is not None
        assert result.view_threshold > 0.0

    def test_node_mode_runs(self):
        result = audit_protocol(
            worst_case_graph(6),
            mode="node",
            node_dp=True,
            num_trials=40,
            num_bins=8,
            audit_views=False,
        )
        assert result.mode == "node"
        assert result.node_dp
        assert result.view_divergence is None

    def test_planted_bug_raises_realized_epsilon(self):
        result = audit_protocol(
            worst_case_graph(6),
            num_trials=40,
            num_bins=8,
            epsilon2_scale=2.0,
            audit_views=False,
        )
        assert result.realized_epsilon > result.claimed_epsilon

    def test_parameter_validation(self):
        graph = worst_case_graph(6)
        with pytest.raises(ConfigurationError):
            audit_protocol(graph, num_trials=5)
        with pytest.raises(ConfigurationError):
            audit_protocol(graph, epsilon2_scale=0.0)
        with pytest.raises(ConfigurationError):
            audit_protocol(graph, mode="bogus")


class TestAuditExperiment:
    def test_report_structure(self):
        report = audit_experiment(num_nodes=6, num_trials=40)
        assert report.name == "audit"
        cases = [row["case"] for row in report.rows]
        assert cases == ["honest", "honest", "half-noise bug"]
        honest_rows = [row for row in report.rows if row["case"] == "honest"]
        assert {row["mode"] for row in honest_rows} == {"edge", "node"}
        for row in report.rows:
            assert row["claimed_epsilon"] == 2.0
            assert isinstance(row["audited_epsilon"], float)
        # The planted bug is flagged as such in the expectation column even
        # at toy scale; the verdict itself is only reliable at the tuned
        # defaults, which the verify-smoke gate runs.
        (bug_row,) = [row for row in report.rows if row["case"] == "half-noise bug"]
        assert bug_row["expected"] is False
        assert bug_row["realized_epsilon"] == pytest.approx(
            bug_row["claimed_epsilon"] * 1.5, rel=0.3
        )
