"""Tests for the top-level package API and the exception hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro import exceptions


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_core_entry_points_importable(self):
        from repro import Cargo, CargoConfig, Graph, load_dataset  # noqa: F401

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.baselines
        import repro.core
        import repro.crypto
        import repro.dp
        import repro.experiments
        import repro.graph
        import repro.metrics

        assert repro.analysis and repro.crypto and repro.experiments

    def test_minimal_workflow_through_public_api(self):
        graph = repro.load_dataset("grqc", num_nodes=50)
        result = repro.Cargo(repro.CargoConfig(epsilon=2.0, seed=1)).run(graph)
        assert repro.l2_loss(result.true_triangle_count, result.noisy_triangle_count) >= 0


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, exceptions.ReproError)

    def test_specific_parent_relationships(self):
        assert issubclass(exceptions.ShareError, exceptions.ProtocolError)
        assert issubclass(exceptions.DealerError, exceptions.ProtocolError)
        assert issubclass(exceptions.BudgetExhaustedError, exceptions.PrivacyError)

    def test_library_raises_catchable_base(self):
        with pytest.raises(exceptions.ReproError):
            repro.load_dataset("not-a-dataset")
        with pytest.raises(exceptions.ReproError):
            repro.CargoConfig(epsilon=-1)
