"""Cross-backend equivalence property suite.

Every registered built-in counting backend must reconstruct the *identical*
projected triangle count from the *same* secret shares: the backends differ
only in how they group the secure multiplications into opening rounds, never
in the arithmetic.  The suite sweeps random graphs across sizes, densities,
and seeds — including asymmetric (projected) rows — and feeds one shared
share-pair to all four backends.
"""

from __future__ import annotations

import pytest

from repro.core.backends import (
    BlockedMatrixTriangleCounter,
    FaithfulTriangleCounter,
    MatrixTriangleCounter,
    share_adjacency_rows,
)
from repro.core.projection import SimilarityProjection, projected_triangle_count
from repro.graph.generators import erdos_renyi_graph, powerlaw_cluster_graph
from repro.graph.triangles import count_triangles


def _all_backends(block_size: int = 5):
    """One instance of each built-in backend execution strategy."""
    return {
        "faithful": FaithfulTriangleCounter(batch_size=1),
        "batched": FaithfulTriangleCounter(batch_size=64),
        "matrix": MatrixTriangleCounter(),
        "blocked": BlockedMatrixTriangleCounter(block_size=block_size),
    }


@pytest.mark.parametrize(
    "num_nodes,density,seed",
    [
        (8, 0.2, 0),
        (12, 0.5, 1),
        (15, 0.8, 2),
        (18, 0.3, 3),
        (21, 0.6, 4),
    ],
)
def test_backends_agree_on_random_graphs(num_nodes, density, seed):
    graph = erdos_renyi_graph(num_nodes, density, seed=seed)
    rows = graph.adjacency_matrix()
    share1, share2 = share_adjacency_rows(rows, rng=seed)
    expected = count_triangles(graph)
    counts = {
        name: backend.count_from_shares(share1, share2).reconstruct()
        for name, backend in _all_backends().items()
    }
    assert counts == {name: expected for name in counts}, counts


@pytest.mark.parametrize("seed", [5, 6])
def test_backends_agree_on_clustered_graphs(seed):
    graph = powerlaw_cluster_graph(17, 3, 0.8, seed=seed)
    rows = graph.adjacency_matrix()
    share1, share2 = share_adjacency_rows(rows, rng=seed)
    expected = count_triangles(graph)
    for name, backend in _all_backends(block_size=4).items():
        assert backend.count_from_shares(share1, share2).reconstruct() == expected, name


def test_backends_agree_on_projected_asymmetric_rows():
    """Projection yields asymmetric rows; the backends must still agree."""
    graph = powerlaw_cluster_graph(20, 4, 0.7, seed=7)
    projection = SimilarityProjection(4).project_graph(graph)
    rows = projection.projected_rows
    expected = projected_triangle_count(rows)
    share1, share2 = share_adjacency_rows(rows, rng=8)
    for name, backend in _all_backends(block_size=6).items():
        assert backend.count_from_shares(share1, share2).reconstruct() == expected, name


def test_blocked_equivalence_across_block_sizes():
    """Same shares, every tiling: the reconstructed count never moves."""
    graph = erdos_renyi_graph(23, 0.4, seed=9)
    rows = graph.adjacency_matrix()
    share1, share2 = share_adjacency_rows(rows, rng=10)
    expected = MatrixTriangleCounter().count_from_shares(share1, share2).reconstruct()
    assert expected == count_triangles(graph)
    for block_size in (1, 2, 3, 7, 11, 23, 64):
        blocked = BlockedMatrixTriangleCounter(block_size=block_size)
        assert blocked.count_from_shares(share1, share2).reconstruct() == expected, block_size
