"""Tests for repro.metrics."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.metrics.aggregate import TrialAggregate, aggregate_trials, repeat_trials
from repro.metrics.error import l2_loss, relative_error


class TestErrorMetrics:
    def test_l2_loss(self):
        assert l2_loss(100, 90) == 100.0
        assert l2_loss(0, 0) == 0.0
        assert l2_loss(10, 13.5) == pytest.approx(12.25)

    def test_relative_error(self):
        assert relative_error(100, 90) == pytest.approx(0.1)
        assert relative_error(100, 110) == pytest.approx(0.1)
        assert relative_error(-50, -25) == pytest.approx(0.5)

    def test_relative_error_zero_truth(self):
        with pytest.raises(ConfigurationError):
            relative_error(0, 5)


class TestAggregation:
    def test_basic_statistics(self):
        aggregate = aggregate_trials([1.0, 2.0, 3.0, 4.0])
        assert aggregate.mean == pytest.approx(2.5)
        assert aggregate.median == pytest.approx(2.5)
        assert aggregate.minimum == 1.0
        assert aggregate.maximum == 4.0
        assert aggregate.count == 4

    def test_odd_length_median(self):
        assert aggregate_trials([5.0, 1.0, 3.0]).median == 3.0

    def test_std(self):
        aggregate = aggregate_trials([2.0, 2.0, 2.0])
        assert aggregate.std == 0.0

    def test_as_dict(self):
        data = aggregate_trials([1.0]).as_dict()
        assert data["count"] == 1
        assert set(data) == {"mean", "median", "min", "max", "std", "count"}

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregate_trials([])

    def test_returns_dataclass(self):
        assert isinstance(aggregate_trials([1.0, 2.0]), TrialAggregate)


class TestRepeatTrials:
    def test_runs_requested_number(self):
        values = repeat_trials(lambda seed: float(seed % 7), num_trials=5, seed=0)
        assert len(values) == 5

    def test_deterministic_given_seed(self):
        first = repeat_trials(lambda seed: float(seed), num_trials=4, seed=9)
        second = repeat_trials(lambda seed: float(seed), num_trials=4, seed=9)
        assert first == second

    def test_seeds_are_distinct(self):
        values = repeat_trials(lambda seed: float(seed), num_trials=6, seed=1)
        assert len(set(values)) == 6

    def test_invalid_trial_count(self):
        with pytest.raises(ConfigurationError):
            repeat_trials(lambda seed: 0.0, num_trials=0)
