"""Active-adversary protocol tests: cheater detection end to end.

The MAC layer's unit tests live in ``test_crypto_mac.py``; here the full
protocol runs under an adversary that corrupts one opening message in
flight, across every backend × statistic × tamper kind × cheating server,
and the run must abort with a typed :class:`CheaterDetectedError` naming
the corrupted round.  The flip side is pinned too: honest authenticated
runs release counts bit-identical to unauthenticated runs, and a detected
cheat leaves a schema-valid telemetry manifest carrying the cheater event.
"""

from __future__ import annotations

import pytest

from repro.core.cargo import Cargo
from repro.core.config import CargoConfig
from repro.crypto.mac import OpeningAuthenticator
from repro.exceptions import CheaterDetectedError, ConfigurationError
from repro.graph.generators import erdos_renyi_graph
from repro.telemetry import Telemetry, build_manifest, validate_manifest
from repro.verify import (
    CORRUPTION_KINDS,
    Corruption,
    CorruptionOutcome,
    count_opening_rounds,
    run_with_corruption,
)

BACKENDS = ("faithful", "batched", "matrix", "blocked")
STATISTICS = ("triangles", "kstars", "wedges", "4cycles")


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi_graph(12, edge_probability=0.5, seed=5)


class TestCorruptionValidation:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Corruption(round_index=0, kind="bribe")

    def test_invalid_server_rejected(self):
        with pytest.raises(ConfigurationError):
            Corruption(round_index=0, server=3)

    def test_negative_round_rejected(self):
        with pytest.raises(ConfigurationError):
            Corruption(round_index=-1)

    def test_zero_mod_ring_lie_rejected(self):
        with pytest.raises(ConfigurationError):
            Corruption(round_index=0, kind="lie_value", magnitude=2**64)

    def test_outcome_safe_property(self):
        assert CorruptionOutcome(detected=True, fired=True, error=None, result=None).safe
        assert CorruptionOutcome(detected=False, fired=False, error=None, result=None).safe
        assert not CorruptionOutcome(
            detected=False, fired=True, error=None, result=None
        ).safe


class TestCheaterMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("statistic", STATISTICS)
    def test_every_backend_statistic_has_checked_rounds(self, graph, backend, statistic):
        """Every config funnels at least the release through a MAC check."""
        rounds = count_opening_rounds(graph, statistic=statistic, backend=backend)
        assert rounds >= 1

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("statistic", STATISTICS)
    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_first_round_corruption_detected(self, graph, backend, statistic, kind):
        outcome = run_with_corruption(
            graph,
            Corruption(round_index=0, server=1, kind=kind),
            statistic=statistic,
            backend=backend,
        )
        assert outcome.fired
        assert outcome.detected
        assert isinstance(outcome.error, CheaterDetectedError)
        assert outcome.error.round_index == 0

    @pytest.mark.parametrize("server", (1, 2))
    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_every_round_and_server_detected_on_matrix(self, graph, server, kind):
        """Exhaustive round sweep on the matrix backend (few rounds, fast)."""
        rounds = count_opening_rounds(graph, statistic="triangles", backend="matrix")
        for round_index in range(rounds):
            outcome = run_with_corruption(
                graph,
                Corruption(round_index=round_index, server=server, kind=kind),
                statistic="triangles",
                backend="matrix",
            )
            assert outcome.fired
            assert outcome.detected, (
                f"round {round_index} server {server} {kind} went undetected"
            )

    def test_release_round_corruption_detected(self, graph):
        """Corrupting the final release opening (the last round) is caught."""
        rounds = count_opening_rounds(graph, statistic="triangles", backend="matrix")
        outcome = run_with_corruption(
            graph,
            Corruption(round_index=rounds - 1, server=2, kind="lie_value", magnitude=10),
            statistic="triangles",
            backend="matrix",
        )
        assert outcome.detected
        assert outcome.error.label == "release_opening"

    def test_node_dp_run_detects_corruption(self, graph):
        outcome = run_with_corruption(
            graph,
            Corruption(round_index=0, server=1, kind="flip_value"),
            statistic="triangles",
            backend="matrix",
            node_dp=True,
        )
        assert outcome.fired
        assert outcome.detected

    def test_corruption_past_last_round_never_fires(self, graph):
        rounds = count_opening_rounds(graph, statistic="triangles", backend="matrix")
        outcome = run_with_corruption(
            graph,
            Corruption(round_index=rounds + 50, server=1, kind="flip_value"),
            statistic="triangles",
            backend="matrix",
        )
        assert not outcome.fired
        assert not outcome.detected
        assert outcome.safe
        assert outcome.result is not None


class TestHonestAuthentication:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_authenticated_release_bit_identical(self, graph, backend):
        plain = Cargo(
            CargoConfig(epsilon=2.0, seed=4, counting_backend=backend)
        ).run(graph)
        authed = Cargo(
            CargoConfig(epsilon=2.0, seed=4, counting_backend=backend, authenticate=True)
        ).run(graph)
        assert authed.noisy_triangle_count == plain.noisy_triangle_count

    def test_honest_run_reports_mac_telemetry(self, graph):
        telemetry = Telemetry()
        config = CargoConfig(
            epsilon=2.0, seed=4, authenticate=True, telemetry=telemetry
        )
        Cargo(config).run(graph)
        manifest = build_manifest(telemetry)
        assert validate_manifest(manifest) == []
        (release,) = manifest["releases"]
        assert release["mac"]["rounds_checked"] >= 1
        assert release["mac"]["values_checked"] >= release["mac"]["rounds_checked"]


class TestCheaterTelemetry:
    def test_detected_cheat_records_manifest_event(self, graph):
        def lie(opening):
            if opening.index == 0:
                opening.messages[0].values[0] ^= 1

        telemetry = Telemetry()
        config = CargoConfig(
            epsilon=2.0,
            seed=4,
            authenticator=OpeningAuthenticator(seed=4, tamper=lie),
            telemetry=telemetry,
        )
        with pytest.raises(CheaterDetectedError):
            Cargo(config).run(graph)
        manifest = build_manifest(telemetry)
        assert validate_manifest(manifest) == []
        (event,) = [
            release
            for release in manifest["releases"]
            if release.get("kind") == "cheater_detected"
        ]
        assert event["round_index"] == 0
        assert event["backend"] == config.backend_name
        assert event["statistic"] == "triangles"

    def test_malformed_cheater_record_flagged_by_validator(self, graph):
        telemetry = Telemetry()
        config = CargoConfig(epsilon=2.0, seed=4, telemetry=telemetry)
        Cargo(config).run(graph)
        telemetry.record_release({"kind": "cheater_detected", "statistic": "triangles"})
        manifest = build_manifest(telemetry)
        issues = validate_manifest(manifest)
        assert issues, "validator accepted a cheater record missing its fields"
