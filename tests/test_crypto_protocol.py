"""Tests for repro.crypto.protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.protocol import (
    CommunicationLedger,
    Message,
    Party,
    TwoServerRuntime,
    estimate_message_bytes,
)
from repro.exceptions import ProtocolError


class TestMessageBytes:
    def test_scalar_sizes(self):
        assert estimate_message_bytes(5) == 8
        assert estimate_message_bytes(3.14) == 8
        assert estimate_message_bytes(True) == 1
        assert estimate_message_bytes(None) == 0

    def test_array_size(self):
        array = np.zeros(10, dtype=np.uint64)
        assert estimate_message_bytes(array) == 80

    def test_container_sizes(self):
        assert estimate_message_bytes([1, 2, 3]) == 24
        assert estimate_message_bytes({"a": 1}) == 1 + 8

    def test_string_size(self):
        assert estimate_message_bytes("abcd") == 4


class TestParty:
    def test_deliver_and_receive(self):
        party = Party("S1")
        party.deliver(Message(sender="u", receiver="S1", tag="t", payload=1))
        message = party.receive()
        assert message.payload == 1
        assert party.pending() == 0

    def test_receive_by_tag(self):
        party = Party("S1")
        party.deliver(Message(sender="u", receiver="S1", tag="a", payload=1))
        party.deliver(Message(sender="u", receiver="S1", tag="b", payload=2))
        assert party.receive(tag="b").payload == 2
        assert party.pending() == 1

    def test_wrong_receiver_rejected(self):
        party = Party("S1")
        with pytest.raises(ProtocolError):
            party.deliver(Message(sender="u", receiver="S2", tag="t", payload=1))

    def test_empty_mailbox(self):
        with pytest.raises(ProtocolError):
            Party("S1").receive()

    def test_missing_tag(self):
        party = Party("S1")
        party.deliver(Message(sender="u", receiver="S1", tag="a", payload=1))
        with pytest.raises(ProtocolError):
            party.receive(tag="zzz")


class TestLedger:
    def test_records_messages_and_bytes(self):
        ledger = CommunicationLedger()
        ledger.record("u->S1", np.zeros(4, dtype=np.uint64))
        ledger.record("u->S1", 7)
        assert ledger.total_messages == 2
        assert ledger.total_bytes == 32 + 8
        assert ledger.summary()["u->S1"]["messages"] == 2

    def test_batched_record_counts_many_messages(self):
        ledger = CommunicationLedger()
        ledger.record("users->S1", np.zeros(5, dtype=np.uint64), phase="x", messages=5)
        assert ledger.total_messages == 5
        assert ledger.total_bytes == 5 * 8
        assert ledger.phase_summary()["x"] == {"messages": 5, "bytes": 40}

    def test_negative_message_count_rejected(self):
        with pytest.raises(ProtocolError):
            CommunicationLedger().record("u->S1", 1, messages=-1)


class TestBatchedUploads:
    def test_users_to_server_accounting_matches_per_user_sends(self):
        """One array-payload record == n scalar sends, message and byte wise."""
        batched = TwoServerRuntime(4)
        batched.users_to_server(1, "noise_share", np.arange(4, dtype=np.uint64))
        scalar = TwoServerRuntime(4)
        for index in range(4):
            scalar.user_to_server(index, 1).send("noise_share", index)
        assert batched.ledger.total_messages == scalar.ledger.total_messages
        assert batched.ledger.total_bytes == scalar.ledger.total_bytes
        assert (
            batched.ledger.phase_summary()["noise_share"]
            == scalar.ledger.phase_summary()["noise_share"]
        )

    def test_users_to_server_delivers_stacked_payload(self):
        runtime = TwoServerRuntime(3)
        runtime.users_to_server(2, "adjacency_share", np.eye(3, dtype=np.uint64))
        message = runtime.server(2).receive(tag="adjacency_share")
        assert message.payload.shape == (3, 3)

    def test_users_to_server_rejects_wrong_row_count(self):
        runtime = TwoServerRuntime(3)
        with pytest.raises(ProtocolError):
            runtime.users_to_server(1, "x", np.zeros(2, dtype=np.uint64))

    def test_broadcast_accounting_matches_per_user_sends(self):
        batched = TwoServerRuntime(4)
        batched.broadcast_to_users(1, "dmax", 17.0)
        scalar = TwoServerRuntime(4)
        for index in range(4):
            scalar.server_to_user(1, index).send("dmax", 17.0)
        assert batched.ledger.total_messages == scalar.ledger.total_messages
        assert batched.ledger.total_bytes == scalar.ledger.total_bytes


class TestTwoServerRuntime:
    def test_topology(self):
        runtime = TwoServerRuntime(3)
        assert len(runtime.users) == 3
        runtime.user_to_server(0, 1).send("share", 42)
        assert runtime.server(1).receive().payload == 42

    def test_server_to_server(self):
        runtime = TwoServerRuntime(1)
        runtime.server_to_server(1, 2).send("open", 9)
        assert runtime.server(2).receive(tag="open").payload == 9

    def test_broadcast(self):
        runtime = TwoServerRuntime(4)
        runtime.broadcast_to_users(1, "dmax", 17)
        assert all(runtime.user(i).receive().payload == 17 for i in range(4))

    def test_ledger_accumulates(self):
        runtime = TwoServerRuntime(2)
        runtime.user_to_server(0, 1).send("x", 1)
        runtime.user_to_server(1, 2).send("x", 2)
        assert runtime.ledger.total_messages == 2

    def test_invalid_indices(self):
        runtime = TwoServerRuntime(2)
        with pytest.raises(ProtocolError):
            runtime.user_to_server(5, 1)
        with pytest.raises(ProtocolError):
            runtime.user_to_server(0, 3)
        with pytest.raises(ProtocolError):
            TwoServerRuntime(-1)
