"""Tests for repro.crypto.protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.protocol import (
    CommunicationLedger,
    Message,
    Party,
    TwoServerRuntime,
    estimate_message_bytes,
)
from repro.exceptions import ProtocolError


class TestMessageBytes:
    def test_scalar_sizes(self):
        assert estimate_message_bytes(5) == 8
        assert estimate_message_bytes(3.14) == 8
        assert estimate_message_bytes(True) == 1
        assert estimate_message_bytes(None) == 0

    def test_array_size(self):
        array = np.zeros(10, dtype=np.uint64)
        assert estimate_message_bytes(array) == 80

    def test_container_sizes(self):
        assert estimate_message_bytes([1, 2, 3]) == 24
        assert estimate_message_bytes({"a": 1}) == 1 + 8

    def test_string_size(self):
        assert estimate_message_bytes("abcd") == 4


class TestParty:
    def test_deliver_and_receive(self):
        party = Party("S1")
        party.deliver(Message(sender="u", receiver="S1", tag="t", payload=1))
        message = party.receive()
        assert message.payload == 1
        assert party.pending() == 0

    def test_receive_by_tag(self):
        party = Party("S1")
        party.deliver(Message(sender="u", receiver="S1", tag="a", payload=1))
        party.deliver(Message(sender="u", receiver="S1", tag="b", payload=2))
        assert party.receive(tag="b").payload == 2
        assert party.pending() == 1

    def test_wrong_receiver_rejected(self):
        party = Party("S1")
        with pytest.raises(ProtocolError):
            party.deliver(Message(sender="u", receiver="S2", tag="t", payload=1))

    def test_empty_mailbox(self):
        with pytest.raises(ProtocolError):
            Party("S1").receive()

    def test_missing_tag(self):
        party = Party("S1")
        party.deliver(Message(sender="u", receiver="S1", tag="a", payload=1))
        with pytest.raises(ProtocolError):
            party.receive(tag="zzz")


class TestLedger:
    def test_records_messages_and_bytes(self):
        ledger = CommunicationLedger()
        ledger.record("u->S1", np.zeros(4, dtype=np.uint64))
        ledger.record("u->S1", 7)
        assert ledger.total_messages == 2
        assert ledger.total_bytes == 32 + 8
        assert ledger.summary()["u->S1"]["messages"] == 2


class TestTwoServerRuntime:
    def test_topology(self):
        runtime = TwoServerRuntime(3)
        assert len(runtime.users) == 3
        runtime.user_to_server(0, 1).send("share", 42)
        assert runtime.server(1).receive().payload == 42

    def test_server_to_server(self):
        runtime = TwoServerRuntime(1)
        runtime.server_to_server(1, 2).send("open", 9)
        assert runtime.server(2).receive(tag="open").payload == 9

    def test_broadcast(self):
        runtime = TwoServerRuntime(4)
        runtime.broadcast_to_users(1, "dmax", 17)
        assert all(runtime.user(i).receive().payload == 17 for i in range(4))

    def test_ledger_accumulates(self):
        runtime = TwoServerRuntime(2)
        runtime.user_to_server(0, 1).send("x", 1)
        runtime.user_to_server(1, 2).send("x", 2)
        assert runtime.ledger.total_messages == 2

    def test_invalid_indices(self):
        runtime = TwoServerRuntime(2)
        with pytest.raises(ProtocolError):
            runtime.user_to_server(5, 1)
        with pytest.raises(ProtocolError):
            runtime.user_to_server(0, 3)
        with pytest.raises(ProtocolError):
            TwoServerRuntime(-1)
