"""Tests for repro.stream.delta — incremental triangle maintenance.

The acceptance property for the streaming subsystem: the maintainer's running
count matches :func:`count_triangles` **exactly** on every snapshot of a
500-event randomized replay (and of a mixed add/remove churn stream).
"""

from __future__ import annotations

import pytest

from repro.exceptions import StreamError
from repro.graph.datasets import load_dataset
from repro.graph.graph import Graph
from repro.graph.triangles import count_triangles
from repro.stream.delta import IncrementalTriangleMaintainer
from repro.stream.events import EdgeEvent, EdgeEventKind, churn_stream, replay_stream


class TestBasics:
    def test_starts_from_empty_graph(self):
        maintainer = IncrementalTriangleMaintainer(num_nodes=5)
        assert maintainer.triangle_count == 0
        assert maintainer.num_nodes == 5
        assert maintainer.events_applied == 0

    def test_starts_from_initial_graph_without_mutating_it(self, complete_graph):
        maintainer = IncrementalTriangleMaintainer(initial_graph=complete_graph)
        assert maintainer.triangle_count == 20
        maintainer.apply(EdgeEvent(EdgeEventKind.REMOVE, 0, 1))
        assert complete_graph.has_edge(0, 1)  # the original is untouched
        assert maintainer.triangle_count == 20 - 4

    def test_single_addition_closes_common_neighbour_triangles(self):
        maintainer = IncrementalTriangleMaintainer(num_nodes=4)
        maintainer.apply(EdgeEvent(EdgeEventKind.ADD, 0, 2))
        maintainer.apply(EdgeEvent(EdgeEventKind.ADD, 1, 2))
        assert maintainer.triangle_count == 0
        delta = maintainer.apply(EdgeEvent(EdgeEventKind.ADD, 0, 1))
        assert delta == 1
        assert maintainer.triangle_count == 1

    def test_removal_reverses_addition(self):
        maintainer = IncrementalTriangleMaintainer(
            initial_graph=Graph(4, edges=[(0, 1), (0, 2), (1, 2), (2, 3)])
        )
        assert maintainer.apply(EdgeEvent(EdgeEventKind.REMOVE, 0, 1)) == -1
        assert maintainer.apply(EdgeEvent(EdgeEventKind.ADD, 0, 1)) == 1
        assert maintainer.triangle_count == 1

    def test_duplicate_add_and_missing_remove_are_noops(self, triangle_graph):
        maintainer = IncrementalTriangleMaintainer(initial_graph=triangle_graph)
        before = maintainer.triangle_count
        assert maintainer.apply(EdgeEvent(EdgeEventKind.ADD, 0, 1)) == 0
        assert maintainer.apply(EdgeEvent(EdgeEventKind.REMOVE, 0, 3)) == 0
        assert maintainer.triangle_count == before
        # No-op events still count as consumed for throughput accounting.
        assert maintainer.events_applied == 2

    def test_out_of_range_event_rejected(self):
        maintainer = IncrementalTriangleMaintainer(num_nodes=3)
        with pytest.raises(StreamError):
            maintainer.apply(EdgeEvent(EdgeEventKind.ADD, 0, 7))

    def test_common_neighbor_count_matches_view_intersection(self, medium_cluster_graph):
        graph = medium_cluster_graph
        for u, v in list(graph.edges())[:50]:
            assert graph.common_neighbor_count(u, v) == len(
                graph.neighbor_view(u) & graph.neighbor_view(v)
            )

    def test_snapshot_is_independent(self, triangle_graph):
        maintainer = IncrementalTriangleMaintainer(initial_graph=triangle_graph)
        snapshot = maintainer.snapshot()
        maintainer.apply(EdgeEvent(EdgeEventKind.REMOVE, 0, 1))
        assert snapshot.has_edge(0, 1)


class TestSnapshotEquivalence:
    """The bit-identical acceptance property from the issue."""

    def test_500_event_replay_matches_count_triangles_on_every_snapshot(self):
        graph = load_dataset("facebook", num_nodes=120)
        stream = replay_stream(graph, rng=99)
        assert len(stream) >= 500
        maintainer = IncrementalTriangleMaintainer(num_nodes=stream.num_nodes)
        for index, event in enumerate(stream):
            maintainer.apply(event)
            if index >= 500:
                break
            assert maintainer.triangle_count == count_triangles(
                maintainer.snapshot(), use_cache=False
            )

    def test_churn_with_removals_matches_on_every_snapshot(self, medium_cluster_graph):
        stream = churn_stream(medium_cluster_graph, num_events=500, rng=17)
        maintainer = IncrementalTriangleMaintainer(initial_graph=medium_cluster_graph)
        assert stream.removals() > 0
        for event in stream:
            maintainer.apply(event)
            assert maintainer.triangle_count == count_triangles(
                maintainer.snapshot(), use_cache=False
            )

    def test_full_replay_ends_at_the_original_count(self):
        graph = load_dataset("wiki", num_nodes=100)
        stream = replay_stream(graph, rng=3)
        maintainer = IncrementalTriangleMaintainer(num_nodes=stream.num_nodes)
        maintainer.apply_all(stream)
        assert maintainer.triangle_count == count_triangles(graph)
        assert maintainer.graph == graph

    def test_running_count_reseeds_the_graph_memo(self, triangle_graph):
        maintainer = IncrementalTriangleMaintainer(initial_graph=triangle_graph)
        maintainer.apply(EdgeEvent(EdgeEventKind.ADD, 1, 3))
        # The mutation invalidated the memo, and apply() re-seeded it with the
        # exact running count.
        assert maintainer.graph.cached_triangle_count == maintainer.triangle_count
        assert count_triangles(maintainer.graph, use_cache=False) == maintainer.triangle_count


class TestApplyAll:
    def test_returns_cumulative_delta(self, complete_graph):
        maintainer = IncrementalTriangleMaintainer(num_nodes=6)
        stream = replay_stream(complete_graph, rng=0)
        total = maintainer.apply_all(stream)
        assert total == 20
        assert maintainer.events_applied == len(stream)


class TestBlockIngest:
    """The array-native ``apply_all`` is bit-identical to per-event `apply`.

    The batched path engages only above its density gate, so these tests
    force it via a dense random graph (and verify the sparse fallback stays
    exact too), covering add/remove churn, duplicate no-op events, and the
    out-of-range error path.
    """

    def _dense_graph(self, n=300, p=0.5, seed=2):
        from repro.graph.generators import erdos_renyi_graph

        return erdos_renyi_graph(n, p, seed=seed)

    def _assert_paths_agree(self, num_nodes, events):
        events = list(events)
        per_event = IncrementalTriangleMaintainer(num_nodes=num_nodes)
        for event in events:
            per_event.apply(event)
        block = IncrementalTriangleMaintainer(num_nodes=num_nodes)
        total = block.apply_all(events)
        assert block.count == per_event.count == count_triangles(block.graph)
        assert block.graph == per_event.graph
        assert block.events_applied == per_event.events_applied == len(events)
        assert total == block.count - IncrementalTriangleMaintainer(
            num_nodes=num_nodes
        ).count  # cumulative delta from the empty start
        return block

    def test_dense_replay_engages_block_path_and_matches(self):
        graph = self._dense_graph()
        events = list(replay_stream(graph, rng=3))
        block = self._assert_paths_agree(graph.num_nodes, events)
        # Sanity: the density gate actually engaged the batched path.
        projected = 2.0 * len(events) / graph.num_nodes
        assert projected >= IncrementalTriangleMaintainer._BLOCK_INGEST_MIN_AVG_DEGREE

    def test_churn_with_removals_and_noop_duplicates(self):
        graph = self._dense_graph(n=280, p=0.6, seed=5)
        events = list(replay_stream(graph, rng=4))
        extra = []
        for event in events[:120]:
            u, v = event.edge
            extra.append(EdgeEvent(EdgeEventKind.REMOVE, u, v))
            extra.append(EdgeEvent(EdgeEventKind.REMOVE, u, v))  # no-op remove
            extra.append(EdgeEvent(EdgeEventKind.ADD, u, v))
            extra.append(EdgeEvent(EdgeEventKind.ADD, u, v))  # no-op add
        self._assert_paths_agree(graph.num_nodes, events + extra)

    def test_sparse_stream_falls_back_and_matches(self):
        graph = load_dataset("facebook", num_nodes=60)
        events = list(replay_stream(graph, rng=6))
        self._assert_paths_agree(graph.num_nodes, events)

    def test_block_ingest_range_error(self):
        maintainer = IncrementalTriangleMaintainer(num_nodes=4)
        bad = [EdgeEvent(EdgeEventKind.ADD, 0, 9)] * 40
        with pytest.raises(StreamError):
            maintainer.apply_all(bad)

    def test_initial_graph_block_ingest(self):
        graph = self._dense_graph(n=280, p=0.6, seed=8)
        events = [
            EdgeEvent(EdgeEventKind.REMOVE, u, v) for u, v in list(graph.edges())[:200]
        ]
        per_event = IncrementalTriangleMaintainer(initial_graph=graph)
        for event in events:
            per_event.apply(event)
        block = IncrementalTriangleMaintainer(initial_graph=graph)
        block.apply_all(events)
        assert block.count == per_event.count == count_triangles(block.graph)
        assert block.graph == per_event.graph
