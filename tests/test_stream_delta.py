"""Tests for repro.stream.delta — incremental triangle maintenance.

The acceptance property for the streaming subsystem: the maintainer's running
count matches :func:`count_triangles` **exactly** on every snapshot of a
500-event randomized replay (and of a mixed add/remove churn stream).
"""

from __future__ import annotations

import pytest

from repro.exceptions import StreamError
from repro.graph.datasets import load_dataset
from repro.graph.graph import Graph
from repro.graph.triangles import count_triangles
from repro.stream.delta import IncrementalTriangleMaintainer
from repro.stream.events import EdgeEvent, EdgeEventKind, churn_stream, replay_stream


class TestBasics:
    def test_starts_from_empty_graph(self):
        maintainer = IncrementalTriangleMaintainer(num_nodes=5)
        assert maintainer.triangle_count == 0
        assert maintainer.num_nodes == 5
        assert maintainer.events_applied == 0

    def test_starts_from_initial_graph_without_mutating_it(self, complete_graph):
        maintainer = IncrementalTriangleMaintainer(initial_graph=complete_graph)
        assert maintainer.triangle_count == 20
        maintainer.apply(EdgeEvent(EdgeEventKind.REMOVE, 0, 1))
        assert complete_graph.has_edge(0, 1)  # the original is untouched
        assert maintainer.triangle_count == 20 - 4

    def test_single_addition_closes_common_neighbour_triangles(self):
        maintainer = IncrementalTriangleMaintainer(num_nodes=4)
        maintainer.apply(EdgeEvent(EdgeEventKind.ADD, 0, 2))
        maintainer.apply(EdgeEvent(EdgeEventKind.ADD, 1, 2))
        assert maintainer.triangle_count == 0
        delta = maintainer.apply(EdgeEvent(EdgeEventKind.ADD, 0, 1))
        assert delta == 1
        assert maintainer.triangle_count == 1

    def test_removal_reverses_addition(self):
        maintainer = IncrementalTriangleMaintainer(
            initial_graph=Graph(4, edges=[(0, 1), (0, 2), (1, 2), (2, 3)])
        )
        assert maintainer.apply(EdgeEvent(EdgeEventKind.REMOVE, 0, 1)) == -1
        assert maintainer.apply(EdgeEvent(EdgeEventKind.ADD, 0, 1)) == 1
        assert maintainer.triangle_count == 1

    def test_duplicate_add_and_missing_remove_are_noops(self, triangle_graph):
        maintainer = IncrementalTriangleMaintainer(initial_graph=triangle_graph)
        before = maintainer.triangle_count
        assert maintainer.apply(EdgeEvent(EdgeEventKind.ADD, 0, 1)) == 0
        assert maintainer.apply(EdgeEvent(EdgeEventKind.REMOVE, 0, 3)) == 0
        assert maintainer.triangle_count == before
        # No-op events still count as consumed for throughput accounting.
        assert maintainer.events_applied == 2

    def test_out_of_range_event_rejected(self):
        maintainer = IncrementalTriangleMaintainer(num_nodes=3)
        with pytest.raises(StreamError):
            maintainer.apply(EdgeEvent(EdgeEventKind.ADD, 0, 7))

    def test_common_neighbor_count_matches_view_intersection(self, medium_cluster_graph):
        graph = medium_cluster_graph
        for u, v in list(graph.edges())[:50]:
            assert graph.common_neighbor_count(u, v) == len(
                graph.neighbor_view(u) & graph.neighbor_view(v)
            )

    def test_snapshot_is_independent(self, triangle_graph):
        maintainer = IncrementalTriangleMaintainer(initial_graph=triangle_graph)
        snapshot = maintainer.snapshot()
        maintainer.apply(EdgeEvent(EdgeEventKind.REMOVE, 0, 1))
        assert snapshot.has_edge(0, 1)


class TestSnapshotEquivalence:
    """The bit-identical acceptance property from the issue."""

    def test_500_event_replay_matches_count_triangles_on_every_snapshot(self):
        graph = load_dataset("facebook", num_nodes=120)
        stream = replay_stream(graph, rng=99)
        assert len(stream) >= 500
        maintainer = IncrementalTriangleMaintainer(num_nodes=stream.num_nodes)
        for index, event in enumerate(stream):
            maintainer.apply(event)
            if index >= 500:
                break
            assert maintainer.triangle_count == count_triangles(
                maintainer.snapshot(), use_cache=False
            )

    def test_churn_with_removals_matches_on_every_snapshot(self, medium_cluster_graph):
        stream = churn_stream(medium_cluster_graph, num_events=500, rng=17)
        maintainer = IncrementalTriangleMaintainer(initial_graph=medium_cluster_graph)
        assert stream.removals() > 0
        for event in stream:
            maintainer.apply(event)
            assert maintainer.triangle_count == count_triangles(
                maintainer.snapshot(), use_cache=False
            )

    def test_full_replay_ends_at_the_original_count(self):
        graph = load_dataset("wiki", num_nodes=100)
        stream = replay_stream(graph, rng=3)
        maintainer = IncrementalTriangleMaintainer(num_nodes=stream.num_nodes)
        maintainer.apply_all(stream)
        assert maintainer.triangle_count == count_triangles(graph)
        assert maintainer.graph == graph

    def test_running_count_reseeds_the_graph_memo(self, triangle_graph):
        maintainer = IncrementalTriangleMaintainer(initial_graph=triangle_graph)
        maintainer.apply(EdgeEvent(EdgeEventKind.ADD, 1, 3))
        # The mutation invalidated the memo, and apply() re-seeded it with the
        # exact running count.
        assert maintainer.graph.cached_triangle_count == maintainer.triangle_count
        assert count_triangles(maintainer.graph, use_cache=False) == maintainer.triangle_count


class TestApplyAll:
    def test_returns_cumulative_delta(self, complete_graph):
        maintainer = IncrementalTriangleMaintainer(num_nodes=6)
        stream = replay_stream(complete_graph, rng=0)
        total = maintainer.apply_all(stream)
        assert total == 20
        assert maintainer.events_applied == len(stream)
