"""Transcript equivalence: batching changes scheduling, never the wire.

The vectorised ``batched`` execution mode claims that the messages a server
observes are *exactly* the concatenation of what it would have seen running
the scalar faithful schedule — same seeds, same masked differences, bit for
bit.  With the dealers' buffered (provisioned) mode the correlated
randomness a triple carries depends only on its position in the provisioned
stream, not on how requests are batched, which makes the claim testable:
record both servers' views through :class:`ViewRecorder` at batch size 1 and
at larger batch sizes, and compare the opening streams element-wise.

Covered for both multiplication flavours:

* three-way products (multiplication groups, the `Count` protocol), via the
  full ``FaithfulTriangleCounter`` at several batch sizes, and
* two-way products (Beaver triples), via ``secure_multiply_pair`` over a
  provisioned ``BeaverTripleDealer``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backends import FaithfulTriangleCounter, share_adjacency_rows
from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.multiplication_groups import MultiplicationGroupDealer
from repro.crypto.ring import DEFAULT_RING
from repro.crypto.secure_ops import secure_multiply_pair
from repro.crypto.sharing import share_vector
from repro.crypto.views import ViewRecorder
from repro.graph.generators import erdos_renyi_graph


def _count_openings(share1, share2, batch_size, dealer_seed):
    """Run the secure count and return (result, per-server opening streams)."""
    dealer = MultiplicationGroupDealer(seed=dealer_seed)
    views = ViewRecorder()
    counter = FaithfulTriangleCounter(
        dealer=dealer, batch_size=batch_size, views=views
    )
    result = counter.count_from_shares(share1, share2)
    streams = []
    for server_index in (1, 2):
        entries = views.view(server_index).values("mg_opening")
        # Each entry is one opening round's (e, f, g); concatenate the rounds
        # into the full per-wire streams in protocol order.
        streams.append(
            tuple(
                np.concatenate([np.atleast_1d(np.asarray(entry[wire], dtype=np.uint64)) for entry in entries])
                for wire in range(3)
            )
        )
    return result, streams


class TestThreeWayTranscriptEquivalence:
    @pytest.fixture(scope="class")
    def shares(self):
        graph = erdos_renyi_graph(10, 0.5, seed=3)
        return share_adjacency_rows(graph.adjacency_matrix(), rng=4)

    @pytest.mark.parametrize("batch_size", [2, 7, 64, 10_000])
    def test_batched_openings_concatenate_scalar_openings(self, shares, batch_size):
        share1, share2 = shares
        scalar_result, scalar_streams = _count_openings(share1, share2, 1, dealer_seed=11)
        batched_result, batched_streams = _count_openings(
            share1, share2, batch_size, dealer_seed=11
        )
        for server in (0, 1):
            for wire in range(3):
                assert np.array_equal(
                    scalar_streams[server][wire], batched_streams[server][wire]
                ), (server, wire)
        # The output shares — a deterministic function of the shares and the
        # (identical) correlated randomness — must also agree bit for bit.
        assert scalar_result.share1 == batched_result.share1
        assert scalar_result.share2 == batched_result.share2
        assert scalar_result.num_triples_processed == batched_result.num_triples_processed

    def test_both_servers_observe_the_same_openings(self, shares):
        share1, share2 = shares
        _, streams = _count_openings(share1, share2, 16, dealer_seed=12)
        for wire in range(3):
            assert np.array_equal(streams[0][wire], streams[1][wire])

    def test_different_dealer_seeds_change_the_transcript(self, shares):
        """Sanity: the equality above is not vacuous."""
        share1, share2 = shares
        _, streams_a = _count_openings(share1, share2, 16, dealer_seed=13)
        _, streams_b = _count_openings(share1, share2, 16, dealer_seed=14)
        assert not np.array_equal(streams_a[0][0], streams_b[0][0])


class TestTwoWayTranscriptEquivalence:
    def _openings(self, a_pair, b_pair, batch_sizes, dealer_seed):
        """Multiply two shared vectors in blocks; return the opening streams."""
        total = a_pair.share1.shape[0]
        dealer = BeaverTripleDealer(seed=dealer_seed)
        dealer.provision_vector(total)
        views = ViewRecorder()
        products = []
        start = 0
        for size in batch_sizes:
            stop = start + size
            triple = dealer.vector_triple((size,))
            p1, p2 = secure_multiply_pair(
                (a_pair.share1[start:stop], a_pair.share2[start:stop]),
                (b_pair.share1[start:stop], b_pair.share2[start:stop]),
                triple,
                views=views,
            )
            products.append((p1, p2))
            start = stop
        assert start == total
        streams = []
        for server_index in (1, 2):
            entries = views.view(server_index).values("beaver_opening")
            streams.append(
                tuple(
                    np.concatenate([np.atleast_1d(np.asarray(entry[wire], dtype=np.uint64)) for entry in entries])
                    for wire in range(2)
                )
            )
        return products, streams

    @pytest.fixture(scope="class")
    def operands(self):
        rng = np.random.default_rng(21)
        a = share_vector(rng.integers(0, 2, 24), rng=22)
        b = share_vector(rng.integers(0, 2, 24), rng=23)
        return a, b

    @pytest.mark.parametrize("blocks", [[8, 8, 8], [24], [1, 23], [5, 7, 12]])
    def test_blocked_openings_concatenate_scalar_openings(self, operands, blocks):
        a, b = operands
        scalar_products, scalar_streams = self._openings(a, b, [1] * 24, dealer_seed=31)
        blocked_products, blocked_streams = self._openings(a, b, blocks, dealer_seed=31)
        for server in (0, 1):
            for wire in range(2):
                assert np.array_equal(
                    scalar_streams[server][wire], blocked_streams[server][wire]
                ), (server, wire)
        # Identical randomness -> identical product shares, element for element.
        scalar_flat1 = np.concatenate([np.atleast_1d(p1) for p1, _ in scalar_products])
        blocked_flat1 = np.concatenate([np.atleast_1d(p1) for p1, _ in blocked_products])
        assert np.array_equal(scalar_flat1, blocked_flat1)
        # And the products are correct: reconstruct and compare to plaintext.
        ring = DEFAULT_RING
        plain_a = ring.add(a.share1, a.share2)
        plain_b = ring.add(b.share1, b.share2)
        scalar_flat2 = np.concatenate([np.atleast_1d(p2) for _, p2 in scalar_products])
        assert np.array_equal(ring.add(scalar_flat1, scalar_flat2), ring.mul(plain_a, plain_b))


class TestProvisionedDealerAccounting:
    def test_group_accounting_matches_unbuffered(self):
        provisioned = MultiplicationGroupDealer(seed=41)
        provisioned.provision(12)
        unbuffered = MultiplicationGroupDealer(seed=41)
        for size in (5, 4, 3):
            provisioned.vector_group((size,))
            unbuffered.vector_group((size,))
        assert provisioned.groups_issued == unbuffered.groups_issued == 3
        assert provisioned.provisioned_remaining == 0

    def test_triple_accounting_matches_unbuffered(self):
        provisioned = BeaverTripleDealer(seed=42)
        provisioned.provision_vector(10)
        unbuffered = BeaverTripleDealer(seed=42)
        for shape in ((4,), (2, 3)):
            provisioned.vector_triple(shape)
            unbuffered.vector_triple(shape)
        assert provisioned.triples_issued == unbuffered.triples_issued == 2
        assert provisioned.total_triple_elements == unbuffered.total_triple_elements
        assert provisioned.largest_triple_elements == unbuffered.largest_triple_elements

    def test_provisioned_groups_are_valid(self):
        dealer = MultiplicationGroupDealer(seed=43)
        dealer.provision(9)
        pair = dealer.vector_group((3, 3))
        x, y, z, w, o, p, q = pair.plaintext()
        ring = dealer.ring
        assert np.array_equal(o, ring.mul(x, y))
        assert np.array_equal(p, ring.mul(x, z))
        assert np.array_equal(q, ring.mul(y, z))
        assert np.array_equal(w, ring.mul(ring.mul(x, y), z))

    def test_provisioned_matrix_triples_are_valid(self):
        dealer = BeaverTripleDealer(seed=44)
        dealer.provision_matrix((3, 4), (4, 2), count=2)
        issued_before = dealer.triples_issued
        pair = dealer.matrix_triple((3, 4), (4, 2))
        x, y, z = pair.plaintext()
        assert np.array_equal(z, dealer.ring.matmul(x, y))
        assert dealer.triples_issued == issued_before + 1

    def test_overshooting_a_partial_pool_raises(self):
        """A request larger than the remaining pool must not bypass it."""
        from repro.exceptions import DealerError

        dealer = MultiplicationGroupDealer(seed=46)
        dealer.provision(5)
        with pytest.raises(DealerError):
            dealer.vector_group((8,))
        beaver = BeaverTripleDealer(seed=46)
        beaver.provision_vector(5)
        with pytest.raises(DealerError):
            beaver.vector_triple((8,))
        # Draining the pool restores fresh dealing.
        dealer.vector_group((5,))
        assert dealer.vector_group((8,)).server1.x.shape == (8,)

    def test_provision_appends_and_requests_span_chunk_boundaries(self):
        """Chunked provisioning serves one continuous mask stream."""
        chunked = MultiplicationGroupDealer(seed=45)
        chunked.provision(5)
        chunked.provision(5)
        whole = MultiplicationGroupDealer(seed=45)
        whole.provision(5)
        whole.provision(5)
        # 4 + 4 + 2: the second request spans the 5/5 boundary.
        a = [chunked.vector_group((s,)) for s in (4, 4, 2)]
        b = [whole.vector_group((s,)) for s in (2, 2, 2, 2, 2)]
        flat_a = np.concatenate([np.atleast_1d(pair.server1.x) for pair in a])
        flat_b = np.concatenate([np.atleast_1d(pair.server1.x) for pair in b])
        assert np.array_equal(flat_a, flat_b)
        assert chunked.provisioned_remaining == 0


class TestMultiChunkTranscriptEquivalence:
    """The batch-size independence must survive chunked provisioning."""

    @pytest.mark.parametrize("batch_size", [3, 7, 50])
    def test_openings_identical_across_batch_sizes_with_small_chunks(self, batch_size):
        """n=10 -> 120 triples; provision_limit=40 forces three chunks whose
        boundaries align with no batch size, so requests span chunks."""
        graph = erdos_renyi_graph(10, 0.5, seed=6)
        share1, share2 = share_adjacency_rows(graph.adjacency_matrix(), rng=7)

        def openings(size):
            dealer = MultiplicationGroupDealer(seed=51)
            views = ViewRecorder()
            counter = FaithfulTriangleCounter(
                dealer=dealer, batch_size=size, views=views, provision_limit=40
            )
            result = counter.count_from_shares(share1, share2)
            entries = views.view(1).values("mg_opening")
            return result, tuple(
                np.concatenate([np.atleast_1d(np.asarray(entry[w], dtype=np.uint64)) for entry in entries])
                for w in range(3)
            )

        scalar_result, scalar_stream = openings(1)
        batched_result, batched_stream = openings(batch_size)
        for wire in range(3):
            assert np.array_equal(scalar_stream[wire], batched_stream[wire]), wire
        assert scalar_result.share1 == batched_result.share1
        assert scalar_result.share2 == batched_result.share2


class TestWorkerCountTranscriptEquivalence:
    """The tile-parallel engine never moves a value on the wire.

    For the faithful/batched schedule the engine keeps the legacy dealer
    draw order exactly, so its opening streams must equal the serial path's
    bit for bit at every worker count; for the blocked engine (per-tile
    dealer substreams) the streams must be pinned across worker counts and
    the reconstructed count must match the legacy backend.
    """

    @pytest.fixture(scope="class")
    def shares(self):
        graph = erdos_renyi_graph(14, 0.5, seed=9)
        return share_adjacency_rows(graph.adjacency_matrix(), rng=10)

    def _faithful_openings(self, shares, workers, batch_size):
        share1, share2 = shares
        dealer = MultiplicationGroupDealer(seed=61)
        views = ViewRecorder()
        counter = FaithfulTriangleCounter(
            dealer=dealer, batch_size=batch_size, views=views, workers=workers
        )
        result = counter.count_from_shares(share1, share2)
        entries = views.view(1).values("mg_opening")
        return result, tuple(
            np.concatenate(
                [np.atleast_1d(np.asarray(entry[w], dtype=np.uint64)) for entry in entries]
            )
            for w in range(3)
        )

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("batch_size", [5, 64])
    def test_engine_openings_equal_legacy_serial(self, shares, workers, batch_size):
        legacy_result, legacy_stream = self._faithful_openings(shares, 0, batch_size)
        engine_result, engine_stream = self._faithful_openings(shares, workers, batch_size)
        for wire in range(3):
            assert np.array_equal(legacy_stream[wire], engine_stream[wire]), wire
        assert legacy_result.share1 == engine_result.share1
        assert legacy_result.share2 == engine_result.share2

    def test_blocked_engine_openings_pinned_across_workers(self, shares):
        from repro.core.backends import BlockedMatrixTriangleCounter
        from repro.crypto.beaver import BeaverTripleDealer

        share1, share2 = shares

        def openings(workers):
            views = ViewRecorder()
            counter = BlockedMatrixTriangleCounter(
                dealer=BeaverTripleDealer(seed=62),
                block_size=4,
                views=views,
                workers=workers,
            )
            result = counter.count_from_shares(share1, share2)
            stream = [
                np.atleast_1d(np.asarray(part, dtype=np.uint64))
                for entry in views.view(1).values("matrix_beaver_opening")
                for part in entry
            ]
            return result, stream

        reference_result, reference_stream = openings(1)
        legacy = BlockedMatrixTriangleCounter(
            dealer=BeaverTripleDealer(seed=62), block_size=4
        ).count_from_shares(share1, share2)
        assert reference_result.reconstruct() == legacy.reconstruct()
        assert reference_result.opening_rounds == legacy.opening_rounds
        for workers in (2, 4):
            result, stream = openings(workers)
            assert (result.share1, result.share2) == (
                reference_result.share1,
                reference_result.share2,
            )
            assert len(stream) == len(reference_stream)
            for left, right in zip(stream, reference_stream):
                assert np.array_equal(left, right)
