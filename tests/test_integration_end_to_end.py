"""Integration tests spanning the whole pipeline.

These tests exercise the realistic end-to-end paths a user of the library
would follow: load a dataset, run all three protocols, compare their errors,
and regenerate (scaled-down) experiment artefacts — asserting the qualitative
claims of the paper rather than point values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Cargo,
    CargoConfig,
    CentralLaplaceTriangleCounting,
    LocalTwoRoundsTriangleCounting,
    count_triangles,
    load_dataset,
)
from repro.core.config import CountingBackend
from repro.dp.accountant import PrivacyAccountant
from repro.metrics.aggregate import aggregate_trials


@pytest.fixture(scope="module")
def facebook_graph():
    return load_dataset("facebook", num_nodes=180)


class TestUtilityOrdering:
    """The paper's headline claim: Local ≫ CARGO ≳ Central in error."""

    @pytest.fixture(scope="class")
    def losses(self, request):
        graph = load_dataset("facebook", num_nodes=180)
        epsilon = 2.0
        trials = 3
        cargo = [
            Cargo(CargoConfig(epsilon=epsilon, seed=seed)).run(graph).l2_loss
            for seed in range(trials)
        ]
        central = [
            CentralLaplaceTriangleCounting(epsilon=epsilon).run(graph, rng=seed).l2_loss
            for seed in range(trials)
        ]
        local = [
            LocalTwoRoundsTriangleCounting(epsilon=epsilon).run(graph, rng=seed).l2_loss
            for seed in range(trials)
        ]
        return {
            "cargo": aggregate_trials(cargo).mean,
            "central": aggregate_trials(central).mean,
            "local": aggregate_trials(local).mean,
        }

    def test_cargo_is_orders_of_magnitude_better_than_local(self, losses):
        assert losses["cargo"] * 50 < losses["local"]

    def test_cargo_is_within_two_orders_of_central(self, losses):
        assert losses["cargo"] < losses["central"] * 100

    def test_central_is_best(self, losses):
        assert losses["central"] <= losses["cargo"]


class TestProtocolInternalsConsistency:
    def test_secure_count_equals_projected_plaintext_count(self, facebook_graph):
        """Removing the noise, the secure pipeline computes the projected count exactly."""
        result = Cargo(CargoConfig(epsilon=2.0, seed=3)).run(facebook_graph)
        # noisy = projected + noise; the noise is Laplace with scale d'max/eps2,
        # so the gap between the noisy output and the projected count must be
        # small relative to the count and exactly equals the injected noise.
        noise = result.noisy_triangle_count - result.projected_triangle_count
        assert abs(noise) < 60 * result.noisy_max_degree / result.epsilon2

    def test_budget_accounting_matches_protocol(self, facebook_graph):
        config = CargoConfig(epsilon=1.5, seed=4)
        result = Cargo(config).run(facebook_graph)
        accountant = PrivacyAccountant(total_budget=1.5)
        accountant.spend(result.epsilon1, "max")
        accountant.spend(result.epsilon2, "perturb")
        assert accountant.remaining == pytest.approx(0.0, abs=1e-9)

    def test_true_count_matches_library_count(self, facebook_graph):
        result = Cargo(CargoConfig(epsilon=2.0, seed=5)).run(facebook_graph)
        assert result.true_triangle_count == count_triangles(facebook_graph)


class TestBackendsAtScale:
    def test_matrix_and_batched_backends_agree_on_dataset(self):
        graph = load_dataset("grqc", num_nodes=60)
        matrix = Cargo(
            CargoConfig(epsilon=2.0, seed=6, counting_backend=CountingBackend.MATRIX)
        ).run(graph)
        batched = Cargo(
            CargoConfig(epsilon=2.0, seed=6, counting_backend=CountingBackend.BATCHED)
        ).run(graph)
        assert matrix.noisy_triangle_count == pytest.approx(batched.noisy_triangle_count)
        assert matrix.projected_triangle_count == batched.projected_triangle_count


class TestCommunicationAccounting:
    def test_ledger_scales_with_users(self):
        small = Cargo(CargoConfig(epsilon=2.0, seed=7, track_communication=True)).run(
            load_dataset("grqc", num_nodes=40)
        )
        large = Cargo(CargoConfig(epsilon=2.0, seed=7, track_communication=True)).run(
            load_dataset("grqc", num_nodes=80)
        )
        small_messages = sum(entry["messages"] for entry in small.communication.values())
        large_messages = sum(entry["messages"] for entry in large.communication.values())
        assert large_messages > small_messages


class TestRepeatedRunsAreIndependent:
    def test_noise_varies_across_seeds_but_count_does_not(self, facebook_graph):
        results = [
            Cargo(CargoConfig(epsilon=2.0, seed=seed)).run(facebook_graph) for seed in range(3)
        ]
        noisy = {round(result.noisy_triangle_count, 6) for result in results}
        true_counts = {result.true_triangle_count for result in results}
        assert len(noisy) == 3
        assert len(true_counts) == 1
