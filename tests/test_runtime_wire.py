"""Wire-format round-trip and corruption properties of the distributed runtime.

Satellite of the process-separated runtime: every message kind must
serialize → deserialize to an identical (kind, meta, arrays) triple, and
every malformation — truncation at any boundary, corrupted header fields,
trailing garbage, descriptor/payload mismatches — must raise the typed
:class:`~repro.exceptions.WireFormatError` before any payload byte is
interpreted as a share.
"""

from __future__ import annotations

import socket
import struct

import numpy as np
import pytest

from repro.crypto.ring import DEFAULT_RING
from repro.exceptions import (
    CheaterDetectedError,
    RuntimeProcessError,
    WireFormatError,
)
from repro.runtime.wire import (
    HEADER,
    KIND_CONTROL,
    KIND_ERROR,
    KIND_HELLO,
    KIND_NAMES,
    KIND_OPEN_MAC,
    KIND_OPEN_VALUES,
    KIND_PROVISION,
    KIND_RESULT,
    KIND_SHARES,
    MAGIC,
    WIRE_VERSION,
    WireEndpoint,
    decode_frame,
    encode_error_meta,
    encode_frame_bytes,
    raise_remote_error,
    summary_delta,
)

#: One representative (meta, arrays) per message kind, mirroring real traffic.
KIND_EXAMPLES = {
    KIND_HELLO: ({"role": "server1"}, []),
    KIND_CONTROL: ({"verb": "run", "spec": {"backend": "matrix", "seed": 7}}, []),
    KIND_PROVISION: (
        {"label": "matrix_triple"},
        [np.arange(9, dtype=np.uint64).reshape(3, 3)] * 3,
    ),
    KIND_SHARES: (
        {"phase": "adjacency_share"},
        [np.arange(16, dtype=np.uint64).reshape(4, 4)],
    ),
    KIND_OPEN_VALUES: (
        {"label": "beaver_opening", "round": 0, "phase": "opening"},
        [np.array([1, 2, 3], dtype=np.uint64)],
    ),
    KIND_OPEN_MAC: (
        {"label": "beaver_opening", "round": 0},
        [np.array([2**63, 5], dtype=np.uint64)],
    ),
    KIND_RESULT: ({"stage": "count", "share": 12, "phase": "count"}, []),
    KIND_ERROR: ({"error_type": "WireFormatError", "message": "boom"}, []),
}


def roundtrip(kind, meta, arrays):
    kind2, meta2, arrays2 = decode_frame(encode_frame_bytes(kind, meta, arrays))
    return kind2, meta2, arrays2


class TestRoundTrip:
    @pytest.mark.parametrize("kind", sorted(KIND_NAMES), ids=KIND_NAMES.get)
    def test_every_kind_round_trips_identically(self, kind):
        meta, arrays = KIND_EXAMPLES[kind]
        kind2, meta2, arrays2 = roundtrip(kind, meta, arrays)
        assert kind2 == kind
        for key, value in meta.items():
            assert meta2[key] == value
        assert len(arrays2) == len(arrays)
        for original, decoded in zip(arrays, arrays2):
            assert decoded.dtype == original.dtype
            assert decoded.shape == original.shape
            assert np.array_equal(decoded, original)

    def test_random_payload_property(self):
        rng = np.random.default_rng(0)
        dtypes = [np.uint64, np.int64, np.float64, np.uint8]
        for trial in range(50):
            arrays = []
            for _ in range(int(rng.integers(0, 4))):
                dtype = dtypes[int(rng.integers(len(dtypes)))]
                shape = tuple(
                    int(dim) for dim in rng.integers(0, 5, size=int(rng.integers(0, 3)))
                )
                arrays.append((rng.integers(0, 255, size=shape)).astype(dtype))
            meta = {"phase": f"t{trial}", "round": trial}
            _, meta2, arrays2 = roundtrip(KIND_SHARES, meta, arrays)
            assert meta2["phase"] == meta["phase"] and meta2["round"] == trial
            for original, decoded in zip(arrays, arrays2):
                assert decoded.dtype == original.dtype
                assert decoded.shape == original.shape
                assert np.array_equal(decoded, original)

    def test_scalar_and_empty_arrays(self):
        arrays = [np.uint64(7).reshape(()), np.zeros((0, 4), dtype=np.uint64)]
        _, _, decoded = roundtrip(KIND_SHARES, {"phase": "edge"}, arrays)
        assert decoded[0].shape == () and int(decoded[0]) == 7
        assert decoded[1].shape == (0, 4)

    def test_non_contiguous_arrays_are_packed_c_order(self):
        base = np.arange(36, dtype=np.uint64).reshape(6, 6)
        strided = base[::2, ::3]
        _, _, decoded = roundtrip(KIND_SHARES, {}, [strided, base.T])
        assert np.array_equal(decoded[0], strided)
        assert np.array_equal(decoded[1], base.T)

    def test_ring_mask_values_survive(self):
        values = np.array([0, 1, DEFAULT_RING.mask, DEFAULT_RING.mask - 1], dtype=np.uint64)
        _, _, decoded = roundtrip(KIND_OPEN_VALUES, {"round": 3}, [values])
        assert np.array_equal(decoded[0], values)


class TestCorruption:
    def frame(self):
        return encode_frame_bytes(
            KIND_SHARES, {"phase": "adjacency_share"}, [np.arange(8, dtype=np.uint64)]
        )

    def test_truncation_at_every_boundary(self):
        frame = self.frame()
        # Every strictly shorter prefix must be rejected, never mis-decoded.
        for cut in range(len(frame)):
            with pytest.raises(WireFormatError):
                decode_frame(frame[:cut])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(WireFormatError, match="trailing"):
            decode_frame(self.frame() + b"\x00")

    def test_bad_magic_rejected(self):
        frame = bytearray(self.frame())
        frame[0] ^= 0xFF
        with pytest.raises(WireFormatError, match="magic"):
            decode_frame(bytes(frame))

    def test_unsupported_version_rejected(self):
        frame = bytearray(self.frame())
        struct.pack_into("<H", frame, 4, WIRE_VERSION + 1)
        with pytest.raises(WireFormatError, match="version"):
            decode_frame(bytes(frame))

    def test_unknown_kind_rejected_on_encode_and_decode(self):
        with pytest.raises(WireFormatError, match="kind"):
            encode_frame_bytes(999, {})
        frame = bytearray(self.frame())
        struct.pack_into("<H", frame, 6, 999)
        with pytest.raises(WireFormatError, match="kind"):
            decode_frame(bytes(frame))

    def test_oversized_length_fields_rejected_before_allocation(self):
        frame = bytearray(self.frame())
        struct.pack_into("<I", frame, 8, (1 << 24) + 1)
        with pytest.raises(WireFormatError, match="meta length"):
            decode_frame(bytes(frame))
        frame = bytearray(self.frame())
        struct.pack_into("<Q", frame, 12, (1 << 34) + 1)
        with pytest.raises(WireFormatError, match="payload length"):
            decode_frame(bytes(frame))

    def test_corrupted_meta_block_rejected(self):
        frame = bytearray(self.frame())
        for offset in range(HEADER.size, HEADER.size + 4):
            frame[offset] ^= 0xFF
        with pytest.raises(WireFormatError, match="meta"):
            decode_frame(bytes(frame))

    def test_non_dict_meta_rejected(self):
        import pickle

        blob = pickle.dumps(["not", "a", "dict"])
        header = HEADER.pack(MAGIC, WIRE_VERSION, KIND_SHARES, len(blob), 0)
        with pytest.raises(WireFormatError, match="dict"):
            decode_frame(header + blob)

    def test_descriptor_payload_mismatch_rejected(self):
        short = encode_frame_bytes(KIND_SHARES, {}, [np.arange(4, dtype=np.uint64)])
        long = encode_frame_bytes(KIND_SHARES, {}, [np.arange(8, dtype=np.uint64)])
        # Splice the 8-element descriptor onto the 4-element payload and
        # vice versa: both directions must fail the coverage check.
        _, meta_long, _ = decode_frame(long)
        import pickle

        blob = pickle.dumps(
            {"arrays": meta_long["arrays"]}, protocol=pickle.HIGHEST_PROTOCOL
        )
        payload = short[-32:]
        header = HEADER.pack(MAGIC, WIRE_VERSION, KIND_SHARES, len(blob), len(payload))
        with pytest.raises(WireFormatError, match="too short"):
            decode_frame(header + blob + payload)
        blob = pickle.dumps({"arrays": []}, protocol=pickle.HIGHEST_PROTOCOL)
        header = HEADER.pack(MAGIC, WIRE_VERSION, KIND_SHARES, len(blob), len(payload))
        with pytest.raises(WireFormatError, match="mismatch"):
            decode_frame(header + blob + payload)

    def test_unknown_dtype_rejected(self):
        import pickle

        blob = pickle.dumps(
            {"arrays": [("<nope", (2,))]}, protocol=pickle.HIGHEST_PROTOCOL
        )
        header = HEADER.pack(MAGIC, WIRE_VERSION, KIND_SHARES, len(blob), 0)
        with pytest.raises(WireFormatError, match="dtype"):
            decode_frame(header + blob)


class TestEndpoint:
    def pair(self):
        left_sock, right_sock = socket.socketpair()
        left = WireEndpoint(left_sock, name="driver", peer="server1")
        right = WireEndpoint(right_sock, name="server1", peer="driver")
        return left, right

    def test_send_recv_matches_pure_codec(self):
        left, right = self.pair()
        try:
            payload = np.arange(12, dtype=np.uint64).reshape(3, 4)
            left.send(KIND_SHARES, {"phase": "adjacency_share"}, [payload])
            kind, meta, arrays = right.recv()
            assert kind == KIND_SHARES
            assert meta["phase"] == "adjacency_share"
            assert np.array_equal(arrays[0], payload)
            assert arrays[0].flags.writeable
        finally:
            left.close()
            right.close()

    def test_sequence_numbers_detect_reordering(self):
        left_sock, right_sock = socket.socketpair()
        right = WireEndpoint(right_sock, name="server1", peer="driver")
        try:
            # Hand-craft a frame whose seq skips ahead.
            frame = encode_frame_bytes(KIND_CONTROL, {"verb": "run", "seq": 5})
            left_sock.sendall(frame)
            with pytest.raises(WireFormatError, match="out-of-order"):
                right.recv()
        finally:
            left_sock.close()
            right.close()

    def test_eof_raises_typed_error(self):
        left, right = self.pair()
        left.close()
        with pytest.raises(WireFormatError, match="EOF"):
            right.recv()
        right.close()

    def test_recv_expect_reraises_remote_errors(self):
        left, right = self.pair()
        try:
            left.send_error(CheaterDetectedError("a server cheated", label="x", round_index=3))
            with pytest.raises(CheaterDetectedError) as caught:
                right.recv_expect(KIND_RESULT)
            assert caught.value.label == "x" and caught.value.round_index == 3
            left.send_error(ValueError("boom"))
            with pytest.raises(RuntimeProcessError, match="ValueError: boom"):
                right.recv_expect(KIND_RESULT)
        finally:
            left.close()
            right.close()

    def test_hello_role_mismatch(self):
        left_sock, right_sock = socket.socketpair()
        left = WireEndpoint(left_sock, name="driver", peer="server1")
        imposter = WireEndpoint(right_sock, name="server2", peer="driver")
        try:
            imposter.send(KIND_HELLO, {"role": "server2"})
            with pytest.raises(WireFormatError, match="handshake"):
                left.hello()
        finally:
            left.close()
            imposter.close()

    def test_sent_summary_counts_frames_and_bytes(self):
        left, right = self.pair()
        try:
            before = left.sent_summary()
            payload = np.arange(4, dtype=np.uint64)
            left.send(KIND_SHARES, {"phase": "noise_share"}, [payload])
            left.send(KIND_SHARES, {"phase": "noise_share"}, [payload])
            right.recv()
            right.recv()
            delta = summary_delta(before, left.sent_summary())
            entry = delta["SHARES/noise_share"]
            assert entry["frames"] == 2
            assert entry["payload_bytes"] == 2 * payload.nbytes
            assert entry["wire_bytes"] > entry["payload_bytes"]
        finally:
            left.close()
            right.close()

    def test_summary_delta_drops_unmoved_keys(self):
        before = {"SHARES/x": {"frames": 2, "payload_bytes": 8, "wire_bytes": 40}}
        after = {
            "SHARES/x": {"frames": 2, "payload_bytes": 8, "wire_bytes": 40},
            "RESULT/": {"frames": 1, "payload_bytes": 0, "wire_bytes": 30},
        }
        delta = summary_delta(before, after)
        assert "SHARES/x" not in delta
        assert delta["RESULT/"]["frames"] == 1


def test_error_meta_round_trip_preserves_cheater_fields():
    error = CheaterDetectedError("cheated", label="release_opening", round_index=7)
    meta = encode_error_meta(error)
    with pytest.raises(CheaterDetectedError) as caught:
        raise_remote_error(meta, source="server2")
    assert caught.value.label == "release_opening"
    assert caught.value.round_index == 7
    assert str(caught.value) == "cheated"
