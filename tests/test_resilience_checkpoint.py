"""Checkpointer and atomic-write suite.

Checkpoints are the crash-safety backbone: every save is write-then-rename
(a kill mid-save leaves the previous checkpoint intact, never a torn file),
every load verifies a content checksum before unpickling is trusted, and a
checkpoint written by a *different* run configuration is refused via the
token binding rather than silently resumed.
"""

from __future__ import annotations

import json
import os
import pickle

import pytest

from repro.exceptions import CheckpointError, IntegrityError
from repro.resilience import (
    Checkpointer,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    install_fault_plan,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.utils.atomic import atomic_write_bytes, atomic_write_json, atomic_write_text


# --------------------------------------------------------------------- #
# atomic_write
# --------------------------------------------------------------------- #
def test_atomic_write_replaces_and_leaves_no_tmp(tmp_path):
    target = tmp_path / "nested" / "out.bin"
    atomic_write_bytes(target, b"first")
    atomic_write_bytes(target, b"second")
    assert target.read_bytes() == b"second"
    assert [p.name for p in target.parent.iterdir()] == ["out.bin"]


def test_atomic_write_text_and_json(tmp_path):
    text_target = tmp_path / "out.txt"
    atomic_write_text(text_target, "hello\n")
    assert text_target.read_text() == "hello\n"
    json_target = tmp_path / "out.json"
    atomic_write_json(json_target, {"rows": [1, 2]})
    assert json.loads(json_target.read_text()) == {"rows": [1, 2]}
    assert json_target.read_text().endswith("\n")


def test_atomic_write_oserror_fault_leaves_previous_content(tmp_path):
    target = tmp_path / "out.json"
    atomic_write_json(target, {"generation": 1})
    plan = FaultPlan([FaultSpec("export.write", FaultKind.OSERROR, at=1)])
    with install_fault_plan(plan):
        with pytest.raises(OSError):
            atomic_write_json(target, {"generation": 2})
    # The failed write neither tore the file nor left a tmp behind.
    assert json.loads(target.read_text()) == {"generation": 1}
    assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


# --------------------------------------------------------------------- #
# Checkpointer
# --------------------------------------------------------------------- #
def test_checkpoint_round_trip_with_metrics(tmp_path):
    metrics = MetricsRegistry()
    path = tmp_path / "run.ckpt"
    saver = Checkpointer(path, kind="stream", token="tok", metrics=metrics)
    assert not saver.exists()
    state = {"event_index": 41, "payload": list(range(10))}
    saver.save(state)
    assert saver.exists()
    loaded = Checkpointer(path, kind="stream", token="tok", metrics=metrics).load()
    assert loaded == state
    counters = metrics.counters()
    assert counters['checkpoint_saves{kind="stream"}'] == 1
    assert counters['checkpoint_loads{kind="stream"}'] == 1


def test_checkpoint_load_missing_is_typed(tmp_path):
    with pytest.raises(CheckpointError):
        Checkpointer(tmp_path / "absent.ckpt", kind="stream", token="t").load()


def test_checkpoint_refuses_foreign_token_and_kind(tmp_path):
    path = tmp_path / "run.ckpt"
    Checkpointer(path, kind="stream", token="aaa").save({"x": 1})
    with pytest.raises(CheckpointError):
        Checkpointer(path, kind="stream", token="bbb").load()
    with pytest.raises(CheckpointError):
        Checkpointer(path, kind="tiles", token="aaa").load()


def test_checkpoint_detects_corruption(tmp_path):
    path = tmp_path / "run.ckpt"
    Checkpointer(path, kind="tiles", token="t").save({"totals": [1, 2, 3]})
    blob = bytearray(path.read_bytes())
    blob[-3] ^= 0x40  # flip one bit inside the pickled payload
    path.write_bytes(bytes(blob))
    with pytest.raises((IntegrityError, CheckpointError)):
        Checkpointer(path, kind="tiles", token="t").load()


def test_checkpoint_detects_unpicklable_garbage(tmp_path):
    path = tmp_path / "run.ckpt"
    path.write_bytes(b"this is not a checkpoint at all")
    with pytest.raises(IntegrityError):
        Checkpointer(path, kind="stream", token="t").load()


def test_checkpoint_write_bitflip_caught_on_load(tmp_path):
    # A bit flipped *during* the write (torn buffer, bad disk) must be
    # caught by the checksum on the next load, never silently resumed.
    path = tmp_path / "run.ckpt"
    plan = FaultPlan(
        [FaultSpec("checkpoint.write", FaultKind.BITFLIP, at=1, payload=123)]
    )
    with install_fault_plan(plan):
        Checkpointer(path, kind="stream", token="t").save({"x": list(range(50))})
    with pytest.raises((IntegrityError, CheckpointError)):
        Checkpointer(path, kind="stream", token="t").load()


def test_checkpoint_read_retry_recovers_transient_fault(tmp_path):
    path = tmp_path / "run.ckpt"
    Checkpointer(path, kind="stream", token="t").save({"x": 5})
    retry = RetryPolicy(max_attempts=3, sleep=lambda _delay: None)
    plan = FaultPlan([FaultSpec("checkpoint.read", FaultKind.OSERROR, at=1)])
    with install_fault_plan(plan):
        loaded = Checkpointer(path, kind="stream", token="t", retry=retry).load()
    assert loaded == {"x": 5}
    assert [entry["site"] for entry in plan.triggered()] == ["checkpoint.read"]
