"""Property-based tests (hypothesis) on the core invariants.

These cover the algebraic backbone of the system: ring arithmetic, secret
sharing, the two- and three-way multiplication protocols, exact triangle
counting, and the projection invariants.  Each property is phrased over
arbitrary inputs rather than hand-picked examples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.counting import FaithfulTriangleCounter
from repro.core.fast_counting import MatrixTriangleCounter
from repro.core.projection import SimilarityProjection, projected_triangle_count
from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.multiplication_groups import MultiplicationGroupDealer
from repro.crypto.ring import DEFAULT_RING, Ring
from repro.crypto.secure_ops import secure_multiply_pair, secure_multiply_triple
from repro.crypto.sharing import reconstruct, share_scalar
from repro.dp.gamma_noise import sample_partial_noises
from repro.graph.graph import Graph
from repro.graph.triangles import (
    count_triangles_edge_iterator,
    count_triangles_matrix,
    count_triangles_node_iterator,
)

# Bounded-size strategies keep every example fast.
ring_values = st.integers(min_value=-(2**40), max_value=2**40)
small_bits = st.integers(min_value=4, max_value=64)
edge_lists = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(lambda e: e[0] != e[1]),
    max_size=40,
)


def graph_from_edges(edges) -> Graph:
    return Graph(12, edges=edges)


class TestRingProperties:
    @given(value=ring_values, bits=small_bits)
    def test_encode_decode_roundtrip(self, value, bits):
        ring = Ring(bits=bits)
        reduced = value % ring.modulus
        signed = reduced - ring.modulus if reduced >= ring.half else reduced
        assert ring.decode_signed(ring.encode(value)) == signed

    @given(a=ring_values, b=ring_values)
    def test_add_sub_inverse(self, a, b):
        ring = DEFAULT_RING
        assert ring.sub(ring.add(a, b), b) == ring.encode(a)

    @given(a=ring_values, b=ring_values, c=ring_values)
    def test_mul_distributes_over_add(self, a, b, c):
        ring = DEFAULT_RING
        left = ring.mul(a, ring.add(b, c))
        right = ring.add(ring.mul(a, b), ring.mul(a, c))
        assert left == right


class TestSharingProperties:
    @given(value=ring_values, seed=st.integers(0, 2**31 - 1))
    def test_share_reconstruct_roundtrip(self, value, seed):
        pair = share_scalar(value, rng=seed)
        assert pair.reconstruct_signed() == value

    @given(value=ring_values, seed=st.integers(0, 2**31 - 1))
    def test_single_share_is_mask(self, value, seed):
        """Share 1 equals the mask and is independent of the secret."""
        pair_a = share_scalar(value, rng=seed)
        pair_b = share_scalar(value + 1, rng=seed)
        assert pair_a.share1 == pair_b.share1  # same mask regardless of secret
        assert pair_a.share2 != pair_b.share2


class TestSecureMultiplicationProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        a=st.integers(0, 2**20), b=st.integers(0, 2**20),
        dealer_seed=st.integers(0, 1000), share_seed=st.integers(0, 1000),
    )
    def test_pair_product(self, a, b, dealer_seed, share_seed):
        dealer = BeaverTripleDealer(seed=dealer_seed)
        a_pair = share_scalar(a, rng=share_seed)
        b_pair = share_scalar(b, rng=share_seed + 1)
        s1, s2 = secure_multiply_pair(
            (a_pair.share1, a_pair.share2), (b_pair.share1, b_pair.share2), dealer.scalar_triple()
        )
        assert reconstruct(s1, s2) == DEFAULT_RING.mul(a, b)

    @settings(max_examples=25, deadline=None)
    @given(
        a=st.integers(0, 1), b=st.integers(0, 1), c=st.integers(0, 1),
        dealer_seed=st.integers(0, 1000), share_seed=st.integers(0, 1000),
    )
    def test_triple_product_on_bits(self, a, b, c, dealer_seed, share_seed):
        dealer = MultiplicationGroupDealer(seed=dealer_seed)
        pairs = [share_scalar(v, rng=share_seed + i) for i, v in enumerate((a, b, c))]
        s1, s2 = secure_multiply_triple(
            (pairs[0].share1, pairs[0].share2),
            (pairs[1].share1, pairs[1].share2),
            (pairs[2].share1, pairs[2].share2),
            dealer.scalar_group(),
        )
        assert reconstruct(s1, s2) == a * b * c


class TestTriangleCountingProperties:
    @settings(max_examples=30, deadline=None)
    @given(edges=edge_lists)
    def test_counting_algorithms_agree(self, edges):
        graph = graph_from_edges(edges)
        assert (
            count_triangles_node_iterator(graph)
            == count_triangles_edge_iterator(graph)
            == count_triangles_matrix(graph)
        )

    @settings(max_examples=30, deadline=None)
    @given(edges=edge_lists)
    def test_plaintext_oracle_matches_exact_count_on_symmetric_rows(self, edges):
        graph = graph_from_edges(edges)
        assert projected_triangle_count(graph.adjacency_matrix()) == count_triangles_matrix(graph)

    @settings(max_examples=30, deadline=None)
    @given(edges=edge_lists)
    def test_adding_an_edge_never_decreases_triangles(self, edges):
        graph = graph_from_edges(edges)
        before = count_triangles_edge_iterator(graph)
        candidates = [
            (u, v)
            for u in range(graph.num_nodes)
            for v in range(u + 1, graph.num_nodes)
            if not graph.has_edge(u, v)
        ]
        if candidates:
            graph.add_edge(*candidates[0])
            assert count_triangles_edge_iterator(graph) >= before

    @settings(max_examples=15, deadline=None)
    @given(edges=edge_lists, seed=st.integers(0, 100))
    def test_secure_matrix_count_matches_exact(self, edges, seed):
        graph = graph_from_edges(edges)
        result = MatrixTriangleCounter().count(graph.adjacency_matrix(), rng=seed)
        assert result.reconstruct() == count_triangles_matrix(graph)

    @settings(max_examples=8, deadline=None)
    @given(edges=edge_lists, seed=st.integers(0, 100))
    def test_secure_batched_count_matches_exact(self, edges, seed):
        graph = graph_from_edges(edges)
        counter = FaithfulTriangleCounter(batch_size=128)
        result = counter.count(graph.adjacency_matrix(), rng=seed)
        assert result.reconstruct() == count_triangles_matrix(graph)


class TestProjectionProperties:
    @settings(max_examples=25, deadline=None)
    @given(edges=edge_lists, theta=st.integers(0, 12))
    def test_projection_bounds_degrees_and_only_deletes(self, edges, theta):
        graph = graph_from_edges(edges)
        result = SimilarityProjection(theta).project_graph(graph)
        assert int(result.projected_rows.sum(axis=1).max(initial=0)) <= max(theta, 0)
        assert np.all(result.projected_rows <= graph.adjacency_matrix())

    @settings(max_examples=25, deadline=None)
    @given(edges=edge_lists)
    def test_projection_identity_when_bound_is_max_degree(self, edges):
        graph = graph_from_edges(edges)
        bound = graph.max_degree()
        result = SimilarityProjection(bound).project_graph(graph)
        assert result.edges_removed == 0

    @settings(max_examples=20, deadline=None)
    @given(edges=edge_lists, theta=st.integers(0, 12))
    def test_projected_count_never_exceeds_true_count(self, edges, theta):
        graph = graph_from_edges(edges)
        result = SimilarityProjection(theta).project_graph(graph)
        assert projected_triangle_count(result.projected_rows) <= count_triangles_matrix(graph)


class TestNoiseProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        num_users=st.integers(1, 200),
        scale=st.floats(0.1, 50.0, allow_nan=False, allow_infinity=False),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_partial_noises_shape_and_finiteness(self, num_users, scale, seed):
        noises = sample_partial_noises(num_users, scale, rng=seed)
        assert noises.shape == (num_users,)
        assert np.all(np.isfinite(noises))
