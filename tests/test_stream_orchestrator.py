"""Tests for repro.stream.orchestrator — StreamingCargo end to end."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, StreamError
from repro.graph.datasets import load_dataset
from repro.graph.graph import Graph
from repro.graph.triangles import count_triangles
from repro.stream.events import churn_stream, replay_stream
from repro.stream.orchestrator import StreamingCargo, StreamingConfig
from repro.stream.release import EveryKEventsPolicy, FixedIntervalPolicy, tree_depth


@pytest.fixture(scope="module")
def facebook_stream():
    graph = load_dataset("facebook", num_nodes=100)
    return replay_stream(graph, rng=0)


class TestStreamingConfig:
    def test_defaults_resolve(self):
        config = StreamingConfig()
        assert isinstance(config.release_policy(), EveryKEventsPolicy)
        assert config.planned_anchors() == 0
        assert config.release_epsilon() == config.epsilon
        assert config.anchor_epsilon() == 0.0

    def test_interval_policy_selected_when_configured(self):
        config = StreamingConfig(release_interval=5.0)
        assert isinstance(config.release_policy(), FixedIntervalPolicy)

    def test_anchor_budget_split(self):
        config = StreamingConfig(
            epsilon=4.0, anchor_every=8, anchor_fraction=0.5, max_releases=64
        )
        assert config.planned_anchors() == 8
        assert config.release_epsilon() == pytest.approx(2.0)
        assert config.anchor_epsilon() == pytest.approx(2.0 / 8)

    def test_backend_name_pass_through(self):
        assert StreamingConfig(counting_backend="blocked").backend_name == "blocked"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingConfig(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            StreamingConfig(release_every=0)
        with pytest.raises(ConfigurationError):
            StreamingConfig(release_interval=-1.0)
        with pytest.raises(ConfigurationError):
            StreamingConfig(anchor_every=4, anchor_fraction=1.5)
        with pytest.raises(ConfigurationError):
            StreamingConfig(max_releases=0)
        with pytest.raises(ConfigurationError):
            StreamingConfig(delta_sensitivity=0.0)
        with pytest.raises(ConfigurationError):
            StreamingConfig(counting_backend="no-such-backend")


class TestStreamingCargo:
    def test_release_cadence_and_final_release(self, facebook_stream):
        config = StreamingConfig(epsilon=4.0, release_every=100, seed=1, max_releases=32)
        result = StreamingCargo(config).run(facebook_stream)
        expected = len(facebook_stream) // 100 + (1 if len(facebook_stream) % 100 else 0)
        assert len(result.releases) == expected
        assert result.releases[-1].event_index == len(facebook_stream)
        assert result.events_processed == len(facebook_stream)

    def test_true_counts_match_independent_recounts(self, facebook_stream):
        config = StreamingConfig(epsilon=4.0, release_every=150, seed=2, max_releases=16)
        result = StreamingCargo(config).run(facebook_stream)
        replayed = Graph(facebook_stream.num_nodes)
        events = list(facebook_stream)
        for release in result.releases:
            while replayed.num_edges < release.event_index:
                event = events[replayed.num_edges]
                replayed.add_edge(event.u, event.v)
            assert release.true_count == count_triangles(replayed, use_cache=False)

    def test_budget_ledger_is_logarithmic_without_anchors(self, facebook_stream):
        config = StreamingConfig(epsilon=2.0, release_every=20, seed=3, max_releases=128)
        result = StreamingCargo(config).run(facebook_stream)
        assert len(result.releases) > 30
        assert len(result.ledger) <= tree_depth(128)
        assert result.epsilon_spent <= 2.0 * (1 + 1e-9)

    def test_anchors_fire_on_cadence_and_stay_within_budget(self, facebook_stream):
        config = StreamingConfig(
            epsilon=4.0,
            release_every=60,
            anchor_every=5,
            max_releases=32,
            seed=4,
        )
        result = StreamingCargo(config).run(facebook_stream)
        anchor_indices = [r.index for r in result.releases if r.is_anchor]
        assert anchor_indices[0] == 5
        assert all(b - a == 5 for a, b in zip(anchor_indices, anchor_indices[1:]))
        assert result.anchors_run == len(anchor_indices) > 0
        # Tree levels + two ledger entries per anchor (private max-degree
        # estimate and count release), still far below T.
        assert len(result.ledger) <= tree_depth(32) + 2 * result.anchors_run
        assert result.epsilon_spent <= 4.0 * (1 + 1e-9)

    def test_estimates_track_the_truth_at_moderate_epsilon(self, facebook_stream):
        config = StreamingConfig(epsilon=8.0, release_every=60, seed=5, max_releases=32)
        result = StreamingCargo(config).run(facebook_stream)
        final = result.releases[-1]
        assert final.true_count > 100
        assert abs(final.estimate - final.true_count) / final.true_count < 0.5

    def test_anchor_runs_through_any_registered_backend(self, facebook_stream):
        estimates = {}
        for backend in ("matrix", "blocked"):
            config = StreamingConfig(
                epsilon=6.0,
                release_every=200,
                anchor_every=2,
                max_releases=16,
                counting_backend=backend,
                block_size=16,
                seed=6,
            )
            result = StreamingCargo(config).run(facebook_stream)
            assert result.backend == backend
            assert result.anchors_run > 0
            estimates[backend] = [r.estimate for r in result.releases]
        # Identical seeds and identical secure counts: the backends differ
        # only in execution strategy, so the served estimates coincide.
        assert estimates["matrix"] == pytest.approx(estimates["blocked"])

    def test_churn_stream_with_removals(self, medium_cluster_graph):
        stream = churn_stream(medium_cluster_graph, num_events=400, rng=8)
        config = StreamingConfig(epsilon=6.0, release_every=50, seed=7, max_releases=16)
        result = StreamingCargo(config).run(stream, initial_graph=medium_cluster_graph)
        assert len(result.releases) > 0
        final = result.releases[-1]
        expected = medium_cluster_graph.copy()
        for event in stream:
            if event.is_addition:
                expected.add_edge(event.u, event.v)
            else:
                expected.remove_edge(event.u, event.v)
        assert final.true_count == count_triangles(expected, use_cache=False)

    def test_interval_policy_budget_is_fully_spent(self, facebook_stream):
        # expected_releases simulates the actual policy, so anchor planning
        # is exact for the interval policy too — no budget goes unspent.
        config = StreamingConfig(
            epsilon=4.0, release_interval=50.0, anchor_every=2, seed=3
        )
        result = StreamingCargo(config).run(facebook_stream)
        assert result.capacity == len(result.releases)
        assert result.anchors_run == len(result.releases) // 2
        assert result.epsilon_spent == pytest.approx(4.0)

    def test_unfireable_anchor_budget_folds_back_into_the_tree(self, facebook_stream):
        # Anchors enabled, but the stream yields too few releases for any to
        # fire: the reserved anchor fraction must fund the tree instead of
        # going unspent.
        config = StreamingConfig(epsilon=4.0, release_every=500, anchor_every=50, seed=21)
        result = StreamingCargo(config).run(facebook_stream)
        assert result.anchors_run == 0
        assert result.epsilon_spent == pytest.approx(4.0)

    def test_private_initial_graph_is_bootstrap_anchored(self, medium_cluster_graph):
        stream = churn_stream(medium_cluster_graph, num_events=100, rng=12)
        true_start = count_triangles(medium_cluster_graph)
        config = StreamingConfig(
            epsilon=4.0,
            release_every=10,
            anchor_every=1000,  # no cadence anchor will ever fire
            max_releases=16,
            seed=13,
        )
        result = StreamingCargo(config).run(stream, initial_graph=medium_cluster_graph)
        # The bootstrap anchor ran before the first event (the label marks
        # the data-dependent sensitivity fallback)...
        assert result.anchors_run == 1
        assert any(label.startswith("anchor") for label, _ in result.ledger)
        # ...so no release serves the exact private starting count: the base
        # is Laplace-perturbed, and tree noise is centred, so an exact match
        # with the deterministic seed would require the noise to cancel.
        deltas = [r.estimate - r.true_count for r in result.releases]
        assert all(abs(d) > 1e-9 for d in deltas)

    def test_empty_initial_graph_consumes_no_anchor_budget(self, facebook_stream):
        # An explicitly-passed empty graph is semantically the default start;
        # it must not burn a bootstrap anchor (its count of 0 is public).
        config = StreamingConfig(
            epsilon=4.0, release_every=60, anchor_every=5, max_releases=32, seed=4
        )
        explicit = StreamingCargo(config).run(
            facebook_stream, initial_graph=Graph(facebook_stream.num_nodes)
        )
        implicit = StreamingCargo(config).run(facebook_stream)
        assert explicit.anchors_run == implicit.anchors_run
        assert [r.estimate for r in explicit.releases] == [
            r.estimate for r in implicit.releases
        ]

    def test_initial_graph_size_mismatch_rejected(self, facebook_stream):
        with pytest.raises(ConfigurationError):
            StreamingCargo(StreamingConfig()).run(
                facebook_stream, initial_graph=Graph(3)
            )

    def test_too_small_pinned_capacity_fails_before_processing(self, facebook_stream):
        config = StreamingConfig(epsilon=4.0, release_every=50, max_releases=4, seed=0)
        with pytest.raises(StreamError):
            StreamingCargo(config).run(facebook_stream)

    def test_releaseless_stream_spends_nothing(self, medium_cluster_graph):
        # No release is ever published, so neither the tree nor a bootstrap
        # anchor may consume budget.
        from repro.stream.events import EdgeStream

        empty = EdgeStream(num_nodes=medium_cluster_graph.num_nodes)
        config = StreamingConfig(epsilon=4.0, release_every=10, anchor_every=2, seed=1)
        result = StreamingCargo(config).run(empty, initial_graph=medium_cluster_graph)
        assert result.releases == []
        assert result.anchors_run == 0
        assert result.epsilon_spent == 0.0

    def test_deterministic_under_a_seed(self, facebook_stream):
        config = StreamingConfig(epsilon=4.0, release_every=100, seed=42, max_releases=32)
        first = StreamingCargo(config).run(facebook_stream)
        second = StreamingCargo(config).run(facebook_stream)
        assert [r.estimate for r in first.releases] == [
            r.estimate for r in second.releases
        ]

    def test_timings_and_error_helpers(self, facebook_stream):
        config = StreamingConfig(
            epsilon=4.0, release_every=100, anchor_every=4, max_releases=32, seed=9
        )
        result = StreamingCargo(config).run(facebook_stream)
        assert "total" in result.timings
        assert "release" in result.timings
        assert "anchor" in result.timings
        assert result.mean_absolute_error() >= 0.0
        assert result.final_estimate == result.releases[-1].estimate
