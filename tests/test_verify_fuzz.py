"""Tests for repro.verify.fuzz — the seeded transcript fuzzing harness.

The harness's value rests on two properties that must themselves be tested:
it is *deterministic* (same seed → same drawn cases → same verdicts, so a
red CI seed replays locally), and its failure reports carry everything
needed to replay one case in isolation (the case JSON round-trips).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.utils.rng import derive_rng
from repro.verify import (
    FuzzCase,
    FuzzFailure,
    FuzzReport,
    draw_case,
    run_case,
    run_fuzz,
    transcripts_equal,
)
from repro.verify.fuzz import build_graph


class TestFuzzCase:
    def test_json_round_trip(self):
        case = draw_case(derive_rng(3), 0)
        assert FuzzCase.from_json(case.to_json()) == case

    def test_json_is_stable_and_sorted(self):
        case = draw_case(derive_rng(3), 0)
        payload = json.loads(case.to_json())
        assert list(payload) == sorted(payload)
        assert case.to_json() == case.to_json()

    def test_config_kwargs_overrides(self):
        case = draw_case(derive_rng(3), 0)
        kwargs = case.config_kwargs(counting_backend="matrix", workers=None)
        assert kwargs["counting_backend"] == "matrix"
        assert kwargs["workers"] is None
        assert kwargs["seed"] == case.seed

    def test_build_graph_deterministic(self):
        case = draw_case(derive_rng(5), 0)
        graph_a = build_graph(case)
        graph_b = build_graph(case)
        assert graph_a.edge_list() == graph_b.edge_list()
        assert graph_a.num_nodes == case.num_nodes


class TestDrawCase:
    def test_draws_are_valid_and_diverse(self):
        rng = derive_rng(0)
        cases = [draw_case(rng, index) for index in range(60)]
        assert {case.statistic for case in cases} == {
            "triangles", "kstars", "wedges", "4cycles"
        }
        assert {case.backend for case in cases} == {
            "faithful", "batched", "matrix", "blocked"
        }
        for case in cases:
            assert 0 <= case.seed < 2**31
            assert case.num_nodes >= 6
            if case.sparse == "force":
                assert case.statistic in ("kstars", "wedges")

    def test_same_rng_state_same_case(self):
        assert draw_case(derive_rng(9), 0) == draw_case(derive_rng(9), 0)


class TestDeterminism:
    def test_same_seed_same_cases_and_verdicts(self):
        report_a = run_fuzz(num_cases=6, seed=123)
        report_b = run_fuzz(num_cases=6, seed=123)
        assert report_a.cases == report_b.cases
        assert [f.case for f in report_a.failures] == [f.case for f in report_b.failures]
        assert report_a.to_json() == report_b.to_json()

    def test_different_seed_different_cases(self):
        assert run_fuzz(num_cases=4, seed=1).cases != run_fuzz(num_cases=4, seed=2).cases

    def test_on_case_sees_every_case_in_order(self):
        seen = []
        report = run_fuzz(
            num_cases=5, seed=3, on_case=lambda i, case, problems: seen.append((i, case))
        )
        assert [case for _, case in seen] == list(report.cases)
        assert [i for i, _ in seen] == list(range(5))


class TestFailureReporting:
    def test_failure_repro_embeds_case_json(self):
        case = draw_case(derive_rng(1), 0)
        failure = FuzzFailure(case=case, problems=("count mismatch",))
        assert case.to_json() in failure.repro
        assert "count mismatch" in failure.repro

    def test_report_json_carries_failures(self):
        case = draw_case(derive_rng(1), 0)
        report = FuzzReport(
            seed=1,
            num_cases=1,
            cases=(case,),
            failures=(FuzzFailure(case=case, problems=("boom",)),),
        )
        assert not report.passed
        payload = json.loads(report.to_json())
        assert payload["failures"][0]["problems"] == ["boom"]
        assert payload["failures"][0]["case"]["seed"] == case.seed

    def test_run_case_reports_problems_instead_of_raising(self):
        bad = FuzzCase(
            seed=1,
            num_nodes=8,
            edge_probability=0.5,
            statistic="triangles",
            backend="matrix",
            sparse="force",  # triangles cannot run degree-local
        )
        problems = run_case(bad)
        assert problems
        assert any("typed failure" in problem for problem in problems)


class TestTranscriptsEqual:
    def test_detects_value_and_length_differences(self):
        from repro.crypto.views import ViewRecorder

        a = ViewRecorder()
        b = ViewRecorder()
        for recorder in (a, b):
            for server in (1, 2):
                recorder.observe(server, "round", np.arange(3, dtype=np.uint64))
        assert transcripts_equal(a, b)
        b.observe(1, "round", np.arange(3, dtype=np.uint64))
        assert not transcripts_equal(a, b)

    def test_handles_ragged_composite_entries(self):
        from repro.crypto.views import ViewRecorder

        ragged = (np.zeros(2, dtype=np.uint64), np.zeros((2, 3), dtype=np.uint64))
        a = ViewRecorder()
        b = ViewRecorder()
        for recorder in (a, b):
            for server in (1, 2):
                recorder.observe(server, "tile", ragged)
        assert transcripts_equal(a, b)
        c = ViewRecorder()
        for server in (1, 2):
            c.observe(
                server,
                "tile",
                (np.ones(2, dtype=np.uint64), np.zeros((2, 3), dtype=np.uint64)),
            )
        assert not transcripts_equal(a, c)


class TestRunCase:
    @pytest.mark.parametrize("backend", ("matrix", "blocked"))
    def test_known_good_case_passes(self, backend):
        case = FuzzCase(
            seed=11,
            num_nodes=9,
            edge_probability=0.5,
            statistic="triangles",
            backend=backend,
        )
        assert run_case(case) == []
