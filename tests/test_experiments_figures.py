"""Tests for repro.experiments.figures (scaled-down smoke runs with shape checks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import (
    figure5_l2_vs_epsilon,
    figure6_relative_error_vs_epsilon,
    figure7_l2_vs_n,
    figure8_relative_error_vs_n,
    figure9_projection_l2,
    figure10_projection_relative_error,
    figure11_running_time,
    figure12_running_time_wiki,
)


class TestEpsilonSweepFigures:
    @pytest.fixture(scope="class")
    def report(self):
        return figure5_l2_vs_epsilon(
            datasets=("facebook",), epsilons=(1.0, 3.0), num_nodes=100, num_trials=2, seed=0
        )

    def test_row_count(self, report):
        assert len(report.rows) == 2 * 3  # epsilons x protocols

    def test_cargo_between_local_and_central(self, report):
        for epsilon in (1.0, 3.0):
            rows = {row["protocol"]: row["l2_mean"] for row in report.filter_rows(epsilon=epsilon)}
            assert rows["Cargo"] < rows["Local2Rounds"]
            # Same ballpark as the central mechanism: l2_mean is a *squared*
            # error, so a factor of 100 allows a 10x error ratio either way —
            # with two trials the Laplace tails make anything tighter flaky.
            assert rows["CentralLap"] <= rows["Cargo"] * 100

    def test_error_shrinks_with_epsilon(self, report):
        cargo = {row["epsilon"]: row["l2_mean"] for row in report.filter_rows(protocol="Cargo")}
        assert cargo[3.0] < cargo[1.0]

    def test_fig6_reuses_sweep_with_relative_error_columns(self):
        report = figure6_relative_error_vs_epsilon(
            datasets=("facebook",), epsilons=(2.0,), num_nodes=80, num_trials=1, seed=1
        )
        assert report.name == "fig6"
        assert report.columns[3] == "re_mean" or "re_mean" in report.columns


class TestUserSweepFigures:
    def test_fig7_rows(self):
        report = figure7_l2_vs_n(
            datasets=("wiki",), user_counts=(60, 90), epsilon=2.0, num_trials=1, seed=0
        )
        assert len(report.rows) == 2 * 3
        assert report.name == "fig7"

    def test_fig8_is_relabelled_fig7(self):
        report = figure8_relative_error_vs_n(
            datasets=("wiki",), user_counts=(60,), epsilon=2.0, num_trials=1, seed=0
        )
        assert report.name == "fig8"

    def test_local_error_grows_with_n(self):
        report = figure7_l2_vs_n(
            datasets=("facebook",), user_counts=(60, 150), epsilon=2.0, num_trials=2, seed=2
        )
        local = {row["num_users"]: row["l2_mean"] for row in report.filter_rows(protocol="Local2Rounds")}
        assert local[150] > local[60]


class TestProjectionFigures:
    @pytest.fixture(scope="class")
    def report(self):
        return figure9_projection_l2(
            datasets=("facebook",), thetas=(5, 40), num_nodes=150, num_trials=2, seed=0
        )

    def test_rows(self, report):
        assert len(report.rows) == 2 * 2  # thetas x methods

    def test_similarity_never_worse(self, report):
        for theta in (5, 40):
            rows = {row["method"]: row["l2_mean"] for row in report.filter_rows(theta=theta)}
            assert rows["Project"] <= rows["GraphProjection"] * 1.05

    def test_loss_shrinks_with_theta(self, report):
        project = {row["theta"]: row["l2_mean"] for row in report.filter_rows(method="Project")}
        assert project[40] < project[5]

    def test_fig10_relabels(self):
        report = figure10_projection_relative_error(
            datasets=("wiki",), thetas=(10,), num_nodes=100, num_trials=1, seed=1
        )
        assert report.name == "fig10"


class TestRuntimeFigures:
    def test_fig11_series(self):
        report = figure11_running_time(dataset="facebook", user_counts=(60, 90), epsilon=2.0, seed=0)
        assert len(report.rows) == 2
        for row in report.rows:
            assert row["cargo_s"] > 0
            assert row["cargo_count_s"] <= row["cargo_s"]
            # CARGO (secure computation) costs more than the central baseline.
            assert row["cargo_s"] > row["central_lap_s"]

    def test_runtime_grows_with_n(self):
        report = figure11_running_time(dataset="wiki", user_counts=(50, 150), epsilon=2.0, seed=1)
        times = {row["num_users"]: row["cargo_s"] for row in report.rows}
        assert times[150] > times[50]

    def test_fig12_uses_wiki(self):
        report = figure12_running_time_wiki(user_counts=(50,), epsilon=2.0, seed=2)
        assert report.rows[0]["dataset"] == "wiki"
        assert report.name == "fig12"
