"""Tests for repro.core.fast_counting (matrix backend of `Count`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.counting import FaithfulTriangleCounter
from repro.core.fast_counting import MatrixTriangleCounter
from repro.core.projection import SimilarityProjection, projected_triangle_count
from repro.exceptions import ProtocolError
from repro.graph.generators import erdos_renyi_graph, powerlaw_cluster_graph
from repro.graph.triangles import count_triangles


class TestMatrixCounting:
    @pytest.mark.parametrize("fixture_name", ["triangle_graph", "two_triangle_graph", "star_graph", "complete_graph", "empty_graph"])
    def test_known_graphs(self, fixture_name, request):
        graph = request.getfixturevalue(fixture_name)
        result = MatrixTriangleCounter().count(graph.adjacency_matrix(), rng=0)
        assert result.reconstruct() == count_triangles(graph)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_graphs(self, seed):
        graph = erdos_renyi_graph(40, 0.25, seed=seed)
        result = MatrixTriangleCounter().count(graph.adjacency_matrix(), rng=seed)
        assert result.reconstruct() == count_triangles(graph)

    def test_larger_clustered_graph(self, medium_cluster_graph):
        result = MatrixTriangleCounter().count(medium_cluster_graph.adjacency_matrix(), rng=3)
        assert result.reconstruct() == count_triangles(medium_cluster_graph)

    def test_two_opening_rounds_only(self, medium_cluster_graph):
        result = MatrixTriangleCounter().count(medium_cluster_graph.adjacency_matrix(), rng=4)
        assert result.opening_rounds == 2

    def test_tiny_graph_short_circuits(self):
        result = MatrixTriangleCounter().count(np.zeros((2, 2), dtype=np.int64), rng=5)
        assert result.reconstruct() == 0
        assert result.opening_rounds == 0

    def test_shares_hide_count(self, complete_graph):
        result = MatrixTriangleCounter().count(complete_graph.adjacency_matrix(), rng=6)
        assert result.share1 != count_triangles(complete_graph)

    def test_mismatched_shapes_rejected(self):
        counter = MatrixTriangleCounter()
        with pytest.raises(ProtocolError):
            counter.count_from_shares(
                np.zeros((3, 3), dtype=np.uint64), np.zeros((3, 4), dtype=np.uint64)
            )


class TestBackendEquivalence:
    def test_matches_faithful_backend(self):
        graph = erdos_renyi_graph(13, 0.4, seed=7)
        rows = graph.adjacency_matrix()
        faithful = FaithfulTriangleCounter(batch_size=32).count(rows, rng=8)
        matrix = MatrixTriangleCounter().count(rows, rng=8)
        assert faithful.reconstruct() == matrix.reconstruct()

    def test_matches_plaintext_on_projected_rows(self):
        graph = powerlaw_cluster_graph(60, 4, 0.7, seed=9)
        projection = SimilarityProjection(6).project_graph(graph)
        rows = projection.projected_rows
        expected = projected_triangle_count(rows)
        result = MatrixTriangleCounter().count(rows, rng=10)
        assert result.reconstruct() == expected

    def test_asymmetric_rows(self):
        graph = erdos_renyi_graph(15, 0.4, seed=11)
        rows = graph.adjacency_matrix()
        rows[3, :] = 0
        rows[7, 2] = 0
        expected = projected_triangle_count(rows)
        assert MatrixTriangleCounter().count(rows, rng=12).reconstruct() == expected
