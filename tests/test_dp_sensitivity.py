"""Tests for repro.dp.sensitivity and repro.dp.smooth_sensitivity."""

from __future__ import annotations

import pytest

from repro.dp.sensitivity import (
    degree_sensitivity_edge_dp,
    degree_sensitivity_node_dp,
    triangle_sensitivity_edge_dp,
    triangle_sensitivity_node_dp,
    triangle_sensitivity_unbounded,
)
from repro.dp.smooth_sensitivity import (
    local_sensitivity_triangles,
    residual_sensitivity_triangles,
    sensitivity_profile,
    smooth_sensitivity_triangles,
)
from repro.exceptions import PrivacyError
from repro.graph.graph import Graph


class TestGlobalSensitivities:
    def test_degree_edge_dp_is_one(self):
        assert degree_sensitivity_edge_dp() == 1

    def test_degree_node_dp(self):
        assert degree_sensitivity_node_dp(100) == 99
        with pytest.raises(PrivacyError):
            degree_sensitivity_node_dp(0)

    def test_triangle_edge_dp_scales_with_degree_bound(self):
        assert triangle_sensitivity_edge_dp(50) == 50.0
        assert triangle_sensitivity_edge_dp(0) == 1.0  # clamped floor
        with pytest.raises(PrivacyError):
            triangle_sensitivity_edge_dp(-1)

    def test_triangle_unbounded(self):
        assert triangle_sensitivity_unbounded(100) == 98
        assert triangle_sensitivity_unbounded(1) == 0

    def test_triangle_node_dp_quadratic(self):
        assert triangle_sensitivity_node_dp(10) == pytest.approx(45.0)
        assert triangle_sensitivity_node_dp(1) == 1.0
        with pytest.raises(PrivacyError):
            triangle_sensitivity_node_dp(-3)


class TestLocalSensitivity:
    def test_complete_graph(self, complete_graph):
        # In K6 every pair has 4 common neighbours.
        assert local_triangle_counts_value(complete_graph) == 4

    def test_star_graph(self, star_graph):
        # Leaves share the hub as a common neighbour.
        assert local_triangle_counts_value(star_graph) == 1

    def test_empty_graph(self, empty_graph):
        assert local_triangle_counts_value(empty_graph) == 0

    def test_distance_increases_linearly_until_ceiling(self, complete_graph):
        base = local_sensitivity_triangles(complete_graph, 0)
        assert local_sensitivity_triangles(complete_graph, 1) == min(base + 1, 4)
        assert local_sensitivity_triangles(complete_graph, 100) == 4  # n - 2 ceiling

    def test_negative_distance_rejected(self, complete_graph):
        with pytest.raises(PrivacyError):
            local_sensitivity_triangles(complete_graph, -1)


def local_triangle_counts_value(graph: Graph) -> int:
    """Helper alias keeping test names readable."""
    return local_sensitivity_triangles(graph, 0)


class TestSmoothAndResidual:
    def test_smooth_at_least_local(self, complete_graph):
        local = local_sensitivity_triangles(complete_graph, 0)
        assert smooth_sensitivity_triangles(complete_graph, epsilon=1.0) >= local

    def test_residual_at_least_smooth(self, medium_cluster_graph):
        smooth = smooth_sensitivity_triangles(medium_cluster_graph, epsilon=1.0)
        residual = residual_sensitivity_triangles(medium_cluster_graph, epsilon=1.0)
        assert residual >= smooth

    def test_smooth_decreases_with_epsilon(self, medium_cluster_graph):
        loose = smooth_sensitivity_triangles(medium_cluster_graph, epsilon=0.1)
        tight = smooth_sensitivity_triangles(medium_cluster_graph, epsilon=2.0)
        assert loose >= tight

    def test_smooth_bounded_by_n_minus_2(self, medium_cluster_graph):
        value = smooth_sensitivity_triangles(medium_cluster_graph, epsilon=0.05)
        assert value <= medium_cluster_graph.num_nodes - 2

    def test_profile_ordering(self, medium_cluster_graph):
        local, smooth, residual = sensitivity_profile(medium_cluster_graph, epsilon=1.0)
        assert local <= smooth <= residual

    def test_invalid_epsilon(self, complete_graph):
        with pytest.raises(PrivacyError):
            smooth_sensitivity_triangles(complete_graph, epsilon=0)
        with pytest.raises(PrivacyError):
            residual_sensitivity_triangles(complete_graph, epsilon=-1)

    def test_invalid_gamma(self, complete_graph):
        with pytest.raises(PrivacyError):
            smooth_sensitivity_triangles(complete_graph, epsilon=1.0, gamma=0)
        with pytest.raises(PrivacyError):
            residual_sensitivity_triangles(complete_graph, epsilon=1.0, gamma=0)
