"""Dealer exhaustion and store-decline behaviour across every backend.

Two failure paths every counting backend must handle identically:

* **Dealer exhaustion** — when the correlated-randomness dealer cannot
  provision (injected as a :class:`~repro.exceptions.DealerError` at the
  ``dealer.provision`` fault site), the run fails *typed*, never with a
  wrong count or an opaque crash.
* **Store decline** — a :class:`~repro.parallel.TripleStore` whose entry
  budget is too small for the backend's batches must behave exactly like
  running without a store: the put is declined (or never attempted), the
  run re-deals, and the released count is unchanged.
"""

from __future__ import annotations

import pytest

from repro.core.backends import (
    BlockedMatrixTriangleCounter,
    FaithfulTriangleCounter,
    MatrixTriangleCounter,
    share_adjacency_rows,
)
from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.multiplication_groups import MultiplicationGroupDealer
from repro.exceptions import DealerError
from repro.graph.generators import erdos_renyi_graph
from repro.graph.triangles import count_triangles
from repro.parallel import TripleStore
from repro.resilience import FaultKind, FaultPlan, FaultSpec, install_fault_plan

BACKENDS = ("faithful", "batched", "matrix", "blocked")


def _backend(name: str, dealer_seed=None, **kwargs):
    if dealer_seed is not None:
        if name in ("faithful", "batched"):
            kwargs["dealer"] = MultiplicationGroupDealer(seed=dealer_seed)
        else:
            kwargs["dealer"] = BeaverTripleDealer(seed=dealer_seed)
    if name == "faithful":
        return FaithfulTriangleCounter(batch_size=1, **kwargs)
    if name == "batched":
        return FaithfulTriangleCounter(batch_size=32, **kwargs)
    if name == "matrix":
        return MatrixTriangleCounter(**kwargs)
    if name == "blocked":
        return BlockedMatrixTriangleCounter(block_size=5, **kwargs)
    raise AssertionError(name)


def _shares(num_nodes=12, density=0.5, seed=3):
    graph = erdos_renyi_graph(num_nodes, density, seed=seed)
    rows = graph.adjacency_matrix()
    share1, share2 = share_adjacency_rows(rows, rng=seed)
    return graph, share1, share2


@pytest.mark.parametrize("name", BACKENDS)
def test_dealer_exhaustion_is_a_typed_failure(name):
    graph, share1, share2 = _shares()
    plan = FaultPlan([FaultSpec("dealer.provision", FaultKind.EXHAUST, at=1)])
    with install_fault_plan(plan):
        with pytest.raises(DealerError):
            _backend(name).count_from_shares(share1, share2)
    assert [entry["site"] for entry in plan.triggered()] == ["dealer.provision"]


@pytest.mark.parametrize("name", BACKENDS)
def test_late_dealer_exhaustion_is_still_typed(name):
    # Exhaustion mid-run (not on the first provision) must not surface as a
    # partial result; the faithful/batched pools provision in blocks, the
    # matrix/blocked dealers per triple/tile.
    graph, share1, share2 = _shares()
    plan = FaultPlan([FaultSpec("dealer.provision", FaultKind.EXHAUST, at=2)])
    with install_fault_plan(plan):
        try:
            result = _backend(name).count_from_shares(share1, share2)
        except DealerError:
            return  # the typed failure is the expected outcome...
    # ...unless the backend legitimately provisions only once — then the
    # fault never fires and the count must be correct.
    assert result.reconstruct() == count_triangles(graph)


@pytest.mark.parametrize("name", BACKENDS)
def test_oversized_store_decline_matches_storeless_run(name):
    graph, share1, share2 = _shares()
    expected = count_triangles(graph)
    store = TripleStore(max_entry_bytes=1)  # every batch is oversized
    counted = _backend(name, triple_store=store).count_from_shares(share1, share2)
    assert counted.reconstruct() == expected
    # Nothing was admitted: a rerun against the same store re-deals cold and
    # still reconstructs the same count.
    assert store.stats()["entries"] == 0
    assert store.stats()["hits"] == 0
    recount = _backend(name, triple_store=store).count_from_shares(share1, share2)
    assert recount.reconstruct() == expected
    assert store.stats()["hits"] == 0


@pytest.mark.parametrize("name", BACKENDS)
def test_accepting_store_serves_second_run_warm(name):
    # Control for the decline test: with a generous budget the same flow
    # admits the batch and the second run hits.
    graph, share1, share2 = _shares()
    expected = count_triangles(graph)
    store = TripleStore()
    first = _backend(name, dealer_seed=11, triple_store=store).count_from_shares(
        share1, share2
    )
    second = _backend(name, dealer_seed=11, triple_store=store).count_from_shares(
        share1, share2
    )
    assert first.reconstruct() == expected
    assert second.reconstruct() == expected
    assert store.stats()["hits"] >= 1
