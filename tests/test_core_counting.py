"""Tests for repro.core.counting (Algorithm 4, faithful `Count`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.counting import (
    FaithfulTriangleCounter,
    iter_candidate_triples,
    share_adjacency_rows,
)
from repro.crypto.ring import Ring
from repro.crypto.sharing import reconstruct_vector
from repro.exceptions import ProtocolError
from repro.graph.generators import erdos_renyi_graph
from repro.graph.triangles import count_triangles


class TestShareAdjacencyRows:
    def test_shares_reconstruct_to_rows(self, triangle_graph):
        rows = triangle_graph.adjacency_matrix()
        share1, share2 = share_adjacency_rows(rows, rng=0)
        assert np.array_equal(reconstruct_vector(share1, share2), rows.astype(np.uint64))

    def test_single_share_hides_rows(self, triangle_graph):
        rows = triangle_graph.adjacency_matrix()
        share1, _ = share_adjacency_rows(rows, rng=1)
        assert not np.array_equal(share1, rows.astype(np.uint64))

    def test_rejects_non_square(self):
        with pytest.raises(ProtocolError):
            share_adjacency_rows(np.zeros((2, 3), dtype=np.int64))


class TestCandidateTriples:
    def test_count_matches_binomial(self):
        assert len(list(iter_candidate_triples(6))) == 20

    def test_strictly_increasing(self):
        assert all(i < j < k for i, j, k in iter_candidate_triples(5))

    def test_small_inputs(self):
        assert list(iter_candidate_triples(2)) == []
        assert list(iter_candidate_triples(0)) == []


class TestFaithfulCounting:
    @pytest.mark.parametrize("fixture_name", ["triangle_graph", "two_triangle_graph", "star_graph", "complete_graph"])
    def test_known_graphs(self, fixture_name, request):
        graph = request.getfixturevalue(fixture_name)
        counter = FaithfulTriangleCounter()
        result = counter.count(graph.adjacency_matrix(), rng=0)
        assert result.reconstruct() == count_triangles(graph)

    def test_random_graph(self):
        graph = erdos_renyi_graph(12, 0.4, seed=3)
        result = FaithfulTriangleCounter().count(graph.adjacency_matrix(), rng=1)
        assert result.reconstruct() == count_triangles(graph)

    def test_individual_shares_hide_count(self, complete_graph):
        result = FaithfulTriangleCounter().count(complete_graph.adjacency_matrix(), rng=2)
        true_count = count_triangles(complete_graph)
        assert result.share1 != true_count and result.share2 != true_count

    def test_triples_processed(self, complete_graph):
        result = FaithfulTriangleCounter().count(complete_graph.adjacency_matrix(), rng=3)
        assert result.num_triples_processed == 20
        assert result.opening_rounds == 20  # batch_size=1 -> one round per triple

    def test_batched_mode_matches_scalar_mode(self):
        graph = erdos_renyi_graph(14, 0.35, seed=4)
        rows = graph.adjacency_matrix()
        scalar = FaithfulTriangleCounter(batch_size=1).count(rows, rng=5)
        batched = FaithfulTriangleCounter(batch_size=64).count(rows, rng=5)
        assert scalar.reconstruct() == batched.reconstruct() == count_triangles(graph)
        assert batched.opening_rounds < scalar.opening_rounds

    def test_small_ring_still_correct(self):
        # 16 bits is ample for small counts; exercises the masking paths.
        graph = erdos_renyi_graph(10, 0.5, seed=6)
        counter = FaithfulTriangleCounter(ring=Ring(bits=16), batch_size=8)
        result = counter.count(graph.adjacency_matrix(), rng=7)
        assert result.reconstruct(Ring(bits=16)) == count_triangles(graph)

    def test_invalid_batch_size(self):
        with pytest.raises(ProtocolError):
            FaithfulTriangleCounter(batch_size=0)

    def test_mismatched_share_shapes(self):
        counter = FaithfulTriangleCounter()
        with pytest.raises(ProtocolError):
            counter.count_from_shares(
                np.zeros((3, 3), dtype=np.uint64), np.zeros((4, 4), dtype=np.uint64)
            )

    def test_asymmetric_projected_rows(self):
        """The count follows row-owner semantics exactly like the plaintext oracle."""
        from repro.core.projection import projected_triangle_count

        graph = erdos_renyi_graph(10, 0.5, seed=8)
        rows = graph.adjacency_matrix()
        rows[0, :] = 0  # user 0 reports no neighbours at all
        expected = projected_triangle_count(rows)
        result = FaithfulTriangleCounter(batch_size=16).count(rows, rng=9)
        assert result.reconstruct() == expected


class TestCandidateTripleBlocks:
    def test_blocks_reproduce_scalar_enumeration(self):
        from repro.core.backends.faithful import candidate_triple_blocks

        for num_users in (0, 2, 3, 7, 12):
            for batch_size in (1, 3, 64):
                flat = [
                    (int(i), int(j), int(k))
                    for ii, jj, kk in candidate_triple_blocks(num_users, batch_size)
                    for i, j, k in zip(ii, jj, kk)
                ]
                assert flat == list(iter_candidate_triples(num_users)), (num_users, batch_size)

    def test_all_blocks_full_except_last(self):
        from repro.core.backends.faithful import candidate_triple_blocks

        blocks = list(candidate_triple_blocks(9, 16))  # C(9,3) = 84 triples
        assert [b[0].shape[0] for b in blocks[:-1]] == [16] * (len(blocks) - 1)
        assert sum(b[0].shape[0] for b in blocks) == 84

    def test_invalid_batch_size(self):
        from repro.core.backends.faithful import candidate_triple_blocks

        with pytest.raises(ProtocolError):
            list(candidate_triple_blocks(5, 0))

    def test_num_candidate_triples(self):
        from repro.core.backends.faithful import num_candidate_triples

        assert num_candidate_triples(2) == 0
        assert num_candidate_triples(6) == 20
