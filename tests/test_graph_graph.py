"""Tests for repro.graph.graph.Graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph(5)
        assert graph.num_nodes == 5
        assert graph.num_edges == 0

    def test_edges_at_construction(self):
        graph = Graph(3, edges=[(0, 1), (1, 2)])
        assert graph.num_edges == 2

    def test_duplicate_edges_collapse(self):
        graph = Graph(3, edges=[(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, edges=[(1, 1)])

    def test_out_of_range_node_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, edges=[(0, 2)])


class TestMutation:
    def test_add_edge_is_symmetric(self):
        graph = Graph(3)
        graph.add_edge(0, 2)
        assert graph.has_edge(0, 2)
        assert graph.has_edge(2, 0)

    def test_add_edge_returns_whether_new(self):
        graph = Graph(3)
        assert graph.add_edge(0, 1) is True
        assert graph.add_edge(0, 1) is False

    def test_remove_edge(self):
        graph = Graph(3, edges=[(0, 1)])
        assert graph.remove_edge(1, 0) is True
        assert graph.num_edges == 0
        assert graph.remove_edge(0, 1) is False

    def test_copy_is_independent(self):
        graph = Graph(3, edges=[(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert graph.num_edges == 1
        assert clone.num_edges == 2
        assert graph == Graph(3, edges=[(0, 1)])


class TestDegrees:
    def test_degrees(self, triangle_graph):
        assert triangle_graph.degrees() == [2, 2, 3, 1]

    def test_max_degree(self, triangle_graph):
        assert triangle_graph.max_degree() == 3

    def test_max_degree_empty(self):
        assert Graph(0).max_degree() == 0

    def test_degree_out_of_range(self, triangle_graph):
        with pytest.raises(GraphError):
            triangle_graph.degree(99)


class TestViews:
    def test_adjacency_bit_vector(self, triangle_graph):
        row = triangle_graph.adjacency_bit_vector(2)
        assert row.tolist() == [1, 1, 0, 1]

    def test_adjacency_matrix_symmetric(self, triangle_graph):
        matrix = triangle_graph.adjacency_matrix()
        assert np.array_equal(matrix, matrix.T)
        assert matrix.sum() == 2 * triangle_graph.num_edges
        assert np.all(np.diag(matrix) == 0)

    def test_edges_yielded_once(self, triangle_graph):
        edges = list(triangle_graph.edges())
        assert len(edges) == triangle_graph.num_edges
        assert all(u < v for u, v in edges)

    def test_edge_list_sorted(self, triangle_graph):
        assert triangle_graph.edge_list() == [(0, 1), (0, 2), (1, 2), (2, 3)]

    def test_adjacency_lists_sorted(self, triangle_graph):
        assert triangle_graph.adjacency_lists()[2] == [0, 1, 3]

    def test_neighbors_returns_copy(self, triangle_graph):
        neighbours = triangle_graph.neighbors(0)
        neighbours.add(99)
        assert 99 not in triangle_graph.neighbors(0)


class TestDerivedGraphs:
    def test_subgraph_relabels(self, triangle_graph):
        sub = triangle_graph.subgraph([0, 1, 2])
        assert sub.num_nodes == 3
        assert sub.num_edges == 3

    def test_subgraph_duplicate_node_rejected(self, triangle_graph):
        with pytest.raises(GraphError):
            triangle_graph.subgraph([0, 0])

    def test_from_adjacency_matrix_roundtrip(self, triangle_graph):
        rebuilt = Graph.from_adjacency_matrix(triangle_graph.adjacency_matrix())
        assert rebuilt == triangle_graph

    def test_from_adjacency_matrix_rejects_asymmetric(self):
        matrix = np.zeros((3, 3), dtype=int)
        matrix[0, 1] = 1
        with pytest.raises(GraphError):
            Graph.from_adjacency_matrix(matrix)

    def test_from_adjacency_matrix_rejects_diagonal(self):
        matrix = np.eye(3, dtype=int)
        with pytest.raises(GraphError):
            Graph.from_adjacency_matrix(matrix)

    def test_from_adjacency_matrix_rejects_non_square(self):
        with pytest.raises(GraphError):
            Graph.from_adjacency_matrix(np.zeros((2, 3), dtype=int))

    def test_equality(self):
        assert Graph(2, edges=[(0, 1)]) == Graph(2, edges=[(1, 0)])
        assert Graph(2) != Graph(3)
        assert Graph(2) != "not a graph"
