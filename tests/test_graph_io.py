"""Tests for repro.graph.io."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.graph.generators import erdos_renyi_graph
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list, write_edge_list


class TestRoundTrip:
    def test_write_then_read(self, tmp_path, small_random_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(small_random_graph, path, header="round trip")
        loaded = read_edge_list(
            path, num_nodes=small_random_graph.num_nodes, relabel=False
        )
        assert loaded.num_edges == small_random_graph.num_edges
        assert sorted(loaded.edges()) == sorted(small_random_graph.edges())

    def test_header_written_as_comment(self, tmp_path, triangle_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(triangle_graph, path, header="first line\nsecond line")
        content = path.read_text()
        assert content.startswith("# first line")
        assert "# second line" in content

    def test_parent_directory_created(self, tmp_path, triangle_graph):
        path = tmp_path / "nested" / "dir" / "graph.txt"
        write_edge_list(triangle_graph, path)
        assert path.exists()


class TestReading:
    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_directed_duplicates_collapse(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n")
        assert read_edge_list(path).num_edges == 1

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        assert read_edge_list(path).num_edges == 1

    def test_relabelling_compacts_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 200\n200 300\n")
        graph = read_edge_list(path)
        assert graph.num_nodes == 3

    def test_no_relabel_uses_raw_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 5\n")
        graph = read_edge_list(path, relabel=False)
        assert graph.num_nodes == 6
        assert graph.has_edge(0, 5)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            read_edge_list(tmp_path / "missing.txt")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(DatasetError):
            read_edge_list(path)

    def test_non_integer_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(DatasetError):
            read_edge_list(path)

    def test_num_nodes_too_small(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        with pytest.raises(DatasetError):
            read_edge_list(path, num_nodes=2)
