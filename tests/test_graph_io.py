"""Tests for repro.graph.io."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.graph.generators import erdos_renyi_graph
from repro.graph.graph import Graph
from repro.graph.io import (
    iter_edge_list,
    read_degree_vector,
    read_edge_list,
    write_edge_list,
)


class TestRoundTrip:
    def test_write_then_read(self, tmp_path, small_random_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(small_random_graph, path, header="round trip")
        loaded = read_edge_list(
            path, num_nodes=small_random_graph.num_nodes, relabel=False
        )
        assert loaded.num_edges == small_random_graph.num_edges
        assert sorted(loaded.edges()) == sorted(small_random_graph.edges())

    def test_header_written_as_comment(self, tmp_path, triangle_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(triangle_graph, path, header="first line\nsecond line")
        content = path.read_text()
        assert content.startswith("# first line")
        assert "# second line" in content

    def test_parent_directory_created(self, tmp_path, triangle_graph):
        path = tmp_path / "nested" / "dir" / "graph.txt"
        write_edge_list(triangle_graph, path)
        assert path.exists()


class TestReading:
    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_directed_duplicates_collapse(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 0\n")
        assert read_edge_list(path).num_edges == 1

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        assert read_edge_list(path).num_edges == 1

    def test_relabelling_compacts_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 200\n200 300\n")
        graph = read_edge_list(path)
        assert graph.num_nodes == 3

    def test_no_relabel_uses_raw_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 5\n")
        graph = read_edge_list(path, relabel=False)
        assert graph.num_nodes == 6
        assert graph.has_edge(0, 5)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            read_edge_list(tmp_path / "missing.txt")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(DatasetError):
            read_edge_list(path)

    def test_non_integer_ids(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(DatasetError):
            read_edge_list(path)

    def test_num_nodes_too_small(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        with pytest.raises(DatasetError):
            read_edge_list(path, num_nodes=2)


class TestStreamingReaders:
    def _write(self, tmp_path, text):
        path = tmp_path / "edges.txt"
        path.write_text(text)
        return path

    def test_iter_edge_list_streams_pairs(self, tmp_path):
        path = self._write(tmp_path, "# header\n0 1\n2 3\n3 3\n1 0\n")
        assert list(iter_edge_list(path)) == [(0, 1), (2, 3), (1, 0)]

    def test_iter_edge_list_is_lazy(self, tmp_path):
        path = self._write(tmp_path, "0 1\nbroken\n2 3\n")
        iterator = iter_edge_list(path)
        assert next(iterator) == (0, 1)
        with pytest.raises(DatasetError, match="expected 'u v'"):
            next(iterator)

    def test_read_degree_vector_matches_graph(self, tmp_path, small_random_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(small_random_graph, path)
        vector = read_degree_vector(
            path, num_nodes=small_random_graph.num_nodes, relabel=False
        )
        assert vector.tolist() == small_random_graph.degrees()

    def test_read_degree_vector_collapses_duplicates(self, tmp_path):
        path = self._write(tmp_path, "0 1\n1 0\n0 1\n1 2\n")
        assert read_degree_vector(path).tolist() == [1, 2, 1]

    def test_read_degree_vector_num_nodes_pads_isolated(self, tmp_path):
        path = self._write(tmp_path, "0 1\n")
        assert read_degree_vector(path, num_nodes=4).tolist() == [1, 1, 0, 0]

    def test_read_degree_vector_num_nodes_too_small(self, tmp_path):
        path = self._write(tmp_path, "0 1\n2 3\n")
        with pytest.raises(DatasetError, match="smaller"):
            read_degree_vector(path, num_nodes=2)
