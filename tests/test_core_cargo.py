"""Tests for repro.core.cargo — the end-to-end protocol (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cargo import Cargo
from repro.core.config import CargoConfig, CountingBackend
from repro.graph.datasets import load_dataset
from repro.graph.generators import erdos_renyi_graph, powerlaw_cluster_graph
from repro.graph.triangles import count_triangles


class TestCargoEndToEnd:
    def test_estimate_close_to_truth_at_moderate_epsilon(self):
        graph = load_dataset("facebook", num_nodes=150)
        result = Cargo(CargoConfig(epsilon=2.0, seed=0)).run(graph)
        assert result.true_triangle_count == count_triangles(graph)
        assert result.relative_error < 0.2

    def test_result_fields_consistent(self):
        graph = powerlaw_cluster_graph(80, 4, 0.6, seed=1)
        result = Cargo(CargoConfig(epsilon=2.0, seed=1)).run(graph)
        assert result.epsilon == pytest.approx(2.0)
        assert result.epsilon1 == pytest.approx(0.2)
        assert result.epsilon2 == pytest.approx(1.8)
        assert result.projected_triangle_count <= result.true_triangle_count
        assert result.projection_loss >= 0
        assert result.l2_loss == pytest.approx(
            (result.true_triangle_count - result.noisy_triangle_count) ** 2
        )
        assert result.backend == "matrix"

    def test_timings_recorded(self):
        graph = erdos_renyi_graph(50, 0.2, seed=2)
        result = Cargo(CargoConfig(epsilon=1.0, seed=2)).run(graph)
        assert {"total", "max", "project", "count", "perturb"} <= set(result.timings)
        assert result.timings["total"] >= result.timings["count"]

    def test_deterministic_given_seed(self):
        graph = erdos_renyi_graph(40, 0.3, seed=3)
        first = Cargo(CargoConfig(epsilon=2.0, seed=42)).run(graph)
        second = Cargo(CargoConfig(epsilon=2.0, seed=42)).run(graph)
        assert first.noisy_triangle_count == second.noisy_triangle_count

    def test_different_seeds_differ(self):
        graph = erdos_renyi_graph(40, 0.3, seed=4)
        first = Cargo(CargoConfig(epsilon=2.0, seed=1)).run(graph)
        second = Cargo(CargoConfig(epsilon=2.0, seed=2)).run(graph)
        assert first.noisy_triangle_count != second.noisy_triangle_count

    def test_default_config(self):
        graph = erdos_renyi_graph(30, 0.3, seed=5)
        result = Cargo().run(graph)
        assert np.isfinite(result.noisy_triangle_count)

    def test_zero_triangle_graph(self, star_graph):
        result = Cargo(CargoConfig(epsilon=2.0, seed=6)).run(star_graph)
        assert result.true_triangle_count == 0
        assert result.relative_error == float("inf")

    def test_communication_tracking(self):
        graph = erdos_renyi_graph(20, 0.3, seed=7)
        result = Cargo(CargoConfig(epsilon=2.0, seed=7, track_communication=True)).run(graph)
        assert result.communication  # ledger has per-channel entries
        total_messages = sum(entry["messages"] for entry in result.communication.values())
        assert total_messages >= 20  # at least one message per user

    def test_views_recorded_when_requested(self):
        graph = erdos_renyi_graph(15, 0.3, seed=8)
        cargo = Cargo(CargoConfig(epsilon=2.0, seed=8, record_views=True))
        cargo.run(graph)
        assert cargo.views is not None
        assert len(cargo.views.view(1)) > 0


class TestBackends:
    def test_all_backends_agree_on_projected_count(self):
        graph = erdos_renyi_graph(14, 0.4, seed=9)
        estimates = {}
        for backend in (
            CountingBackend.MATRIX,
            CountingBackend.BATCHED,
            CountingBackend.FAITHFUL,
            CountingBackend.BLOCKED,
        ):
            config = CargoConfig(epsilon=2.0, seed=11, counting_backend=backend, block_size=4)
            result = Cargo(config).run(graph)
            estimates[backend] = result
        # Same seed -> same Max/projection/noise, so the final outputs agree
        # regardless of the secure counting backend.
        values = [round(result.noisy_triangle_count, 6) for result in estimates.values()]
        assert len(set(values)) == 1

    def test_backend_name_reported(self):
        graph = erdos_renyi_graph(12, 0.4, seed=10)
        result = Cargo(CargoConfig(epsilon=2.0, seed=12, counting_backend="batched")).run(graph)
        assert result.backend == "batched"


class TestUtilityTrends:
    def test_error_decreases_with_epsilon(self):
        graph = load_dataset("wiki", num_nodes=150)
        errors = {}
        for epsilon in (0.5, 4.0):
            trials = [
                Cargo(CargoConfig(epsilon=epsilon, seed=seed)).run(graph).l2_loss
                for seed in range(4)
            ]
            errors[epsilon] = np.mean(trials)
        assert errors[4.0] < errors[0.5]

    def test_projection_loss_zero_when_dmax_not_exceeded(self):
        graph = erdos_renyi_graph(60, 0.1, seed=13)
        # With a generous epsilon the noisy max degree rarely dips below d_max.
        result = Cargo(CargoConfig(epsilon=20.0, seed=13)).run(graph)
        assert result.projection_loss == 0
