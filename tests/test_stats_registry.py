"""The statistic registry and its wiring into the configurations."""

from __future__ import annotations

import pytest

from repro.core.config import CargoConfig
from repro.exceptions import ConfigurationError
from repro.stats import (
    FourCycleStatistic,
    KStarStatistic,
    SubgraphStatistic,
    TriangleStatistic,
    available_statistics,
    create_statistic,
    get_statistic_factory,
    register_statistic,
    resolve_statistic_name,
    statistic_registered,
    unregister_statistic,
)
from repro.stream.orchestrator import StreamingConfig


class TestRegistry:
    def test_builtins_registered(self):
        assert available_statistics() == ["4cycles", "kstars", "triangles", "wedges"]

    def test_create_builtin_instances(self):
        assert isinstance(create_statistic("triangles"), TriangleStatistic)
        assert isinstance(create_statistic("4cycles"), FourCycleStatistic)
        kstars = create_statistic("kstars")
        assert isinstance(kstars, KStarStatistic) and kstars.k == 2

    def test_wedges_alias_is_two_star(self):
        wedges = create_statistic("wedges")
        assert isinstance(wedges, KStarStatistic)
        assert wedges.k == 2

    def test_star_k_flows_from_config(self):
        config = CargoConfig(statistic="kstars", star_k=4)
        statistic = create_statistic(config.statistic, config)
        assert statistic.k == 4

    def test_resolve_normalises_case(self):
        assert resolve_statistic_name("TRIANGLES") == "triangles"
        assert statistic_registered("Triangles")

    def test_unknown_statistic_raises_with_listing(self):
        with pytest.raises(ConfigurationError, match="registered:"):
            get_statistic_factory("5-cliques")

    def test_register_and_unregister_custom(self):
        @register_statistic("test-custom-stat")
        class _Custom(TriangleStatistic):
            name = "test-custom-stat"

        try:
            assert statistic_registered("test-custom-stat")
            assert isinstance(create_statistic("test-custom-stat"), _Custom)
        finally:
            unregister_statistic("test-custom-stat")
        assert not statistic_registered("test-custom-stat")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_statistic("triangles")(TriangleStatistic)

    def test_non_statistic_class_rejected(self):
        with pytest.raises(ConfigurationError, match="must subclass"):
            register_statistic("test-bogus")(dict)
        assert not statistic_registered("test-bogus")


class TestConfigWiring:
    def test_default_statistic_is_triangles(self):
        assert CargoConfig().statistic == "triangles"
        assert StreamingConfig().statistic == "triangles"

    def test_statistic_name_normalised(self):
        assert CargoConfig(statistic="Wedges").statistic == "wedges"
        assert StreamingConfig(statistic="4Cycles").statistic == "4cycles"

    def test_unknown_statistic_rejected_eagerly(self):
        with pytest.raises(ConfigurationError, match="unknown statistic"):
            CargoConfig(statistic="pentagons")
        with pytest.raises(ConfigurationError, match="unknown statistic"):
            StreamingConfig(statistic="pentagons")

    def test_invalid_star_k_rejected(self):
        with pytest.raises(ConfigurationError, match="star_k"):
            CargoConfig(star_k=0)
        with pytest.raises(ConfigurationError, match="star_k"):
            StreamingConfig(star_k=-1)


class TestAbstraction:
    def test_release_scale_and_finalise(self):
        assert TriangleStatistic().finalise(10.0) == 10.0
        assert FourCycleStatistic().finalise(10.0) == 2.5

    def test_secure_output_sensitivity_scales(self):
        stat = FourCycleStatistic()
        assert stat.secure_output_sensitivity(5.0) == 4 * stat.statistic_sensitivity(5.0)

    def test_candidate_geometry(self):
        assert TriangleStatistic().num_candidates(6) == 20
        assert FourCycleStatistic().num_candidates(6) == 15
        assert KStarStatistic().num_candidates(6) == 6
        assert TriangleStatistic().num_candidates(2) == 0
        assert FourCycleStatistic().num_candidates(1) == 0

    def test_abstract_base_rejects_partial_subclass(self):
        class _Partial(SubgraphStatistic):
            pass

        with pytest.raises(TypeError):
            _Partial()
