"""Randomized chaos schedules over the full protocol stack.

Property: under *any* deterministic fault schedule, a run either

* completes with output bit-identical to the fault-free reference (faults
  were absorbed by retries / integrity-triggered re-dealing), or
* dies with an :class:`InjectedCrash` (simulated kill) and, resumed from its
  checkpoint, then completes bit-identically, or
* fails with a *typed* :class:`~repro.exceptions.ReproError`.

What must never happen is a silently wrong result or an untyped crash.
Every schedule derives from a seed, so any failure here replays exactly.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.graph.generators import erdos_renyi_graph
from repro.resilience import (
    FaultPlan,
    InjectedCrash,
    ResilienceConfig,
    RetryPolicy,
    install_fault_plan,
)
from repro.stream.events import replay_stream
from repro.stream.orchestrator import StreamingCargo, StreamingConfig

CHAOS_SEEDS = range(8)
MAX_RESUMES = 12


def _stream(seed=5):
    graph = erdos_renyi_graph(60, 0.3, seed=seed)
    return replay_stream(graph, rng=seed)


def _config(resilience=None):
    return StreamingConfig(
        epsilon=4.0,
        release_every=40,
        anchor_every=2,
        seed=11,
        resilience=resilience,
    )


@pytest.mark.parametrize("chaos_seed", CHAOS_SEEDS)
def test_streaming_survives_random_fault_schedules(tmp_path, chaos_seed):
    reference = StreamingCargo(_config()).run(_stream())
    plan = FaultPlan.random(seed=chaos_seed, num_faults=5, max_at=6)
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=3, sleep=lambda _delay: None),
        checkpoint_path=tmp_path / "chaos.ckpt",
        resume=True,
    )
    result = None
    with install_fault_plan(plan):
        for _attempt in range(MAX_RESUMES):
            try:
                result = StreamingCargo(_config(resilience)).run(_stream())
                break
            except InjectedCrash:
                continue  # killed: resume from the checkpoint
            except ReproError:
                return  # typed failure is an acceptable outcome
    assert result is not None, (
        f"chaos seed {chaos_seed} still crashing after {MAX_RESUMES} resumes: "
        f"{plan.to_json()}"
    )
    assert result.releases == reference.releases, plan.to_json()
    assert result.ledger == reference.ledger, plan.to_json()
    assert result.epsilon_spent == reference.epsilon_spent


def test_chaos_schedule_artifact_is_replayable():
    # The JSON artefact a chaos CI job archives is enough to rebuild and
    # re-fire the exact schedule.
    plan = FaultPlan.random(seed=3, num_faults=4)
    replay = FaultPlan.from_json(plan.to_json())
    with install_fault_plan(replay):
        outcomes = []
        for spec in plan.specs:
            for _ in range(spec.at):
                try:
                    replayed = replay.trigger(spec.site)
                except Exception as error:  # noqa: BLE001 - recording kinds
                    outcomes.append(type(error).__name__)
                    break
                if replayed is not None:
                    outcomes.append(replayed.kind.value)
                    break
    assert outcomes  # every pinned fault re-fired deterministically
