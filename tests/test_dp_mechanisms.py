"""Tests for repro.dp.mechanisms."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dp.mechanisms import GeometricMechanism, LaplaceMechanism, RandomizedResponse
from repro.exceptions import PrivacyError


class TestLaplaceMechanism:
    def test_scale_and_variance(self):
        mechanism = LaplaceMechanism(epsilon=2.0, sensitivity=10.0)
        assert mechanism.scale == pytest.approx(5.0)
        assert mechanism.variance == pytest.approx(50.0)

    def test_randomize_scalar(self):
        mechanism = LaplaceMechanism(epsilon=1.0)
        value = mechanism.randomize(100.0, rng=0)
        assert value != 100.0
        assert abs(value - 100.0) < 50  # Laplace(1) tail at 50 is negligible

    def test_randomize_array(self):
        mechanism = LaplaceMechanism(epsilon=1.0)
        values = mechanism.randomize(np.zeros(100), rng=1)
        assert values.shape == (100,)
        assert not np.allclose(values, 0.0)

    def test_noise_is_approximately_unbiased(self):
        mechanism = LaplaceMechanism(epsilon=1.0, sensitivity=1.0)
        noise = mechanism.sample_noise(rng=2, size=200_000)
        assert abs(float(np.mean(noise))) < 0.02

    def test_empirical_variance_matches(self):
        mechanism = LaplaceMechanism(epsilon=0.5, sensitivity=2.0)
        noise = mechanism.sample_noise(rng=3, size=200_000)
        assert float(np.var(noise)) == pytest.approx(mechanism.variance, rel=0.05)

    def test_deterministic_with_seed(self):
        mechanism = LaplaceMechanism(epsilon=1.0)
        assert mechanism.sample_noise(rng=4) == mechanism.sample_noise(rng=4)

    @pytest.mark.parametrize("epsilon", [0, -1, float("inf"), float("nan")])
    def test_invalid_epsilon(self, epsilon):
        with pytest.raises(PrivacyError):
            LaplaceMechanism(epsilon=epsilon)

    @pytest.mark.parametrize("sensitivity", [0, -2])
    def test_invalid_sensitivity(self, sensitivity):
        with pytest.raises(PrivacyError):
            LaplaceMechanism(epsilon=1.0, sensitivity=sensitivity)


class TestGeometricMechanism:
    def test_noise_is_integer(self):
        mechanism = GeometricMechanism(epsilon=1.0)
        assert isinstance(mechanism.sample_noise(rng=0), int)

    def test_randomize_keeps_integrality(self):
        mechanism = GeometricMechanism(epsilon=0.5, sensitivity=3.0)
        assert isinstance(mechanism.randomize(10, rng=1), int)

    def test_alpha(self):
        mechanism = GeometricMechanism(epsilon=2.0, sensitivity=4.0)
        assert mechanism.alpha == pytest.approx(math.exp(-0.5))

    def test_empirical_variance(self):
        mechanism = GeometricMechanism(epsilon=1.0)
        noise = mechanism.sample_noise(rng=2, size=200_000)
        assert float(np.var(noise)) == pytest.approx(mechanism.variance, rel=0.05)

    def test_array_output_dtype(self):
        mechanism = GeometricMechanism(epsilon=1.0)
        assert mechanism.sample_noise(rng=3, size=10).dtype == np.int64

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyError):
            GeometricMechanism(epsilon=0)


class TestRandomizedResponse:
    def test_probabilities_sum_to_one(self):
        response = RandomizedResponse(epsilon=1.0)
        assert response.keep_probability + response.flip_probability == pytest.approx(1.0)
        assert response.keep_probability == pytest.approx(math.e / (math.e + 1))

    def test_higher_epsilon_keeps_more(self):
        assert RandomizedResponse(4.0).keep_probability > RandomizedResponse(0.5).keep_probability

    def test_randomize_bit_output_domain(self, rng):
        response = RandomizedResponse(epsilon=1.0)
        outputs = {response.randomize_bit(1, rng) for _ in range(100)}
        assert outputs <= {0, 1}

    def test_randomize_bit_rejects_non_bit(self):
        with pytest.raises(PrivacyError):
            RandomizedResponse(1.0).randomize_bit(2)

    def test_randomize_bits_flip_rate(self):
        response = RandomizedResponse(epsilon=1.0)
        bits = np.ones(100_000, dtype=np.int64)
        noisy = response.randomize_bits(bits, rng=0)
        flip_rate = 1.0 - float(noisy.mean())
        assert flip_rate == pytest.approx(response.flip_probability, abs=0.01)

    def test_randomize_bits_rejects_non_binary(self):
        with pytest.raises(PrivacyError):
            RandomizedResponse(1.0).randomize_bits(np.array([0, 2]))

    def test_unbias_count_recovers_truth(self):
        response = RandomizedResponse(epsilon=2.0)
        total = 50_000
        true_ones = 12_000
        bits = np.zeros(total, dtype=np.int64)
        bits[:true_ones] = 1
        noisy = response.randomize_bits(bits, rng=1)
        estimate = response.unbias_count(float(noisy.sum()), total)
        assert estimate == pytest.approx(true_ones, rel=0.03)

    def test_unbias_count_negative_total(self):
        with pytest.raises(PrivacyError):
            RandomizedResponse(1.0).unbias_count(1.0, -1)

    def test_epsilon_ldp_bound_on_single_bit(self):
        """P[output=1 | 1] / P[output=1 | 0] <= e^eps (the LDP inequality)."""
        epsilon = 0.8
        response = RandomizedResponse(epsilon=epsilon)
        ratio = response.keep_probability / response.flip_probability
        assert ratio <= math.exp(epsilon) + 1e-9
