"""Crash-safe tile-window journal for the blocked backend.

The windowed pipeline journals each completed chunk of tile groups; a run
killed mid-count resumes from the journal and must produce a transcript —
released count, opening rounds, recorded server views, communication ledger,
dealer accounting — bit-identical to a run that was never interrupted.
Sub-dealer substreams make the skipped chunks' randomness independent of
whether they were actually re-executed, which is what the suite pins.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cargo import Cargo
from repro.core.config import CargoConfig, CountingBackend
from repro.graph.generators import erdos_renyi_graph
from repro.resilience import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    ResilienceConfig,
    RetryPolicy,
    install_fault_plan,
)


def _graph(num_nodes=60, seed=7):
    return erdos_renyi_graph(num_nodes, 0.3, seed=seed)


def _config(resilience=None, **overrides):
    fields = dict(
        epsilon=2.0,
        counting_backend=CountingBackend.BLOCKED,
        block_size=16,
        tile_window=2,
        workers=2,
        seed=123,
        record_views=True,
        track_communication=True,
    )
    fields.update(overrides)
    return CargoConfig(resilience=resilience, **fields)


def _entries_equal(a, b):
    if len(a) != len(b):
        return False
    for ea, eb in zip(a, b):
        if ea.label != eb.label or ea.server_index != eb.server_index:
            return False
        if not _values_equal(ea.value, eb.value):
            return False
    return True


def _values_equal(va, vb):
    if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
        return (
            isinstance(va, np.ndarray)
            and isinstance(vb, np.ndarray)
            and np.array_equal(va, vb)
        )
    if isinstance(va, (tuple, list)):
        return (
            type(va) is type(vb)
            and len(va) == len(vb)
            and all(_values_equal(x, y) for x, y in zip(va, vb))
        )
    return va == vb


def _assert_transcripts_match(cargo_a, result_a, cargo_b, result_b):
    assert result_a.noisy_count == result_b.noisy_count
    assert result_a.true_count == result_b.true_count
    assert (result_a.epsilon1, result_a.epsilon2) == (
        result_b.epsilon1,
        result_b.epsilon2,
    )
    assert result_a.communication == result_b.communication
    assert result_a.communication_phases == result_b.communication_phases
    for server in (1, 2):
        assert _entries_equal(
            cargo_a.views.view(server).entries, cargo_b.views.view(server).entries
        )


@pytest.mark.parametrize("crash_at_task", [2, 5, 9])
def test_kill_and_resume_is_bit_identical(tmp_path, crash_at_task):
    graph = _graph()
    ref_cargo = Cargo(_config())
    reference = ref_cargo.run(graph)

    ckpt = tmp_path / "tiles.ckpt"
    resilience = ResilienceConfig(checkpoint_path=ckpt, resume=True)
    plan = FaultPlan([FaultSpec("pool.task", FaultKind.CRASH, at=crash_at_task)])
    with install_fault_plan(plan):
        with pytest.raises(InjectedCrash):
            Cargo(_config(resilience)).run(graph)
    out_cargo = Cargo(_config(resilience))
    resumed = out_cargo.run(graph)
    _assert_transcripts_match(ref_cargo, reference, out_cargo, resumed)


def test_journal_alone_does_not_change_output(tmp_path):
    graph = _graph()
    ref_cargo = Cargo(_config())
    reference = ref_cargo.run(graph)
    resilience = ResilienceConfig(checkpoint_path=tmp_path / "tiles.ckpt")
    out_cargo = Cargo(_config(resilience))
    result = out_cargo.run(graph)
    _assert_transcripts_match(ref_cargo, reference, out_cargo, result)
    assert (tmp_path / "tiles.ckpt").exists()


def test_transient_pool_faults_retry_transparently(tmp_path):
    # OSErrors inside tile tasks retry under the policy; the transcript is
    # unchanged because a retried group replays the same dealt material.
    graph = _graph()
    ref_cargo = Cargo(_config())
    reference = ref_cargo.run(graph)
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=3, sleep=lambda _delay: None)
    )
    plan = FaultPlan(
        [
            FaultSpec("pool.task", FaultKind.OSERROR, at=2),
            FaultSpec("pool.task", FaultKind.OSERROR, at=7),
        ]
    )
    with install_fault_plan(plan):
        out_cargo = Cargo(_config(resilience))
        result = out_cargo.run(graph)
    _assert_transcripts_match(ref_cargo, reference, out_cargo, result)
    assert len(plan.triggered()) == 2


def test_checkpoint_every_throttles_saves(tmp_path):
    graph = _graph()
    resilience = ResilienceConfig(
        checkpoint_path=tmp_path / "tiles.ckpt", checkpoint_every=2, resume=True
    )
    plan = FaultPlan([FaultSpec("pool.task", FaultKind.CRASH, at=9)])
    with install_fault_plan(plan):
        with pytest.raises(InjectedCrash):
            Cargo(_config(resilience)).run(graph)
    ref_cargo = Cargo(_config())
    reference = ref_cargo.run(graph)
    out_cargo = Cargo(_config(resilience))
    resumed = out_cargo.run(graph)
    _assert_transcripts_match(ref_cargo, reference, out_cargo, resumed)


def test_serial_windowed_run_also_journals(tmp_path):
    # workers=1 exercises the inline (non-executor) pool path.
    graph = _graph(num_nodes=40)
    ref_cargo = Cargo(_config(workers=1))
    reference = ref_cargo.run(graph)
    ckpt = tmp_path / "tiles.ckpt"
    resilience = ResilienceConfig(checkpoint_path=ckpt, resume=True)
    plan = FaultPlan([FaultSpec("pool.task", FaultKind.CRASH, at=3)])
    with install_fault_plan(plan):
        with pytest.raises(InjectedCrash):
            Cargo(_config(resilience, workers=1)).run(graph)
    out_cargo = Cargo(_config(resilience, workers=1))
    resumed = out_cargo.run(graph)
    _assert_transcripts_match(ref_cargo, reference, out_cargo, resumed)
