"""Tests for repro.core.projection (Algorithm 3, `Project`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.projection import (
    SimilarityProjection,
    degree_similarity,
    projected_triangle_count,
)
from repro.baselines.random_projection import RandomProjection
from repro.exceptions import ConfigurationError
from repro.graph.datasets import load_dataset
from repro.graph.graph import Graph
from repro.graph.triangles import count_triangles


class TestDegreeSimilarity:
    def test_identical_degrees(self):
        assert degree_similarity(10, 10) == 0.0

    def test_relative_difference(self):
        assert degree_similarity(10, 5) == pytest.approx(0.5)
        assert degree_similarity(10, 15) == pytest.approx(0.5)

    def test_asymmetry_of_definition(self):
        # DS is normalised by the *own* degree (Definition 5).
        assert degree_similarity(5, 10) == pytest.approx(1.0)
        assert degree_similarity(10, 5) == pytest.approx(0.5)

    def test_zero_own_degree_rejected(self):
        with pytest.raises(ConfigurationError):
            degree_similarity(0, 3)


class TestProjectUser:
    def test_under_bound_unchanged(self):
        projection = SimilarityProjection(degree_bound=5)
        bits = np.array([0, 1, 1, 0, 0])
        assert np.array_equal(projection.project_user(bits, 2, [1.0] * 5), bits)

    def test_over_bound_keeps_most_similar(self):
        projection = SimilarityProjection(degree_bound=2)
        # User 0 has degree 4 with neighbours 1..4 whose noisy degrees differ.
        bits = np.array([0, 1, 1, 1, 1])
        noisy_degrees = [4.0, 4.0, 3.9, 1.0, 100.0]
        projected = projection.project_user(bits, 4, noisy_degrees)
        assert projected.sum() == 2
        assert projected[1] == 1 and projected[2] == 1  # most similar degrees kept
        assert projected[3] == 0 and projected[4] == 0

    def test_result_is_binary(self):
        projection = SimilarityProjection(degree_bound=1)
        projected = projection.project_user(np.array([0, 1, 1, 1]), 3, [3, 3, 3, 3])
        assert set(np.unique(projected)) <= {0, 1}

    def test_negative_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            SimilarityProjection(-1)


class TestProjectGraph:
    def test_bounded_degree_invariant(self, medium_cluster_graph):
        bound = 8
        result = SimilarityProjection(bound).project_graph(medium_cluster_graph)
        row_degrees = result.projected_rows.sum(axis=1)
        assert int(row_degrees.max()) <= bound

    def test_projection_only_removes_edges(self, medium_cluster_graph):
        result = SimilarityProjection(8).project_graph(medium_cluster_graph)
        adjacency = medium_cluster_graph.adjacency_matrix()
        assert np.all(result.projected_rows <= adjacency)

    def test_no_projection_when_bound_large(self, medium_cluster_graph):
        bound = medium_cluster_graph.max_degree()
        result = SimilarityProjection(bound).project_graph(medium_cluster_graph)
        assert result.edges_removed == 0
        assert np.array_equal(result.projected_rows, medium_cluster_graph.adjacency_matrix())

    def test_noisy_degree_length_checked(self, triangle_graph):
        with pytest.raises(ConfigurationError):
            SimilarityProjection(2).project_graph(triangle_graph, noisy_degrees=[1.0])

    def test_users_projected_counter(self, star_graph):
        result = SimilarityProjection(3).project_graph(star_graph)
        assert result.users_projected == 1  # only the hub exceeds the bound
        assert result.edges_removed == 4


class TestProjectedTriangleCount:
    def test_matches_exact_count_without_projection(self, medium_cluster_graph):
        rows = medium_cluster_graph.adjacency_matrix()
        assert projected_triangle_count(rows) == count_triangles(medium_cluster_graph)

    def test_small_inputs(self):
        assert projected_triangle_count(np.zeros((2, 2), dtype=int)) == 0
        assert projected_triangle_count(np.zeros((0, 0), dtype=int)) == 0

    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            projected_triangle_count(np.zeros((2, 3), dtype=int))

    def test_asymmetric_rows_follow_row_owner_semantics(self):
        """If user i drops edge (i, j) but j keeps it, triangles through a_ij vanish."""
        graph = Graph(3, edges=[(0, 1), (0, 2), (1, 2)])
        rows = graph.adjacency_matrix()
        rows[0, 1] = 0  # user 0 dropped her edge to 1; user 1 still lists 0
        assert projected_triangle_count(rows) == 0

    def test_monotone_in_theta(self, medium_cluster_graph):
        counts = []
        for theta in (2, 6, 12, 1000):
            result = SimilarityProjection(theta).project_graph(medium_cluster_graph)
            counts.append(projected_triangle_count(result.projected_rows))
        assert counts == sorted(counts)
        assert counts[-1] == count_triangles(medium_cluster_graph)


class TestSimilarityBeatsRandomProjection:
    def test_figure3_example_similarity_keeps_triangles(self, two_triangle_graph):
        """The paper's motivating example: the shared edge must survive."""
        true_count = count_triangles(two_triangle_graph)
        result = SimilarityProjection(3).project_graph(two_triangle_graph)
        assert projected_triangle_count(result.projected_rows) == true_count

    def test_similarity_preserves_at_least_as_many_triangles_on_average(self):
        graph = load_dataset("facebook", num_nodes=150)
        theta = 20
        similarity = SimilarityProjection(theta).project_graph(graph)
        similarity_count = projected_triangle_count(similarity.projected_rows)
        random_counts = []
        for seed in range(3):
            random_result = RandomProjection(theta).project_graph(graph, rng=seed)
            random_counts.append(projected_triangle_count(random_result.projected_rows))
        assert similarity_count >= np.mean(random_counts)
