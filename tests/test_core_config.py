"""Tests for repro.core.config."""

from __future__ import annotations

import pytest

from repro.core.config import CargoConfig, CountingBackend
from repro.dp.budget import PrivacyBudget
from repro.exceptions import ConfigurationError


class TestCargoConfig:
    def test_defaults(self):
        config = CargoConfig()
        assert config.epsilon == 2.0
        assert config.counting_backend is CountingBackend.MATRIX
        budget = config.resolved_budget()
        assert budget.total == pytest.approx(2.0)
        assert budget.epsilon1 == pytest.approx(0.2)

    def test_explicit_budget_overrides_epsilon(self):
        budget = PrivacyBudget(epsilon1=0.5, epsilon2=0.5)
        config = CargoConfig(epsilon=99.0, budget=budget)
        assert config.resolved_budget() is budget

    def test_backend_accepts_string(self):
        config = CargoConfig(counting_backend="faithful")
        assert config.counting_backend is CountingBackend.FAITHFUL

    def test_backend_accepts_blocked(self):
        config = CargoConfig(counting_backend="blocked", block_size=32)
        assert config.counting_backend is CountingBackend.BLOCKED
        assert config.backend_name == "blocked"
        assert config.block_size == 32

    def test_backend_name_normalises_enum(self):
        assert CargoConfig().backend_name == "matrix"

    def test_unknown_backend_string(self):
        with pytest.raises(ConfigurationError):
            CargoConfig(counting_backend="quantum")

    def test_invalid_block_size(self):
        with pytest.raises(ConfigurationError):
            CargoConfig(block_size=0)

    @pytest.mark.parametrize("epsilon", [0, -2])
    def test_invalid_epsilon(self, epsilon):
        with pytest.raises(ConfigurationError):
            CargoConfig(epsilon=epsilon)

    @pytest.mark.parametrize("fraction", [0, 1, -0.2])
    def test_invalid_fraction(self, fraction):
        with pytest.raises(ConfigurationError):
            CargoConfig(max_degree_fraction=fraction)

    def test_invalid_batch_size(self):
        with pytest.raises(ConfigurationError):
            CargoConfig(batch_size=0)

    @pytest.mark.parametrize("bits", [-1, 31])
    def test_invalid_fixed_point_bits(self, bits):
        with pytest.raises(ConfigurationError):
            CargoConfig(fixed_point_bits=bits)

    def test_custom_split_fraction(self):
        config = CargoConfig(epsilon=1.0, max_degree_fraction=0.3)
        assert config.resolved_budget().epsilon1 == pytest.approx(0.3)
