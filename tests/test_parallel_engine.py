"""Tile-parallel engine: bit-identical transcripts for any worker count.

The engine's claim is strong: enabling ``workers`` (and any value of it)
changes *nothing observable* — released counts, communication ledgers, and
recorded per-server views are bit-identical for workers ∈ {1, 2, 4} on every
backend and every registered statistic.  For the matrix and faithful/batched
backends the engine transcript additionally equals the legacy serial path's
(same dealer draw order); the blocked engine deals from per-tile substreams,
so its transcript is pinned across worker counts (and its reconstructed
count to the legacy value).

Also covered here: the worker pool's deterministic ordering, the
thread-safety of :class:`ViewRecorder`/:class:`CommunicationLedger`
(satellite regression), warm/cold triple-store equivalence through the whole
`Cargo` pipeline, and the configuration-level validation of the new knobs.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import Cargo, CargoConfig
from repro.core.backends import (
    BlockedMatrixTriangleCounter,
    FaithfulTriangleCounter,
    MatrixTriangleCounter,
    share_adjacency_rows,
)
from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.multiplication_groups import MultiplicationGroupDealer
from repro.crypto.protocol import CommunicationLedger
from repro.crypto.views import ViewRecorder
from repro.exceptions import ConfigurationError, DealerError
from repro.graph import load_dataset
from repro.graph.generators import erdos_renyi_graph
from repro.parallel import TripleStore, WorkerPool
from repro.stream import StreamingCargo, StreamingConfig, replay_stream

BACKENDS = ("faithful", "batched", "matrix", "blocked")
STATISTICS = ("triangles", "kstars", "wedges", "4cycles")
WORKER_COUNTS = (1, 2, 4)


def _view_streams(views: ViewRecorder):
    """Both servers' recorded observations as comparable byte tuples."""
    def freeze(value):
        if isinstance(value, (tuple, list)):
            return tuple(freeze(part) for part in value)
        array = np.atleast_1d(np.asarray(value, dtype=np.uint64))
        return (array.shape, array.tobytes())

    streams = []
    for server_index in (1, 2):
        for entry in views.view(server_index).entries:
            streams.append((entry.server_index, entry.label, freeze(entry.value)))
    return streams


def _run_cargo(graph, statistic, backend, workers, store=None, telemetry=None):
    config = CargoConfig(
        epsilon=2.0,
        seed=7,
        statistic=statistic,
        counting_backend=backend,
        batch_size=64,
        block_size=16,
        workers=workers,
        triple_store=store,
        record_views=True,
        track_communication=True,
        telemetry=telemetry,
    )
    cargo = Cargo(config)
    result = cargo.run(graph)
    return (
        result.noisy_triangle_count,
        result.true_triangle_count,
        result.projected_triangle_count,
        tuple(sorted((k, tuple(sorted(v.items()))) for k, v in result.communication.items())),
        tuple(sorted((k, tuple(sorted(v.items()))) for k, v in result.communication_phases.items())),
        _view_streams(cargo.views),
    )


class TestWorkerCountEquivalence:
    """workers ∈ {1, 2, 4} are indistinguishable, per backend × statistic."""

    @pytest.fixture(scope="class")
    def graph(self):
        return load_dataset("facebook", num_nodes=30)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("statistic", STATISTICS)
    def test_full_pipeline_bit_identical_across_workers(self, graph, backend, statistic):
        reference = _run_cargo(graph, statistic, backend, workers=1)
        for workers in WORKER_COUNTS[1:]:
            assert _run_cargo(graph, statistic, backend, workers=workers) == reference, (
                backend,
                statistic,
                workers,
            )

    @pytest.mark.parametrize("backend", ("matrix", "faithful", "batched"))
    def test_engine_transcript_equals_legacy_for_serial_draw_backends(self, graph, backend):
        """matrix/faithful/batched keep the legacy dealer draw order exactly."""
        legacy = _run_cargo(graph, "triangles", backend, workers=None)
        engine = _run_cargo(graph, "triangles", backend, workers=2)
        assert engine == legacy

    def test_blocked_engine_output_equals_legacy(self, graph):
        """The blocked engine re-keys the dealer substreams (different masks)
        but the released values and ledger are unchanged."""
        legacy = _run_cargo(graph, "triangles", "blocked", workers=None)
        engine = _run_cargo(graph, "triangles", "blocked", workers=2)
        # noisy count, true count, projected count, ledger — all identical.
        assert engine[:5] == legacy[:5]
        # Same number of openings recorded, even though mask values differ.
        assert len(engine[5]) == len(legacy[5])


class TestTelemetryDeterminism:
    """Tracing follows the same shard-merge discipline as the views: the
    span tree's deterministic part and the metric registry are identical
    for workers ∈ {1, 2, 4}, and tracing never perturbs the transcript."""

    @pytest.fixture(scope="class")
    def graph(self):
        return load_dataset("facebook", num_nodes=30)

    @staticmethod
    def _traced(graph, backend, workers):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        transcript = _run_cargo(
            graph, "triangles", backend, workers=workers, telemetry=telemetry
        )
        return (
            transcript,
            telemetry.tracer.structure(),
            telemetry.metrics.counters(),
            telemetry.metrics.gauges(),
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_trace_and_metrics_identical_across_workers(self, graph, backend):
        reference = self._traced(graph, backend, workers=1)
        for workers in WORKER_COUNTS[1:]:
            assert self._traced(graph, backend, workers) == reference, (
                backend,
                workers,
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("statistic", STATISTICS)
    def test_transcript_bit_identical_traced_vs_untraced(self, graph, backend, statistic):
        from repro.telemetry import Telemetry

        untraced = _run_cargo(graph, statistic, backend, workers=2)
        traced = _run_cargo(
            graph, statistic, backend, workers=2, telemetry=Telemetry()
        )
        assert traced == untraced, (backend, statistic)

    def test_blocked_tile_group_spans_follow_schedule(self, graph):
        """Every tile group appears exactly once, in canonical (j0, k0)
        order, regardless of which worker ran it."""
        _, structure, _, _ = self._traced(graph, "blocked", workers=4)
        (root,) = structure
        count_span = next(s for s in root["children"] if s["name"] == "count")
        backend_span = next(
            s for s in count_span["children"] if s["name"] == "backend"
        )
        groups = [
            (s["attributes"]["j0"], s["attributes"]["k0"])
            for s in backend_span["children"]
            if s["name"] == "tile_group"
        ]
        assert groups == sorted(groups)
        # n=30, block=16 → 2x2 grid, upper-triangular (j0 <= k0) schedule.
        assert groups == [(0, 0), (0, 16), (16, 16)]


class TestTripleStoreThroughPipeline:
    def test_warm_rerun_is_bit_identical_and_skips_dealing(self):
        graph = load_dataset("facebook", num_nodes=24)
        store = TripleStore()
        cold = _run_cargo(graph, "triangles", "blocked", workers=2, store=store)
        assert store.stats()["stores"] == 1
        warm = _run_cargo(graph, "triangles", "blocked", workers=4, store=store)
        assert store.hits >= 1
        assert warm == cold

    def test_streaming_anchors_reuse_dealt_material(self):
        graph = load_dataset("facebook", num_nodes=40)
        stream = replay_stream(graph, rng=0)
        store = TripleStore()
        config = StreamingConfig(
            epsilon=4.0,
            release_every=20,
            anchor_every=2,
            seed=3,
            counting_backend="blocked",
            block_size=16,
            workers=2,
            triple_store=store,
        )
        result = StreamingCargo(config).run(stream)
        assert result.anchors_run >= 2
        # Every anchor after the first fetches its material warm.
        assert store.hits >= result.anchors_run - 1
        # Estimates are identical to a plain serial run: the secure count is
        # exact regardless of which masks the dealer used.
        plain = StreamingCargo(
            StreamingConfig(
                epsilon=4.0,
                release_every=20,
                anchor_every=2,
                seed=3,
                counting_backend="blocked",
                block_size=16,
            )
        ).run(stream)
        assert [r.estimate for r in result.releases] == [r.estimate for r in plain.releases]

    def test_offline_seed_enables_cross_run_reuse(self):
        graph = load_dataset("facebook", num_nodes=24)
        store = TripleStore()
        config = CargoConfig(
            epsilon=2.0,
            seed=9,
            counting_backend="blocked",
            block_size=16,
            workers=1,
            offline_seed=1234,
            triple_store=store,
        )
        first = Cargo(config).run(graph)
        second = Cargo(config).run(graph)
        assert first.noisy_triangle_count == second.noisy_triangle_count
        assert store.hits >= 1


class TestExhaustionErrors:
    def test_truncated_blocked_material_raises(self):
        graph = erdos_renyi_graph(20, 0.5, seed=1)
        share1, share2 = share_adjacency_rows(graph.adjacency_matrix(), rng=2)
        store = TripleStore()
        counter = BlockedMatrixTriangleCounter(
            dealer=BeaverTripleDealer(seed=5),
            block_size=8,
            workers=1,
            triple_store=store,
        )
        counter.count_from_shares(share1, share2)
        # Corrupt the stored batch: drop the last group's material.
        (token, material), = counter._store._entries.items()
        counter._store._entries[token] = material[:-1]
        warm = BlockedMatrixTriangleCounter(
            dealer=BeaverTripleDealer(seed=5),
            block_size=8,
            workers=1,
            triple_store=store,
        )
        with pytest.raises(DealerError, match="material mismatch"):
            warm.count_from_shares(share1, share2)

    def test_truncated_group_stream_raises(self):
        graph = erdos_renyi_graph(12, 0.5, seed=1)
        share1, share2 = share_adjacency_rows(graph.adjacency_matrix(), rng=2)
        store = TripleStore()
        counter = FaithfulTriangleCounter(
            dealer=MultiplicationGroupDealer(seed=5),
            batch_size=16,
            workers=1,
            triple_store=store,
        )
        counter.count_from_shares(share1, share2)
        (token, material), = store._entries.items()
        store._entries[token] = {"blocks": material["blocks"][:-1]}
        warm = FaithfulTriangleCounter(
            dealer=MultiplicationGroupDealer(seed=5),
            batch_size=16,
            workers=1,
            triple_store=store,
        )
        with pytest.raises(DealerError):
            warm.count_from_shares(share1, share2)


class TestWorkerPool:
    def test_results_come_back_in_task_order(self):
        pool = WorkerPool(4)
        import time

        def task(index):
            time.sleep(0.002 * (5 - index))  # later tasks finish earlier
            return index

        assert pool.map([lambda i=i: task(i) for i in range(5)]) == list(range(5))

    def test_parallel_matmul_is_bit_identical(self):
        from repro.crypto.ring import DEFAULT_RING

        rng = np.random.default_rng(0)
        a = rng.integers(0, 1 << 63, (37, 23), dtype=np.uint64)
        b = rng.integers(0, 1 << 63, (23, 41), dtype=np.uint64)
        serial = DEFAULT_RING.matmul(a, b)
        for workers in (1, 2, 4, 64):
            assert np.array_equal(WorkerPool(workers).matmul(DEFAULT_RING, a, b), serial)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(0)


class TestRecorderThreadSafety:
    """Satellite regression: concurrent appends must never lose entries."""

    def test_view_recorder_concurrent_observe(self):
        views = ViewRecorder()
        threads = 8
        per_thread = 500

        def hammer(tid):
            for i in range(per_thread):
                views.observe(1 + (i % 2), f"t{tid}", i)

        workers = [threading.Thread(target=hammer, args=(t,)) for t in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        total = len(views.view(1)) + len(views.view(2))
        assert total == threads * per_thread

    def test_ledger_concurrent_record(self):
        ledger = CommunicationLedger()
        threads = 8
        per_thread = 500

        def hammer(tid):
            for i in range(per_thread):
                ledger.record(f"chan-{i % 3}", 7, phase=f"phase-{tid % 2}")

        workers = [threading.Thread(target=hammer, args=(t,)) for t in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert ledger.total_messages == threads * per_thread
        assert ledger.total_bytes == threads * per_thread * 8
        assert sum(ledger.phase_messages.values()) == threads * per_thread

    def test_view_shard_merge_preserves_order(self):
        parent = ViewRecorder()
        shard_a = ViewRecorder()
        shard_b = ViewRecorder()
        shard_a.observe(1, "opening", 1)
        shard_a.observe(1, "opening", 2)
        shard_b.observe(1, "opening", 3)
        parent.merge_from(shard_a)
        parent.merge_from(shard_b)
        assert parent.view(1).values("opening") == [1, 2, 3]


class TestConfigKnobs:
    def test_workers_validation(self):
        with pytest.raises(ConfigurationError):
            CargoConfig(workers=0)
        with pytest.raises(ConfigurationError):
            CargoConfig(workers=-2)
        assert CargoConfig(workers=3).workers == 3
        assert CargoConfig().workers is None

    def test_streaming_workers_validation(self):
        with pytest.raises(ConfigurationError):
            StreamingConfig(workers=0)
        assert StreamingConfig(workers=2).workers == 2

    def test_matrix_counter_rejects_direct_bad_workers(self):
        from repro.exceptions import ProtocolError

        with pytest.raises(ProtocolError):
            BlockedMatrixTriangleCounter(workers=-1)
