"""Tests for repro.graph.datasets."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.graph.datasets import (
    DATASET_REGISTRY,
    DEFAULT_SCALE,
    available_datasets,
    dataset_spec,
    load_dataset,
)
from repro.graph.io import write_edge_list
from repro.graph.triangles import count_triangles


class TestRegistry:
    def test_paper_datasets_present(self):
        for name in ("facebook", "wiki", "hepph", "enron"):
            assert name in DATASET_REGISTRY

    def test_table3_datasets_present(self):
        for name in ("condmat", "astroph", "hepth", "grqc"):
            assert name in DATASET_REGISTRY

    def test_available_datasets_order(self):
        assert available_datasets()[0] == "facebook"

    def test_spec_lookup_case_insensitive(self):
        assert dataset_spec("FaceBook").name == "facebook"

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            dataset_spec("does-not-exist")

    def test_table4_statistics_recorded(self):
        spec = dataset_spec("enron")
        assert spec.num_nodes == 36_692
        assert spec.num_edges == 183_831
        assert spec.max_degree == 2_766
        assert spec.domain == "communication network"


class TestLoading:
    def test_num_nodes_override(self):
        graph = load_dataset("facebook", num_nodes=150)
        assert graph.num_nodes == 150

    def test_deterministic(self):
        assert load_dataset("wiki", num_nodes=120) == load_dataset("wiki", num_nodes=120)

    def test_seed_changes_graph(self):
        base = load_dataset("wiki", num_nodes=120)
        reseeded = load_dataset("wiki", num_nodes=120, seed=99)
        assert base != reseeded

    def test_scale_controls_size(self):
        spec = dataset_spec("grqc")
        graph = load_dataset("grqc", scale=0.05)
        assert graph.num_nodes == spec.scaled_nodes(0.05)

    def test_default_scale_matches_spec(self):
        spec = dataset_spec("hepth")
        graph = load_dataset("hepth")
        assert graph.num_nodes == spec.scaled_nodes(DEFAULT_SCALE)

    def test_has_many_triangles(self):
        graph = load_dataset("facebook", num_nodes=200)
        assert count_triangles(graph) > 100

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            load_dataset("facebook", scale=0)

    def test_too_few_nodes(self):
        with pytest.raises(DatasetError):
            load_dataset("facebook", num_nodes=5)

    def test_relative_sizes_preserved(self):
        facebook = load_dataset("facebook", scale=0.05)
        enron = load_dataset("enron", scale=0.05)
        assert enron.num_nodes > facebook.num_nodes


class TestEdgeListOverride:
    def test_loads_real_edge_list_when_present(self, tmp_path):
        graph = load_dataset("grqc", num_nodes=60)
        write_edge_list(graph, tmp_path / "grqc.txt")
        loaded = load_dataset("grqc", edge_list_dir=str(tmp_path))
        assert loaded.num_edges == graph.num_edges

    def test_missing_edge_list_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset("grqc", edge_list_dir=str(tmp_path))
