"""Tests for repro.experiments.tables."""

from __future__ import annotations

import pytest

from repro.experiments.tables import (
    MAIN_DATASETS,
    SENSITIVITY_DATASETS,
    table2_theoretical_summary,
    table3_sensitivity_comparison,
    table4_dataset_statistics,
    table5_noisy_max_degree,
)


class TestTable2:
    def test_rows_and_columns(self):
        report = table2_theoretical_summary()
        assert len(report.rows) == 4
        assert set(report.columns) == {"property", "CentralLap", "CARGO", "Local2Rounds"}
        properties = report.column("property")
        assert "privacy" in properties and "time complexity" in properties


class TestTable3:
    def test_reports_all_graphs(self):
        report = table3_sensitivity_comparison(num_nodes=120, datasets=("hepth", "grqc"))
        assert len(report.rows) == 2
        for row in report.rows:
            assert row["noisy_d_max"] > 0
            assert row["smooth_sensitivity"] > 0
            assert row["residual_sensitivity"] >= row["smooth_sensitivity"]

    def test_default_dataset_list(self):
        assert set(SENSITIVITY_DATASETS) == {"condmat", "astroph", "hepph", "hepth", "grqc"}

    def test_noisy_dmax_in_same_ballpark_as_true(self):
        report = table3_sensitivity_comparison(num_nodes=150, datasets=("condmat",), epsilon=2.0)
        row = report.rows[0]
        assert row["noisy_d_max"] == pytest.approx(row["d_max"], rel=0.5)


class TestTable4:
    def test_reports_original_and_generated(self):
        report = table4_dataset_statistics(num_nodes=100, datasets=("facebook", "wiki"))
        assert len(report.rows) == 2
        facebook = report.filter_rows(graph="facebook")[0]
        assert facebook["original_nodes"] == 4039
        assert facebook["original_dmax"] == 1045
        assert facebook["generated_nodes"] == 100
        assert facebook["generated_triangles"] > 0

    def test_default_covers_paper_datasets(self):
        assert MAIN_DATASETS == ("facebook", "wiki", "hepph", "enron")


class TestTable5:
    def test_row_per_graph_column_per_epsilon(self):
        report = table5_noisy_max_degree(
            epsilons=(1.0, 2.0), num_nodes=100, num_trials=2, datasets=("facebook",)
        )
        assert len(report.rows) == 1
        row = report.rows[0]
        assert "eps=1.0" in row and "eps=2.0" in row
        assert row["d_max"] > 0

    def test_estimates_near_true_max(self):
        report = table5_noisy_max_degree(
            epsilons=(3.0,), num_nodes=150, num_trials=3, datasets=("wiki",)
        )
        row = report.rows[0]
        assert row["eps=3.0"] == pytest.approx(row["d_max"], rel=0.6)
