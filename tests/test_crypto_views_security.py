"""Simulation-style security checks (Theorem 2).

The paper argues security in the simulation paradigm: everything a server
observes during `Count` / `Perturb` is either a fresh additive share or a
mask-difference opening, both of which are uniform ring elements independent
of the secret.  These tests check the empirical counterparts:

* openings recorded in the servers' views do not depend on the secret inputs
  when the correlated randomness (masks) is held fixed, and
* over many fresh maskings, the distribution of an opening is statistically
  indistinguishable (coarsely) between two different secrets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.multiplication_groups import MultiplicationGroupDealer
from repro.crypto.ring import DEFAULT_RING
from repro.crypto.secure_ops import secure_multiply_triple
from repro.crypto.sharing import share_scalar
from repro.crypto.views import ProtocolView, ViewEntry, ViewRecorder
from repro.exceptions import ProtocolError


class TestViewRecorder:
    def test_observe_and_read_back(self):
        recorder = ViewRecorder()
        recorder.observe(1, "opening", 42)
        recorder.observe(2, "opening", 42)
        assert recorder.view(1).values("opening") == [42]
        assert len(recorder.view(2)) == 1

    def test_views_tuple(self):
        recorder = ViewRecorder()
        view1, view2 = recorder.views()
        assert isinstance(view1, ProtocolView) and isinstance(view2, ProtocolView)

    def test_invalid_server(self):
        recorder = ViewRecorder()
        with pytest.raises(ProtocolError):
            recorder.observe(3, "x", 1)
        with pytest.raises(ProtocolError):
            recorder.view(0)

    def test_values_filter_by_label(self):
        view = ProtocolView(server_index=1, entries=[
            ViewEntry(1, "a", 1), ViewEntry(1, "b", 2), ViewEntry(1, "a", 3),
        ])
        assert view.values("a") == [1, 3]
        assert view.values() == [1, 2, 3]


class TestMergeFromHardening:
    """Malformed shards raise typed errors instead of corrupting the merge."""

    def _shard(self) -> ViewRecorder:
        shard = ViewRecorder()
        shard.observe(1, "round", 10)
        shard.observe(2, "round", 20)
        return shard

    def test_valid_shard_merges_in_order(self):
        parent = ViewRecorder()
        parent.observe(1, "first", 1)
        parent.observe(2, "first", 2)
        parent.merge_from(self._shard())
        assert parent.view(1).values() == [1, 10]
        assert parent.view(2).values() == [2, 20]

    def test_non_recorder_shard_rejected(self):
        parent = ViewRecorder()
        with pytest.raises(ProtocolError, match="expects a ViewRecorder"):
            parent.merge_from({"1": [], "2": []})

    def test_shard_missing_a_server_rejected(self):
        parent = ViewRecorder()
        shard = self._shard()
        del shard._views[2]
        with pytest.raises(ProtocolError, match="does not cover both servers"):
            parent.merge_from(shard)

    def test_shard_with_extra_server_rejected(self):
        parent = ViewRecorder()
        shard = self._shard()
        shard._views[3] = ProtocolView(server_index=3)
        with pytest.raises(ProtocolError, match="does not cover both servers"):
            parent.merge_from(shard)

    def test_shard_with_entryless_view_rejected(self):
        parent = ViewRecorder()
        shard = self._shard()
        shard._views[1] = object()  # no .entries at all
        with pytest.raises(ProtocolError, match="no entries list"):
            parent.merge_from(shard)

    def test_shard_with_non_entry_payload_rejected(self):
        parent = ViewRecorder()
        shard = self._shard()
        shard._views[1].entries.append(("not", "an", "entry"))
        with pytest.raises(ProtocolError, match="expected ViewEntry"):
            parent.merge_from(shard)

    def test_shard_with_misfiled_entry_rejected(self):
        parent = ViewRecorder()
        shard = self._shard()
        shard._views[1].entries.append(ViewEntry(2, "round", 30))
        with pytest.raises(ProtocolError, match="belongs to"):
            parent.merge_from(shard)

    def test_rejected_shard_leaves_parent_untouched(self):
        parent = ViewRecorder()
        parent.observe(1, "first", 1)
        parent.observe(2, "first", 2)
        shard = self._shard()
        shard._views[2].entries.append(ViewEntry(1, "round", 99))
        with pytest.raises(ProtocolError):
            parent.merge_from(shard)
        assert parent.view(1).values() == [1]
        assert parent.view(2).values() == [2]


def _openings_for_secret(bits, mask_seed: int) -> tuple:
    """Run one 3-way multiplication and return the (e, f, g) opening."""
    dealer = MultiplicationGroupDealer(seed=mask_seed)
    recorder = ViewRecorder()
    pairs = [share_scalar(b, rng=mask_seed * 10 + i) for i, b in enumerate(bits)]
    secure_multiply_triple(
        (pairs[0].share1, pairs[0].share2),
        (pairs[1].share1, pairs[1].share2),
        (pairs[2].share1, pairs[2].share2),
        dealer.scalar_group(),
        views=recorder,
    )
    return recorder.view(1).values("mg_opening")[0]


class TestOpeningsHideSecrets:
    def test_views_identical_for_both_servers(self):
        dealer = MultiplicationGroupDealer(seed=0)
        recorder = ViewRecorder()
        pairs = [share_scalar(bit, rng=index) for index, bit in enumerate((1, 0, 1))]
        secure_multiply_triple(
            (pairs[0].share1, pairs[0].share2),
            (pairs[1].share1, pairs[1].share2),
            (pairs[2].share1, pairs[2].share2),
            dealer.scalar_group(),
            views=recorder,
        )
        # The opening round reveals identical masked values to both servers.
        assert recorder.view(1).values() == recorder.view(2).values()

    def test_opening_changes_with_masks_not_with_secret_only(self):
        """Same secret, fresh masks -> different openings (masking is live)."""
        first = _openings_for_secret((1, 1, 1), mask_seed=1)
        second = _openings_for_secret((1, 1, 1), mask_seed=2)
        assert first != second

    def test_openings_span_large_values(self):
        """Openings of 0/1 secrets are full-range ring elements, not small ints."""
        openings = [
            value
            for seed in range(20)
            for value in _openings_for_secret((1, 0, 1), mask_seed=seed)
        ]
        assert max(openings) > 2**60

    def test_opening_distribution_similar_across_secrets(self):
        """Coarse indistinguishability: mean opening magnitude is secret-independent."""
        means = {}
        for label, bits in {"all_ones": (1, 1, 1), "all_zeros": (0, 0, 0)}.items():
            values = [
                float(np.mean(_openings_for_secret(bits, mask_seed=seed)))
                for seed in range(40)
            ]
            means[label] = np.mean(values)
        # Both averages are near the ring midpoint 2^63; allow a wide band.
        midpoint = float(DEFAULT_RING.half)
        for value in means.values():
            assert 0.5 * midpoint < value < 1.5 * midpoint
