"""Tests for repro.graph.generators."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    random_regular_graph,
    sparse_random_graph,
    stochastic_block_model_graph,
    watts_strogatz_graph,
)
from repro.graph.statistics import global_clustering_coefficient
from repro.graph.triangles import count_triangles


class TestErdosRenyi:
    def test_edge_count_near_expectation(self):
        graph = erdos_renyi_graph(100, 0.1, seed=0)
        expected = 0.1 * 100 * 99 / 2
        assert 0.6 * expected < graph.num_edges < 1.4 * expected

    def test_zero_probability_gives_no_edges(self):
        assert erdos_renyi_graph(50, 0.0, seed=0).num_edges == 0

    def test_unit_probability_gives_complete_graph(self):
        graph = erdos_renyi_graph(10, 1.0, seed=0)
        assert graph.num_edges == 45

    def test_deterministic_with_seed(self):
        a = erdos_renyi_graph(30, 0.2, seed=9)
        b = erdos_renyi_graph(30, 0.2, seed=9)
        assert a == b

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_graph(10, 1.5)

    def test_tiny_graphs(self):
        assert erdos_renyi_graph(0, 0.5, seed=0).num_nodes == 0
        assert erdos_renyi_graph(1, 0.5, seed=0).num_edges == 0


class TestBarabasiAlbert:
    def test_node_and_minimum_degree(self):
        graph = barabasi_albert_graph(100, 3, seed=1)
        assert graph.num_nodes == 100
        assert min(graph.degrees()) >= 1
        # Every node added after the seed star contributes exactly m edges.
        assert graph.num_edges >= 3 * (100 - 4)

    def test_heavy_tail(self):
        graph = barabasi_albert_graph(200, 2, seed=2)
        degrees = sorted(graph.degrees(), reverse=True)
        assert degrees[0] > 3 * (2 * graph.num_edges / graph.num_nodes)

    def test_requires_enough_nodes(self):
        with pytest.raises(ConfigurationError):
            barabasi_albert_graph(3, 3)


class TestPowerlawCluster:
    def test_produces_many_triangles(self):
        clustered = powerlaw_cluster_graph(150, 4, 0.9, seed=3)
        unclustered = barabasi_albert_graph(150, 4, seed=3)
        assert count_triangles(clustered) > count_triangles(unclustered)

    def test_clustering_coefficient_substantial(self):
        graph = powerlaw_cluster_graph(200, 5, 0.8, seed=4)
        assert global_clustering_coefficient(graph) > 0.05

    def test_deterministic_with_seed(self):
        assert powerlaw_cluster_graph(60, 3, 0.5, seed=5) == powerlaw_cluster_graph(60, 3, 0.5, seed=5)

    def test_invalid_triangle_probability(self):
        with pytest.raises(ConfigurationError):
            powerlaw_cluster_graph(50, 3, 1.5)


class TestWattsStrogatz:
    def test_degree_regular_without_rewiring(self):
        graph = watts_strogatz_graph(30, 4, 0.0, seed=6)
        assert all(degree == 4 for degree in graph.degrees())

    def test_rewiring_preserves_edge_count(self):
        graph = watts_strogatz_graph(30, 4, 0.3, seed=6)
        assert graph.num_edges == 30 * 4 // 2

    def test_odd_k_rejected(self):
        with pytest.raises(ConfigurationError):
            watts_strogatz_graph(10, 3, 0.1)

    def test_k_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            watts_strogatz_graph(4, 4, 0.1)


class TestStochasticBlockModel:
    def test_block_structure(self):
        graph = stochastic_block_model_graph([20, 20], 0.5, 0.01, seed=7)
        intra = sum(1 for u, v in graph.edges() if (u < 20) == (v < 20))
        inter = graph.num_edges - intra
        assert intra > inter

    def test_invalid_block_size(self):
        with pytest.raises(ConfigurationError):
            stochastic_block_model_graph([10, 0], 0.5, 0.1)


class TestRandomRegular:
    def test_degrees_constant(self):
        graph = random_regular_graph(20, 4, seed=8)
        assert all(degree == 4 for degree in graph.degrees())

    def test_odd_product_rejected(self):
        with pytest.raises(ConfigurationError):
            random_regular_graph(5, 3)

    def test_degree_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            random_regular_graph(4, 4)


class TestSparseRandomGraph:
    def test_exact_edge_count(self):
        graph = sparse_random_graph(500, 1500, seed=0)
        assert graph.num_nodes == 500
        assert graph.num_edges == 1500

    def test_deterministic_with_seed(self):
        a = sparse_random_graph(200, 600, seed=4)
        b = sparse_random_graph(200, 600, seed=4)
        assert a == b

    def test_simple_graph_invariants(self):
        graph = sparse_random_graph(100, 300, seed=2)
        for u, v in graph.edges():
            assert u != v
        assert len(set(graph.edges())) == graph.num_edges

    def test_zero_edges_and_empty_graph(self):
        assert sparse_random_graph(10, 0, seed=1).num_edges == 0
        assert sparse_random_graph(0, 0, seed=1).num_nodes == 0

    def test_dense_request_saturates(self):
        # num_edges == C(n, 2): rejection sampling must still terminate.
        graph = sparse_random_graph(12, 66, seed=3)
        assert graph.num_edges == 66

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            sparse_random_graph(-1, 0)
        with pytest.raises(ConfigurationError):
            sparse_random_graph(10, -1)
        with pytest.raises(ConfigurationError):
            sparse_random_graph(10, 46)  # > C(10, 2)
