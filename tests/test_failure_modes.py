"""Failure-injection and degenerate-input tests.

Production use means surviving the inputs nobody advertises: empty graphs,
single users, exhausted budgets, misrouted protocol messages, and oversized
degree bounds.  These tests pin down the behaviour (graceful result or a
library-specific exception — never a bare numpy error or a silent wrong
answer).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.central_lap import CentralLaplaceTriangleCounting
from repro.baselines.local_two_rounds import LocalTwoRoundsTriangleCounting
from repro.core.cargo import Cargo
from repro.core.config import CargoConfig
from repro.core.counting import FaithfulTriangleCounter
from repro.core.fast_counting import MatrixTriangleCounter
from repro.core.projection import SimilarityProjection
from repro.crypto.protocol import TwoServerRuntime
from repro.exceptions import (
    BudgetExhaustedError,
    ProtocolError,
    ReproError,
)
from repro.dp.accountant import PrivacyAccountant
from repro.graph.graph import Graph


class TestDegenerateGraphs:
    def test_cargo_on_empty_graph(self):
        result = Cargo(CargoConfig(epsilon=2.0, seed=0)).run(Graph(0))
        assert result.true_triangle_count == 0
        assert np.isfinite(result.noisy_triangle_count)

    def test_cargo_on_single_node(self):
        result = Cargo(CargoConfig(epsilon=2.0, seed=1)).run(Graph(1))
        assert result.true_triangle_count == 0

    def test_cargo_on_two_nodes(self):
        result = Cargo(CargoConfig(epsilon=2.0, seed=2)).run(Graph(2, edges=[(0, 1)]))
        assert result.true_triangle_count == 0

    def test_central_baseline_on_edgeless_graph(self):
        result = CentralLaplaceTriangleCounting(epsilon=1.0).run(Graph(5), rng=3)
        assert result.true_triangle_count == 0

    def test_local_baseline_on_tiny_graph(self):
        result = LocalTwoRoundsTriangleCounting(epsilon=1.0).run(Graph(3, edges=[(0, 1)]), rng=4)
        assert np.isfinite(result.noisy_triangle_count)

    def test_projection_with_zero_bound(self, medium_cluster_graph):
        result = SimilarityProjection(0).project_graph(medium_cluster_graph)
        assert int(result.projected_rows.sum()) == 0

    def test_counters_on_empty_share_matrices(self):
        empty = np.zeros((0, 0), dtype=np.uint64)
        assert MatrixTriangleCounter().count_from_shares(empty, empty).reconstruct() == 0
        assert FaithfulTriangleCounter().count_from_shares(empty, empty).reconstruct() == 0


class TestBudgetExhaustion:
    def test_loop_of_queries_hits_the_wall(self):
        accountant = PrivacyAccountant(total_budget=1.0)
        with pytest.raises(BudgetExhaustedError):
            for _ in range(20):
                accountant.spend(0.1, "query")
        # Exactly ten spends of 0.1 fit in the budget before the failure.
        assert accountant.spent == pytest.approx(1.0)

    def test_failed_spend_does_not_consume_budget(self):
        accountant = PrivacyAccountant(total_budget=0.5)
        accountant.spend(0.4)
        with pytest.raises(BudgetExhaustedError):
            accountant.spend(0.2)
        assert accountant.remaining == pytest.approx(0.1)


class TestProtocolMisuse:
    def test_message_to_wrong_server_is_rejected(self):
        runtime = TwoServerRuntime(1)
        runtime.user_to_server(0, 1).send("share", 5)
        with pytest.raises(ProtocolError):
            runtime.server(2).receive()

    def test_unknown_channel_is_rejected(self):
        runtime = TwoServerRuntime(2)
        with pytest.raises(ProtocolError):
            runtime._channel("user-0", "user-1")  # users have no direct channel

    def test_all_library_errors_share_a_base(self):
        with pytest.raises(ReproError):
            TwoServerRuntime(-5)
        with pytest.raises(ReproError):
            SimilarityProjection(-1)
        with pytest.raises(ReproError):
            CargoConfig(epsilon=-1)


class TestExtremeParameters:
    def test_huge_degree_bound_is_a_noop(self, medium_cluster_graph):
        result = SimilarityProjection(10**9).project_graph(medium_cluster_graph)
        assert result.edges_removed == 0

    def test_tiny_epsilon_still_produces_finite_output(self):
        graph = Graph(12, edges=[(i, (i + 1) % 12) for i in range(12)])
        result = Cargo(CargoConfig(epsilon=1e-3, seed=5)).run(graph)
        assert np.isfinite(result.noisy_triangle_count)

    def test_large_epsilon_recovers_exact_count(self, medium_cluster_graph):
        result = Cargo(CargoConfig(epsilon=1e4, seed=6)).run(medium_cluster_graph)
        assert result.noisy_triangle_count == pytest.approx(
            result.true_triangle_count, rel=0.01
        )
