"""Tests for repro.baselines.central_lap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.central_lap import CentralLaplaceTriangleCounting
from repro.exceptions import PrivacyError
from repro.graph.datasets import load_dataset
from repro.graph.triangles import count_triangles


class TestCentralLap:
    def test_estimate_close_to_truth(self):
        graph = load_dataset("facebook", num_nodes=150)
        result = CentralLaplaceTriangleCounting(epsilon=2.0).run(graph, rng=0)
        assert result.true_triangle_count == count_triangles(graph)
        assert result.relative_error < 0.05

    def test_sensitivity_is_max_degree(self, complete_graph):
        result = CentralLaplaceTriangleCounting(epsilon=1.0).run(complete_graph, rng=1)
        assert result.sensitivity == complete_graph.max_degree()

    def test_noisy_max_degree_variant(self):
        graph = load_dataset("wiki", num_nodes=120)
        protocol = CentralLaplaceTriangleCounting(epsilon=2.0, use_exact_max_degree=False)
        result = protocol.run(graph, rng=2)
        assert result.sensitivity != graph.max_degree()
        assert result.relative_error < 0.2

    def test_noise_actually_added(self, complete_graph):
        result = CentralLaplaceTriangleCounting(epsilon=0.5).run(complete_graph, rng=3)
        assert result.noisy_triangle_count != result.true_triangle_count

    def test_deterministic_given_seed(self, medium_cluster_graph):
        protocol = CentralLaplaceTriangleCounting(epsilon=1.0)
        assert (
            protocol.run(medium_cluster_graph, rng=4).noisy_triangle_count
            == protocol.run(medium_cluster_graph, rng=4).noisy_triangle_count
        )

    def test_error_decreases_with_epsilon(self, medium_cluster_graph):
        errors = {}
        for epsilon in (0.2, 5.0):
            protocol = CentralLaplaceTriangleCounting(epsilon=epsilon)
            trials = [protocol.run(medium_cluster_graph, rng=seed).l2_loss for seed in range(10)]
            errors[epsilon] = np.mean(trials)
        assert errors[5.0] < errors[0.2]

    def test_expected_l2_loss_formula(self):
        protocol = CentralLaplaceTriangleCounting(epsilon=2.0)
        assert protocol.expected_l2_loss(max_degree=100) == pytest.approx(2 * (100 / 2.0) ** 2)

    def test_empirical_error_matches_analytic_bound(self, medium_cluster_graph):
        epsilon = 1.0
        protocol = CentralLaplaceTriangleCounting(epsilon=epsilon)
        losses = [protocol.run(medium_cluster_graph, rng=seed).l2_loss for seed in range(300)]
        expected = protocol.expected_l2_loss(medium_cluster_graph.max_degree())
        assert np.mean(losses) == pytest.approx(expected, rel=0.4)

    def test_timings_recorded(self, triangle_graph):
        result = CentralLaplaceTriangleCounting(epsilon=1.0).run(triangle_graph, rng=5)
        assert "total" in result.timings

    @pytest.mark.parametrize("epsilon", [0, -1])
    def test_invalid_epsilon(self, epsilon):
        with pytest.raises(PrivacyError):
            CentralLaplaceTriangleCounting(epsilon=epsilon)

    def test_invalid_fraction(self):
        with pytest.raises(PrivacyError):
            CentralLaplaceTriangleCounting(epsilon=1.0, max_degree_fraction=1.5)
