"""Tests for repro.baselines.random_projection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.random_projection import RandomProjection
from repro.core.projection import projected_triangle_count
from repro.exceptions import ConfigurationError
from repro.graph.datasets import load_dataset


class TestRandomProjection:
    def test_bounded_degree_invariant(self, medium_cluster_graph):
        result = RandomProjection(5).project_graph(medium_cluster_graph, rng=0)
        assert int(result.projected_rows.sum(axis=1).max()) <= 5

    def test_only_removes_edges(self, medium_cluster_graph):
        result = RandomProjection(5).project_graph(medium_cluster_graph, rng=1)
        assert np.all(result.projected_rows <= medium_cluster_graph.adjacency_matrix())

    def test_under_bound_unchanged(self, triangle_graph):
        result = RandomProjection(10).project_graph(triangle_graph, rng=2)
        assert np.array_equal(result.projected_rows, triangle_graph.adjacency_matrix())
        assert result.edges_removed == 0

    def test_noisy_degrees_ignored(self, triangle_graph):
        with_degrees = RandomProjection(10).project_graph(
            triangle_graph, noisy_degrees=[1, 2, 3, 4], rng=3
        )
        without = RandomProjection(10).project_graph(triangle_graph, rng=3)
        assert np.array_equal(with_degrees.projected_rows, without.projected_rows)

    def test_deterministic_given_seed(self, medium_cluster_graph):
        a = RandomProjection(6).project_graph(medium_cluster_graph, rng=4)
        b = RandomProjection(6).project_graph(medium_cluster_graph, rng=4)
        assert np.array_equal(a.projected_rows, b.projected_rows)

    def test_different_seeds_differ(self, medium_cluster_graph):
        a = RandomProjection(6).project_graph(medium_cluster_graph, rng=5)
        b = RandomProjection(6).project_graph(medium_cluster_graph, rng=6)
        assert not np.array_equal(a.projected_rows, b.projected_rows)

    def test_negative_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomProjection(-2)

    def test_loses_more_triangles_than_similarity_on_average(self):
        """Figure 9/10's qualitative claim at a fixed theta."""
        from repro.core.projection import SimilarityProjection

        graph = load_dataset("hepph", num_nodes=200)
        theta = 15
        similarity_count = projected_triangle_count(
            SimilarityProjection(theta).project_graph(graph).projected_rows
        )
        random_counts = [
            projected_triangle_count(
                RandomProjection(theta).project_graph(graph, rng=seed).projected_rows
            )
            for seed in range(5)
        ]
        assert similarity_count > np.mean(random_counts)
