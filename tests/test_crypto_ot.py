"""Tests for repro.crypto.ot."""

from __future__ import annotations

import pytest

from repro.crypto.ot import ObliviousTransferChannel, gilboa_product_shares
from repro.crypto.ring import DEFAULT_RING, Ring
from repro.exceptions import ProtocolError


class TestChannel:
    def test_choice_selects_message(self):
        channel = ObliviousTransferChannel()
        assert channel.transfer(10, 20, 0) == 10
        assert channel.transfer(10, 20, 1) == 20

    def test_invalid_choice_bit(self):
        with pytest.raises(ProtocolError):
            ObliviousTransferChannel().transfer(1, 2, 2)

    def test_transfer_counter(self):
        channel = ObliviousTransferChannel()
        channel.transfer(0, 1, 0)
        channel.transfer(0, 1, 1)
        assert channel.transfers == 2


class TestGilboaProduct:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (7, 13), (12345, 678), (2**20, 3)])
    def test_shares_sum_to_product(self, a, b):
        channel = ObliviousTransferChannel()
        sender, receiver = gilboa_product_shares(a, b, channel, rng=0)
        assert DEFAULT_RING.add(sender, receiver) == DEFAULT_RING.mul(a, b)

    def test_uses_one_ot_per_bit(self):
        ring = Ring(bits=8)
        channel = ObliviousTransferChannel(ring=ring)
        gilboa_product_shares(3, 5, channel, rng=1, ring=ring)
        assert channel.transfers == 8

    def test_negative_operand(self):
        channel = ObliviousTransferChannel()
        sender, receiver = gilboa_product_shares(-4, 9, channel, rng=2)
        assert DEFAULT_RING.decode_signed(DEFAULT_RING.add(sender, receiver)) == -36

    def test_sender_share_alone_is_not_product(self):
        channel = ObliviousTransferChannel()
        sender, receiver = gilboa_product_shares(6, 7, channel, rng=3)
        assert sender != DEFAULT_RING.mul(6, 7)
        assert receiver != DEFAULT_RING.mul(6, 7)
