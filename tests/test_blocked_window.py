"""Windowed blocked backend: bounded memory, bit-identical transcripts.

The ``tile_window`` pipeline deals, evaluates, and releases one chunk of
``(J, K)`` tile groups at a time, so peak offline-material memory is set by
the window and not by ``n``.  Determinism rests on two invariants these
tests pin: group ``g`` always draws from the ``g``-th sub-dealer spawned
from the dealer's seed (regardless of which chunk it lands in or whether a
chunk runs warm from a store), and subtotals plus view shards reduce in
canonical schedule order.  Under those invariants every window size — and
every cold/warm store combination — must reproduce the unwindowed engine's
transcript bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Cargo, CargoConfig
from repro.core.backends import BlockedMatrixTriangleCounter, share_adjacency_rows
from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.views import ViewRecorder
from repro.exceptions import ConfigurationError, ProtocolError
from repro.graph.datasets import load_dataset
from repro.graph.triangles import count_triangles
from repro.parallel import TripleStore

NUM_USERS = 70
BLOCK_SIZE = 16


def leaves_equal(x, y):
    """Element-wise equality over nested containers of arrays/scalars."""
    if isinstance(x, (tuple, list)):
        return len(x) == len(y) and all(leaves_equal(a, b) for a, b in zip(x, y))
    return np.array_equal(x, y)


@pytest.fixture(scope="module")
def shares():
    graph = load_dataset("facebook", num_nodes=NUM_USERS)
    share1, share2 = share_adjacency_rows(graph.adjacency_matrix(), rng=NUM_USERS)
    return graph, share1, share2


def _run(shares, tile_window=None, store=None, record_views=True, seed=0):
    _, share1, share2 = shares
    views = ViewRecorder() if record_views else None
    counter = BlockedMatrixTriangleCounter(
        dealer=BeaverTripleDealer(seed=seed),
        block_size=BLOCK_SIZE,
        views=views,
        workers=1,
        triple_store=store,
        tile_window=tile_window,
    )
    result = counter.count_from_shares(share1, share2)
    return result, views, counter


def _assert_same_transcript(lhs, rhs):
    result_l, views_l, _ = lhs
    result_r, views_r, _ = rhs
    assert result_l.share1 == result_r.share1
    assert result_l.share2 == result_r.share2
    assert result_l.reconstruct() == result_r.reconstruct()
    assert result_l.opening_rounds == result_r.opening_rounds
    assert result_l.num_triples_processed == result_r.num_triples_processed
    for server in (1, 2):
        entries_l = views_l.view(server).entries
        entries_r = views_r.view(server).entries
        assert [e.label for e in entries_l] == [e.label for e in entries_r]
        for entry_l, entry_r in zip(entries_l, entries_r):
            assert leaves_equal(entry_l.value, entry_r.value), (server, entry_l.label)


class TestWindowedTranscripts:
    @pytest.mark.parametrize("tile_window", [1, 3, 7, 64])
    def test_bit_identical_to_unwindowed_engine(self, shares, tile_window):
        baseline = _run(shares, tile_window=None)
        windowed = _run(shares, tile_window=tile_window)
        _assert_same_transcript(baseline, windowed)

    def test_count_matches_ground_truth(self, shares):
        graph, _, _ = shares
        result, _, _ = _run(shares, tile_window=2, record_views=False)
        assert result.reconstruct() == count_triangles(graph)

    def test_window_sizes_agree_with_each_other(self, shares):
        first = _run(shares, tile_window=2)
        second = _run(shares, tile_window=5)
        _assert_same_transcript(first, second)

    def test_dealer_accounting_matches_engine(self, shares):
        _, _, counter_engine = _run(shares, tile_window=None, record_views=False)
        _, _, counter_windowed = _run(shares, tile_window=3, record_views=False)
        engine_dealer = counter_engine._dealer
        windowed_dealer = counter_windowed._dealer
        assert (
            windowed_dealer.total_triple_elements
            == engine_dealer.total_triple_elements
        )
        assert (
            windowed_dealer.largest_triple_elements
            == engine_dealer.largest_triple_elements
        )


class TestWindowedStore:
    def test_warm_chunked_rerun_is_bit_identical(self, shares, tmp_path):
        store = TripleStore(cache_dir=str(tmp_path / "chunks"))
        cold = _run(shares, tile_window=3, store=store)
        assert store.stats()["stores"] > 0
        warm_store = TripleStore(cache_dir=str(tmp_path / "chunks"))
        warm = _run(shares, tile_window=3, store=warm_store)
        assert warm_store.hits > 0
        _assert_same_transcript(cold, warm)

    def test_mmap_store_cold_then_warm(self, shares, tmp_path):
        cache = tmp_path / "mmap-chunks"
        cold = _run(shares, tile_window=3, store=TripleStore(cache_dir=str(cache), mmap=True))
        npk_files = sorted(cache.glob("*.npk"))
        bin_files = sorted(cache.glob("*.bin"))
        assert npk_files and len(npk_files) == len(bin_files)
        warm_store = TripleStore(cache_dir=str(cache), mmap=True)
        warm = _run(shares, tile_window=3, store=warm_store)
        assert warm_store.hits > 0
        _assert_same_transcript(cold, warm)

    def test_window_geometry_keys_are_distinct(self, shares, tmp_path):
        """Different window sizes chunk the schedule differently and must
        never serve each other's material."""
        store = TripleStore(cache_dir=str(tmp_path / "chunks"))
        first = _run(shares, tile_window=2, store=store)
        second_store = TripleStore(cache_dir=str(tmp_path / "chunks"))
        second = _run(shares, tile_window=4, store=second_store)
        assert second_store.hits == 0  # no cross-geometry reuse
        _assert_same_transcript(first, second)


class TestConfiguration:
    def test_tile_window_validation(self):
        with pytest.raises(ProtocolError, match="tile_window"):
            BlockedMatrixTriangleCounter(tile_window=0)
        with pytest.raises(ConfigurationError, match="tile_window"):
            CargoConfig(tile_window=0)

    def test_from_config_threads_window(self):
        config = CargoConfig(
            counting_backend="blocked", block_size=BLOCK_SIZE, tile_window=5
        )
        counter = BlockedMatrixTriangleCounter.from_config(config, dealer_rng=0)
        assert counter.tile_window == 5
        assert counter.block_size == BLOCK_SIZE

    def test_full_pipeline_windowed_release_matches(self, shares):
        graph, _, _ = shares
        base = CargoConfig(
            epsilon=2.0, counting_backend="blocked", block_size=BLOCK_SIZE, seed=11
        )
        windowed = CargoConfig(
            epsilon=2.0,
            counting_backend="blocked",
            block_size=BLOCK_SIZE,
            tile_window=2,
            seed=11,
        )
        result_base = Cargo(base).run(graph)
        result_windowed = Cargo(windowed).run(graph)
        assert (
            result_windowed.noisy_triangle_count == result_base.noisy_triangle_count
        )
