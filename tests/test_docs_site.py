"""Integrity checks for the documentation site.

``mkdocs`` itself is only installed in the CI docs job (it is not a library
dependency), so these tests validate everything a strict build depends on
that *can* be checked without it: the nav resolves, the API generator runs
and produces the pages the nav references, internal links in the
hand-written pages point at files that exist, and the generated reference
actually contains the public symbols.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

import pytest
import yaml

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"


def _load_gen_api():
    sys.path.insert(0, str(DOCS_DIR))
    try:
        import gen_api
    finally:
        sys.path.pop(0)
    return gen_api


def _nav_paths(node) -> list:
    """Flatten mkdocs' nested nav structure into page paths."""
    paths = []
    if isinstance(node, str):
        paths.append(node)
    elif isinstance(node, list):
        for item in node:
            paths.extend(_nav_paths(item))
    elif isinstance(node, dict):
        for value in node.values():
            paths.extend(_nav_paths(value))
    return paths


@pytest.fixture(scope="module")
def config() -> dict:
    # mkdocs.yml may use python-specific tags in exotic setups; ours is plain.
    return yaml.safe_load(MKDOCS_YML.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def generated_api(tmp_path_factory) -> Path:
    gen_api = _load_gen_api()
    out = tmp_path_factory.mktemp("api")
    gen_api.generate(out)
    return out


class TestNav:
    def test_yaml_parses_and_has_nav(self, config):
        assert config["site_name"]
        assert config["nav"]

    def test_every_nav_page_exists_or_is_generated(self, config, generated_api):
        for path in _nav_paths(config["nav"]):
            if path.startswith("api/"):
                assert (generated_api / Path(path).name).is_file(), (
                    f"nav references {path} but docs/gen_api.py does not generate it"
                )
            else:
                assert (DOCS_DIR / path).is_file(), f"nav references missing {path}"

    def test_every_handwritten_page_is_in_nav(self, config):
        in_nav = set(_nav_paths(config["nav"]))
        on_disk = {
            str(page.relative_to(DOCS_DIR))
            for page in DOCS_DIR.glob("*.md")
        }
        assert on_disk <= in_nav, f"pages missing from nav: {sorted(on_disk - in_nav)}"


class TestInternalLinks:
    LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(#[^)]*)?\)")

    def test_relative_links_resolve(self, generated_api):
        # README participates too: it links into the docs site.
        pages = list(DOCS_DIR.glob("*.md")) + [REPO_ROOT / "README.md"]
        for page in pages:
            base = page.parent
            for match in self.LINK.finditer(page.read_text(encoding="utf-8")):
                target = match.group(1)
                if "://" in target or target.startswith("mailto:"):
                    continue
                resolved = (base / target).resolve()
                if "api/" in target:
                    assert (generated_api / Path(target).name).is_file(), (
                        f"{page.name} links to ungenerated API page {target}"
                    )
                else:
                    assert resolved.exists(), f"{page.name} links to missing {target}"


class TestGeneratedReference:
    @pytest.mark.parametrize(
        "page, symbol",
        [
            ("stats.md", "SubgraphStatistic"),
            ("stats.md", "register_statistic"),
            ("stats.md", "ClusteringCoefficientRelease"),
            ("core.md", "class Cargo"),
            ("backends.md", "TriangleCounterBackend"),
            ("crypto.md", "secure_multiply_triple"),
            ("stream.md", "StreamingCargo"),
            ("analysis.md", "count_four_cycles"),
            ("telemetry.md", "class Tracer"),
            ("telemetry.md", "MetricsRegistry"),
            ("telemetry.md", "validate_manifest"),
            ("telemetry.md", "verify_ledger_reconciliation"),
            ("telemetry.md", "write_trace"),
            ("verify.md", "OpeningAuthenticator"),
            ("verify.md", "run_with_corruption"),
            ("verify.md", "audit_protocol"),
            ("verify.md", "run_fuzz"),
            ("verify.md", "epsilon_lower_bound_from_samples"),
        ],
    )
    def test_public_symbols_rendered(self, generated_api, page, symbol):
        assert symbol in (generated_api / page).read_text(encoding="utf-8")

    def test_doctest_examples_are_fenced(self, generated_api):
        stats = (generated_api / "stats.md").read_text(encoding="utf-8")
        assert "```python\n>>> " in stats

    def test_pages_nontrivial(self, generated_api):
        for page in generated_api.glob("*.md"):
            assert len(page.read_text(encoding="utf-8")) > 1000, (
                f"generated page {page.name} is suspiciously empty"
            )
