"""Tests for repro.experiments.runner and reporting."""

from __future__ import annotations

import pytest

from repro.baselines.central_lap import CentralLaplaceTriangleCounting
from repro.core.cargo import Cargo
from repro.exceptions import ExperimentError
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    ExperimentReport,
    ProtocolSweep,
    _accepts_rng,
    default_protocols,
    run_protocol_trials,
)
from repro.graph.generators import powerlaw_cluster_graph


class TestFormatTable:
    def test_renders_header_and_rows(self):
        text = format_table([{"a": 1, "b": 2.5}], title="demo")
        assert "demo" in text
        assert "a" in text and "b" in text
        assert "2.5" in text

    def test_column_order_respected(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_scientific_notation_for_extremes(self):
        text = format_table([{"x": 1.23e9, "y": 4.5e-7}])
        assert "e+09" in text and "e-07" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="nothing")


class TestExperimentReport:
    def test_add_row_and_column(self):
        report = ExperimentReport(name="r", description="d")
        report.add_row(x=1, y="a")
        report.add_row(x=2, y="b")
        assert report.column("x") == [1, 2]

    def test_filter_rows(self):
        report = ExperimentReport(name="r", description="d")
        report.add_row(protocol="Cargo", epsilon=1)
        report.add_row(protocol="CentralLap", epsilon=1)
        assert len(report.filter_rows(protocol="Cargo")) == 1

    def test_to_text_contains_name(self):
        report = ExperimentReport(name="fig5", description="demo")
        report.add_row(value=1)
        assert "fig5" in report.to_text()


class TestProtocolHelpers:
    def test_default_protocols_names(self):
        assert set(default_protocols(1.0)) == {"Local2Rounds", "Cargo", "CentralLap"}

    def test_run_protocol_trials_metrics(self):
        graph = powerlaw_cluster_graph(50, 3, 0.7, seed=0)
        metrics = run_protocol_trials(
            lambda eps, seed: CentralLaplaceTriangleCounting(epsilon=eps),
            graph,
            epsilon=2.0,
            num_trials=3,
        )
        assert set(metrics) == {"l2_mean", "l2_median", "re_mean", "re_median"}
        assert metrics["l2_mean"] >= 0

    def test_run_protocol_trials_invalid_count(self):
        graph = powerlaw_cluster_graph(30, 3, 0.7, seed=1)
        with pytest.raises(ExperimentError):
            run_protocol_trials(
                lambda eps, seed: CentralLaplaceTriangleCounting(epsilon=eps),
                graph,
                epsilon=1.0,
                num_trials=0,
            )


class TestProtocolSweep:
    def test_epsilon_sweep_rows(self):
        sweep = ProtocolSweep(datasets=["facebook"], num_nodes=80, num_trials=1, seed=0)
        report = sweep.run_epsilon_sweep([1.0, 2.0])
        # 1 dataset x 2 epsilons x 3 protocols.
        assert len(report.rows) == 6
        assert set(report.column("protocol")) == {"Local2Rounds", "Cargo", "CentralLap"}

    def test_user_sweep_rows(self):
        sweep = ProtocolSweep(datasets=["wiki"], num_trials=1, seed=0)
        report = sweep.run_user_sweep([60, 90], epsilon=2.0)
        assert len(report.rows) == 6
        assert set(report.column("num_users")) == {60, 90}

    def test_cargo_beats_local_in_sweep(self):
        sweep = ProtocolSweep(datasets=["facebook"], num_nodes=100, num_trials=2, seed=1)
        report = sweep.run_epsilon_sweep([2.0])
        cargo = report.filter_rows(protocol="Cargo")[0]["l2_mean"]
        local = report.filter_rows(protocol="Local2Rounds")[0]["l2_mean"]
        assert cargo < local

    def test_parallel_sweep_identical_to_serial(self):
        kwargs = dict(datasets=["facebook"], num_nodes=80, num_trials=2, seed=5)
        serial = ProtocolSweep(**kwargs).run_epsilon_sweep([1.0, 2.0])
        parallel = ProtocolSweep(**kwargs, max_workers=4).run_epsilon_sweep([1.0, 2.0])
        assert serial.rows == parallel.rows

    def test_parallel_user_sweep_identical_to_serial(self):
        kwargs = dict(datasets=["wiki"], num_trials=1, seed=2)
        serial = ProtocolSweep(**kwargs).run_user_sweep([60, 90], epsilon=2.0)
        parallel = ProtocolSweep(**kwargs, max_workers=3).run_user_sweep([60, 90], epsilon=2.0)
        assert serial.rows == parallel.rows

    def test_graph_loaded_once_per_cell_group(self):
        sweep = ProtocolSweep(datasets=["facebook"], num_nodes=60, num_trials=1, seed=0)
        sweep.run_epsilon_sweep([1.0, 2.0])
        (graph,) = sweep._graph_cache.values()
        # Ground truth is pre-computed once at load time.
        assert graph.cached_triangle_count is not None


class TestAcceptsRng:
    def test_baseline_accepts_rng(self):
        assert _accepts_rng(CentralLaplaceTriangleCounting(epsilon=1.0))

    def test_cargo_does_not_accept_rng(self):
        assert not _accepts_rng(Cargo())

    def test_duck_typed_runner_with_rng_parameter(self):
        class WithRng:
            def run(self, graph, rng=None):
                raise NotImplementedError

        class WithoutRng:
            def run(self, graph):
                raise NotImplementedError

        assert _accepts_rng(WithRng())
        assert not _accepts_rng(WithoutRng())
        assert not _accepts_rng(object())
