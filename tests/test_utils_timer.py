"""Tests for repro.utils.timer."""

from __future__ import annotations

import time

import pytest

from repro.utils.timer import Timer, TimerRegistry


class TestTimer:
    def test_measures_elapsed_time(self):
        timer = Timer("phase")
        with timer.measure():
            time.sleep(0.01)
        assert timer.total_seconds >= 0.009
        assert timer.calls == 1

    def test_accumulates_across_calls(self):
        timer = Timer("phase")
        for _ in range(3):
            with timer.measure():
                pass
        assert timer.calls == 3

    def test_nested_start_rejected(self):
        timer = Timer("phase")
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()
        timer.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer("phase").stop()

    def test_stop_returns_interval(self):
        timer = Timer("phase")
        timer.start()
        assert timer.stop() >= 0.0


class TestTimerRegistry:
    def test_timer_is_created_on_demand(self):
        registry = TimerRegistry()
        assert registry.timer("count") is registry.timer("count")
        assert "count" in registry

    def test_measure_and_as_dict(self):
        registry = TimerRegistry()
        with registry.measure("a"):
            pass
        with registry.measure("b"):
            pass
        snapshot = registry.as_dict()
        assert set(snapshot) == {"a", "b"}
        assert all(value >= 0 for value in snapshot.values())

    def test_seconds_unknown_phase_is_zero(self):
        assert TimerRegistry().seconds("missing") == 0.0

    def test_reset(self):
        registry = TimerRegistry()
        with registry.measure("a"):
            pass
        registry.reset()
        assert len(registry) == 0
