"""Regression tests: per-graph memos never serve stale values after mutation.

The streaming subsystem mutates one long-lived :class:`Graph` thousands of
times, so both instance-level memos — the exact triangle count and the dense
adjacency matrix — must be invalidated by every ``add_edge``/``remove_edge``
that actually changes the graph.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.graph.triangles import count_triangles


class TestTriangleCountCache:
    def test_add_edge_invalidates(self, triangle_graph):
        assert count_triangles(triangle_graph) == 1
        assert triangle_graph.cached_triangle_count == 1
        triangle_graph.add_edge(1, 3)
        assert triangle_graph.cached_triangle_count is None
        assert count_triangles(triangle_graph) == 2

    def test_remove_edge_invalidates(self, triangle_graph):
        assert count_triangles(triangle_graph) == 1
        triangle_graph.remove_edge(0, 1)
        assert triangle_graph.cached_triangle_count is None
        assert count_triangles(triangle_graph) == 0

    def test_noop_mutations_keep_the_cache(self, triangle_graph):
        count_triangles(triangle_graph)
        assert triangle_graph.add_edge(0, 1) is False  # already present
        assert triangle_graph.remove_edge(0, 3) is False  # never existed
        assert triangle_graph.cached_triangle_count == 1

    def test_long_mutation_sequence_never_serves_stale_counts(self, rng):
        graph = Graph(20)
        edges = [(u, v) for u in range(20) for v in range(u + 1, 20)]
        for _ in range(300):
            u, v = edges[int(rng.integers(0, len(edges)))]
            if graph.has_edge(u, v):
                graph.remove_edge(u, v)
            else:
                graph.add_edge(u, v)
            assert count_triangles(graph) == count_triangles(graph, use_cache=False)


class TestAdjacencyMatrixCache:
    def test_matrix_is_memoised_between_calls(self, triangle_graph):
        first = triangle_graph.adjacency_matrix(copy=False)
        second = triangle_graph.adjacency_matrix(copy=False)
        assert first is second

    def test_default_call_returns_a_writable_copy(self, triangle_graph):
        matrix = triangle_graph.adjacency_matrix()
        matrix[0, 1] = 0  # caller-side scratch edits must not corrupt the memo
        fresh = triangle_graph.adjacency_matrix()
        assert fresh[0, 1] == 1

    def test_default_calls_do_not_pin_the_memo(self, triangle_graph):
        # One-shot callers must not retain O(n^2) memory on the graph; only
        # the copy=False fast path opts into memoisation.
        triangle_graph.adjacency_matrix()
        assert triangle_graph._adjacency_matrix_cache is None
        triangle_graph.adjacency_matrix(copy=False)
        assert triangle_graph._adjacency_matrix_cache is not None

    def test_read_only_view_rejects_mutation(self, triangle_graph):
        view = triangle_graph.adjacency_matrix(copy=False)
        with pytest.raises(ValueError):
            view[0, 1] = 0

    def test_add_edge_invalidates(self, triangle_graph):
        before = triangle_graph.adjacency_matrix()
        triangle_graph.add_edge(1, 3)
        after = triangle_graph.adjacency_matrix()
        assert before[1, 3] == 0
        assert after[1, 3] == 1 and after[3, 1] == 1

    def test_remove_edge_invalidates(self, triangle_graph):
        triangle_graph.adjacency_matrix()
        triangle_graph.remove_edge(0, 1)
        after = triangle_graph.adjacency_matrix()
        assert after[0, 1] == 0 and after[1, 0] == 0

    def test_matrix_matches_rebuild_after_every_mutation(self, rng):
        graph = Graph(12)
        for _ in range(150):
            u = int(rng.integers(0, 12))
            v = int(rng.integers(0, 12))
            if u == v:
                continue
            if graph.has_edge(u, v):
                graph.remove_edge(u, v)
            else:
                graph.add_edge(u, v)
            rebuilt = Graph(12, edges=graph.edge_list()).adjacency_matrix()
            assert np.array_equal(graph.adjacency_matrix(), rebuilt)

    def test_copy_shares_then_diverges(self, triangle_graph):
        original_matrix = triangle_graph.adjacency_matrix(copy=False)
        clone = triangle_graph.copy()
        assert np.array_equal(clone.adjacency_matrix(), original_matrix)
        clone.add_edge(1, 3)
        # The clone invalidated only its own memo.
        assert triangle_graph.adjacency_matrix(copy=False) is original_matrix
        assert clone.adjacency_matrix()[1, 3] == 1
        assert triangle_graph.adjacency_matrix()[1, 3] == 0
