"""Sparse (degree-local) vs dense execution: bit-identical transcripts.

The sparse path projects the degree vector instead of the ``n x n`` rows and
feeds :meth:`secure_count_from_degrees` directly.  Because the projected
degree of user ``i`` is determined by her original degree and the bound
alone, and because the dense k-star kernel reduces its rows to that same
degree vector before sharing, the two paths must agree *bit for bit* — not
just in the released count but in every recorded server view and every
communication-ledger entry.  These tests pin that contract on the graph
shapes where projection behaves differently (no edges, one hub, all-equal
degrees, random).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Cargo, CargoConfig
from repro.core.node_dp import NodeDpCargo
from repro.exceptions import ConfigurationError
from repro.graph.generators import sparse_random_graph
from repro.graph.graph import Graph

SEED = 1234


def leaves_equal(x, y):
    """Recursive equality over nested tuples/lists of scalars and arrays.

    ``np.array_equal`` on a tuple of ragged-shaped arrays is spuriously
    ``False`` (it cannot broadcast them into one array), so container levels
    are compared element-wise and only the leaves go through numpy.
    """
    if isinstance(x, (tuple, list)):
        return len(x) == len(y) and all(leaves_equal(a, b) for a, b in zip(x, y))
    return np.array_equal(x, y)


def _config(statistic: str, sparse: str, **overrides) -> CargoConfig:
    defaults = dict(
        epsilon=2.0,
        statistic=statistic,
        seed=SEED,
        sparse=sparse,
        record_views=True,
        track_communication=True,
    )
    defaults.update(overrides)
    return CargoConfig(**defaults)


def _graphs(rng):
    complete = Graph(6)
    for u in range(6):
        for v in range(u + 1, 6):
            complete.add_edge(u, v)
    star = Graph(8, edges=[(0, v) for v in range(1, 8)])
    return {
        "empty": Graph(12),
        "star": star,
        "complete": complete,
        "random": sparse_random_graph(40, 90, seed=7),
    }


def _assert_identical_runs(graph, statistic: str, **overrides):
    """Run dense (sparse='never') vs sparse ('force') and compare transcripts."""
    dense = Cargo(_config(statistic, "never", **overrides))
    sparse = Cargo(_config(statistic, "force", **overrides))
    dense_result = dense.run(graph)
    sparse_result = sparse.run(graph)

    assert sparse_result.noisy_triangle_count == dense_result.noisy_triangle_count
    assert sparse_result.true_triangle_count == dense_result.true_triangle_count
    assert (
        sparse_result.projected_triangle_count
        == dense_result.projected_triangle_count
    )
    assert sparse_result.noisy_max_degree == dense_result.noisy_max_degree
    assert sparse_result.epsilon1 == dense_result.epsilon1
    assert sparse_result.epsilon2 == dense_result.epsilon2
    # The ledger (bytes, message counts, per-phase breakdown) must match.
    assert sparse_result.communication == dense_result.communication
    assert sparse_result.communication_phases == dense_result.communication_phases

    # Every recorded server view: same labels, same values, same order.
    for server in (1, 2):
        dense_entries = dense.views.view(server).entries
        sparse_entries = sparse.views.view(server).entries
        assert [e.label for e in sparse_entries] == [e.label for e in dense_entries]
        for dense_entry, sparse_entry in zip(dense_entries, sparse_entries):
            assert leaves_equal(sparse_entry.value, dense_entry.value), (
                server,
                dense_entry.label,
            )
    return dense_result, sparse_result


class TestCargoSparseEquivalence:
    @pytest.mark.parametrize("shape", ["empty", "star", "complete", "random"])
    @pytest.mark.parametrize("statistic", ["kstars", "wedges"])
    def test_bit_identical_release_and_transcript(self, shape, statistic, rng):
        graph = _graphs(rng)[shape]
        _assert_identical_runs(graph, statistic)

    def test_star_k_three(self, rng):
        graph = _graphs(rng)["random"]
        _assert_identical_runs(graph, "kstars", star_k=3)

    def test_auto_equals_force_for_degree_statistics(self, rng):
        graph = _graphs(rng)["random"]
        auto = Cargo(_config("kstars", "auto")).run(graph)
        force = Cargo(_config("kstars", "force")).run(graph)
        assert auto.noisy_triangle_count == force.noisy_triangle_count
        assert auto.communication == force.communication

    def test_force_rejects_non_degree_statistic(self, triangle_graph):
        with pytest.raises(ConfigurationError, match="degree-local kernel"):
            Cargo(_config("triangles", "force")).run(triangle_graph)

    def test_auto_keeps_triangles_dense(self, triangle_graph):
        result = Cargo(_config("triangles", "auto")).run(triangle_graph)
        assert result.statistic == "triangles"

    def test_zero_opening_rounds_and_o_n_shares(self, rng):
        """The sparse kernel shares one scalar per user, nothing quadratic."""
        graph = _graphs(rng)["random"]
        cargo = Cargo(_config("kstars", "force"))
        cargo.run(graph)
        for server in (1, 2):
            entries = cargo.views.view(server).entries
            share_entries = [e for e in entries if e.label == "statistic_share"]
            assert len(share_entries) == 1
            assert share_entries[0].value.shape == (graph.num_nodes,)


class TestNodeDpSparseEquivalence:
    @pytest.mark.parametrize("shape", ["empty", "star", "complete", "random"])
    def test_bit_identical_release(self, shape, rng):
        graph = _graphs(rng)[shape]
        dense = NodeDpCargo(
            CargoConfig(epsilon=2.0, statistic="wedges", seed=SEED, sparse="never")
        ).run(graph)
        sparse = NodeDpCargo(
            CargoConfig(epsilon=2.0, statistic="wedges", seed=SEED, sparse="force")
        ).run(graph)
        assert sparse.noisy_triangle_count == dense.noisy_triangle_count
        assert sparse.projected_triangle_count == dense.projected_triangle_count
        assert sparse.noisy_max_degree == dense.noisy_max_degree

    def test_force_rejects_non_degree_statistic(self, triangle_graph):
        config = CargoConfig(epsilon=2.0, statistic="triangles", sparse="force", seed=0)
        with pytest.raises(ConfigurationError, match="degree-local kernel"):
            NodeDpCargo(config).run(triangle_graph)
