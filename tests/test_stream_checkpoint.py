"""Crash-safe checkpoint/resume for the streaming orchestrator.

The correctness bar is *bit-identity*: a run killed at any point and resumed
from its checkpoint must publish exactly the releases — estimates, truth,
anchors, ε trajectory — and exactly the accountant ledger of a run that was
never interrupted.  Anything weaker would mean a crash changes the privacy
or accuracy story of the stream.
"""

from __future__ import annotations

import pytest

from repro.exceptions import CheckpointError
from repro.graph.generators import erdos_renyi_graph
from repro.resilience import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    ResilienceConfig,
    RetryPolicy,
    install_fault_plan,
)
from repro.stream.events import replay_stream
from repro.stream.orchestrator import StreamingCargo, StreamingConfig


def _stream(num_nodes=70, seed=5):
    graph = erdos_renyi_graph(num_nodes, 0.3, seed=seed)
    return replay_stream(graph, rng=seed)


def _config(**overrides):
    fields = dict(epsilon=4.0, release_every=40, anchor_every=3, seed=21)
    fields.update(overrides)
    return StreamingConfig(**fields)


def _reference():
    return StreamingCargo(_config()).run(_stream())


def _assert_bit_identical(result, reference):
    assert result.releases == reference.releases
    assert result.ledger == reference.ledger
    assert result.epsilon_spent == reference.epsilon_spent
    assert result.anchors_run == reference.anchors_run
    assert result.events_processed == reference.events_processed


@pytest.mark.parametrize("crash_at_anchor", [1, 2, 3])
def test_kill_at_anchor_resumes_bit_identically(tmp_path, crash_at_anchor):
    reference = _reference()
    ckpt = tmp_path / "stream.ckpt"
    resilience = ResilienceConfig(checkpoint_path=ckpt, resume=True)
    plan = FaultPlan(
        [FaultSpec("stream.anchor", FaultKind.CRASH, at=crash_at_anchor)]
    )
    with install_fault_plan(plan):
        with pytest.raises(InjectedCrash):
            StreamingCargo(_config(resilience=resilience)).run(_stream())
    assert ckpt.exists() or crash_at_anchor == 1  # bootstrap crash may precede saves
    resumed = StreamingCargo(_config(resilience=resilience)).run(_stream())
    _assert_bit_identical(resumed, reference)


def test_resume_from_every_checkpoint_cadence(tmp_path):
    # checkpoint_every > 1 loses at most (every - 1) releases to replay;
    # the resumed output must still be bit-identical.
    reference = _reference()
    ckpt = tmp_path / "stream.ckpt"
    resilience = ResilienceConfig(checkpoint_path=ckpt, checkpoint_every=4, resume=True)
    plan = FaultPlan([FaultSpec("stream.anchor", FaultKind.CRASH, at=3)])
    with install_fault_plan(plan):
        with pytest.raises(InjectedCrash):
            StreamingCargo(_config(resilience=resilience)).run(_stream())
    resumed = StreamingCargo(_config(resilience=resilience)).run(_stream())
    _assert_bit_identical(resumed, reference)


def test_transient_anchor_fault_retries_without_double_spend(tmp_path):
    # A retried anchor must not spend ε twice nor shift any RNG stream: the
    # full run output matches the fault-free reference exactly.
    reference = _reference()
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=3, sleep=lambda _delay: None)
    )
    plan = FaultPlan(
        [
            FaultSpec("stream.anchor", FaultKind.OSERROR, at=1),
            FaultSpec("stream.anchor", FaultKind.OSERROR, at=3),
        ]
    )
    with install_fault_plan(plan):
        result = StreamingCargo(_config(resilience=resilience)).run(_stream())
    _assert_bit_identical(result, reference)
    assert len(plan.triggered()) == 2


def test_resume_without_checkpoint_runs_cold(tmp_path):
    reference = _reference()
    resilience = ResilienceConfig(
        checkpoint_path=tmp_path / "never_written.ckpt", resume=True
    )
    result = StreamingCargo(_config(resilience=resilience)).run(_stream())
    _assert_bit_identical(result, reference)


def test_checkpointing_alone_does_not_change_output(tmp_path):
    reference = _reference()
    resilience = ResilienceConfig(checkpoint_path=tmp_path / "stream.ckpt")
    result = StreamingCargo(_config(resilience=resilience)).run(_stream())
    _assert_bit_identical(result, reference)
    assert (tmp_path / "stream.ckpt").exists()


def test_checkpoint_for_different_stream_is_refused(tmp_path):
    # A checkpoint from one (config, stream) pair must never seed another:
    # the orchestrator's token binds both, and the mismatch is a loud typed
    # refusal — not a silent resume of foreign state.
    ckpt = tmp_path / "stream.ckpt"
    resilience = ResilienceConfig(checkpoint_path=ckpt, resume=True)
    StreamingCargo(_config(resilience=resilience)).run(_stream())
    assert ckpt.exists()
    other_stream = _stream(num_nodes=50, seed=9)
    with pytest.raises(CheckpointError):
        StreamingCargo(_config(resilience=resilience)).run(other_stream)
