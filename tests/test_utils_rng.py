"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import (
    choice_without_replacement,
    derive_rng,
    shuffled,
    spawn_rngs,
    stable_seed_from_name,
)


class TestDeriveRng:
    def test_none_gives_generator(self):
        assert isinstance(derive_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = derive_rng(7).integers(0, 1_000_000)
        b = derive_rng(7).integers(0, 1_000_000)
        assert a == b

    def test_different_seeds_differ(self):
        a = derive_rng(1).integers(0, 2**40)
        b = derive_rng(2).integers(0, 2**40)
        assert a != b

    def test_generator_passthrough(self):
        generator = np.random.default_rng(3)
        assert derive_rng(generator) is generator

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(5)
        assert isinstance(derive_rng(sequence), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 3)
        draws = [child.integers(0, 2**40) for child in children]
        assert len(set(draws)) == 3

    def test_deterministic_from_seed(self):
        first = [g.integers(0, 2**40) for g in spawn_rngs(11, 4)]
        second = [g.integers(0, 2**40) for g in spawn_rngs(11, 4)]
        assert first == second

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_generator_input_spawns(self):
        children = spawn_rngs(np.random.default_rng(9), 2)
        assert len(children) == 2


class TestHelpers:
    def test_choice_without_replacement_distinct(self, rng):
        picked = choice_without_replacement(rng, list(range(20)), 10)
        assert len(picked) == len(set(picked)) == 10

    def test_choice_without_replacement_too_many(self, rng):
        with pytest.raises(ValueError):
            choice_without_replacement(rng, [1, 2, 3], 4)

    def test_shuffled_preserves_elements(self, rng):
        items = list(range(50))
        result = shuffled(rng, items)
        assert sorted(result) == items
        assert items == list(range(50))  # input not mutated

    def test_stable_seed_is_stable(self):
        assert stable_seed_from_name("facebook") == stable_seed_from_name("facebook")

    def test_stable_seed_differs_by_name(self):
        assert stable_seed_from_name("facebook") != stable_seed_from_name("wiki")

    def test_stable_seed_mixes_base_seed(self):
        assert stable_seed_from_name("facebook", 1) != stable_seed_from_name("facebook", 2)

    def test_stable_seed_fits_63_bits(self):
        assert 0 <= stable_seed_from_name("enron") < 2**63


class TestSpawnStateMatrix:
    def test_deterministic_per_seed(self):
        from repro.utils.rng import spawn_state_matrix

        assert np.array_equal(spawn_state_matrix(7, 5, words=3), spawn_state_matrix(7, 5, words=3))
        assert not np.array_equal(spawn_state_matrix(7, 5), spawn_state_matrix(8, 5))

    def test_rows_match_spawned_substreams(self):
        """Row i is a pure function of user i's spawned child sequence."""
        from repro.utils.rng import spawn_seed_sequences, spawn_state_matrix

        matrix = spawn_state_matrix(9, 4, words=2)
        children = spawn_seed_sequences(9, 4)
        for index, child in enumerate(children):
            assert np.array_equal(matrix[index], child.generate_state(2, np.uint64))

    def test_same_children_as_spawn_rngs(self):
        """The substreams behind the matrix are the spawn_rngs substreams."""
        from repro.utils.rng import spawn_rngs, spawn_seed_sequences

        generators = spawn_rngs(11, 3)
        sequences = spawn_seed_sequences(11, 3)
        for generator, sequence in zip(generators, sequences):
            expected = np.random.default_rng(sequence)
            assert generator.integers(0, 2**32) == expected.integers(0, 2**32)

    def test_words_validation(self):
        from repro.utils.rng import spawn_state_matrix

        with pytest.raises(ValueError):
            spawn_state_matrix(0, 3, words=0)

    def test_uniforms_in_unit_interval(self):
        from repro.utils.rng import spawn_state_matrix, uniforms_from_states

        uniforms = uniforms_from_states(spawn_state_matrix(13, 500, words=1)[:, 0])
        assert uniforms.shape == (500,)
        assert float(uniforms.min()) >= 0.0
        assert float(uniforms.max()) < 1.0
        assert 0.4 < float(uniforms.mean()) < 0.6
