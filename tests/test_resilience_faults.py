"""Fault-injection harness and retry-policy unit suite.

The resilience layer's contract is *determinism*: the same plan (or the same
``FaultPlan.random`` seed) fires the same faults at the same invocations on
every run, and the retry policy's jittered delays are a pure function of
(seed, site, attempt).  These tests pin that contract plus the typed error
surface (``RetryExhaustedError``, ``InjectedCrash`` never retried) and the
transactional accountant that keeps retried anchors from double-spending.
"""

from __future__ import annotations

import pytest

from repro.dp.accountant import PrivacyAccountant
from repro.exceptions import (
    ConfigurationError,
    DealerError,
    PrivacyError,
    RetryExhaustedError,
)
from repro.resilience import (
    FAULT_SITES,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    RetryPolicy,
    active_fault_plan,
    corrupt_bytes,
    fault_point,
    install_fault_plan,
)
from repro.telemetry.metrics import MetricsRegistry


# --------------------------------------------------------------------- #
# FaultSpec / FaultPlan
# --------------------------------------------------------------------- #
def test_fault_spec_rejects_unknown_site_and_bad_index():
    with pytest.raises(ConfigurationError):
        FaultSpec("not.a.site", FaultKind.OSERROR)
    with pytest.raises(ConfigurationError):
        FaultSpec("pool.task", FaultKind.OSERROR, at=0)


def test_fault_plan_rejects_duplicate_slot():
    with pytest.raises(ConfigurationError):
        FaultPlan(
            [
                FaultSpec("pool.task", FaultKind.OSERROR, at=2),
                FaultSpec("pool.task", FaultKind.CRASH, at=2),
            ]
        )


def test_fault_point_is_noop_without_plan():
    assert active_fault_plan() is None
    for site in FAULT_SITES:
        assert fault_point(site) is None


def test_fault_plan_fires_each_kind_at_pinned_invocation():
    plan = FaultPlan(
        [
            FaultSpec("pool.task", FaultKind.OSERROR, at=2),
            FaultSpec("stream.anchor", FaultKind.CRASH, at=1),
            FaultSpec("dealer.provision", FaultKind.EXHAUST, at=1),
            FaultSpec("export.write", FaultKind.BITFLIP, at=1),
        ]
    )
    with install_fault_plan(plan):
        assert fault_point("pool.task") is None  # invocation 1: clean
        with pytest.raises(OSError):
            fault_point("pool.task")  # invocation 2 fires
        with pytest.raises(InjectedCrash):
            fault_point("stream.anchor")
        with pytest.raises(DealerError):
            fault_point("dealer.provision")
        spec = fault_point("export.write")  # bitflips are returned, not raised
        assert spec is not None and spec.kind is FaultKind.BITFLIP
    log = plan.triggered()
    assert [entry["site"] for entry in log] == [
        "pool.task",
        "stream.anchor",
        "dealer.provision",
        "export.write",
    ]
    assert plan.counts()["pool.task"] == 2


def test_install_fault_plan_nests_and_restores():
    outer = FaultPlan([FaultSpec("pool.task", FaultKind.OSERROR, at=1)])
    with install_fault_plan(outer):
        with install_fault_plan(None):
            # Inner None temporarily disables the outer plan entirely.
            assert fault_point("pool.task") is None
            assert active_fault_plan() is None
        assert active_fault_plan() is outer
    assert active_fault_plan() is None


def test_fault_plan_json_round_trip():
    plan = FaultPlan(
        [FaultSpec("triple_store.read", FaultKind.BITFLIP, at=3, payload=17)],
        seed=9,
    )
    clone = FaultPlan.from_json(plan.to_json())
    assert [s.as_dict() for s in clone.specs] == [s.as_dict() for s in plan.specs]
    # The triggered log is runtime state and resets on round-trip.
    assert clone.triggered() == []


def test_fault_plan_random_is_reproducible():
    a = FaultPlan.random(seed=42, num_faults=6)
    b = FaultPlan.random(seed=42, num_faults=6)
    assert [s.as_dict() for s in a.specs] == [s.as_dict() for s in b.specs]
    assert [s.as_dict() for s in FaultPlan.random(seed=43, num_faults=6).specs] != [
        s.as_dict() for s in a.specs
    ]


def test_corrupt_bytes_deterministic_single_bit():
    spec = FaultSpec("export.write", FaultKind.BITFLIP, at=1, payload=5)
    data = bytes(range(64))
    flipped = corrupt_bytes(data, spec)
    assert flipped == corrupt_bytes(data, spec)
    diff = [i for i, (x, y) in enumerate(zip(data, flipped)) if x != y]
    assert len(diff) == 1
    assert bin(data[diff[0]] ^ flipped[diff[0]]).count("1") == 1


# --------------------------------------------------------------------- #
# RetryPolicy
# --------------------------------------------------------------------- #
def test_retry_policy_retries_then_succeeds_with_metrics():
    metrics = MetricsRegistry()
    policy = RetryPolicy(max_attempts=3, sleep=lambda _delay: None)
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise OSError("transient")
        return "ok"

    assert policy.run("pool.task", flaky, metrics=metrics) == "ok"
    assert len(attempts) == 3
    assert metrics.counters()['retry_attempts{site="pool.task"}'] == 2


def test_retry_policy_exhaustion_is_typed():
    metrics = MetricsRegistry()
    policy = RetryPolicy(max_attempts=2, sleep=lambda _delay: None)

    def always_fails():
        raise OSError("disk on fire")

    with pytest.raises(RetryExhaustedError) as excinfo:
        policy.run("triple_store.read", always_fails, metrics=metrics)
    assert excinfo.value.site == "triple_store.read"
    assert excinfo.value.attempts == 2
    assert isinstance(excinfo.value.__cause__, OSError)
    assert metrics.counters()['retry_giveups{site="triple_store.read"}'] == 1


def test_retry_policy_never_retries_injected_crash():
    policy = RetryPolicy(max_attempts=5, sleep=lambda _delay: None)
    calls = []

    def crashes():
        calls.append(1)
        raise InjectedCrash("killed")

    with pytest.raises(InjectedCrash):
        policy.run("pool.task", crashes)
    assert len(calls) == 1  # a crash is a process death, not a transient


def test_retry_policy_delays_are_deterministic_and_bounded():
    policy = RetryPolicy(max_attempts=4, base_delay=0.01, max_delay=0.05, seed=7)
    delays = [policy.delay("stream.anchor", attempt) for attempt in (1, 2, 3)]
    assert delays == [policy.delay("stream.anchor", a) for a in (1, 2, 3)]
    assert all(0 < d <= 0.05 for d in delays)
    # Different sites jitter differently under the same seed.
    assert policy.delay("pool.task", 1) != policy.delay("stream.anchor", 1)


# --------------------------------------------------------------------- #
# Transactional accountant
# --------------------------------------------------------------------- #
def test_accountant_transaction_rolls_back_on_failure():
    accountant = PrivacyAccountant(total_budget=1.0)
    with pytest.raises(RuntimeError):
        with accountant.transaction():
            accountant.spend(0.4, "doomed anchor")
            raise RuntimeError("fault mid-anchor")
    assert accountant.spent == 0.0
    assert accountant.ledger() == []
    # A successful transaction commits normally.
    with accountant.transaction():
        accountant.spend(0.4, "anchor")
    assert accountant.spent == pytest.approx(0.4)


def test_accountant_rollback_rejects_diverged_snapshot():
    accountant = PrivacyAccountant(total_budget=1.0)
    reservation = accountant.reserve()
    accountant.spend(0.2, "a")
    accountant.rollback(reservation)
    assert accountant.spent == 0.0
    # Rolling back to a snapshot that is no longer a prefix must refuse.
    accountant.spend(0.1, "b")
    stale = (0.05, 7)
    with pytest.raises(PrivacyError):
        accountant.rollback(stale)
