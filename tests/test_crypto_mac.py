"""Unit tests for repro.crypto.mac — SPDZ-style authenticated openings.

The cheater-detection *protocol* tests (full runs under an active adversary)
live in ``test_verify_adversary.py``; this module pins the MAC layer itself:
key generation, tag algebra, the batched round check, shape restoration, and
the ``resolve_authenticator`` config plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CargoConfig
from repro.crypto.mac import (
    AuthenticatedShare,
    MacKey,
    OpeningAuthenticator,
    resolve_authenticator,
)
from repro.crypto.ring import DEFAULT_RING
from repro.exceptions import CheaterDetectedError, ConfigurationError


class TestMacKey:
    def test_alpha_is_odd_unit(self):
        for seed in range(20):
            key = MacKey.generate(seed)
            assert key.alpha() % 2 == 1

    def test_generation_is_deterministic_per_seed(self):
        assert MacKey.generate(5) == MacKey.generate(5)
        assert MacKey.generate(5) != MacKey.generate(6)

    def test_shares_reconstruct_alpha(self):
        key = MacKey.generate(9)
        assert DEFAULT_RING.add(key.alpha1, key.alpha2) == key.alpha()


class TestAuthenticatedShare:
    def _share(self, key: MacKey, value: int, seed: int = 0) -> AuthenticatedShare:
        ring = DEFAULT_RING
        rng = np.random.default_rng(seed)
        value1 = ring.random_element(rng)
        tag = ring.mul(key.alpha(), value)
        tag1 = ring.random_element(rng)
        return AuthenticatedShare(
            value1=value1,
            value2=ring.sub(value, value1),
            tag1=tag1,
            tag2=ring.sub(tag, tag1),
        )

    def test_honest_share_opens(self):
        key = MacKey.generate(1)
        share = self._share(key, 42)
        assert share.check(key)
        assert share.open(key) == 42

    def test_tampered_value_fails_check(self):
        key = MacKey.generate(1)
        share = self._share(key, 42)
        bad = AuthenticatedShare(
            value1=DEFAULT_RING.add(share.value1, 1),
            value2=share.value2,
            tag1=share.tag1,
            tag2=share.tag2,
        )
        assert not bad.check(key)
        with pytest.raises(CheaterDetectedError):
            bad.open(key)

    def test_tampered_tag_fails_check(self):
        key = MacKey.generate(1)
        share = self._share(key, 42)
        bad = AuthenticatedShare(
            value1=share.value1,
            value2=share.value2,
            tag1=DEFAULT_RING.add(share.tag1, 3),
            tag2=share.tag2,
        )
        assert not bad.check(key)


class TestOpeningAuthenticator:
    def test_scalar_exchange_matches_plain_reconstruction(self):
        auth = OpeningAuthenticator(seed=3)
        ring = DEFAULT_RING
        pairs = [(3, 4), (ring.sub(0, 5), 5)]
        opened = auth.exchange("round", pairs)
        assert opened == [ring.add(3, 4), 0]
        assert all(isinstance(value, int) for value in opened)
        assert auth.rounds_checked == 1
        assert auth.values_checked == 2

    def test_array_exchange_restores_shapes(self):
        auth = OpeningAuthenticator(seed=3)
        ring = DEFAULT_RING
        rng = np.random.default_rng(0)
        a1 = ring.random_array((2, 3), rng)
        a2 = ring.random_array((2, 3), rng)
        b1 = ring.random_array(4, rng)
        b2 = ring.random_array(4, rng)
        opened_a, opened_b = auth.exchange("round", [(a1, a2), (b1, b2)])
        assert opened_a.shape == (2, 3)
        assert opened_b.shape == (4,)
        np.testing.assert_array_equal(opened_a, ring.add(a1, a2))
        np.testing.assert_array_equal(opened_b, ring.add(b1, b2))
        assert auth.values_checked == 10

    def test_same_seed_same_tags(self):
        rounds = []

        def capture(opening):
            rounds.append(opening.messages[0].tags.copy())

        for _ in range(2):
            auth = OpeningAuthenticator(seed=11, tamper=capture)
            auth.exchange("round", [(1, 2), (3, 4)])
        np.testing.assert_array_equal(rounds[0], rounds[1])

    def test_value_tamper_detected_with_round_metadata(self):
        def lie(opening):
            opening.messages[1].values[0] = DEFAULT_RING.add(
                opening.messages[1].values[0], 17
            )

        auth = OpeningAuthenticator(seed=0, tamper=lie)
        with pytest.raises(CheaterDetectedError) as info:
            auth.exchange("beaver_opening", [(1, 2)])
        assert info.value.label == "beaver_opening"
        assert info.value.round_index == 0
        assert auth.rounds_checked == 0

    def test_tag_tamper_detected(self):
        def lie(opening):
            opening.messages[0].tags[0] = DEFAULT_RING.add(
                opening.messages[0].tags[0], 1
            )

        auth = OpeningAuthenticator(seed=0, tamper=lie)
        with pytest.raises(CheaterDetectedError):
            auth.exchange("round", [(1, 2)])

    def test_consistent_lie_on_both_fields_still_detected(self):
        """Shifting value and tag together only works with knowledge of alpha."""

        def lie(opening):
            message = opening.messages[0]
            message.values[0] = DEFAULT_RING.add(message.values[0], 1)
            message.tags[0] = DEFAULT_RING.add(message.tags[0], 1)

        auth = OpeningAuthenticator(seed=0, tamper=lie)
        # Detection fails only if alpha == 1; the dealt key is a random odd
        # 64-bit value, so this seed (like any realistic one) catches it.
        with pytest.raises(CheaterDetectedError):
            auth.exchange("round", [(1, 2)])

    def test_truncation_detected(self):
        def drop(opening):
            message = opening.messages[0]
            message.values = message.values[:-1]
            message.tags = message.tags[:-1]

        auth = OpeningAuthenticator(seed=0, tamper=drop)
        with pytest.raises(CheaterDetectedError, match="truncation"):
            auth.exchange("round", [(1, 2), (3, 4)])

    def test_dtype_swap_detected(self):
        def retype(opening):
            message = opening.messages[0]
            message.values = message.values.astype(np.int64)

        auth = OpeningAuthenticator(seed=0, tamper=retype)
        with pytest.raises(CheaterDetectedError, match="dtype"):
            auth.exchange("round", [(1, 2)])

    def test_mismatched_share_shapes_rejected(self):
        auth = OpeningAuthenticator(seed=0)
        with pytest.raises(CheaterDetectedError, match="shapes disagree"):
            auth.exchange("round", [(np.zeros(2, dtype=np.uint64), np.zeros(3, dtype=np.uint64))])

    def test_empty_round_is_a_noop(self):
        auth = OpeningAuthenticator(seed=0)
        assert auth.exchange("round", []) == []
        assert auth.rounds_checked == 0

    def test_disabled_arm_opens_plain_and_never_checks(self):
        fired = []
        auth = OpeningAuthenticator.disabled()
        auth._tamper = lambda opening: fired.append(opening)
        assert not auth.enabled
        assert auth.exchange("round", [(1, 2)]) == [3]
        assert fired == []
        assert auth.rounds_checked == 0


class TestResolveAuthenticator:
    def test_default_config_has_no_authenticator(self):
        assert resolve_authenticator(CargoConfig(epsilon=1.0)) is None

    def test_authenticate_flag_builds_from_run_seed(self):
        auth = resolve_authenticator(CargoConfig(epsilon=1.0, authenticate=True, seed=7))
        assert isinstance(auth, OpeningAuthenticator)
        assert auth.key == MacKey.generate(7)

    def test_injected_authenticator_wins(self):
        injected = OpeningAuthenticator(seed=1)
        config = CargoConfig(epsilon=1.0, authenticator=injected)
        assert resolve_authenticator(config) is injected
        # An injected authenticator implies authentication at the config level.
        assert config.authenticate

    def test_invalid_injected_object_rejected(self):
        class Bogus:
            exchange = "not callable"

        config = CargoConfig(epsilon=1.0)
        object.__setattr__(config, "authenticator", Bogus())
        with pytest.raises(ConfigurationError):
            resolve_authenticator(config)
