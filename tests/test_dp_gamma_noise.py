"""Tests for repro.dp.gamma_noise — infinite divisibility of Laplace noise."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp.gamma_noise import (
    DistributedLaplaceNoise,
    sample_partial_noise,
    sample_partial_noises,
)
from repro.exceptions import PrivacyError


class TestPartialNoise:
    def test_scalar_and_vector_agree_in_distribution(self):
        values = sample_partial_noises(50, 2.0, rng=0)
        assert values.shape == (50,)

    def test_invalid_parameters(self):
        with pytest.raises(PrivacyError):
            sample_partial_noise(0, 1.0)
        with pytest.raises(PrivacyError):
            sample_partial_noise(5, 0.0)
        with pytest.raises(PrivacyError):
            sample_partial_noises(-1, 1.0)

    def test_partial_noise_much_smaller_than_laplace(self):
        """A single user's noise is tiny compared to the aggregated Laplace."""
        scale = 10.0
        num_users = 1000
        partials = np.abs(sample_partial_noises(num_users, scale, rng=1))
        # Each partial is Gamma(1/n) difference; its variance is 2*scale^2/n.
        assert float(np.mean(partials)) < scale

    def test_aggregate_is_laplace_distributed(self):
        """Sum of n Gamma differences has the Laplace variance 2*scale^2 (Lemma 1)."""
        scale = 3.0
        num_users = 200
        trials = 4000
        rng = np.random.default_rng(2)
        sums = np.array(
            [sample_partial_noises(num_users, scale, rng=rng).sum() for _ in range(trials)]
        )
        assert abs(float(sums.mean())) < 0.3
        assert float(sums.var()) == pytest.approx(2 * scale**2, rel=0.15)

    def test_aggregate_heavier_tail_than_gaussian(self):
        """Laplace kurtosis (~6) distinguishes the sum from a Gaussian."""
        scale = 1.0
        rng = np.random.default_rng(3)
        sums = np.array(
            [sample_partial_noises(100, scale, rng=rng).sum() for _ in range(4000)]
        )
        standardized = (sums - sums.mean()) / sums.std()
        kurtosis = float(np.mean(standardized**4))
        assert kurtosis > 4.0  # Gaussian would be ~3


class TestDistributedLaplaceNoise:
    def test_scale_and_variance(self):
        noise = DistributedLaplaceNoise(epsilon=2.0, sensitivity=100.0, num_users=50)
        assert noise.scale == pytest.approx(50.0)
        assert noise.aggregate_variance == pytest.approx(5000.0)

    def test_encode_decode_roundtrip(self):
        noise = DistributedLaplaceNoise(epsilon=1.0, sensitivity=1.0, num_users=10, fixed_point_bits=16)
        for value in (-123.456, 0.0, 7.25, 1e-4):
            assert noise.decode(noise.encode(value)) == pytest.approx(value, abs=2**-15)

    def test_fixed_point_factor(self):
        noise = DistributedLaplaceNoise(epsilon=1.0, sensitivity=1.0, num_users=10, fixed_point_bits=8)
        assert noise.fixed_point_factor == 256

    def test_sample_all_matches_user_count(self):
        noise = DistributedLaplaceNoise(epsilon=1.0, sensitivity=5.0, num_users=33)
        assert noise.sample_all_noises(rng=0).shape == (33,)

    def test_invalid_parameters(self):
        with pytest.raises(PrivacyError):
            DistributedLaplaceNoise(epsilon=0, sensitivity=1, num_users=1)
        with pytest.raises(PrivacyError):
            DistributedLaplaceNoise(epsilon=1, sensitivity=0, num_users=1)
        with pytest.raises(PrivacyError):
            DistributedLaplaceNoise(epsilon=1, sensitivity=1, num_users=0)
        with pytest.raises(PrivacyError):
            DistributedLaplaceNoise(epsilon=1, sensitivity=1, num_users=1, fixed_point_bits=-1)

    def test_user_noise_deterministic_with_seed(self):
        noise = DistributedLaplaceNoise(epsilon=1.0, sensitivity=2.0, num_users=7)
        assert noise.sample_user_noise(rng=5) == noise.sample_user_noise(rng=5)
