"""CLI telemetry surface: ``--trace-out``, ``--metrics-out``, ``--json``.

`test_experiments_specs_cli.py` covers the registry and the basic flag
plumbing; this module covers the observability flags end to end — a real
``run`` invocation writing a schema-valid manifest and a Prometheus dump,
and the ``--json`` payload carrying the telemetry summary block (metric
snapshot, release records, triple-store hit/miss stats) through a full
serialise/parse round trip.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.telemetry import validate_manifest, verify_ledger_reconciliation


def _run_json(capsys, *argv) -> dict:
    assert main([*argv, "--json"]) == 0
    return json.loads(capsys.readouterr().out)


class TestTraceExport:
    def test_run_writes_valid_reconciled_manifest(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert (
            main(
                [
                    "run",
                    "--backend",
                    "matrix",
                    "--num-nodes",
                    "24",
                    "--trace-out",
                    str(trace),
                ]
            )
            == 0
        )
        capsys.readouterr()
        manifest = json.loads(trace.read_text())
        assert validate_manifest(manifest) == []
        assert verify_ledger_reconciliation(manifest) == []
        assert manifest["context"]["experiment"] == "run"
        (release,) = manifest["releases"]
        assert release["backend"] == "matrix"
        assert release["statistic"] == "triangles"
        # The span tree reached the manifest: one root run span with the
        # four protocol phases underneath.
        (root,) = manifest["trace"]
        assert root["name"] == "total"
        assert [s["name"] for s in root["children"]] == [
            "max",
            "project",
            "count",
            "perturb",
        ]

    def test_metrics_out_writes_prometheus_text(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        assert (
            main(
                [
                    "run",
                    "--backend",
                    "batched",
                    "--num-nodes",
                    "24",
                    "--metrics-out",
                    str(metrics),
                ]
            )
            == 0
        )
        capsys.readouterr()
        text = metrics.read_text()
        assert "# TYPE runs counter" in text
        assert 'runs{backend="batched",statistic="triangles"} 1' in text
        assert 'comm_bytes{phase="adjacency_share"}' in text

    def test_exporters_do_not_change_rendered_report(self, tmp_path, capsys):
        assert main(["run", "--num-nodes", "24", "--seed", "3"]) == 0
        plain = capsys.readouterr().out
        assert (
            main(
                [
                    "run",
                    "--num-nodes",
                    "24",
                    "--seed",
                    "3",
                    "--trace-out",
                    str(tmp_path / "t.json"),
                ]
            )
            == 0
        )
        traced = capsys.readouterr().out
        # Identical released numbers; only the wall-clock column may move.
        pick = lambda text: [line.split()[:5] for line in text.splitlines()]
        assert pick(traced)[:2] == pick(plain)[:2]


class TestJsonTelemetryBlock:
    @pytest.fixture()
    def payload(self, capsys):
        return _run_json(
            capsys, "run", "--backend", "blocked", "--num-nodes", "24", "--seed", "5"
        )

    def test_round_trip_carries_summary_block(self, payload):
        block = payload["telemetry"]
        assert block["enabled"] is True
        (release,) = block["releases"]
        assert release["kind"] == "cargo"
        assert release["backend"] == "blocked"
        counters = block["metrics"]["counters"]
        assert counters['runs{backend="blocked",statistic="triangles"}'] == 1
        assert any(series.startswith("epsilon_spent{") for series in counters)

    def test_row_carries_triple_store_and_phase_table(self, payload):
        (row,) = payload["rows"]
        stats = row["triple_store"]
        assert stats["stores"] == 1 and stats["misses"] == 1
        assert set(stats) >= {"hits", "misses", "stores", "evictions"}
        assert {p["phase"] for p in row["telemetry"]["phases"]} >= {"max", "count"}
        # The scalar columns agree with the ledger the row embeds.
        assert row["comm_bytes"] == sum(
            entry["bytes"] for entry in row["communication_phases"].values()
        )

    def test_gauges_mirror_triple_store_stats(self, payload):
        (row,) = payload["rows"]
        gauges = payload["telemetry"]["metrics"]["gauges"]
        for key in ("hits", "misses", "stores"):
            assert gauges[f"triple_store_{key}"] == row["triple_store"][key]

    def test_json_without_telemetry_capable_experiment(self, capsys):
        """Experiments that take no ``telemetry`` kwarg still produce the
        block — it just reports an empty (but enabled) session."""
        payload = _run_json(capsys, "table4", "--num-nodes", "30")
        block = payload["telemetry"]
        assert block["enabled"] is True
        assert block["releases"] == []
        assert block["metrics"]["counters"] == {}


class TestResilienceFlags:
    def test_typed_error_exits_one_with_one_line_message(self, capsys):
        # An unknown statistic raises ConfigurationError (a ReproError):
        # the CLI prints a single-line error and exits nonzero.
        assert main(["run", "--statistic", "not-a-statistic"]) == 1
        captured = capsys.readouterr()
        error_lines = [line for line in captured.err.splitlines() if line]
        assert len(error_lines) == 1
        assert error_lines[0].startswith("error:")

    def test_retries_flag_rejects_bad_value(self, capsys):
        assert main(["run", "--num-nodes", "24", "--retries", "0"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_resilience_flags_on_unsupporting_experiment_fail_typed(self, capsys):
        assert main(["table4", "--num-nodes", "30", "--strict-integrity"]) == 1
        err = capsys.readouterr().err
        assert "does not support" in err

    def test_injected_crash_exits_two_and_resume_completes(
        self, tmp_path, capsys
    ):
        plan_file = tmp_path / "plan.json"
        from repro.resilience import FaultKind, FaultPlan, FaultSpec

        plan = FaultPlan([FaultSpec("stream.anchor", FaultKind.CRASH, at=2)])
        plan_file.write_text(plan.to_json())
        ckpt = tmp_path / "stream.ckpt"
        argv = [
            "stream",
            "--num-nodes",
            "80",
            "--release-every",
            "40",
            "--anchor-every",
            "3",
            "--checkpoint",
            str(ckpt),
            "--resume",
        ]
        assert main([*argv, "--fault-plan", str(plan_file)]) == 2
        assert "crashed (injected)" in capsys.readouterr().err
        # Resumed run completes and emits exactly the uninterrupted rows.
        resumed = _run_json(capsys, *argv)
        reference = _run_json(
            capsys,
            "stream",
            "--num-nodes",
            "80",
            "--release-every",
            "40",
            "--anchor-every",
            "3",
        )
        assert resumed["rows"] == reference["rows"]

    def test_unreadable_fault_plan_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "plan.json"
        bad.write_text("{not json")
        assert main(["run", "--num-nodes", "24", "--fault-plan", str(bad)]) == 1
        assert "unreadable fault plan" in capsys.readouterr().err

    def test_strict_integrity_flag_passes_through(self, capsys):
        # Smoke: the flag reaches CargoConfig.resilience without changing a
        # clean run's exit code or rows.
        payload = _run_json(
            capsys, "run", "--num-nodes", "24", "--seed", "5", "--strict-integrity"
        )
        reference = _run_json(capsys, "run", "--num-nodes", "24", "--seed", "5")
        pick = lambda rows: [
            {k: v for k, v in row.items() if k not in ("seconds", "telemetry")}
            for row in rows
        ]
        assert pick(payload["rows"]) == pick(reference["rows"])


class TestVerificationFlags:
    def test_authenticated_run_is_bit_identical_and_exits_zero(self, capsys):
        authed = _run_json(
            capsys, "run", "--num-nodes", "24", "--seed", "5", "--authenticate"
        )
        plain = _run_json(capsys, "run", "--num-nodes", "24", "--seed", "5")
        (authed_row,) = authed["rows"]
        (plain_row,) = plain["rows"]
        assert authed_row["noisy_count"] == plain_row["noisy_count"]
        # The MAC block only appears on the authenticated run's release.
        (authed_release,) = authed["telemetry"]["releases"]
        (plain_release,) = plain["telemetry"]["releases"]
        assert authed_release["mac"]["rounds_checked"] >= 1
        assert "mac" not in plain_release

    def test_cheating_run_exits_one_with_typed_message(self, capsys, monkeypatch):
        # A corrupted opening aborts with CheaterDetectedError, which is a
        # ReproError — the CLI maps it to exit code 1 and a one-line error.
        import repro.experiments.single_run as single_run
        from repro.crypto.mac import OpeningAuthenticator
        from repro.core.config import CargoConfig

        original = CargoConfig

        def lie(opening):
            opening.messages[0].values[0] ^= 1

        def corrupted_config(*args, **kwargs):
            kwargs.pop("authenticate", None)
            kwargs["authenticator"] = OpeningAuthenticator(seed=0, tamper=lie)
            return original(*args, **kwargs)

        monkeypatch.setattr(single_run, "CargoConfig", corrupted_config)
        assert main(["run", "--num-nodes", "24", "--authenticate"]) == 1
        err = capsys.readouterr().err
        assert "MAC check failed" in err
        assert "cheated" in err

    def test_audit_shorthand_resolves_experiment(self, capsys):
        assert main(["--audit", "--num-nodes", "6", "--trials", "40"]) == 0
        out = capsys.readouterr().out
        assert "half-noise bug" in out

    def test_audit_shorthand_conflicts_with_other_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["table4", "--audit"])
        assert "--audit conflicts" in capsys.readouterr().err

    def test_stream_and_audit_flags_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["--stream", "--audit"])
        assert "mutually exclusive" in capsys.readouterr().err
