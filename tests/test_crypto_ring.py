"""Tests for repro.crypto.ring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.ring import DEFAULT_RING, Ring
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_default_ring_is_64_bits(self):
        assert DEFAULT_RING.bits == 64
        assert DEFAULT_RING.modulus == 2**64

    @pytest.mark.parametrize("bits", [1, 0, 65, 128])
    def test_invalid_bit_width(self, bits):
        with pytest.raises(ConfigurationError):
            Ring(bits=bits)

    def test_constants(self):
        ring = Ring(bits=8)
        assert ring.modulus == 256
        assert ring.mask == 255
        assert ring.half == 128


class TestScalarArithmetic:
    def test_add_wraps(self):
        ring = Ring(bits=8)
        assert ring.add(200, 100) == (300) % 256

    def test_sub_wraps(self):
        ring = Ring(bits=8)
        assert ring.sub(5, 10) == 251

    def test_mul_wraps(self):
        ring = Ring(bits=8)
        assert ring.mul(16, 16) == 0

    def test_neg(self):
        ring = Ring(bits=8)
        assert ring.add(ring.neg(37), 37) == 0

    def test_encode_negative(self):
        ring = Ring(bits=8)
        assert ring.encode(-1) == 255

    def test_decode_signed_roundtrip(self):
        ring = Ring(bits=16)
        for value in (-5000, -1, 0, 1, 5000):
            assert ring.decode_signed(ring.encode(value)) == value

    def test_decode_signed_boundary(self):
        ring = Ring(bits=8)
        assert ring.decode_signed(127) == 127
        assert ring.decode_signed(128) == -128
        assert ring.decode_signed(255) == -1

    def test_default_ring_large_values(self):
        value = 2**62 + 12345
        assert DEFAULT_RING.decode_signed(DEFAULT_RING.encode(value)) == value


class TestArrayArithmetic:
    def test_elementwise_add(self):
        ring = Ring(bits=16)
        a = np.array([1, 2, 65535], dtype=np.uint64)
        b = np.array([1, 1, 1], dtype=np.uint64)
        assert ring.add(a, b).tolist() == [2, 3, 0]

    def test_elementwise_mul(self):
        ring = Ring(bits=8)
        a = np.array([10, 20], dtype=np.uint64)
        b = np.array([30, 40], dtype=np.uint64)
        assert ring.mul(a, b).tolist() == [(300) % 256, (800) % 256]

    def test_encode_negative_array(self):
        ring = Ring(bits=8)
        encoded = ring.encode(np.array([-1, -2]))
        assert encoded.tolist() == [255, 254]

    def test_matmul_matches_plain_modular_product(self):
        ring = Ring(bits=32)
        rng = np.random.default_rng(0)
        a = ring.random_array((5, 4), rng)
        b = ring.random_array((4, 3), rng)
        expected = (a.astype(object) @ b.astype(object)) % ring.modulus
        assert np.array_equal(ring.matmul(a, b).astype(object), expected)

    def test_matmul_default_ring(self):
        ring = DEFAULT_RING
        rng = np.random.default_rng(1)
        a = ring.random_array((3, 3), rng)
        b = ring.random_array((3, 3), rng)
        expected = (a.astype(object) @ b.astype(object)) % ring.modulus
        assert np.array_equal(ring.matmul(a, b).astype(object), expected)


class TestSampling:
    def test_random_element_in_range(self):
        ring = Ring(bits=8)
        rng = np.random.default_rng(2)
        values = [ring.random_element(rng) for _ in range(200)]
        assert all(0 <= value < 256 for value in values)
        assert len(set(values)) > 50  # not constant

    def test_random_array_shape_and_range(self):
        ring = Ring(bits=16)
        array = ring.random_array((10, 10), np.random.default_rng(3))
        assert array.shape == (10, 10)
        assert int(array.max()) < ring.modulus

    def test_random_array_default_ring_spans_high_bits(self):
        array = DEFAULT_RING.random_array(1000, np.random.default_rng(4))
        # With 1000 uniform draws over 2^64, some should exceed 2^63.
        assert int(array.max()) > 2**63


class TestRingSum:
    def test_sum_matches_python_mod(self):
        ring = Ring(bits=16)
        values = np.array([65535, 3, 70000], dtype=np.uint64)
        assert ring.sum(values) == (65535 + 3 + 70000) % 65536

    def test_sum_wraps_at_64_bits(self):
        values = np.array([2**63, 2**63, 5], dtype=np.uint64)
        assert DEFAULT_RING.sum(values) == 5

    def test_sum_of_empty_is_zero(self):
        assert DEFAULT_RING.sum(np.array([], dtype=np.uint64)) == 0

    def test_sum_accepts_matrices(self):
        values = np.ones((4, 4), dtype=np.uint64)
        assert DEFAULT_RING.sum(values) == 16
