"""Tests for repro.crypto.sharing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.ring import Ring
from repro.crypto.sharing import (
    SharePair,
    reconstruct,
    reconstruct_vector,
    share_matrix,
    share_scalar,
    share_vector,
    zero_share_pair,
)
from repro.exceptions import ShareError


class TestScalarSharing:
    @pytest.mark.parametrize("value", [0, 1, 42, -17, 2**40, -(2**40)])
    def test_roundtrip(self, value):
        pair = share_scalar(value, rng=0)
        assert pair.reconstruct_signed() == value

    def test_reconstruct_function(self):
        pair = share_scalar(123, rng=1)
        assert reconstruct(pair.share1, pair.share2) == 123

    def test_shares_differ_from_secret(self):
        pair = share_scalar(7, rng=2)
        # With a 64-bit mask the probability either share equals the secret is ~2^-63.
        assert pair.share1 != 7 or pair.share2 != 7

    def test_same_seed_same_shares(self):
        assert share_scalar(5, rng=3).share1 == share_scalar(5, rng=3).share1

    def test_different_seeds_different_masks(self):
        assert share_scalar(5, rng=4).share1 != share_scalar(5, rng=5).share1

    def test_for_server(self):
        pair = share_scalar(9, rng=6)
        assert pair.for_server(1) == pair.share1
        assert pair.for_server(2) == pair.share2
        with pytest.raises(ShareError):
            pair.for_server(3)

    def test_small_ring(self):
        ring = Ring(bits=8)
        pair = share_scalar(-3, ring=ring, rng=7)
        assert pair.reconstruct_signed() == -3


class TestVectorSharing:
    def test_roundtrip(self, rng):
        values = np.array([0, 1, 1, 0, 1], dtype=np.int64)
        pair = share_vector(values, rng=rng)
        assert np.array_equal(pair.reconstruct(), values.astype(np.uint64))

    def test_signed_roundtrip(self, rng):
        values = np.array([-3, 0, 7], dtype=np.int64)
        pair = share_vector(values, rng=rng)
        assert list(pair.reconstruct_signed()) == [-3, 0, 7]

    def test_reconstruct_vector_function(self, rng):
        values = np.arange(10)
        pair = share_vector(values, rng=rng)
        assert np.array_equal(
            reconstruct_vector(pair.share1, pair.share2), values.astype(np.uint64)
        )

    def test_reconstruct_vector_shape_mismatch(self):
        with pytest.raises(ShareError):
            reconstruct_vector(np.zeros(3, dtype=np.uint64), np.zeros(4, dtype=np.uint64))

    def test_shares_look_uniform(self):
        values = np.zeros(2000, dtype=np.int64)
        pair = share_vector(values, rng=0)
        # Shares of an all-zero vector must not be all zero themselves.
        assert int(np.count_nonzero(pair.share1)) > 1900


class TestMatrixSharing:
    def test_roundtrip(self, rng):
        matrix = (np.arange(16).reshape(4, 4) % 2).astype(np.int64)
        pair = share_matrix(matrix, rng=rng)
        assert np.array_equal(pair.reconstruct(), matrix.astype(np.uint64))

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ShareError):
            share_matrix(np.zeros(5), rng=rng)


class TestZeroSharePair:
    def test_scalar_zero(self):
        assert zero_share_pair(None).reconstruct() == 0

    def test_array_zero(self):
        pair = zero_share_pair((3, 3))
        assert np.array_equal(pair.reconstruct(), np.zeros((3, 3), dtype=np.uint64))
