"""Telemetry layer: spans, metrics, manifests, exporters, profiling.

The layer's central contracts, each covered here:

* spans — hierarchy, counter attributes, shard-merge determinism, and the
  disabled tracer being a true no-op;
* metrics — label-keyed counters/gauges/histograms with sorted snapshots;
* session — config-level resolution to the shared no-op bundle;
* manifest — schema validation catches each documented violation, and
  ledger reconciliation is exact in both directions;
* exporters — Prometheus text shape, phase tables, and the summary block;
* integration — a traced Cargo release feeds every surface and reconciles,
  while the transcript stays bit-identical to an untraced run (the full
  backend × statistic × worker-count sweep lives in
  ``test_parallel_engine.py``; the CI gate in
  ``benchmarks/telemetry_smoke.py`` re-checks it at larger sizes).
"""

from __future__ import annotations

import json

import pytest

from repro.core import Cargo, CargoConfig
from repro.graph import load_dataset
from repro.parallel import TripleStore
from repro.telemetry import (
    MANIFEST_SCHEMA_VERSION,
    NULL_TELEMETRY,
    MetricsRegistry,
    Span,
    Telemetry,
    Tracer,
    build_manifest,
    build_result_telemetry,
    format_phase_table,
    phase_rows,
    resolve_telemetry,
    summary_block,
    to_prometheus_text,
    traced_call,
    validate_manifest,
    verify_ledger_reconciliation,
    write_metrics,
    write_trace,
)
from repro.telemetry.spans import NULL_TRACER


class TestSpans:
    def test_hierarchy_and_attributes(self):
        tracer = Tracer()
        with tracer.span("total", statistic="triangles"):
            with tracer.span("count", backend="matrix") as span:
                span.add("opening_rounds", 2)
                span.add("opening_rounds")
                span.annotate(num_users=30)
        (root,) = tracer.roots
        assert root.name == "total"
        assert root.attributes == {"statistic": "triangles"}
        (child,) = root.children
        assert child.attributes == {
            "backend": "matrix",
            "opening_rounds": 3,
            "num_users": 30,
        }
        assert root.seconds >= child.seconds >= 0.0

    def test_timings_aggregate_by_name(self):
        tracer = Tracer()
        with tracer.span("total"):
            with tracer.span("tile"):
                pass
            with tracer.span("tile"):
                pass
        timings = tracer.timings()
        assert set(timings) == {"total", "tile"}
        # Two sibling "tile" spans sum into one key, bounded by the parent.
        assert 0.0 <= timings["tile"] <= timings["total"]

    def test_structure_excludes_nondeterministic_fields(self):
        tracer = Tracer()
        with tracer.span("total"):
            with tracer.span("count", backend="matrix"):
                pass
        (structure,) = tracer.structure()
        assert structure == {
            "name": "total",
            "attributes": {},
            "children": [
                {"name": "count", "attributes": {"backend": "matrix"}, "children": []}
            ],
        }
        (payload,) = tracer.to_dicts()
        assert "seconds" in payload and "seconds" in payload["children"][0]

    def test_shard_merge_preserves_canonical_order(self):
        """Merging shards in schedule order rebuilds the serial tree exactly,
        no matter which 'worker' recorded which shard."""
        serial = Tracer()
        with serial.span("backend"):
            for j0 in (0, 16, 32):
                with serial.span("tile_group", j0=j0):
                    pass

        merged = Tracer()
        shards = []
        for j0 in (0, 16, 32):
            shard = merged.shard()
            with shard.span("tile_group", j0=j0):
                pass
            shards.append(shard)
        with merged.span("backend"):
            for shard in reversed(shards):  # completion order != schedule order
                pass
            for shard in shards:  # coordinator merges canonically
                merged.merge_shard(shard)
        assert merged.structure() == serial.structure()

    def test_disabled_tracer_is_stateless_noop(self):
        with NULL_TRACER.span("ignored", attr=1) as span:
            span.add("counter")
            span.annotate(x=2)
        assert NULL_TRACER.roots == []
        assert NULL_TRACER.structure() == []
        assert NULL_TRACER.timings() == {}
        # Shards of a disabled tracer are the shared null tracer, and
        # merging them back (or merging None) is a no-op everywhere.
        assert NULL_TRACER.shard() is NULL_TRACER
        enabled = Tracer()
        enabled.merge_shard(NULL_TRACER)
        enabled.merge_shard(None)
        assert enabled.roots == []

    def test_span_to_dict_roundtrips_through_json(self):
        span = Span(name="count", attributes={"backend": "matrix"}, seconds=0.5)
        span.children.append(Span(name="tile"))
        payload = json.loads(json.dumps(span.to_dict()))
        assert payload["name"] == "count"
        assert payload["children"][0]["name"] == "tile"


class TestMetrics:
    def test_counters_accumulate_per_label_set(self):
        metrics = MetricsRegistry()
        metrics.increment("comm_bytes", 96, phase="count")
        metrics.increment("comm_bytes", 4, phase="count")
        metrics.increment("comm_bytes", 8, phase="max")
        assert metrics.counters() == {
            'comm_bytes{phase="count"}': 100,
            'comm_bytes{phase="max"}': 8,
        }
        assert metrics.counter_value("comm_bytes", phase="count") == 100
        assert metrics.counter_value("comm_bytes", phase="perturb") == 0

    def test_gauges_overwrite(self):
        metrics = MetricsRegistry()
        metrics.gauge_set("triple_store_entries", 3)
        metrics.gauge_set("triple_store_entries", 5)
        assert metrics.gauges() == {"triple_store_entries": 5}

    def test_histograms_track_count_sum_min_max(self):
        metrics = MetricsRegistry()
        for value in (0.25, 0.75, 0.5):
            metrics.observe("anchor_seconds", value, statistic="triangles")
        (stats,) = metrics.histograms().values()
        assert stats == {"count": 3, "sum": 1.5, "min": 0.25, "max": 0.75}

    def test_label_order_is_canonical(self):
        metrics = MetricsRegistry()
        metrics.increment("runs", backend="matrix", statistic="triangles")
        metrics.increment("runs", statistic="triangles", backend="matrix")
        assert metrics.counters() == {
            'runs{backend="matrix",statistic="triangles"}': 2
        }

    def test_disabled_registry_ignores_everything(self):
        metrics = MetricsRegistry(enabled=False)
        metrics.increment("runs")
        metrics.gauge_set("entries", 1)
        metrics.observe("seconds", 0.5)
        assert metrics.as_dict() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestSession:
    def test_resolution_defaults_to_shared_noop(self):
        assert resolve_telemetry(object()) is NULL_TELEMETRY
        assert resolve_telemetry(CargoConfig()) is NULL_TELEMETRY
        assert Telemetry.disabled() is NULL_TELEMETRY
        assert not NULL_TELEMETRY.enabled
        assert NULL_TELEMETRY.tracer is NULL_TRACER

    def test_config_carries_session_through(self):
        telemetry = Telemetry()
        config = CargoConfig(telemetry=telemetry)
        assert resolve_telemetry(config) is telemetry

    def test_disabled_session_drops_releases(self):
        NULL_TELEMETRY.record_release({"kind": "cargo"})
        assert NULL_TELEMETRY.releases == []


def _seeded_session() -> Telemetry:
    """A session holding one hand-built, fully-reconciled release."""
    telemetry = Telemetry()
    telemetry.metrics.increment("comm_bytes", 96, phase="count")
    telemetry.metrics.increment("comm_messages", 2, phase="count")
    with telemetry.tracer.span("total"):
        pass
    telemetry.record_release(
        {
            "kind": "cargo",
            "statistic": "triangles",
            "backend": "matrix",
            "noisy_count": 3.5,
            "communication_phases": {"count": {"bytes": 96, "messages": 2}},
        }
    )
    return telemetry


class TestManifest:
    def test_valid_manifest_round_trips(self, tmp_path):
        manifest = write_trace(_seeded_session(), tmp_path / "trace.json", run="x")
        assert validate_manifest(manifest) == []
        assert verify_ledger_reconciliation(manifest) == []
        reloaded = json.loads((tmp_path / "trace.json").read_text())
        assert reloaded == manifest
        assert reloaded["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert reloaded["context"] == {"run": "x"}

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda m: m.update(schema_version=99), "schema_version"),
            (lambda m: m.update(kind="other"), "kind"),
            (lambda m: m.pop("context"), "context"),
            (lambda m: m.update(releases="nope"), "releases"),
            (lambda m: m["releases"][0].pop("noisy_count"), "noisy_count"),
            (
                lambda m: m["releases"][0]["communication_phases"]["count"].pop("bytes"),
                "bytes",
            ),
            (lambda m: m["metrics"].pop("counters"), "counters"),
            (lambda m: m["trace"][0].pop("name"), "name"),
            (lambda m: m["trace"][0].pop("children"), "children"),
        ],
    )
    def test_each_violation_is_reported(self, mutate, fragment):
        manifest = build_manifest(_seeded_session())
        mutate(manifest)
        problems = validate_manifest(manifest)
        assert problems and any(fragment in problem for problem in problems)

    def test_reconciliation_catches_drift_both_directions(self):
        # Release claims more bytes than the counter recorded.
        manifest = build_manifest(_seeded_session())
        manifest["releases"][0]["communication_phases"]["count"]["bytes"] += 1
        assert any("comm_bytes" in p for p in verify_ledger_reconciliation(manifest))
        # Counter exists for a phase no release accounts for.
        telemetry = _seeded_session()
        telemetry.metrics.increment("comm_bytes", 8, phase="orphan")
        problems = verify_ledger_reconciliation(build_manifest(telemetry))
        assert any("orphan" in p for p in problems)


class TestExporters:
    def test_prometheus_text_families(self):
        telemetry = _seeded_session()
        telemetry.metrics.gauge_set("triple_store_entries", 2)
        telemetry.metrics.observe("anchor_seconds", 0.5)
        text = to_prometheus_text(telemetry.metrics)
        assert "# TYPE comm_bytes counter" in text
        assert 'comm_bytes{phase="count"} 96' in text
        assert "# TYPE triple_store_entries gauge" in text
        assert "# TYPE anchor_seconds summary" in text
        assert "anchor_seconds_count 1" in text
        assert "anchor_seconds_sum 0.5" in text

    def test_write_metrics(self, tmp_path):
        path = write_metrics(_seeded_session().metrics, tmp_path / "sub" / "m.prom")
        assert path.read_text().endswith("\n")

    def test_phase_rows_canonical_order_and_total(self):
        timings = {"total": 1.0, "perturb": 0.1, "count": 0.6, "extra": 0.05}
        phases = {"count": {"bytes": 96, "messages": 2}}
        rows = phase_rows(timings, phases)
        assert [row["phase"] for row in rows] == ["count", "perturb", "extra"]
        table = format_phase_table(rows)
        assert table.splitlines()[-1].startswith("total")
        assert "96" in table

    def test_build_result_telemetry_optional_blocks(self):
        block = build_result_telemetry(
            {"count": 0.5},
            {},
            opening_rounds=3,
            candidates=10,
            triple_store_stats={"hits": 1},
        )
        assert block["opening_rounds"] == 3
        assert block["candidates"] == 10
        assert block["triple_store"] == {"hits": 1}
        assert "summary" in block and block["phases"][0]["phase"] == "count"

    def test_summary_block_shape(self):
        telemetry = _seeded_session()
        store = TripleStore()
        block = summary_block(telemetry, triple_store=store)
        assert block["enabled"] is True
        assert block["releases"][0]["statistic"] == "triangles"
        assert set(block["triple_store"]) >= {"hits", "misses", "stores"}
        assert json.loads(json.dumps(block)) == block


class TestProfiling:
    def test_traced_call_returns_result_seconds_peak(self):
        result, seconds, peak = traced_call(lambda: [0] * 10_000)
        assert len(result) == 10_000
        assert seconds >= 0.0
        assert isinstance(peak, int) and peak > 0


class TestTracedRunIntegration:
    """One traced release feeds every surface without perturbing outputs."""

    @pytest.fixture(scope="class")
    def traced(self):
        graph = load_dataset("facebook", num_nodes=24)
        telemetry = Telemetry()
        store = TripleStore()

        def run(session, triple_store):
            config = CargoConfig(
                epsilon=2.0,
                seed=7,
                counting_backend="matrix",
                block_size=16,
                triple_store=triple_store,
                track_communication=True,
                telemetry=session,
            )
            return Cargo(config).run(graph)

        return run(telemetry, store), run(None, None), telemetry, store

    def test_outputs_identical_traced_vs_untraced(self, traced):
        result, untraced, _, _ = traced
        assert result.noisy_triangle_count == untraced.noisy_triangle_count
        assert result.true_triangle_count == untraced.true_triangle_count
        assert result.communication_phases == untraced.communication_phases
        # Traced runs report the legacy phase keys plus the deeper span
        # names (backend/offline/online/...); the legacy keys never vanish.
        assert set(untraced.timings) <= set(result.timings)
        assert set(untraced.timings) == {"total", "max", "project", "count", "perturb"}

    def test_result_telemetry_block_only_when_traced(self, traced):
        result, untraced, _, _ = traced
        assert untraced.telemetry is None
        assert result.telemetry is not None
        assert {row["phase"] for row in result.telemetry["phases"]} >= {
            "max",
            "count",
            "perturb",
        }

    def test_manifest_validates_and_reconciles(self, traced, tmp_path):
        _, _, telemetry, _ = traced
        manifest = write_trace(telemetry, tmp_path / "trace.json", test="integration")
        assert validate_manifest(manifest) == []
        assert verify_ledger_reconciliation(manifest) == []
        (release,) = manifest["releases"]
        assert release["kind"] == "cargo" and release["backend"] == "matrix"

    def test_metrics_and_gauges_fed(self, traced):
        _, _, telemetry, store = traced
        counters = telemetry.metrics.counters()
        assert counters['runs{backend="matrix",statistic="triangles"}'] == 1
        assert any(series.startswith("comm_bytes{") for series in counters)
        assert any(series.startswith("epsilon_spent{") for series in counters)
        gauges = telemetry.metrics.gauges()
        assert gauges["triple_store_misses"] == store.stats()["misses"]

    def test_trace_tree_has_run_and_phase_spans(self, traced):
        _, _, telemetry, _ = traced
        (root,) = telemetry.tracer.roots
        assert root.name == "total"
        assert root.attributes["backend"] == "matrix"
        phase_names = [child.name for child in root.children]
        assert phase_names == ["max", "project", "count", "perturb"]
        count_span = root.children[2]
        assert any(span.name == "backend" for span in count_span.children)
