"""Unit tests for the reusable offline phase (:mod:`repro.parallel.store`).

The store's contract is narrow but load-bearing: a warm hit must return
exactly the bytes a cold re-deal from the same dealer seed would produce,
mismatched or truncated material must fail loudly rather than serve, and the
cache must stay inside its memory budget.  Dealer-level export/import and
fingerprinting are covered here too, because they are what make the memoised
material byte-exact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.multiplication_groups import MultiplicationGroupDealer
from repro.exceptions import DealerError
from repro.parallel import (
    MaterialSequence,
    TripleSignature,
    TripleStore,
    dealer_fingerprint,
)


def _signature(**overrides) -> TripleSignature:
    fields = dict(
        statistic="triangles",
        backend="blocked",
        num_users=32,
        geometry=(("block_size", 8),),
        ring_bits=64,
        dealer_key="seed:1",
    )
    fields.update(overrides)
    return TripleSignature(**fields)


class TestTripleStore:
    def test_miss_then_hit(self):
        store = TripleStore()
        sig = _signature()
        assert store.get(sig) is None
        assert store.put(sig, {"x": np.arange(4, dtype=np.uint64)})
        fetched = store.get(sig)
        assert np.array_equal(fetched["x"], np.arange(4, dtype=np.uint64))
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["stores"] == 1

    def test_different_signatures_do_not_collide(self):
        store = TripleStore()
        store.put(_signature(), "a")
        assert store.get(_signature(num_users=33)) is None
        assert store.get(_signature(geometry=(("block_size", 16),))) is None
        assert store.get(_signature(dealer_key="seed:2")) is None
        assert store.get(_signature()) == "a"

    def test_oversize_entries_are_declined(self):
        store = TripleStore(max_entry_bytes=64)
        sig = _signature()
        assert not store.put(sig, {"x": np.zeros(1024, dtype=np.uint64)})
        assert store.get(sig) is None
        assert store.stats()["skipped_oversize"] == 1
        assert not store.accepts_bytes(1024 * 8)
        assert store.accepts_bytes(8)

    def test_lru_eviction_bounds_memory(self):
        store = TripleStore(max_memory_bytes=3000)
        for index in range(4):
            store.put(_signature(num_users=40 + index), np.zeros(128, dtype=np.uint64))
        stats = store.stats()
        assert stats["evictions"] >= 1
        assert stats["memory_bytes"] <= 3000
        # Most-recent entry survives.
        assert store.get(_signature(num_users=43)) is not None

    def test_disk_persistence_survives_a_new_store(self, tmp_path):
        sig = _signature()
        writer = TripleStore(cache_dir=str(tmp_path))
        writer.put(sig, {"x": np.arange(8, dtype=np.uint64)})
        reader = TripleStore(cache_dir=str(tmp_path))
        fetched = reader.get(sig)
        assert fetched is not None
        assert np.array_equal(fetched["x"], np.arange(8, dtype=np.uint64))
        # A different signature never reads a stale file.
        assert reader.get(_signature(num_users=99)) is None

    def test_clear_drops_memory_not_disk(self, tmp_path):
        sig = _signature()
        store = TripleStore(cache_dir=str(tmp_path))
        store.put(sig, "payload")
        store.clear()
        assert store.stats()["entries"] == 0
        assert store.get(sig) == "payload"  # reloaded from disk


class TestMaterialSequence:
    def test_take_and_bounds(self):
        seq = MaterialSequence(["a", "b", "c"], label="test")
        assert seq.take(0) == "a" and seq.take(2) == "c"
        with pytest.raises(DealerError, match="exhausted"):
            seq.take(3)
        with pytest.raises(DealerError, match="exhausted"):
            seq.take(-1)

    def test_require_mismatch(self):
        seq = MaterialSequence(["a"], label="test")
        seq.require(1)
        with pytest.raises(DealerError, match="mismatch"):
            seq.require(2)


class TestDealerFingerprint:
    def test_deterministic_for_equal_seeds(self):
        assert dealer_fingerprint(7) == dealer_fingerprint(7)
        assert dealer_fingerprint(7) != dealer_fingerprint(8)
        g1 = np.random.default_rng(5)
        g2 = np.random.default_rng(5)
        assert dealer_fingerprint(g1) == dealer_fingerprint(g2)
        g1.integers(0, 10)
        assert dealer_fingerprint(g1) != dealer_fingerprint(g2)

    def test_entropy_dealers_never_collide(self):
        assert dealer_fingerprint(None) != dealer_fingerprint(None)

    def test_dealer_fingerprint_is_pinned_before_dealing(self):
        dealer = BeaverTripleDealer(seed=3)
        before = dealer.fingerprint()
        dealer.vector_triple((4,))
        assert dealer.fingerprint() == before
        assert before == BeaverTripleDealer(seed=3).fingerprint()


class TestDealerPoolExportImport:
    def test_group_stream_roundtrip_is_byte_exact(self):
        source = MultiplicationGroupDealer(seed=11)
        source.provision(12)
        exported = source.export_pool()
        direct = [source.vector_group((s,)) for s in (5, 7)]

        target = MultiplicationGroupDealer(seed=999)  # seed irrelevant warm
        target.import_pool(exported)
        assert target.provisioned_remaining == 12
        warm = [target.vector_group((s,)) for s in (5, 7)]
        for a, b in zip(direct, warm):
            for field in ("x", "y", "z", "w", "o", "p", "q"):
                assert np.array_equal(getattr(a.server1, field), getattr(b.server1, field))
                assert np.array_equal(getattr(a.server2, field), getattr(b.server2, field))
        assert target.groups_issued == 2

    def test_export_requires_unserved_pool(self):
        dealer = MultiplicationGroupDealer(seed=12)
        dealer.provision(6)
        dealer.vector_group((2,))
        with pytest.raises(DealerError):
            dealer.export_pool()

    def test_import_over_nonempty_pool_rejected(self):
        dealer = MultiplicationGroupDealer(seed=13)
        dealer.provision(4)
        other = MultiplicationGroupDealer(seed=14)
        other.provision(4)
        with pytest.raises(DealerError):
            dealer.import_pool(other.export_pool())

    def test_import_rejects_malformed_blocks(self):
        dealer = MultiplicationGroupDealer(seed=15)
        with pytest.raises(DealerError):
            dealer.import_pool([({"x": 1}, {"x": 1}, 1)])
        with pytest.raises(DealerError):
            dealer.import_pool(["nonsense"])


class TestBeaverAccounting:
    def test_absorb_accounting_matches_direct_dealing(self):
        direct = BeaverTripleDealer(seed=21)
        direct.matrix_triple((4, 4), (4, 4))
        direct.vector_triple((6,))

        parent = BeaverTripleDealer(seed=22)
        child = BeaverTripleDealer(seed=21)
        child.matrix_triple((4, 4), (4, 4))
        child.vector_triple((6,))
        parent.absorb_accounting(*child.accounting())
        assert parent.accounting() == direct.accounting()

    def test_absorb_rejects_negative_tallies(self):
        dealer = BeaverTripleDealer(seed=23)
        with pytest.raises(DealerError):
            dealer.absorb_accounting(-1, 0, 0)

    def test_subdealers_are_deterministic_per_seed(self):
        a = BeaverTripleDealer(seed=31).spawn_subdealers(3)
        b = BeaverTripleDealer(seed=31).spawn_subdealers(3)
        for left, right in zip(a, b):
            la = left.vector_triple((4,))
            ra = right.vector_triple((4,))
            assert np.array_equal(la.server1.x, ra.server1.x)


class TestMmapStore:
    """mmap mode: array bytes live in a flat ``.bin`` file and come back as
    read-only :class:`numpy.memmap` views, never as resident heap copies."""

    def test_requires_cache_dir(self):
        with pytest.raises(DealerError, match="cache_dir"):
            TripleStore(mmap=True)

    def test_round_trip_writes_npk_bin_pair(self, tmp_path):
        store = TripleStore(cache_dir=str(tmp_path), mmap=True)
        sig = _signature()
        material = [
            {"x": np.arange(16, dtype=np.uint64), "count": 7},
            {"x": np.arange(5, dtype=np.uint64) * 3, "count": 8},
        ]
        assert store.put(sig, material)
        assert len(list(tmp_path.glob("*.npk"))) == 1
        assert len(list(tmp_path.glob("*.bin"))) == 1
        fetched = store.get(sig)
        assert len(fetched) == 2
        for original, loaded in zip(material, fetched):
            assert np.array_equal(loaded["x"], original["x"])
            assert loaded["count"] == original["count"]

    def test_fetched_arrays_are_read_only_memmaps(self, tmp_path):
        store = TripleStore(cache_dir=str(tmp_path), mmap=True)
        sig = _signature()
        store.put(sig, {"x": np.arange(8, dtype=np.uint64)})
        fetched = store.get(sig)
        assert isinstance(fetched["x"], np.memmap)
        with pytest.raises(ValueError):
            fetched["x"][0] = 1

    def test_hits_and_misses_are_counted(self, tmp_path):
        store = TripleStore(cache_dir=str(tmp_path), mmap=True)
        sig = _signature()
        assert store.get(sig) is None
        store.put(sig, {"x": np.ones(4, dtype=np.uint64)})
        assert store.get(sig) is not None
        assert store.get(sig) is not None
        stats = store.stats()
        assert stats["misses"] == 1 and stats["hits"] == 2 and stats["stores"] == 1

    def test_no_resident_entries_or_size_decline(self, tmp_path):
        # The LRU and the oversize rule guard resident memory, which mmap
        # entries never consume; both are bypassed.
        store = TripleStore(cache_dir=str(tmp_path), mmap=True, max_entry_bytes=8)
        assert store.accepts_bytes(1 << 30)
        sig = _signature()
        assert store.put(sig, {"x": np.zeros(1024, dtype=np.uint64)})
        stats = store.stats()
        assert stats["entries"] == 0 and stats["memory_bytes"] == 0
        assert store.get(sig) is not None

    def test_survives_a_new_store_on_the_same_dir(self, tmp_path):
        sig = _signature()
        writer = TripleStore(cache_dir=str(tmp_path), mmap=True)
        writer.put(sig, {"x": np.arange(12, dtype=np.uint64)})
        reader = TripleStore(cache_dir=str(tmp_path), mmap=True)
        fetched = reader.get(sig)
        assert np.array_equal(fetched["x"], np.arange(12, dtype=np.uint64))
        assert reader.hits == 1

    def test_mismatched_signature_is_never_served(self, tmp_path):
        store = TripleStore(cache_dir=str(tmp_path), mmap=True)
        store.put(_signature(), {"x": np.ones(4, dtype=np.uint64)})
        assert store.get(_signature(dealer_key="seed:2")) is None

    def test_plain_store_ignores_mmap_files(self, tmp_path):
        mmap_store = TripleStore(cache_dir=str(tmp_path), mmap=True)
        sig = _signature()
        mmap_store.put(sig, {"x": np.ones(4, dtype=np.uint64)})
        plain = TripleStore(cache_dir=str(tmp_path))
        assert plain.get(sig) is None
