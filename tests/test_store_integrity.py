"""Integrity verification of persisted correlated randomness.

Silent corruption of dealt triples is the worst failure mode the store can
have: the protocol would compute on garbage shares and release a wrong (but
plausible-looking) count.  Every persisted batch therefore carries a content
checksum — in both the pickle and the mmap layout — that is verified before
any material is served.  The default response to a checksum mismatch is
*graceful degradation* (count the failure, report a miss, let the caller
re-deal); ``strict_integrity`` escalates to a raised
:class:`~repro.exceptions.IntegrityError`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import IntegrityError
from repro.parallel import TripleSignature, TripleStore
from repro.resilience import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    install_fault_plan,
)
from repro.telemetry.metrics import MetricsRegistry


def _signature(**overrides) -> TripleSignature:
    fields = dict(
        statistic="triangles",
        backend="blocked",
        num_users=32,
        geometry=(("block_size", 8),),
        ring_bits=64,
        dealer_key="seed:1",
    )
    fields.update(overrides)
    return TripleSignature(**fields)


def _material() -> dict:
    return {"x": np.arange(64, dtype=np.uint64), "y": np.ones(8, dtype=np.uint64)}


def _cache_files(tmp_path):
    return sorted(p for p in tmp_path.iterdir() if p.is_file())


def _corrupt_file(path, offset=-5):
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 0x10
    path.write_bytes(bytes(blob))


class TestPickleIntegrity:
    def test_corrupted_payload_degrades_to_miss(self, tmp_path):
        writer = TripleStore(cache_dir=str(tmp_path))
        writer.put(_signature(), _material())
        (payload_file,) = _cache_files(tmp_path)
        _corrupt_file(payload_file)
        reader = TripleStore(cache_dir=str(tmp_path))
        assert reader.get(_signature()) is None  # graceful: treated as a miss
        assert reader.integrity_failures == 1
        assert reader.stats()["integrity_failures"] == 1

    def test_corrupted_payload_raises_under_strict(self, tmp_path):
        writer = TripleStore(cache_dir=str(tmp_path))
        writer.put(_signature(), _material())
        (payload_file,) = _cache_files(tmp_path)
        _corrupt_file(payload_file)
        reader = TripleStore(cache_dir=str(tmp_path))
        reader.configure_resilience(strict_integrity=True)
        with pytest.raises(IntegrityError):
            reader.get(_signature())

    def test_truncated_file_degrades_to_miss(self, tmp_path):
        writer = TripleStore(cache_dir=str(tmp_path))
        writer.put(_signature(), _material())
        (payload_file,) = _cache_files(tmp_path)
        payload_file.write_bytes(payload_file.read_bytes()[: 40])
        reader = TripleStore(cache_dir=str(tmp_path))
        assert reader.get(_signature()) is None
        assert reader.integrity_failures >= 1

    def test_garbage_file_counts_as_integrity_failure(self, tmp_path):
        writer = TripleStore(cache_dir=str(tmp_path))
        writer.put(_signature(), _material())
        (payload_file,) = _cache_files(tmp_path)
        payload_file.write_bytes(b"not a pickle at all")
        reader = TripleStore(cache_dir=str(tmp_path))
        assert reader.get(_signature()) is None
        assert reader.integrity_failures >= 1

    def test_intact_round_trip_is_unchanged(self, tmp_path):
        writer = TripleStore(cache_dir=str(tmp_path))
        writer.put(_signature(), _material())
        reader = TripleStore(cache_dir=str(tmp_path))
        fetched = reader.get(_signature())
        assert np.array_equal(fetched["x"], _material()["x"])
        assert reader.integrity_failures == 0

    def test_metrics_counter_feeds_registry(self, tmp_path):
        writer = TripleStore(cache_dir=str(tmp_path))
        writer.put(_signature(), _material())
        (payload_file,) = _cache_files(tmp_path)
        _corrupt_file(payload_file)
        metrics = MetricsRegistry()
        reader = TripleStore(cache_dir=str(tmp_path))
        reader.configure_resilience(metrics=metrics)
        assert reader.get(_signature()) is None
        assert metrics.counters().get("store_integrity_failures") == 1


class TestMmapIntegrity:
    def test_corrupted_bin_degrades_to_miss(self, tmp_path):
        # Regression: corruption in the externalised array file (.bin), not
        # just the structural pickle, must be caught — memmapped arrays are
        # exactly where silent bit rot would otherwise flow straight into
        # the protocol's shares.
        writer = TripleStore(cache_dir=str(tmp_path), mmap=True)
        writer.put(_signature(), _material())
        (bin_file,) = [p for p in _cache_files(tmp_path) if p.suffix == ".bin"]
        _corrupt_file(bin_file, offset=10)
        reader = TripleStore(cache_dir=str(tmp_path), mmap=True)
        assert reader.get(_signature()) is None
        assert reader.integrity_failures == 1

    def test_corrupted_bin_raises_under_strict(self, tmp_path):
        writer = TripleStore(cache_dir=str(tmp_path), mmap=True)
        writer.put(_signature(), _material())
        (bin_file,) = [p for p in _cache_files(tmp_path) if p.suffix == ".bin"]
        _corrupt_file(bin_file, offset=10)
        reader = TripleStore(cache_dir=str(tmp_path), mmap=True)
        reader.configure_resilience(strict_integrity=True)
        with pytest.raises(IntegrityError):
            reader.get(_signature())

    def test_missing_bin_degrades_to_miss(self, tmp_path):
        writer = TripleStore(cache_dir=str(tmp_path), mmap=True)
        writer.put(_signature(), _material())
        (bin_file,) = [p for p in _cache_files(tmp_path) if p.suffix == ".bin"]
        bin_file.unlink()
        reader = TripleStore(cache_dir=str(tmp_path), mmap=True)
        assert reader.get(_signature()) is None
        assert reader.integrity_failures >= 1

    def test_corrupted_structural_pickle_degrades_to_miss(self, tmp_path):
        writer = TripleStore(cache_dir=str(tmp_path), mmap=True)
        writer.put(_signature(), _material())
        (struct_file,) = [p for p in _cache_files(tmp_path) if p.suffix != ".bin"]
        _corrupt_file(struct_file)
        reader = TripleStore(cache_dir=str(tmp_path), mmap=True)
        assert reader.get(_signature()) is None
        assert reader.integrity_failures == 1

    def test_intact_mmap_round_trip_is_unchanged(self, tmp_path):
        writer = TripleStore(cache_dir=str(tmp_path), mmap=True)
        writer.put(_signature(), _material())
        reader = TripleStore(cache_dir=str(tmp_path), mmap=True)
        fetched = reader.get(_signature())
        assert np.array_equal(np.asarray(fetched["x"]), _material()["x"])
        assert reader.integrity_failures == 0


class TestReadFaultsAndRetry:
    def test_transient_read_fault_without_retry_is_a_cold_miss(self, tmp_path):
        writer = TripleStore(cache_dir=str(tmp_path))
        writer.put(_signature(), _material())
        reader = TripleStore(cache_dir=str(tmp_path))
        plan = FaultPlan([FaultSpec("triple_store.read", FaultKind.OSERROR, at=1)])
        with install_fault_plan(plan):
            assert reader.get(_signature()) is None  # degraded, not raised
        # Integrity is not implicated by an I/O failure.
        assert reader.integrity_failures == 0

    def test_retry_policy_recovers_transient_read_fault(self, tmp_path):
        writer = TripleStore(cache_dir=str(tmp_path))
        writer.put(_signature(), _material())
        reader = TripleStore(cache_dir=str(tmp_path))
        reader.configure_resilience(
            retry=RetryPolicy(max_attempts=3, sleep=lambda _delay: None)
        )
        plan = FaultPlan([FaultSpec("triple_store.read", FaultKind.OSERROR, at=1)])
        with install_fault_plan(plan):
            fetched = reader.get(_signature())
        assert fetched is not None
        assert np.array_equal(fetched["x"], _material()["x"])

    def test_read_bitflip_is_caught_by_checksum(self, tmp_path):
        # Corruption injected on the *read* path (bad cable, bad RAM) is
        # indistinguishable from at-rest corruption and must degrade the
        # same way.
        writer = TripleStore(cache_dir=str(tmp_path))
        writer.put(_signature(), _material())
        reader = TripleStore(cache_dir=str(tmp_path))
        plan = FaultPlan(
            [FaultSpec("triple_store.read", FaultKind.BITFLIP, at=1, payload=77)]
        )
        with install_fault_plan(plan):
            assert reader.get(_signature()) is None
        assert reader.integrity_failures == 1
