"""Edge-case tests for the ``blocked`` backend's tile geometry.

The tiled evaluation must be bit-identical to the monolithic ``matrix``
backend for every tiling of the index space, including the degenerate ones:
single-element tiles (``block_size=1``), one tile covering everything
(``block_size > n``), and ragged final tiles (``n`` not divisible by
``block_size``).
"""

from __future__ import annotations

import pytest

from repro.core.backends.blocked import BlockedMatrixTriangleCounter
from repro.core.backends.matrix import MatrixTriangleCounter
from repro.graph.generators import erdos_renyi_graph
from repro.graph.triangles import count_triangles


def _counts(graph, block_size, seed):
    """Reconstructed (blocked, matrix) counts on identical plaintext rows."""
    rows = graph.adjacency_matrix()
    blocked = BlockedMatrixTriangleCounter(block_size=block_size).count(rows, rng=seed)
    matrix = MatrixTriangleCounter().count(rows, rng=seed)
    return blocked.reconstruct(), matrix.reconstruct()


class TestBlockedTileGeometry:
    def test_block_size_one(self, small_random_graph):
        blocked, matrix = _counts(small_random_graph, block_size=1, seed=0)
        assert blocked == matrix == count_triangles(small_random_graph)

    def test_block_size_larger_than_n(self, small_random_graph):
        n = small_random_graph.num_nodes
        blocked, matrix = _counts(small_random_graph, block_size=n + 13, seed=1)
        assert blocked == matrix == count_triangles(small_random_graph)

    def test_block_size_equal_to_n(self, small_random_graph):
        n = small_random_graph.num_nodes
        blocked, matrix = _counts(small_random_graph, block_size=n, seed=2)
        assert blocked == matrix == count_triangles(small_random_graph)

    @pytest.mark.parametrize("block_size", [7, 11, 13])
    def test_ragged_final_tile(self, block_size):
        # 30 is not divisible by 7, 11, or 13, so the last tile is partial in
        # every dimension of the (I, J, K) tile loop.
        graph = erdos_renyi_graph(30, 0.35, seed=9)
        blocked, matrix = _counts(graph, block_size=block_size, seed=3)
        assert blocked == matrix == count_triangles(graph)

    @pytest.mark.parametrize("num_nodes", [1, 2, 3, 4])
    def test_tiny_graphs_with_tiny_blocks(self, num_nodes):
        graph = erdos_renyi_graph(num_nodes, 0.9, seed=4)
        blocked, matrix = _counts(graph, block_size=1, seed=5)
        assert blocked == matrix == count_triangles(graph)

    def test_block_size_one_on_complete_graph(self, complete_graph):
        blocked, matrix = _counts(complete_graph, block_size=1, seed=6)
        assert blocked == matrix == 20

    def test_ragged_tiles_on_triangle_free_graph(self, star_graph):
        blocked, matrix = _counts(star_graph, block_size=3, seed=7)
        assert blocked == matrix == 0
