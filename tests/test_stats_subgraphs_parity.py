"""Brute-force parity and sensitivity checks for the subgraph kernels.

The fast counting kernels (degree polynomials for k-stars, the co-degree
identity for 4-cycles) are validated against literal brute-force enumeration
on random graphs and on the structured edge cases (empty, star, complete),
and each statistic's sensitivity bound is checked empirically on neighbouring
degree-bounded graphs.
"""

from __future__ import annotations

import itertools
import math

import pytest

from repro.analysis.subgraphs import (
    count_four_cycles,
    count_k_stars,
    four_cycle_sensitivity,
    private_four_cycle_count,
)
from repro.graph.generators import erdos_renyi_graph
from repro.graph.graph import Graph
from repro.stats import (
    FourCycleStatistic,
    KStarStatistic,
    TriangleStatistic,
    count_four_cycles_exact,
    count_k_stars_exact,
)


def brute_force_k_stars(graph: Graph, k: int) -> int:
    """Literal enumeration: every node with every k-subset of its neighbours."""
    total = 0
    for node in graph.nodes():
        total += sum(1 for _ in itertools.combinations(sorted(graph.neighbors(node)), k))
    return total


def brute_force_four_cycles(graph: Graph) -> int:
    """Literal enumeration over vertex 4-subsets and their three pairings."""
    total = 0
    for quad in itertools.combinations(range(graph.num_nodes), 4):
        # A 4-subset supports a 4-cycle for each way of splitting it into
        # two opposite (non-adjacent-in-the-cycle) pairs.
        for a, b, c, d in (
            (quad[0], quad[1], quad[2], quad[3]),
            (quad[0], quad[2], quad[1], quad[3]),
            (quad[0], quad[1], quad[3], quad[2]),
        ):
            if (
                graph.has_edge(a, b)
                and graph.has_edge(b, c)
                and graph.has_edge(c, d)
                and graph.has_edge(d, a)
            ):
                total += 1
    return total


EDGE_CASES = {
    "empty": Graph(8),
    "star": Graph(8, edges=[(0, leaf) for leaf in range(1, 8)]),
    "complete": Graph(
        6, edges=[(u, v) for u in range(6) for v in range(u + 1, 6)]
    ),
    "square": Graph(4, edges=[(0, 1), (1, 2), (2, 3), (3, 0)]),
    "path": Graph(5, edges=[(0, 1), (1, 2), (2, 3), (3, 4)]),
}


class TestBruteForceParity:
    @pytest.mark.parametrize("name", sorted(EDGE_CASES))
    @pytest.mark.parametrize("k", (1, 2, 3))
    def test_k_stars_on_edge_cases(self, name, k):
        graph = EDGE_CASES[name]
        expected = brute_force_k_stars(graph, k)
        assert count_k_stars(graph, k) == expected
        assert count_k_stars_exact(graph.degrees(), k) == expected
        assert KStarStatistic(k=k).plain_count(graph) == expected

    @pytest.mark.parametrize("name", sorted(EDGE_CASES))
    def test_four_cycles_on_edge_cases(self, name):
        graph = EDGE_CASES[name]
        expected = brute_force_four_cycles(graph)
        assert count_four_cycles(graph) == expected
        assert count_four_cycles_exact(graph) == expected
        assert FourCycleStatistic().plain_count(graph) == expected

    def test_known_closed_forms(self):
        # K6: C(6,4) subsets × 3 cycles each = 45; star: no cycles at all.
        assert count_four_cycles(EDGE_CASES["complete"]) == 45
        assert count_four_cycles(EDGE_CASES["star"]) == 0
        # Star k-stars: hub alone contributes C(7, k), leaves C(1, k).
        assert count_k_stars(EDGE_CASES["star"], 3) == math.comb(7, 3)

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_random_graphs(self, seed):
        graph = erdos_renyi_graph(12, 0.4, seed=seed)
        assert count_four_cycles(graph) == brute_force_four_cycles(graph)
        for k in (2, 3):
            assert count_k_stars(graph, k) == brute_force_k_stars(graph, k)

    def test_projected_count_matches_plain_on_symmetric_rows(self):
        graph = erdos_renyi_graph(15, 0.35, seed=9)
        rows = graph.adjacency_matrix()
        assert FourCycleStatistic().projected_count(rows) == count_four_cycles(graph)
        assert KStarStatistic(k=2).projected_count(rows) == count_k_stars(graph, 2)


class TestSensitivityBounds:
    """Empirical check: one edge flip never exceeds the declared bound."""

    def _max_edge_delta(self, graph: Graph, count) -> int:
        base = count(graph)
        worst = 0
        for u in range(graph.num_nodes):
            for v in range(u + 1, graph.num_nodes):
                probe = graph.copy()
                if probe.has_edge(u, v):
                    probe.remove_edge(u, v)
                else:
                    probe.add_edge(u, v)
                worst = max(worst, abs(count(probe) - base))
        return worst

    @pytest.mark.parametrize("seed", (3, 4))
    def test_four_cycle_edge_delta_within_bound(self, seed):
        graph = erdos_renyi_graph(10, 0.5, seed=seed)
        # Adding an edge can raise a degree to d_max + 1; the bound must be
        # evaluated at the neighbouring graphs' joint degree bound.
        bound = four_cycle_sensitivity(graph.max_degree() + 1)
        assert self._max_edge_delta(graph, count_four_cycles) <= bound

    @pytest.mark.parametrize("seed", (3, 4))
    @pytest.mark.parametrize("k", (2, 3))
    def test_k_star_edge_delta_within_bound(self, seed, k):
        graph = erdos_renyi_graph(10, 0.5, seed=seed)
        statistic = KStarStatistic(k=k)
        bound = statistic.statistic_sensitivity(graph.max_degree() + 1)
        assert self._max_edge_delta(graph, statistic.plain_count) <= bound

    def test_triangle_sensitivity_passthrough(self):
        # The triangle bound must stay the raw d'_max CARGO always used —
        # the bit-identity of the refactor depends on it.
        assert TriangleStatistic().statistic_sensitivity(17.5) == 17.5

    def test_sensitivities_clamped_positive(self):
        assert four_cycle_sensitivity(0.0) == 1.0
        assert KStarStatistic(k=5).statistic_sensitivity(1.0) == 1.0
        assert FourCycleStatistic().node_sensitivity(0.0) == 1.0

    def test_private_four_cycle_release_converges(self):
        graph = erdos_renyi_graph(14, 0.5, seed=6)
        exact = count_four_cycles(graph)
        noisy = private_four_cycle_count(graph, epsilon=1e6, rng=0)
        assert abs(noisy - exact) < 0.5
