"""Execute the public API's docstring examples so they cannot rot.

Every module listed here is part of the documented surface (the docs site's
API reference renders the same docstrings); its ``>>>`` examples run as real
tests.  Modules in ``MUST_HAVE_EXAMPLES`` additionally fail if someone strips
their examples — the documentation promises runnable snippets there.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

#: Modules whose doctests run; all are rendered on the docs site.
DOCTEST_MODULES = (
    "repro.core.cargo",
    "repro.core.config",
    "repro.core.projection",
    "repro.core.backends.base",
    "repro.crypto.ring",
    "repro.crypto.sharing",
    "repro.crypto.secure_ops",
    "repro.crypto.mac",
    "repro.dp.auditing",
    "repro.verify.adversary",
    "repro.verify.fuzz",
    "repro.analysis.subgraphs",
    "repro.analysis.clustering",
    "repro.stream.events",
    "repro.stream.delta",
    "repro.stream.orchestrator",
    "repro.stats.base",
    "repro.stats.registry",
    "repro.stats.triangles",
    "repro.stats.kstars",
    "repro.stats.four_cycles",
    "repro.stats.derived",
    "repro.parallel.pool",
    "repro.parallel.store",
    "repro.runtime.wire",
    "repro.resilience.faults",
    "repro.resilience.retry",
    "repro.resilience.integrity",
    "repro.resilience.checkpoint",
    "repro.utils.atomic",
    "repro.experiments.paper_scale",
    "repro.telemetry.spans",
    "repro.telemetry.metrics",
    "repro.telemetry.session",
    "repro.telemetry.manifest",
    "repro.telemetry.exporters",
    "repro.telemetry.timers",
    "repro.telemetry.profiling",
)

#: Modules that must keep at least one runnable example.
MUST_HAVE_EXAMPLES = frozenset(
    name
    for name in DOCTEST_MODULES
    if name != "repro.experiments.paper_scale"  # its example is +SKIP (slow)
)


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        verbose=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"
    if module_name in MUST_HAVE_EXAMPLES:
        assert results.attempted > 0, (
            f"{module_name} is documented as having runnable examples but "
            "doctest found none"
        )
