"""Tests for repro.graph.triangles: the three exact counters must agree."""

from __future__ import annotations

import pytest

from repro.graph.generators import erdos_renyi_graph, powerlaw_cluster_graph
from repro.graph.graph import Graph
from repro.graph.triangles import (
    count_triangles,
    count_triangles_edge_iterator,
    count_triangles_matrix,
    count_triangles_node_iterator,
    local_triangle_counts,
    triangles_per_edge,
)


class TestKnownCounts:
    def test_single_triangle(self, triangle_graph):
        assert count_triangles(triangle_graph) == 1

    def test_two_triangles(self, two_triangle_graph):
        assert count_triangles(two_triangle_graph) == 2

    def test_complete_graph(self, complete_graph):
        assert count_triangles(complete_graph) == 20  # C(6, 3)

    def test_star_has_none(self, star_graph):
        assert count_triangles(star_graph) == 0

    def test_empty_graph(self, empty_graph):
        assert count_triangles(empty_graph) == 0

    def test_tiny_graphs(self):
        assert count_triangles(Graph(0)) == 0
        assert count_triangles(Graph(2, edges=[(0, 1)])) == 0


class TestAlgorithmsAgree:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_graphs(self, seed):
        graph = erdos_renyi_graph(40, 0.2, seed=seed)
        node_iter = count_triangles_node_iterator(graph)
        edge_iter = count_triangles_edge_iterator(graph)
        matrix = count_triangles_matrix(graph)
        assert node_iter == edge_iter == matrix

    def test_clustered_graph(self):
        graph = powerlaw_cluster_graph(80, 4, 0.8, seed=5)
        assert count_triangles_node_iterator(graph) == count_triangles_matrix(graph)

    def test_fixture_graphs(self, complete_graph, star_graph, two_triangle_graph):
        for graph in (complete_graph, star_graph, two_triangle_graph):
            assert (
                count_triangles_node_iterator(graph)
                == count_triangles_edge_iterator(graph)
                == count_triangles_matrix(graph)
            )


class TestLocalCounts:
    def test_sum_is_three_times_total(self, complete_graph):
        local = local_triangle_counts(complete_graph)
        assert sum(local) == 3 * count_triangles(complete_graph)

    def test_triangle_graph_membership(self, triangle_graph):
        local = local_triangle_counts(triangle_graph)
        assert local == [1, 1, 1, 0]

    def test_star_all_zero(self, star_graph):
        assert local_triangle_counts(star_graph) == [0] * 8


class TestEdgeSupport:
    def test_triangle_edges_support_one(self, triangle_graph):
        support = triangles_per_edge(triangle_graph)
        assert support[(0, 1)] == 1
        assert support[(0, 2)] == 1
        assert support[(1, 2)] == 1
        assert support[(2, 3)] == 0

    def test_support_sums_to_three_per_triangle(self, two_triangle_graph):
        support = triangles_per_edge(two_triangle_graph)
        assert sum(support.values()) == 3 * count_triangles(two_triangle_graph)

    def test_shared_edge_supports_both(self, two_triangle_graph):
        support = triangles_per_edge(two_triangle_graph)
        assert support[(3, 4)] == 2
