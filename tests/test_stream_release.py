"""Tests for repro.stream.release — policies and the binary-tree mechanism.

The acceptance property: for ``T`` releases the accountant ledger holds only
``O(log T)`` entries (one per dyadic level) and the total spent ε never
exceeds the configured budget — versus the ``T`` entries / ``T·ε`` a naive
release-per-step Laplace mechanism would cost.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.dp.accountant import PrivacyAccountant
from repro.exceptions import PrivacyError, StreamError
from repro.stream.release import (
    BinaryTreeRelease,
    EveryKEventsPolicy,
    FixedIntervalPolicy,
    tree_depth,
)


class TestPolicies:
    def test_every_k_events_fires_on_multiples(self):
        policy = EveryKEventsPolicy(k=3)
        assert not policy.should_release(2, 0.0, 0, 0.0)
        assert policy.should_release(3, 0.0, 0, 0.0)
        assert not policy.should_release(4, 0.0, 3, 0.0)
        assert policy.should_release(6, 0.0, 3, 0.0)

    def test_fixed_interval_fires_on_elapsed_stream_time(self):
        policy = FixedIntervalPolicy(interval=10.0)
        assert not policy.should_release(5, 9.9, 0, 0.0)
        assert policy.should_release(6, 10.0, 0, 0.0)
        assert not policy.should_release(7, 15.0, 6, 10.0)
        assert policy.should_release(9, 20.5, 6, 10.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(StreamError):
            EveryKEventsPolicy(k=0)
        with pytest.raises(StreamError):
            FixedIntervalPolicy(interval=0.0)


class TestTreeDepth:
    def test_depth_is_logarithmic(self):
        assert tree_depth(1) == 1
        assert tree_depth(2) == 2
        assert tree_depth(8) == 4
        assert tree_depth(1024) == 11
        for capacity in (3, 17, 100, 999):
            assert tree_depth(capacity) == math.floor(math.log2(capacity)) + 1

    def test_non_positive_rejected(self):
        with pytest.raises(StreamError):
            tree_depth(0)


class TestBinaryTreeRelease:
    def test_ledger_is_logarithmic_in_t(self):
        """The acceptance criterion: T releases, O(log T) ledger entries."""
        T = 500
        accountant = PrivacyAccountant(total_budget=2.0)
        tree = BinaryTreeRelease(
            epsilon=2.0, max_releases=T, accountant=accountant, rng=0
        )
        for _ in range(T):
            tree.release(1.0)
        # 500 releases touch at most floor(log2 500)+1 = 9 dyadic levels.
        assert len(accountant.ledger()) <= tree_depth(T)
        assert len(accountant.ledger()) < T / 10
        assert accountant.spent <= 2.0 * (1 + 1e-9)

    def test_total_spend_is_independent_of_release_count(self):
        for T in (4, 64, 300):
            accountant = PrivacyAccountant(total_budget=1.0)
            tree = BinaryTreeRelease(
                epsilon=1.0, max_releases=T, accountant=accountant, rng=1
            )
            for _ in range(T):
                tree.release(0.5)
            assert accountant.spent == pytest.approx(1.0)

    def test_ledger_labels_name_the_levels(self):
        accountant = PrivacyAccountant(total_budget=1.0)
        tree = BinaryTreeRelease(
            epsilon=1.0, max_releases=8, accountant=accountant, rng=2, label="demo"
        )
        for _ in range(8):
            tree.release(1.0)
        labels = [label for label, _ in accountant.ledger()]
        assert labels == [f"demo/level-{d}" for d in range(4)]

    def test_prefix_sums_are_accurate_at_high_epsilon(self):
        rng = np.random.default_rng(5)
        deltas = rng.integers(-3, 7, size=200)
        tree = BinaryTreeRelease(epsilon=1e6, max_releases=200, rng=3)
        prefix = 0
        for delta in deltas:
            prefix += int(delta)
            released = tree.release(float(delta))
            assert released == pytest.approx(prefix, abs=1e-2)

    def test_noise_concentrates_with_moderate_epsilon(self):
        # Average released error over many steps stays within a few multiples
        # of the analytic per-release bound.
        tree = BinaryTreeRelease(epsilon=2.0, max_releases=256, rng=7)
        errors = []
        prefix = 0.0
        for step in range(256):
            prefix += 1.0
            errors.append(abs(tree.release(1.0) - prefix))
        assert np.mean(errors) < 4.0 * tree.per_release_noise_std()

    def test_capacity_is_enforced(self):
        tree = BinaryTreeRelease(epsilon=1.0, max_releases=4, rng=0)
        for _ in range(4):
            tree.release(1.0)
        with pytest.raises(StreamError):
            tree.release(1.0)
        assert tree.releases_made == 4

    def test_noise_scale_reflects_depth(self):
        tree = BinaryTreeRelease(epsilon=2.0, max_releases=64, sensitivity=3.0)
        assert tree.levels == 7
        assert tree.noise_scale == pytest.approx(3.0 * 7 / 2.0)
        assert tree.per_release_noise_std() == pytest.approx(
            math.sqrt(2 * 7) * tree.noise_scale
        )

    def test_deterministic_under_a_seed(self):
        first = BinaryTreeRelease(epsilon=1.0, max_releases=32, rng=9)
        second = BinaryTreeRelease(epsilon=1.0, max_releases=32, rng=9)
        for _ in range(32):
            assert first.release(2.0) == second.release(2.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(PrivacyError):
            BinaryTreeRelease(epsilon=0.0, max_releases=8)
        with pytest.raises(PrivacyError):
            BinaryTreeRelease(epsilon=1.0, max_releases=8, sensitivity=0.0)
        with pytest.raises(StreamError):
            BinaryTreeRelease(epsilon=1.0, max_releases=0)
