"""The derived clustering-coefficient release and its budget composition."""

from __future__ import annotations

import pytest

from repro.exceptions import PrivacyError
from repro.graph import load_dataset
from repro.graph.statistics import global_clustering_coefficient
from repro.stats import ClusteringCoefficientRelease


class TestClusteringCoefficientRelease:
    def test_budget_composition_on_ledger(self):
        release = ClusteringCoefficientRelease(epsilon=4.0, seed=3).run(
            load_dataset("facebook", num_nodes=60)
        )
        labels = [label for label, _ in release.ledger]
        assert labels == ["clustering/triangles", "clustering/wedges"]
        spends = [spent for _, spent in release.ledger]
        assert spends[0] == pytest.approx(4.0 * 0.8)
        assert spends[1] == pytest.approx(4.0 * 0.2)
        assert release.epsilon == pytest.approx(4.0)

    def test_value_clamped_to_unit_interval(self):
        release = ClusteringCoefficientRelease(epsilon=0.1, seed=0).run(
            load_dataset("facebook", num_nodes=40)
        )
        assert 0.0 <= release.value <= 1.0

    def test_converges_to_exact_transitivity(self):
        graph = load_dataset("facebook", num_nodes=80)
        release = ClusteringCoefficientRelease(epsilon=1e6, seed=1).run(graph)
        exact = global_clustering_coefficient(graph)
        assert release.exact_value == pytest.approx(exact)
        # Huge budget → both components essentially exact; the plug-in ratio
        # only deviates through projection loss, which these dense-subgraph
        # prefixes do not incur at d'_max ≈ d_max.
        assert release.absolute_error < 0.05

    def test_components_reported(self):
        release = ClusteringCoefficientRelease(epsilon=8.0, seed=2).run(
            load_dataset("wiki", num_nodes=50)
        )
        assert set(release.components) == {"triangles", "wedges"}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(PrivacyError):
            ClusteringCoefficientRelease(epsilon=0.0)
        with pytest.raises(PrivacyError):
            ClusteringCoefficientRelease(epsilon=1.0, triangle_fraction=1.0)
