"""Streaming over generalised statistics: maintainers, anchors, bit-identity."""

from __future__ import annotations

import pytest

from repro.graph import load_dataset
from repro.graph.generators import erdos_renyi_graph
from repro.stats import (
    FourCycleStatistic,
    KStarStatistic,
    TriangleStatistic,
    count_four_cycles_exact,
    count_k_stars_exact,
)
from repro.stream import (
    IncrementalFourCycleMaintainer,
    IncrementalKStarMaintainer,
    IncrementalTriangleMaintainer,
    RecountingMaintainer,
    StreamingCargo,
    StreamingConfig,
    make_maintainer,
    replay_stream,
)
from repro.stream.events import churn_stream

#: Captured from the pre-refactor orchestrator (PR 3 head) with
#: StreamingConfig(epsilon=4.0, release_every=100, anchor_every=2, seed=11,
#: block_size=16) over replay_stream(facebook n=60, rng=3).
GOLDEN_STREAM = [
    (1, 7.036733, 4, False),
    (2, 89.504774, 87, True),
    (3, 242.316549, 239, False),
    (4, 528.605569, 530, True),
    (5, 1086.631675, 1087, False),
    (6, 1861.662307, 1864, True),
    (7, 2971.111585, 2978, False),
    (8, 4490.050379, 4485, True),
    (9, 5120.302339, 5116, False),
]


class TestStreamingBitIdentity:
    def test_triangle_stream_matches_pre_registry_orchestrator(self):
        stream = replay_stream(load_dataset("facebook", num_nodes=60), rng=3)
        config = StreamingConfig(
            epsilon=4.0, release_every=100, anchor_every=2, seed=11, block_size=16
        )
        result = StreamingCargo(config).run(stream)
        got = [
            (r.index, round(r.estimate, 6), r.true_count, r.is_anchor)
            for r in result.releases
        ]
        assert got == GOLDEN_STREAM
        assert result.anchors_run == 4
        assert result.epsilon_spent == pytest.approx(4.0)
        assert result.statistic == "triangles"


class TestMaintainerDispatch:
    def test_builtin_dispatch(self):
        assert isinstance(
            make_maintainer(TriangleStatistic(), num_nodes=5),
            IncrementalTriangleMaintainer,
        )
        kstars = make_maintainer(KStarStatistic(k=4), num_nodes=5)
        assert isinstance(kstars, IncrementalKStarMaintainer)
        assert kstars.k == 4
        assert isinstance(
            make_maintainer(FourCycleStatistic(), num_nodes=5),
            IncrementalFourCycleMaintainer,
        )

    def test_unknown_statistic_falls_back_to_recounting(self):
        class _OddTriangles(TriangleStatistic):
            name = "odd-triangles"

        maintainer = make_maintainer(_OddTriangles(), num_nodes=5)
        # Subclasses of a built-in still dispatch to the built-in maintainer
        # (isinstance dispatch); a genuinely foreign statistic recounts.
        assert isinstance(maintainer, IncrementalTriangleMaintainer)

        class _Foreign:
            def plain_count(self, graph):
                return graph.num_edges

        foreign = make_maintainer(_Foreign(), num_nodes=4)
        assert isinstance(foreign, RecountingMaintainer)
        from repro.stream.events import EdgeEvent, EdgeEventKind

        assert foreign.apply(EdgeEvent(EdgeEventKind.ADD, 0, 1)) == 1
        assert foreign.count == 1


class TestMaintainerParity:
    """Running counts stay bit-identical to the plain kernels on snapshots."""

    @pytest.mark.parametrize(
        "statistic, reference",
        [
            (KStarStatistic(k=2), lambda g: count_k_stars_exact(g.degrees(), 2)),
            (KStarStatistic(k=3), lambda g: count_k_stars_exact(g.degrees(), 3)),
            (FourCycleStatistic(), count_four_cycles_exact),
        ],
        ids=["2stars", "3stars", "4cycles"],
    )
    def test_replay_parity(self, statistic, reference):
        graph = load_dataset("wiki", num_nodes=40)
        maintainer = make_maintainer(statistic, num_nodes=40)
        for index, event in enumerate(replay_stream(graph, rng=5)):
            maintainer.apply(event)
            if index % 61 == 0:
                assert maintainer.count == reference(maintainer.snapshot())
        assert maintainer.count == reference(maintainer.snapshot())

    def test_churn_parity_with_removals(self):
        initial = erdos_renyi_graph(25, 0.3, seed=2)
        stream = churn_stream(
            initial, num_events=400, add_fraction=0.5, rng=3
        )
        for statistic, reference in (
            (KStarStatistic(k=2), lambda g: count_k_stars_exact(g.degrees(), 2)),
            (FourCycleStatistic(), count_four_cycles_exact),
        ):
            maintainer = make_maintainer(statistic, initial_graph=initial)
            for index, event in enumerate(stream):
                maintainer.apply(event)
                if index % 97 == 0:
                    assert maintainer.count == reference(maintainer.snapshot())
            assert maintainer.count == reference(maintainer.snapshot())

    def test_noop_events_have_zero_delta(self):
        from repro.stream.events import EdgeEvent, EdgeEventKind

        maintainer = IncrementalFourCycleMaintainer(num_nodes=4)
        assert maintainer.apply(EdgeEvent(EdgeEventKind.REMOVE, 0, 1)) == 0
        maintainer.apply(EdgeEvent(EdgeEventKind.ADD, 0, 1))
        assert maintainer.apply(EdgeEvent(EdgeEventKind.ADD, 0, 1)) == 0
        assert maintainer.events_applied == 3


class TestStreamingWithStatistics:
    @pytest.mark.parametrize("statistic", ("kstars", "4cycles"))
    def test_stream_tracks_truth_at_high_epsilon(self, statistic):
        stream = replay_stream(load_dataset("facebook", num_nodes=40), rng=1)
        config = StreamingConfig(
            epsilon=200.0,
            release_every=80,
            anchor_every=2,
            seed=2,
            statistic=statistic,
        )
        result = StreamingCargo(config).run(stream)
        assert result.statistic == statistic
        assert result.anchors_run > 0
        final = result.releases[-1]
        assert final.true_count > 0
        assert abs(final.estimate - final.true_count) / final.true_count < 0.1

    def test_bootstrap_anchor_with_statistic(self):
        initial = erdos_renyi_graph(30, 0.3, seed=4)
        stream = churn_stream(initial, num_events=150, add_fraction=0.5, rng=5)
        config = StreamingConfig(
            epsilon=100.0,
            release_every=50,
            anchor_every=3,
            seed=6,
            statistic="kstars",
            star_k=2,
        )
        result = StreamingCargo(config).run(stream, initial_graph=initial)
        # The bootstrap anchor consumed budget before the first event.
        assert result.anchors_run >= 1
        assert result.epsilon_spent == pytest.approx(100.0)
