"""Tests for repro.graph.statistics."""

from __future__ import annotations

import pytest

from repro.graph.graph import Graph
from repro.graph.statistics import (
    average_clustering_coefficient,
    average_degree,
    degree_histogram,
    degree_sequence,
    global_clustering_coefficient,
    graph_summary,
    maximum_degree,
)


class TestDegreeStatistics:
    def test_degree_sequence_sorted(self, triangle_graph):
        assert degree_sequence(triangle_graph) == [3, 2, 2, 1]

    def test_maximum_degree(self, star_graph):
        assert maximum_degree(star_graph) == 7

    def test_degree_histogram(self, star_graph):
        assert degree_histogram(star_graph) == {7: 1, 1: 7}

    def test_average_degree(self, complete_graph):
        assert average_degree(complete_graph) == pytest.approx(5.0)

    def test_average_degree_empty(self):
        assert average_degree(Graph(0)) == 0.0


class TestClustering:
    def test_complete_graph_is_fully_clustered(self, complete_graph):
        assert global_clustering_coefficient(complete_graph) == pytest.approx(1.0)
        assert average_clustering_coefficient(complete_graph) == pytest.approx(1.0)

    def test_star_has_zero_clustering(self, star_graph):
        assert global_clustering_coefficient(star_graph) == 0.0
        assert average_clustering_coefficient(star_graph) == 0.0

    def test_empty_graph(self, empty_graph):
        assert global_clustering_coefficient(empty_graph) == 0.0
        assert average_clustering_coefficient(empty_graph) == 0.0

    def test_triangle_with_pendant(self, triangle_graph):
        # Wedges: node0: 1, node1: 1, node2: 3, node3: 0 -> 5; transitivity 3/5.
        assert global_clustering_coefficient(triangle_graph) == pytest.approx(0.6)


class TestSummary:
    def test_summary_fields(self, complete_graph):
        summary = graph_summary(complete_graph)
        assert summary.num_nodes == 6
        assert summary.num_edges == 15
        assert summary.max_degree == 5
        assert summary.triangle_count == 20
        assert summary.global_clustering == pytest.approx(1.0)

    def test_summary_as_dict(self, triangle_graph):
        summary = graph_summary(triangle_graph).as_dict()
        assert summary["triangle_count"] == 1
        assert set(summary) == {
            "num_nodes",
            "num_edges",
            "max_degree",
            "average_degree",
            "triangle_count",
            "global_clustering",
        }
