"""Memoisation and invalidation of ``Graph.degree_vector`` / ``csr_arrays``.

Mirrors ``test_graph_cache_invalidation.py``: the degree vector and the CSR
view are instance memos with the same mutation-invalidation contract as the
adjacency matrix, and the sparse execution path depends on them staying
consistent with the adjacency sets through arbitrary edge churn.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.graph import Graph


def _expected_csr(graph: Graph):
    indptr = [0]
    indices = []
    for node in graph.nodes():
        neighbours = sorted(graph.neighbors(node))
        indices.extend(neighbours)
        indptr.append(indptr[-1] + len(neighbours))
    return indptr, indices


class TestDegreeVectorCache:
    def test_matches_degrees_list(self, triangle_graph):
        assert triangle_graph.degree_vector().tolist() == triangle_graph.degrees()

    def test_dtype_and_shape(self, triangle_graph):
        vector = triangle_graph.degree_vector()
        assert vector.dtype == np.int64
        assert vector.shape == (triangle_graph.num_nodes,)

    def test_no_copy_is_memoised(self, triangle_graph):
        first = triangle_graph.degree_vector(copy=False)
        second = triangle_graph.degree_vector(copy=False)
        assert first is second

    def test_no_copy_view_is_read_only(self, triangle_graph):
        vector = triangle_graph.degree_vector(copy=False)
        with pytest.raises(ValueError):
            vector[0] = 99

    def test_default_copy_is_writable_and_fresh(self, triangle_graph):
        first = triangle_graph.degree_vector()
        second = triangle_graph.degree_vector()
        assert first is not second
        first[0] = 99  # must not corrupt the memo
        assert triangle_graph.degree_vector()[0] == triangle_graph.degree(0)

    def test_add_edge_invalidates(self, triangle_graph):
        stale = triangle_graph.degree_vector(copy=False)
        triangle_graph.add_edge(1, 3)
        fresh = triangle_graph.degree_vector(copy=False)
        assert fresh is not stale
        assert fresh.tolist() == triangle_graph.degrees()

    def test_remove_edge_invalidates(self, triangle_graph):
        stale = triangle_graph.degree_vector(copy=False)
        triangle_graph.remove_edge(0, 1)
        fresh = triangle_graph.degree_vector(copy=False)
        assert fresh is not stale
        assert fresh.tolist() == triangle_graph.degrees()

    def test_noop_mutations_keep_cache(self, triangle_graph):
        cached = triangle_graph.degree_vector(copy=False)
        assert triangle_graph.add_edge(0, 1) is False  # already present
        assert triangle_graph.remove_edge(0, 3) is False  # never existed
        assert triangle_graph.degree_vector(copy=False) is cached

    def test_copy_shares_cache_then_diverges(self, triangle_graph):
        original = triangle_graph.degree_vector(copy=False)
        clone = triangle_graph.copy()
        assert clone.degree_vector(copy=False) is original
        clone.add_edge(1, 3)
        assert clone.degree_vector(copy=False) is not original
        assert triangle_graph.degree_vector(copy=False) is original
        assert clone.degree_vector().tolist() == clone.degrees()

    def test_long_random_mutation_sequence(self, rng):
        n = 24
        graph = Graph(n)
        for _ in range(400):
            u, v = rng.choice(n, size=2, replace=False)
            if rng.random() < 0.6:
                graph.add_edge(int(u), int(v))
            else:
                graph.remove_edge(int(u), int(v))
            assert graph.degree_vector().tolist() == graph.degrees()

    def test_empty_graph(self):
        assert Graph(0).degree_vector().tolist() == []


class TestCsrCache:
    def test_structure_matches_adjacency(self, triangle_graph):
        indptr, indices = triangle_graph.csr_arrays()
        expected_indptr, expected_indices = _expected_csr(triangle_graph)
        assert indptr.tolist() == expected_indptr
        assert indices.tolist() == expected_indices

    def test_memoised_identity(self, triangle_graph):
        assert triangle_graph.csr_arrays() is triangle_graph.csr_arrays()

    def test_views_are_read_only(self, triangle_graph):
        indptr, indices = triangle_graph.csr_arrays()
        with pytest.raises(ValueError):
            indptr[0] = 7
        with pytest.raises(ValueError):
            indices[0] = 7

    def test_add_edge_invalidates(self, triangle_graph):
        stale = triangle_graph.csr_arrays()
        triangle_graph.add_edge(1, 3)
        fresh = triangle_graph.csr_arrays()
        assert fresh is not stale
        expected_indptr, expected_indices = _expected_csr(triangle_graph)
        assert fresh[0].tolist() == expected_indptr
        assert fresh[1].tolist() == expected_indices

    def test_remove_edge_invalidates(self, triangle_graph):
        stale = triangle_graph.csr_arrays()
        triangle_graph.remove_edge(2, 3)
        fresh = triangle_graph.csr_arrays()
        assert fresh is not stale
        expected_indptr, expected_indices = _expected_csr(triangle_graph)
        assert fresh[0].tolist() == expected_indptr
        assert fresh[1].tolist() == expected_indices

    def test_noop_mutations_keep_cache(self, triangle_graph):
        cached = triangle_graph.csr_arrays()
        assert triangle_graph.add_edge(0, 1) is False
        assert triangle_graph.remove_edge(0, 3) is False
        assert triangle_graph.csr_arrays() is cached

    def test_copy_shares_cache_then_diverges(self, triangle_graph):
        original = triangle_graph.csr_arrays()
        clone = triangle_graph.copy()
        assert clone.csr_arrays() is original
        clone.remove_edge(0, 1)
        assert clone.csr_arrays() is not original
        assert triangle_graph.csr_arrays() is original

    def test_consistent_with_adjacency_matrix(self, complete_graph):
        indptr, indices = complete_graph.csr_arrays()
        matrix = complete_graph.adjacency_matrix()
        for u in complete_graph.nodes():
            row = indices[indptr[u] : indptr[u + 1]]
            assert sorted(row.tolist()) == np.nonzero(matrix[u])[0].tolist()

    def test_long_random_mutation_sequence(self, rng):
        n = 16
        graph = Graph(n)
        for _ in range(300):
            u, v = rng.choice(n, size=2, replace=False)
            if rng.random() < 0.5:
                graph.add_edge(int(u), int(v))
            else:
                graph.remove_edge(int(u), int(v))
            indptr, indices = graph.csr_arrays()
            expected_indptr, expected_indices = _expected_csr(graph)
            assert indptr.tolist() == expected_indptr
            assert indices.tolist() == expected_indices

    def test_empty_graph(self):
        indptr, indices = Graph(3).csr_arrays()
        assert indptr.tolist() == [0, 0, 0, 0]
        assert indices.tolist() == []
