"""Tests for repro.crypto.secure_ops: correctness of the secure protocols."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.multiplication_groups import MultiplicationGroupDealer
from repro.crypto.ring import DEFAULT_RING, Ring
from repro.crypto.secure_ops import (
    secure_add,
    secure_matrix_multiply,
    secure_multiply_pair,
    secure_multiply_triple,
)
from repro.crypto.sharing import reconstruct, reconstruct_vector, share_scalar, share_vector
from repro.exceptions import ProtocolError


class TestSecureAdd:
    def test_addition_of_shared_values(self):
        a = share_scalar(10, rng=0)
        b = share_scalar(-3, rng=1)
        s1, s2 = secure_add((a.share1, a.share2), (b.share1, b.share2))
        assert reconstruct(s1, s2, signed=True) == 7

    def test_vector_addition(self):
        a = share_vector(np.array([1, 2, 3]), rng=0)
        b = share_vector(np.array([10, 20, 30]), rng=1)
        s1, s2 = secure_add((a.share1, a.share2), (b.share1, b.share2))
        assert list(reconstruct_vector(s1, s2)) == [11, 22, 33]


class TestSecureMultiplyPair:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (0, 1), (7, 11), (123, 456)])
    def test_scalar_products(self, a, b):
        dealer = BeaverTripleDealer(seed=0)
        a_pair = share_scalar(a, rng=1)
        b_pair = share_scalar(b, rng=2)
        s1, s2 = secure_multiply_pair(
            (a_pair.share1, a_pair.share2),
            (b_pair.share1, b_pair.share2),
            dealer.scalar_triple(),
        )
        assert reconstruct(s1, s2) == a * b

    def test_vector_products(self):
        dealer = BeaverTripleDealer(seed=3)
        a = np.array([0, 1, 1, 0, 5])
        b = np.array([1, 1, 0, 0, 4])
        a_pair = share_vector(a, rng=4)
        b_pair = share_vector(b, rng=5)
        triple = dealer.vector_triple((5,))
        s1, s2 = secure_multiply_pair(
            (a_pair.share1, a_pair.share2), (b_pair.share1, b_pair.share2), triple
        )
        assert list(reconstruct_vector(s1, s2)) == [0, 1, 0, 0, 20]

    def test_small_ring(self):
        ring = Ring(bits=16)
        dealer = BeaverTripleDealer(ring=ring, seed=6)
        a_pair = share_scalar(250, ring=ring, rng=7)
        b_pair = share_scalar(251, ring=ring, rng=8)
        s1, s2 = secure_multiply_pair(
            (a_pair.share1, a_pair.share2),
            (b_pair.share1, b_pair.share2),
            dealer.scalar_triple(),
            ring=ring,
        )
        assert reconstruct(s1, s2, ring=ring) == (250 * 251) % ring.modulus


class TestSecureMultiplyTriple:
    @pytest.mark.parametrize(
        "a,b,c",
        [(0, 0, 0), (1, 1, 1), (1, 1, 0), (0, 1, 1), (2, 3, 5), (17, 19, 23)],
    )
    def test_scalar_triple_products(self, a, b, c):
        dealer = MultiplicationGroupDealer(seed=0)
        pairs = [share_scalar(value, rng=index) for index, value in enumerate((a, b, c))]
        s1, s2 = secure_multiply_triple(
            (pairs[0].share1, pairs[0].share2),
            (pairs[1].share1, pairs[1].share2),
            (pairs[2].share1, pairs[2].share2),
            dealer.scalar_group(),
        )
        assert reconstruct(s1, s2) == a * b * c

    def test_all_bit_combinations(self):
        """Theorem 1 on every 0/1 combination — the triangle-indicator case."""
        dealer = MultiplicationGroupDealer(seed=1)
        for bits in range(8):
            a, b, c = (bits >> 2) & 1, (bits >> 1) & 1, bits & 1
            pairs = [share_scalar(v, rng=100 + bits * 3 + i) for i, v in enumerate((a, b, c))]
            s1, s2 = secure_multiply_triple(
                (pairs[0].share1, pairs[0].share2),
                (pairs[1].share1, pairs[1].share2),
                (pairs[2].share1, pairs[2].share2),
                dealer.scalar_group(),
            )
            assert reconstruct(s1, s2) == a * b * c

    def test_vectorised_triple_products(self):
        dealer = MultiplicationGroupDealer(seed=2)
        rng = np.random.default_rng(3)
        a = rng.integers(0, 2, size=50)
        b = rng.integers(0, 2, size=50)
        c = rng.integers(0, 2, size=50)
        a_pair = share_vector(a, rng=4)
        b_pair = share_vector(b, rng=5)
        c_pair = share_vector(c, rng=6)
        group = dealer.vector_group((50,))
        s1, s2 = secure_multiply_triple(
            (a_pair.share1, a_pair.share2),
            (b_pair.share1, b_pair.share2),
            (c_pair.share1, c_pair.share2),
            group,
        )
        assert list(reconstruct_vector(s1, s2)) == list(a * b * c)


class TestSecureMatrixMultiply:
    def test_matrix_product(self):
        dealer = BeaverTripleDealer(seed=0)
        rng = np.random.default_rng(1)
        a = rng.integers(0, 5, size=(4, 6))
        b = rng.integers(0, 5, size=(6, 3))
        a_pair = share_vector(a, rng=2)
        b_pair = share_vector(b, rng=3)
        triple = dealer.matrix_triple((4, 6), (6, 3))
        s1, s2 = secure_matrix_multiply(
            (a_pair.share1, a_pair.share2), (b_pair.share1, b_pair.share2), triple
        )
        expected = (a @ b).astype(np.uint64)
        assert np.array_equal(reconstruct_vector(s1, s2), expected)

    def test_shape_mismatch_rejected(self):
        dealer = BeaverTripleDealer(seed=4)
        a_pair = share_vector(np.zeros((2, 2), dtype=np.int64), rng=5)
        b_pair = share_vector(np.zeros((2, 2), dtype=np.int64), rng=6)
        triple = dealer.matrix_triple((3, 3), (3, 3))
        with pytest.raises(ProtocolError):
            secure_matrix_multiply(
                (a_pair.share1, a_pair.share2), (b_pair.share1, b_pair.share2), triple
            )

    def test_adjacency_cube_trace(self):
        """trace(A^3) computed on shares equals 6x the triangle count."""
        from repro.graph.generators import erdos_renyi_graph
        from repro.graph.triangles import count_triangles

        graph = erdos_renyi_graph(12, 0.4, seed=7)
        adjacency = graph.adjacency_matrix()
        dealer = BeaverTripleDealer(seed=8)
        a_pair = share_vector(adjacency, rng=9)
        shares = (a_pair.share1, a_pair.share2)
        triple1 = dealer.matrix_triple((12, 12), (12, 12))
        square = secure_matrix_multiply(shares, shares, triple1)
        triple2 = dealer.matrix_triple((12, 12), (12, 12))
        cube = secure_matrix_multiply(square, shares, triple2)
        total = reconstruct_vector(cube[0], cube[1])
        assert int(np.trace(total.astype(np.int64))) == 6 * count_triangles(graph)
