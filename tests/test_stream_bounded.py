"""Bounded-memory streaming: capped/degree-vector maintainers + orchestrator.

``memory_mode="bounded"`` replaces the full graph snapshot with ``O(n + m)``
state: a flat edge-key set plus an int64 degree array, with capped neighbour
sets (and an exact edge-set fallback) for triangles.  The contract these
tests pin is *bit-identical running counts* to the full-memory maintainers
through arbitrary churn — saturation, fallbacks, and resyncs may change the
cost of an event, never its answer — and bit-identical released estimates
from :class:`StreamingCargo`.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, StreamError
from repro.graph.datasets import load_dataset
from repro.graph.triangles import count_triangles
from repro.stats import create_statistic
from repro.stream import (
    DEFAULT_NEIGHBOR_CAP,
    CappedTriangleMaintainer,
    DegreeVectorKStarMaintainer,
    IncrementalKStarMaintainer,
    IncrementalTriangleMaintainer,
    StreamingCargo,
    StreamingConfig,
    churn_stream,
    make_maintainer,
)


def _churn_events(num_nodes=48, num_events=600, seed=9, add_fraction=0.6):
    base = load_dataset("facebook", num_nodes=num_nodes)
    return list(churn_stream(base, num_events, rng=seed, add_fraction=add_fraction))


class TestDegreeVectorKStarMaintainer:
    @pytest.mark.parametrize("k", [2, 3])
    def test_bit_identical_to_full_maintainer(self, k):
        events = _churn_events()
        full = IncrementalKStarMaintainer(k=k, num_nodes=48)
        bounded = DegreeVectorKStarMaintainer(k=k, num_nodes=48)
        for event in events:
            full.apply(event)
            bounded.apply(event)
            assert bounded.count == full.count
            assert bounded.degrees() == full.degrees()
        assert bounded.events_applied == full.events_applied
        assert bounded.num_edges == full.graph.num_edges

    def test_initial_graph_ingestion(self, complete_graph):
        full = IncrementalKStarMaintainer(k=2, initial_graph=complete_graph)
        bounded = DegreeVectorKStarMaintainer(k=2, initial_graph=complete_graph)
        assert bounded.count == full.count
        assert bounded.degree_vector().tolist() == complete_graph.degrees()

    def test_graph_property_raises(self):
        maintainer = DegreeVectorKStarMaintainer(k=2, num_nodes=4)
        with pytest.raises(StreamError):
            maintainer.graph

    def test_snapshot_rebuilds_the_graph(self, triangle_graph):
        maintainer = DegreeVectorKStarMaintainer(k=2, initial_graph=triangle_graph)
        assert maintainer.snapshot() == triangle_graph


class TestCappedTriangleMaintainer:
    def test_bit_identical_through_saturation_and_resyncs(self):
        events = _churn_events(num_nodes=40, num_events=900, seed=3)
        full = IncrementalTriangleMaintainer(num_nodes=40)
        bounded = CappedTriangleMaintainer(num_nodes=40, neighbor_cap=3, resync_every=7)
        for event in events:
            full.apply(event)
            bounded.apply(event)
            assert bounded.count == full.count
        # The tight cap must actually exercise the fallback machinery,
        # otherwise this test proves nothing about the capped path.
        assert bounded.saturated_nodes > 0
        assert bounded.fallbacks > 0

    def test_default_cap_rarely_saturates_small_graphs(self):
        events = _churn_events(num_nodes=30, num_events=200, seed=5)
        bounded = CappedTriangleMaintainer(num_nodes=30)
        full = IncrementalTriangleMaintainer(num_nodes=30)
        for event in events:
            full.apply(event)
            bounded.apply(event)
        assert bounded.neighbor_cap == DEFAULT_NEIGHBOR_CAP
        assert bounded.count == full.count

    def test_initial_graph_and_snapshot(self, two_triangle_graph):
        bounded = CappedTriangleMaintainer(
            initial_graph=two_triangle_graph, neighbor_cap=2
        )
        assert bounded.count == count_triangles(two_triangle_graph)
        assert bounded.snapshot() == two_triangle_graph

    def test_noop_events_are_noops(self, triangle_graph):
        events = list(churn_stream(triangle_graph, 60, rng=1, add_fraction=0.5))
        full = IncrementalTriangleMaintainer(initial_graph=triangle_graph)
        bounded = CappedTriangleMaintainer(
            initial_graph=triangle_graph, neighbor_cap=1
        )
        for event in events:
            assert bounded.apply(event) == full.apply(event)
            assert bounded.count == full.count
        assert bounded.events_applied == full.events_applied

    def test_graph_property_raises(self):
        with pytest.raises(StreamError):
            CappedTriangleMaintainer(num_nodes=4).graph


class TestMakeMaintainerDispatch:
    def test_bounded_dispatch(self):
        triangles = create_statistic("triangles", None)
        kstars = create_statistic("kstars", None)
        assert isinstance(
            make_maintainer(triangles, num_nodes=8, memory_mode="bounded"),
            CappedTriangleMaintainer,
        )
        assert isinstance(
            make_maintainer(kstars, num_nodes=8, memory_mode="bounded"),
            DegreeVectorKStarMaintainer,
        )

    def test_wedges_ride_the_kstar_maintainer(self):
        wedges = create_statistic("wedges", None)
        maintainer = make_maintainer(wedges, num_nodes=8, memory_mode="bounded")
        assert isinstance(maintainer, DegreeVectorKStarMaintainer)
        assert maintainer.k == 2

    def test_neighbor_cap_threads_through(self):
        triangles = create_statistic("triangles", None)
        maintainer = make_maintainer(
            triangles, num_nodes=8, memory_mode="bounded", neighbor_cap=5
        )
        assert maintainer.neighbor_cap == 5

    def test_invalid_arguments_rejected(self):
        triangles = create_statistic("triangles", None)
        with pytest.raises(StreamError, match="memory_mode"):
            make_maintainer(triangles, num_nodes=8, memory_mode="paged")
        with pytest.raises(StreamError, match="neighbor_cap"):
            make_maintainer(
                triangles, num_nodes=8, memory_mode="bounded", neighbor_cap=0
            )
        four_cycles = create_statistic("4cycles", None)
        with pytest.raises(StreamError, match="bounded"):
            make_maintainer(four_cycles, num_nodes=8, memory_mode="bounded")


class TestStreamingConfigValidation:
    def test_new_fields_validated(self):
        with pytest.raises(ConfigurationError):
            StreamingConfig(sparse="sometimes")
        with pytest.raises(ConfigurationError):
            StreamingConfig(memory_mode="paged")
        with pytest.raises(ConfigurationError):
            StreamingConfig(neighbor_cap=0)
        assert StreamingConfig(
            sparse="force", statistic="kstars", memory_mode="bounded", neighbor_cap=4
        ).memory_mode == "bounded"


class TestBoundedOrchestrator:
    def _stream(self, num_nodes=60, num_events=400, seed=13):
        base = load_dataset("facebook", num_nodes=num_nodes)
        return churn_stream(base, num_events, rng=seed, add_fraction=0.7)

    def _run(self, **overrides):
        defaults = dict(
            epsilon=6.0,
            release_every=40,
            seed=17,
            max_releases=16,
            statistic="kstars",
            star_k=3,
            anchor_every=3,
        )
        defaults.update(overrides)
        return StreamingCargo(StreamingConfig(**defaults)).run(self._stream())

    def test_bounded_anchored_kstars_identical_to_full(self):
        full = self._run(memory_mode="full")
        bounded = self._run(memory_mode="bounded")
        assert bounded.anchors_run == full.anchors_run > 0
        assert bounded.epsilon_spent == full.epsilon_spent
        assert bounded.ledger == full.ledger
        assert len(bounded.releases) == len(full.releases)
        for lhs, rhs in zip(full.releases, bounded.releases):
            assert rhs.estimate == lhs.estimate
            assert rhs.true_count == lhs.true_count
            assert rhs.epsilon_spent == lhs.epsilon_spent

    def test_bounded_triangles_without_anchors_identical_to_full(self):
        kwargs = dict(statistic="triangles", anchor_every=0, neighbor_cap=4)
        full = self._run(memory_mode="full", **kwargs)
        bounded = self._run(memory_mode="bounded", **kwargs)
        for lhs, rhs in zip(full.releases, bounded.releases):
            assert rhs.estimate == lhs.estimate
            assert rhs.true_count == lhs.true_count

    def test_bounded_anchored_triangles_rejected(self):
        with pytest.raises(ConfigurationError, match="degree-local"):
            self._run(statistic="triangles", memory_mode="bounded", neighbor_cap=4)

    def test_sparse_force_non_degree_statistic_rejected(self):
        with pytest.raises(ConfigurationError, match="degree-local kernel"):
            self._run(statistic="triangles", sparse="force")
