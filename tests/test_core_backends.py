"""Tests for repro.core.backends — the registry and the blocked backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backends import (
    BlockedMatrixTriangleCounter,
    FaithfulTriangleCounter,
    MatrixTriangleCounter,
    TriangleCounterBackend,
    available_backends,
    backend_registered,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.core.cargo import Cargo
from repro.core.config import CargoConfig, CountingBackend
from repro.crypto.beaver import BeaverTripleDealer
from repro.exceptions import ConfigurationError, ProtocolError
from repro.graph.generators import erdos_renyi_graph, powerlaw_cluster_graph
from repro.graph.triangles import count_triangles


class TestRegistry:
    def test_builtins_registered(self):
        assert {"faithful", "batched", "matrix", "blocked"} <= set(available_backends())

    def test_create_by_enum_and_string(self):
        config = CargoConfig()
        by_enum = create_backend(CountingBackend.MATRIX, config=config)
        by_string = create_backend("matrix", config=config)
        assert isinstance(by_enum, MatrixTriangleCounter)
        assert isinstance(by_string, MatrixTriangleCounter)

    def test_batched_mode_uses_config_batch_size(self):
        backend = create_backend("batched", config=CargoConfig(batch_size=17))
        assert isinstance(backend, FaithfulTriangleCounter)
        assert backend._batch_size == 17

    def test_blocked_uses_config_block_size(self):
        backend = create_backend("blocked", config=CargoConfig(block_size=9))
        assert isinstance(backend, BlockedMatrixTriangleCounter)
        assert backend.block_size == 9

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError):
            create_backend("nonexistent", config=CargoConfig())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_backend("matrix")(MatrixTriangleCounter)

    def test_third_party_backend_plugs_in(self):
        @register_backend("constant-zero")
        class ConstantZeroCounter(TriangleCounterBackend):
            @classmethod
            def from_config(cls, config, dealer_rng=None, views=None):
                return cls(ring=config.ring, views=views)

            def count_from_shares(self, share1, share2):
                from repro.core.backends.base import CountResult

                return CountResult(
                    share1=0, share2=0, num_triples_processed=0, opening_rounds=0
                )

        try:
            assert backend_registered("constant-zero")
            config = CargoConfig(counting_backend="constant-zero")
            # Pass-through keeps the registered name (not an enum member).
            assert config.counting_backend == "constant-zero"
            assert config.backend_name == "constant-zero"
            graph = erdos_renyi_graph(20, 0.3, seed=0)
            result = Cargo(config).run(graph)
            assert result.backend == "constant-zero"
        finally:
            unregister_backend("constant-zero")

    def test_non_backend_class_rejected(self):
        with pytest.raises(ConfigurationError):
            register_backend("bogus")(dict)


class TestBlockedCounting:
    @pytest.mark.parametrize(
        "fixture_name",
        ["triangle_graph", "two_triangle_graph", "star_graph", "complete_graph", "empty_graph"],
    )
    def test_known_graphs(self, fixture_name, request):
        graph = request.getfixturevalue(fixture_name)
        result = BlockedMatrixTriangleCounter(block_size=3).count(
            graph.adjacency_matrix(), rng=0
        )
        assert result.reconstruct() == count_triangles(graph)

    @pytest.mark.parametrize("block_size", [1, 2, 5, 16, 200])
    def test_block_size_does_not_change_count(self, block_size, medium_cluster_graph):
        rows = medium_cluster_graph.adjacency_matrix()
        result = BlockedMatrixTriangleCounter(block_size=block_size).count(rows, rng=1)
        assert result.reconstruct() == count_triangles(medium_cluster_graph)

    def test_matches_matrix_backend_exactly(self):
        graph = powerlaw_cluster_graph(70, 5, 0.7, seed=2)
        rows = graph.adjacency_matrix()
        matrix = MatrixTriangleCounter().count(rows, rng=3)
        blocked = BlockedMatrixTriangleCounter(block_size=16).count(rows, rng=3)
        assert blocked.reconstruct() == matrix.reconstruct()
        assert blocked.num_triples_processed == matrix.num_triples_processed

    def test_more_opening_rounds_than_matrix(self, medium_cluster_graph):
        rows = medium_cluster_graph.adjacency_matrix()
        blocked = BlockedMatrixTriangleCounter(block_size=32).count(rows, rng=4)
        assert blocked.opening_rounds > 2

    def test_single_block_degenerates_to_two_rounds(self):
        graph = erdos_renyi_graph(25, 0.3, seed=5)
        result = BlockedMatrixTriangleCounter(block_size=100).count(
            graph.adjacency_matrix(), rng=6
        )
        # One (J, K) tile with one inner product plus one element-wise round.
        assert result.opening_rounds == 2
        assert result.reconstruct() == count_triangles(graph)

    def test_tiny_graph_short_circuits(self):
        result = BlockedMatrixTriangleCounter().count(np.zeros((2, 2), dtype=np.int64), rng=7)
        assert result.reconstruct() == 0
        assert result.opening_rounds == 0

    def test_invalid_block_size(self):
        with pytest.raises(ProtocolError):
            BlockedMatrixTriangleCounter(block_size=0)

    def test_mismatched_shapes_rejected(self):
        counter = BlockedMatrixTriangleCounter()
        with pytest.raises(ProtocolError):
            counter.count_from_shares(
                np.zeros((3, 3), dtype=np.uint64), np.zeros((3, 4), dtype=np.uint64)
            )

    def test_shares_hide_count(self, complete_graph):
        result = BlockedMatrixTriangleCounter(block_size=2).count(
            complete_graph.adjacency_matrix(), rng=8
        )
        assert result.share1 != count_triangles(complete_graph)


class TestBlockedMemoryProfile:
    def test_peak_triple_is_block_sized_not_n_sized(self):
        n, block_size = 64, 8
        graph = erdos_renyi_graph(n, 0.2, seed=9)
        rows = graph.adjacency_matrix()

        monolithic_dealer = BeaverTripleDealer(seed=0)
        MatrixTriangleCounter(dealer=monolithic_dealer).count(rows, rng=10)
        blocked_dealer = BeaverTripleDealer(seed=0)
        BlockedMatrixTriangleCounter(dealer=blocked_dealer, block_size=block_size).count(
            rows, rng=10
        )

        # Monolithic: one triple holding three n x n arrays.
        assert monolithic_dealer.largest_triple_elements == 3 * n * n
        # Blocked: no single triple exceeds three block_size x block_size arrays.
        assert blocked_dealer.largest_triple_elements <= 3 * block_size * block_size
        assert (
            monolithic_dealer.largest_triple_elements
            >= 4 * blocked_dealer.largest_triple_elements
        )

    def test_dealer_issues_one_triple_per_tile(self):
        """The blocked backend draws tile triples on demand, never upfront."""
        dealer = BeaverTripleDealer(seed=1)
        graph = erdos_renyi_graph(12, 0.4, seed=1)
        result = BlockedMatrixTriangleCounter(dealer=dealer, block_size=4).count(
            graph.adjacency_matrix(), rng=2
        )
        # One triple per opening round (matrix tiles + element-wise tiles).
        assert dealer.triples_issued == result.opening_rounds


class TestCargoWithBlockedBackend:
    def test_end_to_end_blocked(self):
        graph = powerlaw_cluster_graph(60, 4, 0.7, seed=11)
        config = CargoConfig(
            epsilon=2.0, seed=12, counting_backend=CountingBackend.BLOCKED, block_size=16
        )
        result = Cargo(config).run(graph)
        assert result.backend == "blocked"
        assert np.isfinite(result.noisy_triangle_count)

    def test_blocked_matches_matrix_end_to_end(self):
        graph = erdos_renyi_graph(40, 0.3, seed=13)
        outputs = set()
        for backend in (CountingBackend.MATRIX, CountingBackend.BLOCKED):
            config = CargoConfig(epsilon=2.0, seed=14, counting_backend=backend, block_size=8)
            outputs.add(round(Cargo(config).run(graph).noisy_triangle_count, 6))
        assert len(outputs) == 1
