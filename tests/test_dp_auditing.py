"""Tests for repro.dp.auditing — empirical privacy audits of the mechanisms.

These tests audit the *implemented* mechanisms (Laplace degree release,
randomized response, CARGO's aggregated distributed noise) on neighbouring
inputs and check that the observed privacy loss stays within the claimed ε,
and — just as importantly — that the auditor detects a deliberately broken
mechanism.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp.auditing import (
    AuditResult,
    audit_mechanism,
    audit_randomized_response,
    epsilon_lower_bound_from_samples,
)
from repro.dp.gamma_noise import sample_partial_noises
from repro.dp.mechanisms import LaplaceMechanism, RandomizedResponse
from repro.exceptions import ConfigurationError


class TestAuditMechanism:
    def test_laplace_degree_release_passes(self):
        """Algorithm 2's per-user degree release satisfies its epsilon empirically."""
        epsilon = 1.0
        mechanism = LaplaceMechanism(epsilon=epsilon, sensitivity=1.0)
        result = audit_mechanism(
            lambda value, generator: value + mechanism.sample_noise(generator),
            input_a=10.0,
            input_b=11.0,  # neighbouring degree sets differ by one edge
            claimed_epsilon=epsilon,
            num_trials=20_000,
            rng=0,
        )
        assert result.passes
        assert result.epsilon_lower_bound <= 1.6

    def test_distributed_noise_passes_for_triangle_release(self):
        """The aggregated Gamma-difference noise protects a sensitivity-Δ change."""
        epsilon = 1.0
        sensitivity = 5.0
        num_users = 50

        def mechanism(value, generator):
            return value + float(sample_partial_noises(num_users, sensitivity / epsilon, generator).sum())

        result = audit_mechanism(
            mechanism,
            input_a=100.0,
            input_b=100.0 + sensitivity,
            claimed_epsilon=epsilon,
            num_trials=20_000,
            rng=1,
        )
        assert result.passes

    def test_detects_broken_mechanism(self):
        """Halving the Laplace scale doubles the privacy loss and fails the audit."""
        epsilon = 0.5
        broken = LaplaceMechanism(epsilon=epsilon * 6, sensitivity=1.0)  # far too little noise
        result = audit_mechanism(
            lambda value, generator: value + broken.sample_noise(generator),
            input_a=10.0,
            input_b=11.0,
            claimed_epsilon=epsilon,
            num_trials=20_000,
            rng=2,
        )
        assert not result.passes
        assert result.epsilon_lower_bound > epsilon

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            audit_mechanism(lambda v, g: v, 0, 1, claimed_epsilon=1.0, num_trials=0)
        with pytest.raises(ConfigurationError):
            audit_mechanism(lambda v, g: v, 0, 1, claimed_epsilon=1.0, num_bins=1)
        with pytest.raises(ConfigurationError):
            audit_mechanism(lambda v, g: v, 0, 1, claimed_epsilon=0)

    def test_result_dataclass_fields(self):
        result = AuditResult(epsilon_lower_bound=0.5, claimed_epsilon=1.0, num_trials=100, num_bins=10)
        assert result.passes

    def test_half_scale_laplace_is_flagged(self):
        """The canonical planted bug: Laplace noise at half the scale.

        Half the scale means double the realized epsilon, so an audit
        against the claimed (unhalved) epsilon must fail.
        """
        epsilon = 1.0
        half_scale = LaplaceMechanism(epsilon=epsilon * 2, sensitivity=1.0)
        result = audit_mechanism(
            lambda value, generator: value + half_scale.sample_noise(generator),
            input_a=10.0,
            input_b=11.0,
            claimed_epsilon=epsilon,
            num_trials=20_000,
            rng=5,
        )
        assert not result.passes
        assert result.epsilon_lower_bound > epsilon * 1.05 + 0.05
        # ... and the same mechanism audited against its true epsilon passes.
        honest = audit_mechanism(
            lambda value, generator: value + half_scale.sample_noise(generator),
            input_a=10.0,
            input_b=11.0,
            claimed_epsilon=epsilon * 2,
            num_trials=20_000,
            rng=5,
        )
        assert honest.passes


class TestEpsilonLowerBoundFromSamples:
    def test_zero_variance_samples_bound_zero(self):
        """Identical degenerate distributions carry no distinguishing power."""
        assert epsilon_lower_bound_from_samples([0.0] * 200, [0.0] * 200) == 0.0

    def test_identical_samples_bound_zero(self):
        samples = list(np.random.default_rng(0).normal(size=500))
        assert epsilon_lower_bound_from_samples(samples, samples) == 0.0

    def test_shifted_samples_bound_positive(self):
        rng = np.random.default_rng(1)
        low = rng.normal(loc=0.0, scale=1.0, size=5000)
        high = rng.normal(loc=2.0, scale=1.0, size=5000)
        assert epsilon_lower_bound_from_samples(low, high) > 1.0

    def test_disjoint_samples_stay_conservative(self):
        """Bins populated on only one side are skipped, not treated as ∞.

        The estimator reports a *lower* bound; with fully disjoint supports
        every bin fails the minimum-mass requirement on one side, so the
        bound degrades to 0 rather than fabricating an unbounded loss from
        noise-starved bins.
        """
        rng = np.random.default_rng(1)
        low = rng.normal(loc=0.0, scale=0.1, size=2000)
        high = rng.normal(loc=10.0, scale=0.1, size=2000)
        assert epsilon_lower_bound_from_samples(low, high) == 0.0

    def test_minimum_bins_accepted_single_bin_rejected(self):
        samples = list(np.random.default_rng(2).normal(size=200))
        shifted = [value + 0.5 for value in samples]
        # Two bins is the smallest meaningful histogram and must work.
        bound = epsilon_lower_bound_from_samples(samples, shifted, num_bins=2)
        assert bound >= 0.0
        with pytest.raises(ConfigurationError):
            epsilon_lower_bound_from_samples(samples, shifted, num_bins=1)

    def test_empty_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            epsilon_lower_bound_from_samples([], [1.0])
        with pytest.raises(ConfigurationError):
            epsilon_lower_bound_from_samples([1.0], [])

    def test_unequal_lengths_truncate_to_shorter(self):
        rng = np.random.default_rng(3)
        samples_a = list(rng.normal(size=1000))
        samples_b = list(rng.normal(size=400))
        bound = epsilon_lower_bound_from_samples(samples_a, samples_b)
        assert bound >= 0.0

    def test_matches_audit_mechanism_delegation(self):
        """audit_mechanism's bound is exactly the shared estimator's bound."""
        epsilon = 1.0
        mechanism = LaplaceMechanism(epsilon=epsilon, sensitivity=1.0)
        rng = np.random.default_rng(7)
        samples_a = [10.0 + mechanism.sample_noise(rng) for _ in range(5000)]
        samples_b = [11.0 + mechanism.sample_noise(rng) for _ in range(5000)]
        direct = epsilon_lower_bound_from_samples(samples_a, samples_b)
        assert direct <= epsilon * 1.05 + 0.05


class TestAuditRandomizedResponse:
    def test_implemented_rr_matches_its_epsilon(self):
        epsilon = 1.0
        response = RandomizedResponse(epsilon=epsilon)
        result = audit_randomized_response(
            response.keep_probability, claimed_epsilon=epsilon, num_trials=100_000, rng=3
        )
        # The exact loss of RR is exactly epsilon; the empirical estimate is close.
        assert result.epsilon_lower_bound == pytest.approx(epsilon, abs=0.1)
        assert result.passes

    def test_detects_overconfident_claim(self):
        response = RandomizedResponse(epsilon=3.0)  # weak privacy
        result = audit_randomized_response(
            response.keep_probability, claimed_epsilon=0.5, num_trials=100_000, rng=4
        )
        assert not result.passes

    def test_invalid_keep_probability(self):
        with pytest.raises(ConfigurationError):
            audit_randomized_response(1.0, claimed_epsilon=1.0)
