"""Tests for repro.dp.auditing — empirical privacy audits of the mechanisms.

These tests audit the *implemented* mechanisms (Laplace degree release,
randomized response, CARGO's aggregated distributed noise) on neighbouring
inputs and check that the observed privacy loss stays within the claimed ε,
and — just as importantly — that the auditor detects a deliberately broken
mechanism.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp.auditing import AuditResult, audit_mechanism, audit_randomized_response
from repro.dp.gamma_noise import sample_partial_noises
from repro.dp.mechanisms import LaplaceMechanism, RandomizedResponse
from repro.exceptions import ConfigurationError


class TestAuditMechanism:
    def test_laplace_degree_release_passes(self):
        """Algorithm 2's per-user degree release satisfies its epsilon empirically."""
        epsilon = 1.0
        mechanism = LaplaceMechanism(epsilon=epsilon, sensitivity=1.0)
        result = audit_mechanism(
            lambda value, generator: value + mechanism.sample_noise(generator),
            input_a=10.0,
            input_b=11.0,  # neighbouring degree sets differ by one edge
            claimed_epsilon=epsilon,
            num_trials=20_000,
            rng=0,
        )
        assert result.passes
        assert result.epsilon_lower_bound <= 1.6

    def test_distributed_noise_passes_for_triangle_release(self):
        """The aggregated Gamma-difference noise protects a sensitivity-Δ change."""
        epsilon = 1.0
        sensitivity = 5.0
        num_users = 50

        def mechanism(value, generator):
            return value + float(sample_partial_noises(num_users, sensitivity / epsilon, generator).sum())

        result = audit_mechanism(
            mechanism,
            input_a=100.0,
            input_b=100.0 + sensitivity,
            claimed_epsilon=epsilon,
            num_trials=20_000,
            rng=1,
        )
        assert result.passes

    def test_detects_broken_mechanism(self):
        """Halving the Laplace scale doubles the privacy loss and fails the audit."""
        epsilon = 0.5
        broken = LaplaceMechanism(epsilon=epsilon * 6, sensitivity=1.0)  # far too little noise
        result = audit_mechanism(
            lambda value, generator: value + broken.sample_noise(generator),
            input_a=10.0,
            input_b=11.0,
            claimed_epsilon=epsilon,
            num_trials=20_000,
            rng=2,
        )
        assert not result.passes
        assert result.epsilon_lower_bound > epsilon

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            audit_mechanism(lambda v, g: v, 0, 1, claimed_epsilon=1.0, num_trials=0)
        with pytest.raises(ConfigurationError):
            audit_mechanism(lambda v, g: v, 0, 1, claimed_epsilon=1.0, num_bins=1)
        with pytest.raises(ConfigurationError):
            audit_mechanism(lambda v, g: v, 0, 1, claimed_epsilon=0)

    def test_result_dataclass_fields(self):
        result = AuditResult(epsilon_lower_bound=0.5, claimed_epsilon=1.0, num_trials=100, num_bins=10)
        assert result.passes


class TestAuditRandomizedResponse:
    def test_implemented_rr_matches_its_epsilon(self):
        epsilon = 1.0
        response = RandomizedResponse(epsilon=epsilon)
        result = audit_randomized_response(
            response.keep_probability, claimed_epsilon=epsilon, num_trials=100_000, rng=3
        )
        # The exact loss of RR is exactly epsilon; the empirical estimate is close.
        assert result.epsilon_lower_bound == pytest.approx(epsilon, abs=0.1)
        assert result.passes

    def test_detects_overconfident_claim(self):
        response = RandomizedResponse(epsilon=3.0)  # weak privacy
        result = audit_randomized_response(
            response.keep_probability, claimed_epsilon=0.5, num_trials=100_000, rng=4
        )
        assert not result.passes

    def test_invalid_keep_probability(self):
        with pytest.raises(ConfigurationError):
            audit_randomized_response(1.0, claimed_epsilon=1.0)
