"""Tests for repro.stream.events — the edge-event model and generators."""

from __future__ import annotations

import pytest

from repro.exceptions import StreamError
from repro.graph.datasets import load_dataset
from repro.graph.graph import Graph
from repro.stream.events import (
    EdgeEvent,
    EdgeEventKind,
    EdgeStream,
    churn_stream,
    replay_dataset,
    replay_stream,
)


class TestEdgeEvent:
    def test_endpoints_are_normalised(self):
        event = EdgeEvent(kind=EdgeEventKind.ADD, u=5, v=2, time=1.0)
        assert event.edge == (2, 5)
        assert (event.u, event.v) == (2, 5)

    def test_normalised_events_compare_equal(self):
        a = EdgeEvent(kind=EdgeEventKind.ADD, u=5, v=2, time=1.0)
        b = EdgeEvent(kind=EdgeEventKind.ADD, u=2, v=5, time=1.0)
        assert a == b

    def test_self_loop_rejected(self):
        with pytest.raises(StreamError):
            EdgeEvent(kind=EdgeEventKind.ADD, u=3, v=3)

    def test_negative_endpoint_rejected(self):
        with pytest.raises(StreamError):
            EdgeEvent(kind=EdgeEventKind.ADD, u=-1, v=2)

    def test_negative_time_rejected(self):
        with pytest.raises(StreamError):
            EdgeEvent(kind=EdgeEventKind.ADD, u=0, v=1, time=-0.5)

    def test_is_addition(self):
        assert EdgeEvent(kind=EdgeEventKind.ADD, u=0, v=1).is_addition
        assert not EdgeEvent(kind=EdgeEventKind.REMOVE, u=0, v=1).is_addition


class TestEdgeStream:
    def test_out_of_range_event_rejected(self):
        with pytest.raises(StreamError):
            EdgeStream(num_nodes=3, events=(EdgeEvent(EdgeEventKind.ADD, 0, 5),))

    def test_decreasing_timestamps_rejected(self):
        events = (
            EdgeEvent(EdgeEventKind.ADD, 0, 1, time=2.0),
            EdgeEvent(EdgeEventKind.ADD, 1, 2, time=1.0),
        )
        with pytest.raises(StreamError):
            EdgeStream(num_nodes=3, events=events)

    def test_len_duration_and_kind_counts(self):
        events = (
            EdgeEvent(EdgeEventKind.ADD, 0, 1, time=1.0),
            EdgeEvent(EdgeEventKind.REMOVE, 0, 1, time=2.5),
        )
        stream = EdgeStream(num_nodes=3, events=events)
        assert len(stream) == 2
        assert stream.duration == 2.5
        assert stream.additions() == 1
        assert stream.removals() == 1

    def test_empty_stream(self):
        stream = EdgeStream(num_nodes=4)
        assert len(stream) == 0
        assert stream.duration == 0.0


class TestReplayStream:
    def test_replay_reconstructs_the_graph(self, medium_cluster_graph):
        stream = replay_stream(medium_cluster_graph, rng=0)
        assert len(stream) == medium_cluster_graph.num_edges
        assert stream.removals() == 0
        rebuilt = Graph(stream.num_nodes)
        for event in stream:
            assert rebuilt.add_edge(event.u, event.v)  # no duplicates
        assert rebuilt == medium_cluster_graph

    def test_replay_is_deterministic_under_a_seed(self, small_random_graph):
        first = replay_stream(small_random_graph, rng=7)
        second = replay_stream(small_random_graph, rng=7)
        assert first.events == second.events

    def test_different_seeds_shuffle_differently(self, medium_cluster_graph):
        first = replay_stream(medium_cluster_graph, rng=1)
        second = replay_stream(medium_cluster_graph, rng=2)
        assert [e.edge for e in first] != [e.edge for e in second]

    def test_timestamps_are_strictly_increasing(self, small_random_graph):
        stream = replay_stream(small_random_graph, rng=3, rate=2.0)
        times = [event.time for event in stream]
        assert all(later > earlier for earlier, later in zip(times, times[1:]))

    def test_replay_dataset_matches_manual_replay(self):
        graph = load_dataset("facebook", num_nodes=60)
        assert replay_dataset("facebook", num_nodes=60, rng=5).events == replay_stream(
            graph, rng=5
        ).events

    def test_bad_rate_rejected(self, small_random_graph):
        with pytest.raises(StreamError):
            replay_stream(small_random_graph, rng=0, rate=0.0)


class TestChurnStream:
    def test_events_are_always_valid_against_the_base_graph(self, small_random_graph):
        stream = churn_stream(small_random_graph, num_events=300, rng=11)
        live = small_random_graph.copy()
        for event in stream:
            if event.is_addition:
                assert not live.has_edge(event.u, event.v)
                live.add_edge(event.u, event.v)
            else:
                assert live.has_edge(event.u, event.v)
                live.remove_edge(event.u, event.v)

    def test_contains_both_kinds(self, small_random_graph):
        stream = churn_stream(small_random_graph, num_events=200, rng=1)
        assert stream.additions() > 0
        assert stream.removals() > 0

    def test_add_fraction_one_only_adds(self, small_random_graph):
        stream = churn_stream(small_random_graph, num_events=50, rng=2, add_fraction=1.0)
        assert stream.removals() == 0

    def test_near_complete_graph_adds_stay_valid_and_fast(self):
        # K8 minus one edge: rejection sampling for additions almost always
        # misses, so the bounded-attempt fallback must kick in and still
        # produce only valid events.
        n = 8
        edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
        graph = Graph(n, edges=edges[:-1])
        stream = churn_stream(graph, num_events=100, rng=4, add_fraction=0.9)
        live = graph.copy()
        for event in stream:
            if event.is_addition:
                assert live.add_edge(event.u, event.v)
            else:
                assert live.remove_edge(event.u, event.v)

    def test_removals_on_empty_graph_fall_back_to_additions(self):
        stream = churn_stream(Graph(5), num_events=20, rng=3, add_fraction=0.0)
        # The empty graph has nothing to remove, so the stream must begin by
        # adding; later removals are fine.
        assert stream.events[0].is_addition

    def test_bad_parameters_rejected(self, small_random_graph):
        with pytest.raises(StreamError):
            churn_stream(small_random_graph, num_events=-1, rng=0)
        with pytest.raises(StreamError):
            churn_stream(small_random_graph, num_events=10, rng=0, add_fraction=1.5)
        with pytest.raises(StreamError):
            churn_stream(Graph(1), num_events=5, rng=0)
