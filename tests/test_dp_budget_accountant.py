"""Tests for repro.dp.budget and repro.dp.accountant."""

from __future__ import annotations

import pytest

from repro.dp.accountant import PrivacyAccountant
from repro.dp.budget import DEFAULT_MAX_DEGREE_FRACTION, PrivacyBudget, split_budget
from repro.exceptions import BudgetExhaustedError, PrivacyError


class TestPrivacyBudget:
    def test_total(self):
        budget = PrivacyBudget(epsilon1=0.2, epsilon2=1.8)
        assert budget.total == pytest.approx(2.0)
        assert budget.as_tuple() == (0.2, 1.8)

    def test_from_total_uses_default_fraction(self):
        budget = PrivacyBudget.from_total(2.0)
        assert budget.epsilon1 == pytest.approx(2.0 * DEFAULT_MAX_DEGREE_FRACTION)
        assert budget.total == pytest.approx(2.0)

    def test_from_total_custom_fraction(self):
        budget = PrivacyBudget.from_total(1.0, max_degree_fraction=0.25)
        assert budget.epsilon1 == pytest.approx(0.25)
        assert budget.epsilon2 == pytest.approx(0.75)

    def test_split_budget_function(self):
        eps1, eps2 = split_budget(3.0)
        assert eps1 + eps2 == pytest.approx(3.0)

    @pytest.mark.parametrize("eps1,eps2", [(0, 1), (1, 0), (-1, 1)])
    def test_invalid_components(self, eps1, eps2):
        with pytest.raises(PrivacyError):
            PrivacyBudget(epsilon1=eps1, epsilon2=eps2)

    def test_invalid_total(self):
        with pytest.raises(PrivacyError):
            PrivacyBudget.from_total(-1.0)

    @pytest.mark.parametrize("fraction", [0, 1, 1.5])
    def test_invalid_fraction(self, fraction):
        with pytest.raises(PrivacyError):
            PrivacyBudget.from_total(1.0, max_degree_fraction=fraction)


class TestPrivacyAccountant:
    def test_spend_and_remaining(self):
        accountant = PrivacyAccountant(total_budget=2.0)
        accountant.spend(0.5, "max")
        accountant.spend(1.0, "perturb")
        assert accountant.spent == pytest.approx(1.5)
        assert accountant.remaining == pytest.approx(0.5)

    def test_exhaustion_rejected(self):
        accountant = PrivacyAccountant(total_budget=1.0)
        accountant.spend(0.9)
        with pytest.raises(BudgetExhaustedError):
            accountant.spend(0.2)

    def test_exact_budget_allowed(self):
        accountant = PrivacyAccountant(total_budget=1.0)
        accountant.spend(0.1)
        accountant.spend(0.9)
        assert accountant.remaining == pytest.approx(0.0)

    def test_ledger_and_by_label(self):
        accountant = PrivacyAccountant()
        accountant.spend(0.1, "max")
        accountant.spend(0.2, "max")
        accountant.spend(0.3, "perturb")
        assert accountant.ledger() == [("max", 0.1), ("max", 0.2), ("perturb", 0.3)]
        assert accountant.by_label()["max"] == pytest.approx(0.3)

    def test_infinite_budget_never_refuses(self):
        accountant = PrivacyAccountant()
        for _ in range(100):
            accountant.spend(10.0)
        assert accountant.spent == pytest.approx(1000.0)

    def test_invalid_spend(self):
        with pytest.raises(PrivacyError):
            PrivacyAccountant().spend(0)

    def test_invalid_total(self):
        with pytest.raises(PrivacyError):
            PrivacyAccountant(total_budget=0)
