"""Tests for the experiment registry and the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.exceptions import ExperimentError
from repro.experiments.specs import EXPERIMENTS, get_experiment, list_experiments


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {
            "table2", "table3", "table4", "table5",
            "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
        }
        assert expected <= set(EXPERIMENTS)
        # Everything beyond the paper's artefacts must be marked an extension.
        for name in set(EXPERIMENTS) - expected:
            assert EXPERIMENTS[name].paper_artifact == "(extension)"

    def test_lookup_case_insensitive(self):
        assert get_experiment("FIG5").name == "fig5"

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_list_matches_registry(self):
        assert list_experiments() == list(EXPERIMENTS)

    def test_specs_name_modules(self):
        for spec in EXPERIMENTS.values():
            assert spec.modules
            assert spec.paper_artifact.startswith(("Table", "Figure", "(extension)"))

    def test_spec_run_returns_report(self):
        report = get_experiment("table2").run()
        assert report.rows


class TestCli:
    def test_parser_flags(self):
        parser = build_parser()
        args = parser.parse_args(["fig5", "--num-nodes", "50", "--trials", "1"])
        assert args.experiment == "fig5"
        assert args.num_nodes == 50

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table4" in output and "fig11" in output

    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        assert "CARGO" in capsys.readouterr().out

    def test_table4_with_overrides(self, capsys):
        assert main(["table4", "--num-nodes", "80"]) == 0
        output = capsys.readouterr().out
        assert "facebook" in output

    def test_unknown_experiment_fails(self, capsys):
        assert main(["fig99"]) == 1
        assert "error" in capsys.readouterr().err

    def test_epsilon_override_on_sweep(self, capsys):
        assert main(["fig9", "--num-nodes", "80"]) == 0
        assert "Project" in capsys.readouterr().out
