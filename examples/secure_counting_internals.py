"""A look inside CARGO's secure triangle counting.

This example walks through the cryptographic pipeline step by step on a tiny
graph so the intermediate objects fit on screen: sharing the adjacency rows,
multiplying three shared bits with a multiplication group (Theorem 1), and
verifying that neither server's view reveals anything about the edges.

Run with::

    python examples/secure_counting_internals.py
"""

from __future__ import annotations

import numpy as np

from repro.core.counting import FaithfulTriangleCounter, share_adjacency_rows
from repro.core.fast_counting import MatrixTriangleCounter
from repro.crypto.multiplication_groups import MultiplicationGroupDealer
from repro.crypto.secure_ops import secure_multiply_triple
from repro.crypto.sharing import reconstruct, share_scalar
from repro.crypto.views import ViewRecorder
from repro.graph.graph import Graph
from repro.graph.triangles import count_triangles


def main() -> None:
    # The paper's running example: two triangles sharing the edge (3, 4).
    graph = Graph(5, edges=[(0, 3), (0, 4), (1, 3), (1, 4), (3, 4)])
    print(f"graph edges: {graph.edge_list()}")
    print(f"exact triangle count: {count_triangles(graph)}\n")

    # --- Step 1: each user secret-shares her adjacency bit vector -------- #
    rows = graph.adjacency_matrix()
    share1, share2 = share_adjacency_rows(rows, rng=0)
    print("user 3's true bit vector :", rows[3].tolist())
    print("share sent to server S1  :", [hex(int(x))[:8] + "…" for x in share1[3][:5]])
    print("share sent to server S2  :", [hex(int(x))[:8] + "…" for x in share2[3][:5]])
    print("(each share alone is a uniformly random ring element)\n")

    # --- Step 2: multiply three shared bits with one multiplication group #
    dealer = MultiplicationGroupDealer(seed=1)
    views = ViewRecorder()
    a = share_scalar(1, rng=2)   # a_{0,3}
    b = share_scalar(1, rng=3)   # a_{0,4}
    c = share_scalar(1, rng=4)   # a_{3,4}
    s1, s2 = secure_multiply_triple(
        (a.share1, a.share2), (b.share1, b.share2), (c.share1, c.share2),
        dealer.scalar_group(), views=views,
    )
    print("three-way product of the shared bits a_03 * a_04 * a_34:")
    print("  S1's output share :", s1)
    print("  S2's output share :", s2)
    print("  reconstruction    :", reconstruct(s1, s2), "(1 = the triple forms a triangle)")
    print("  S1 observed only  :", [f"{v:x}"[:8] + "…" for v in views.view(1).values()[0]], "\n")

    # --- Step 3: the full secure count, both backends -------------------- #
    faithful = FaithfulTriangleCounter(batch_size=16).count(rows, rng=5)
    matrix = MatrixTriangleCounter().count(rows, rng=6)
    print("faithful per-triple protocol:",
          f"shares ({faithful.share1}, {faithful.share2}) ->", faithful.reconstruct())
    print("matrix backend              :",
          f"shares ({matrix.share1}, {matrix.share2}) ->", matrix.reconstruct())
    print("\nBoth backends reconstruct the exact count; individually the shares")
    print("are meaningless, which is what lets two untrusted servers cooperate.")


if __name__ == "__main__":
    main()
