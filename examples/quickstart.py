"""Quickstart: privately count triangles in a social graph with CARGO.

Run with::

    python examples/quickstart.py

Set ``REPRO_EXAMPLES_FAST=1`` to shrink the graph for a seconds-long smoke
run (this is what the CI examples job does).  The script loads the synthetic stand-in for the SNAP Facebook graph, runs the
full CARGO protocol (Max -> Project -> Count -> Perturb) at a total privacy
budget of epsilon = 2, and compares the differentially private estimate with
the exact count and with the central/local baselines.
"""

from __future__ import annotations

import os

from repro import (
    Cargo,
    CargoConfig,
    CentralLaplaceTriangleCounting,
    LocalTwoRoundsTriangleCounting,
    count_triangles,
    load_dataset,
)


def main() -> None:
    # A 400-node synthetic graph matching the Facebook ego-network's shape
    # (heavy-tailed degrees, strong clustering).  Increase num_nodes (or use
    # scale=1.0) for a paper-scale run.
    fast = os.environ.get("REPRO_EXAMPLES_FAST") == "1"
    graph = load_dataset("facebook", num_nodes=80 if fast else 400)
    true_count = count_triangles(graph)
    print(f"graph: {graph.num_nodes} users, {graph.num_edges} edges, "
          f"{true_count} triangles, max degree {graph.max_degree()}")

    epsilon = 2.0

    # --- CARGO: crypto-assisted DP, no trusted server -------------------- #
    cargo_result = Cargo(CargoConfig(epsilon=epsilon, seed=7)).run(graph)
    print("\nCARGO (two untrusted servers, epsilon-Edge DDP)")
    print(f"  noisy count      : {cargo_result.noisy_triangle_count:,.1f}")
    print(f"  relative error   : {cargo_result.relative_error:.4%}")
    print(f"  noisy max degree : {cargo_result.noisy_max_degree:.1f}")
    print(f"  count phase time : {cargo_result.timings['count']:.3f}s "
          f"of {cargo_result.timings['total']:.3f}s total")

    # --- Central baseline: needs a trusted server ------------------------ #
    central = CentralLaplaceTriangleCounting(epsilon=epsilon).run(graph, rng=7)
    print("\nCentralLap (trusted server, epsilon-Edge CDP)")
    print(f"  noisy count      : {central.noisy_triangle_count:,.1f}")
    print(f"  relative error   : {central.relative_error:.4%}")

    # --- Local baseline: no trusted server, much more noise -------------- #
    local = LocalTwoRoundsTriangleCounting(epsilon=epsilon).run(graph, rng=7)
    print("\nLocal2Rounds (no server trust, epsilon-Edge LDP)")
    print(f"  noisy count      : {local.noisy_triangle_count:,.1f}")
    print(f"  relative error   : {local.relative_error:.4%}")

    print("\nCARGO achieves near-central accuracy without trusting any server.")


if __name__ == "__main__":
    main()
