"""One pipeline, many statistics: the generalised private counting engine.

CARGO's architecture — private Max, similarity projection, secure Count on
secret shares, calibrated noise — is statistic-agnostic.  This example runs
the *same* two-server protocol over every built-in subgraph statistic
(triangles, wedges, k-stars, 4-cycles), compares each private release with
the brute-force ground truth, and finishes with the derived clustering
coefficient composed through the privacy accountant.

Run with::

    python examples/subgraph_statistics.py

Set ``REPRO_EXAMPLES_FAST=1`` for a smaller graph (the CI examples job
does).
"""

from __future__ import annotations

import os

from repro import (
    Cargo,
    CargoConfig,
    ClusteringCoefficientRelease,
    available_statistics,
    load_dataset,
)


def main() -> None:
    fast = os.environ.get("REPRO_EXAMPLES_FAST") == "1"
    graph = load_dataset("facebook", num_nodes=60 if fast else 200)
    print(
        f"graph: {graph.num_nodes} users, {graph.num_edges} edges, "
        f"max degree {graph.max_degree()}"
    )
    print(f"registered statistics: {', '.join(available_statistics())}\n")

    epsilon = 2.0
    print(f"{'statistic':<10} | {'true count':>12} | {'private estimate':>16} | {'rel. error':>10}")
    print("-" * 60)
    for statistic in ("triangles", "wedges", "kstars", "4cycles"):
        config = CargoConfig(
            epsilon=epsilon,
            seed=7,
            statistic=statistic,
            star_k=3,  # only the kstars row reads this (3-stars)
        )
        result = Cargo(config).run(graph)
        error = abs(result.noisy_count - result.true_count) / max(result.true_count, 1)
        print(
            f"{statistic:<10} | {result.true_count:>12,} | "
            f"{result.noisy_count:>16,.1f} | {error:>10.2%}"
        )

    # A derived release: clustering coefficient = 3T / W, with the triangle
    # and wedge budgets composed through the privacy accountant.
    release = ClusteringCoefficientRelease(epsilon=2 * epsilon, seed=7).run(graph)
    print(
        f"\nclustering coefficient: private {release.value:.4f} "
        f"vs exact {release.exact_value:.4f} "
        f"(total epsilon {release.epsilon:.1f} across {len(release.ledger)} spends)"
    )

    print("\nEvery row above ran the identical Max -> Project -> Count -> Perturb")
    print("pipeline; only the statistic object (kernel + sensitivity + geometry)")
    print("changed.  Register your own with repro.stats.register_statistic.")


if __name__ == "__main__":
    main()
