"""Private clustering-coefficient estimation for a collaboration network.

Triangle counting is rarely the end goal — the paper's introduction motivates
it through downstream statistics such as the clustering coefficient and the
transitivity ratio.  This example shows how an analyst would estimate the
*global clustering coefficient* (transitivity) of a collaboration network
when the triangle count must be released under differential privacy while
the wedge count (a low-sensitivity degree statistic) is released with a
standard Laplace mechanism.

Run with::

    python examples/clustering_coefficient.py

Set ``REPRO_EXAMPLES_FAST=1`` for a smaller graph (the CI examples job
does).
"""

from __future__ import annotations

import os

from repro import Cargo, CargoConfig, ClusteringCoefficientRelease, LaplaceMechanism, load_dataset
from repro.graph.statistics import global_clustering_coefficient


def private_transitivity(graph, epsilon: float, seed: int) -> float:
    """Estimate 3*T / (#wedges) with a DP triangle count and DP wedge count."""
    # Spend 80% of the budget on the (high-sensitivity) triangle count and the
    # remaining 20% on the wedge count, whose Edge-DP sensitivity is at most
    # 2 * d_max (one edge joins/leaves at most d_u - 1 + d_v - 1 wedges).
    triangle_epsilon = 0.8 * epsilon
    wedge_epsilon = 0.2 * epsilon

    cargo = Cargo(CargoConfig(epsilon=triangle_epsilon, seed=seed))
    triangle_result = cargo.run(graph)

    wedges = sum(d * (d - 1) // 2 for d in graph.degrees())
    wedge_sensitivity = 2.0 * max(graph.max_degree(), 1)
    wedge_mechanism = LaplaceMechanism(epsilon=wedge_epsilon, sensitivity=wedge_sensitivity)
    noisy_wedges = max(wedge_mechanism.randomize(float(wedges), rng=seed), 1.0)

    return 3.0 * triangle_result.noisy_triangle_count / noisy_wedges


def main() -> None:
    fast = os.environ.get("REPRO_EXAMPLES_FAST") == "1"
    graph = load_dataset("astroph", num_nodes=80 if fast else 400)
    exact = global_clustering_coefficient(graph)
    print(f"collaboration graph: {graph.num_nodes} researchers, {graph.num_edges} co-authorships")
    print(f"exact transitivity : {exact:.4f}\n")

    for epsilon in (0.5, 1.0, 2.0, 4.0):
        estimate = private_transitivity(graph, epsilon, seed=11)
        error = abs(estimate - exact) / exact
        print(f"epsilon = {epsilon:>3}: private transitivity = {estimate:.4f} "
              f"(relative error {error:.2%})")

    # The hand-rolled budget split above is now a library citizen: the
    # derived release composes the triangle and wedge statistics through
    # the privacy accountant, both via the full two-server pipeline.
    release = ClusteringCoefficientRelease(epsilon=4.0, seed=11).run(graph)
    print(f"\nClusteringCoefficientRelease(epsilon=4.0): {release.value:.4f} "
          f"(exact {release.exact_value:.4f})")
    for label, spent in release.ledger:
        print(f"  accountant: {label:<22} epsilon = {spent:.2f}")

    print("\nEven at moderate budgets the CARGO-based estimate tracks the exact")
    print("clustering coefficient closely, with no trusted curator involved.")


if __name__ == "__main__":
    main()
