"""Comparing graph-projection strategies (the paper's Figures 9 and 10).

Graph projection bounds every user's degree so the triangle query's
sensitivity drops from O(n) to O(theta) — but deleting edges also deletes
triangles.  This example measures the *projection loss* of CARGO's
similarity-based `Project` against the random edge deletion used by the LDP
baseline, across a range of degree bounds, on two synthetic SNAP stand-ins.

Run with::

    python examples/projection_strategies.py

Set ``REPRO_EXAMPLES_FAST=1`` for a smaller graph (the CI examples job
does).
"""

from __future__ import annotations

import os

from repro import RandomProjection, SimilarityProjection, count_triangles, load_dataset
from repro.core.projection import projected_triangle_count


def survival_rate(graph, projector, rng=None) -> float:
    """Fraction of the graph's triangles that survive the projection."""
    true_count = count_triangles(graph)
    if true_count == 0:
        return 1.0
    if isinstance(projector, RandomProjection):
        result = projector.project_graph(graph, rng=rng)
    else:
        result = projector.project_graph(graph)
    return projected_triangle_count(result.projected_rows) / true_count


def main() -> None:
    for dataset in ("facebook", "wiki"):
        fast = os.environ.get("REPRO_EXAMPLES_FAST") == "1"
        graph = load_dataset(dataset, num_nodes=80 if fast else 400)
        print(f"\n{dataset}: {graph.num_nodes} nodes, {graph.num_edges} edges, "
              f"{count_triangles(graph)} triangles, d_max = {graph.max_degree()}")
        print(f"{'theta':>6} | {'similarity Project':>19} | {'random GraphProjection':>22}")
        print("-" * 55)
        for theta in (10, 25, 50, 100, 200):
            similarity = survival_rate(graph, SimilarityProjection(theta))
            random_rate = survival_rate(graph, RandomProjection(theta), rng=0)
            print(f"{theta:>6} | {similarity:>18.1%} | {random_rate:>21.1%}")

    print("\nSimilarity-based projection keeps more triangles at every degree")
    print("bound, and the advantage widens as theta approaches the true maximum")
    print("degree — the behaviour the paper reports in Figures 9 and 10.")


if __name__ == "__main__":
    main()
