"""Privacy-utility trade-off across the three trust models (Figures 5 and 6).

Sweeps the privacy budget and reports the relative error of CARGO against the
central (trusted-server) and local (two-round LDP) baselines on one dataset,
averaged over repeated runs — a console version of the paper's Figures 5/6.

Run with::

    python examples/privacy_utility_tradeoff.py

Set ``REPRO_EXAMPLES_FAST=1`` for a smaller graph and fewer trials (the CI
examples job does).
"""

from __future__ import annotations

import os

from repro import (
    Cargo,
    CargoConfig,
    CentralLaplaceTriangleCounting,
    LocalTwoRoundsTriangleCounting,
    load_dataset,
    relative_error,
)
from repro.metrics.aggregate import aggregate_trials


def mean_relative_error(run_trial, num_trials: int = 3) -> float:
    """Average the relative error of a protocol over independent trials."""
    values = []
    for seed in range(num_trials):
        result = run_trial(seed)
        values.append(relative_error(result.true_triangle_count, result.noisy_triangle_count))
    return aggregate_trials(values).mean


def main() -> None:
    fast = os.environ.get("REPRO_EXAMPLES_FAST") == "1"
    graph = load_dataset("wiki", num_nodes=60 if fast else 300)
    print(f"wiki stand-in: {graph.num_nodes} users, {graph.num_edges} edges\n")
    print(f"{'epsilon':>8} | {'Local2Rounds':>13} | {'CARGO':>10} | {'CentralLap':>11}")
    print("-" * 52)

    num_trials = 2 if fast else 3
    for epsilon in (0.5, 1.0, 2.0, 3.0):
        local = mean_relative_error(
            lambda seed: LocalTwoRoundsTriangleCounting(epsilon=epsilon).run(graph, rng=seed),
            num_trials=num_trials,
        )
        cargo = mean_relative_error(
            lambda seed: Cargo(CargoConfig(epsilon=epsilon, seed=seed)).run(graph),
            num_trials=num_trials,
        )
        central = mean_relative_error(
            lambda seed: CentralLaplaceTriangleCounting(epsilon=epsilon).run(graph, rng=seed),
            num_trials=num_trials,
        )
        print(f"{epsilon:>8} | {local:>13.3f} | {cargo:>10.4f} | {central:>11.5f}")

    print("\nCARGO's error sits orders of magnitude below the local model and")
    print("within a small factor of the central model — without a trusted server.")


if __name__ == "__main__":
    main()
