"""Distributed Laplace noise via Gamma differences (Lemma 1 of the paper).

A ``Lap(λ)`` random variable is infinitely divisible: it equals the sum over
``i = 1..n`` of independent ``Gamma(1/n, λ) - Gamma(1/n, λ)`` differences.
CARGO exploits this so that each of the ``n`` users contributes one small
partial noise ``γ_i``; no individual γ_i provides meaningful protection, but
their sum is exactly the Laplace noise a central server would have added.

The module provides both the per-user sampling primitive
(:func:`sample_partial_noise`) and :class:`DistributedLaplaceNoise`, which
encapsulates the scale computation (``λ = sensitivity / ε2``) used in
Algorithm 5, plus fixed-point encoding so the noise can be carried inside the
integer ring used by the secret-sharing layer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.exceptions import PrivacyError
from repro.utils.rng import RandomState, derive_rng

try:  # SciPy is optional; the stacked inverse-CDF path is gated on it.
    from scipy.special import gammaincinv as _gammaincinv
except ImportError:  # pragma: no cover - exercised only without scipy
    _gammaincinv = None

#: Number of fractional bits used to embed real-valued noise in the ring.
DEFAULT_FIXED_POINT_BITS = 16


def stacked_noise_supported() -> bool:
    """Whether the loop-free inverse-CDF noise plane is available (SciPy).

    Setting ``REPRO_FORCE_PER_USER_NOISE=1`` forces the per-user rejection
    sampler even when SciPy is installed — used to exercise the fallback
    path and to reproduce runs from SciPy-less environments.
    """
    if os.environ.get("REPRO_FORCE_PER_USER_NOISE", "").strip() not in ("", "0"):
        return False
    return _gammaincinv is not None


def sample_partial_noise(
    num_users: int, scale: float, rng: RandomState = None
) -> float:
    """One user's partial noise ``Gamma(1/n, λ) - Gamma(1/n, λ)``.

    Parameters
    ----------
    num_users:
        Total number of contributing users ``n`` (the shape parameter of each
        Gamma is ``1/n``).
    scale:
        The Laplace scale ``λ`` the aggregated noise must achieve.
    """
    if num_users <= 0:
        raise PrivacyError(f"num_users must be positive, got {num_users}")
    if scale <= 0:
        raise PrivacyError(f"scale must be positive, got {scale}")
    generator = derive_rng(rng)
    gamma1 = generator.gamma(shape=1.0 / num_users, scale=scale)
    gamma2 = generator.gamma(shape=1.0 / num_users, scale=scale)
    return float(gamma1 - gamma2)


def sample_partial_noises(
    num_users: int, scale: float, rng: RandomState = None
) -> np.ndarray:
    """All ``n`` users' partial noises at once (vectorised convenience)."""
    if num_users <= 0:
        raise PrivacyError(f"num_users must be positive, got {num_users}")
    if scale <= 0:
        raise PrivacyError(f"scale must be positive, got {scale}")
    generator = derive_rng(rng)
    gamma1 = generator.gamma(shape=1.0 / num_users, scale=scale, size=num_users)
    gamma2 = generator.gamma(shape=1.0 / num_users, scale=scale, size=num_users)
    return gamma1 - gamma2


def sample_partial_noises_from_uniforms(
    num_users: int, scale: float, u1: np.ndarray, u2: np.ndarray
) -> np.ndarray:
    """The whole noise plane ``γ_i = Gamma(1/n, λ) - Gamma(1/n, λ)`` at once.

    Inverse-CDF sampling: if ``U ~ Uniform[0, 1)`` then
    ``scale * gammaincinv(1/n, U) ~ Gamma(1/n, scale)`` exactly, so each
    user's partial noise is a pure function of her two uniforms — which is
    what lets the caller derive them from per-user substreams while sampling
    the whole plane in one stacked call.  Requires SciPy
    (:func:`stacked_noise_supported`); callers fall back to the per-user
    rejection sampler when it is absent.
    """
    if num_users <= 0:
        raise PrivacyError(f"num_users must be positive, got {num_users}")
    if scale <= 0:
        raise PrivacyError(f"scale must be positive, got {scale}")
    if _gammaincinv is None:
        raise PrivacyError(
            "stacked noise sampling requires scipy; use sample_partial_noise per user"
        )
    shape = 1.0 / num_users
    gamma1 = scale * _gammaincinv(shape, np.asarray(u1, dtype=np.float64))
    gamma2 = scale * _gammaincinv(shape, np.asarray(u2, dtype=np.float64))
    return gamma1 - gamma2


@dataclass(frozen=True)
class DistributedLaplaceNoise:
    """Distributed-noise configuration for CARGO's `Perturb` step.

    Parameters
    ----------
    epsilon:
        The perturbation budget ε2.
    sensitivity:
        The (noisy-max-degree) sensitivity of the projected triangle count.
    num_users:
        Number of users contributing partial noise.
    fixed_point_bits:
        Number of fractional bits used when embedding the real-valued partial
        noise into the secret-sharing ring.  The reconstructed aggregate is
        decoded with the same factor, so the only error introduced is a
        rounding error of at most ``n * 2^{-fixed_point_bits - 1}``.
    """

    epsilon: float
    sensitivity: float
    num_users: int
    fixed_point_bits: int = DEFAULT_FIXED_POINT_BITS

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise PrivacyError(f"epsilon must be positive, got {self.epsilon}")
        if self.sensitivity <= 0:
            raise PrivacyError(f"sensitivity must be positive, got {self.sensitivity}")
        if self.num_users <= 0:
            raise PrivacyError(f"num_users must be positive, got {self.num_users}")
        if self.fixed_point_bits < 0:
            raise PrivacyError(
                f"fixed_point_bits must be non-negative, got {self.fixed_point_bits}"
            )

    @property
    def scale(self) -> float:
        """The aggregated Laplace scale ``λ = sensitivity / epsilon``."""
        return self.sensitivity / self.epsilon

    @property
    def aggregate_variance(self) -> float:
        """Variance ``2 λ^2`` of the aggregated (Laplace) noise."""
        return 2.0 * self.scale**2

    @property
    def fixed_point_factor(self) -> int:
        """Multiplier ``2^fixed_point_bits`` used for ring encoding."""
        return 1 << self.fixed_point_bits

    def sample_user_noise(self, rng: RandomState = None) -> float:
        """One user's real-valued partial noise γ_i."""
        return sample_partial_noise(self.num_users, self.scale, rng)

    def sample_all_noises(self, rng: RandomState = None) -> np.ndarray:
        """All users' partial noises (used by the vectorised protocol path)."""
        return sample_partial_noises(self.num_users, self.scale, rng)

    def sample_noises_from_uniforms(self, u1: np.ndarray, u2: np.ndarray) -> np.ndarray:
        """All users' partial noises from per-user uniforms (inverse CDF)."""
        return sample_partial_noises_from_uniforms(self.num_users, self.scale, u1, u2)

    def encode_array(self, noises: np.ndarray) -> np.ndarray:
        """Fixed-point encode a stacked noise plane (element-wise ``encode``)."""
        return np.rint(np.asarray(noises, dtype=np.float64) * self.fixed_point_factor).astype(np.int64)

    def encode(self, noise: float) -> int:
        """Fixed-point encode a real-valued noise for the sharing ring."""
        return int(round(noise * self.fixed_point_factor))

    def decode(self, encoded: int) -> float:
        """Decode an aggregated fixed-point value back to a real number."""
        return encoded / self.fixed_point_factor
