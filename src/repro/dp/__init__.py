"""Differential privacy substrate.

Provides the noise mechanisms, budget accounting, and sensitivity analysis
the CARGO protocol and its baselines rely on:

* :mod:`repro.dp.mechanisms` — Laplace, geometric, and randomized-response
  mechanisms,
* :mod:`repro.dp.gamma_noise` — the difference-of-Gamma partial noise whose
  sum over ``n`` users is a Laplace random variable (infinite divisibility,
  Lemma 1),
* :mod:`repro.dp.budget` — privacy budget objects and the ε1/ε2 split,
* :mod:`repro.dp.accountant` — simple sequential-composition accounting,
* :mod:`repro.dp.sensitivity` — global/local sensitivity of degree and
  triangle queries under Edge DP and Node DP,
* :mod:`repro.dp.smooth_sensitivity` — smooth sensitivity and residual
  sensitivity of triangle counting (the Table III comparison).
"""

from repro.dp.auditing import (
    AuditResult,
    audit_mechanism,
    audit_randomized_response,
    epsilon_lower_bound_from_samples,
)
from repro.dp.budget import PrivacyBudget, split_budget
from repro.dp.accountant import PrivacyAccountant
from repro.dp.gamma_noise import (
    DistributedLaplaceNoise,
    sample_partial_noise,
    sample_partial_noises,
)
from repro.dp.mechanisms import (
    GeometricMechanism,
    LaplaceMechanism,
    RandomizedResponse,
)
from repro.dp.sensitivity import (
    degree_sensitivity_edge_dp,
    degree_sensitivity_node_dp,
    triangle_sensitivity_edge_dp,
    triangle_sensitivity_node_dp,
)
from repro.dp.smooth_sensitivity import (
    local_sensitivity_triangles,
    residual_sensitivity_triangles,
    smooth_sensitivity_triangles,
)

__all__ = [
    "AuditResult",
    "audit_mechanism",
    "audit_randomized_response",
    "epsilon_lower_bound_from_samples",
    "PrivacyBudget",
    "split_budget",
    "PrivacyAccountant",
    "DistributedLaplaceNoise",
    "sample_partial_noise",
    "sample_partial_noises",
    "LaplaceMechanism",
    "GeometricMechanism",
    "RandomizedResponse",
    "degree_sensitivity_edge_dp",
    "degree_sensitivity_node_dp",
    "triangle_sensitivity_edge_dp",
    "triangle_sensitivity_node_dp",
    "local_sensitivity_triangles",
    "residual_sensitivity_triangles",
    "smooth_sensitivity_triangles",
]
