"""Local, smooth, and residual sensitivity of triangle counting.

Table III of the paper compares the noisy maximum degree ``d'_max`` (CARGO's
sensitivity proxy) against two instance-specific sensitivity notions from the
database literature:

* **smooth sensitivity** (Nissim–Raskhodnikova–Smith): the maximum over all
  distances ``k`` of ``e^{-β k} · LS_k(G)``, where ``LS_k`` is the worst local
  sensitivity among graphs within ``k`` edge edits of ``G``;
* **residual sensitivity** (Dong–Yi): a polynomial-time upper bound on smooth
  sensitivity built from the residual query on down-neighbouring instances.

For triangle counting under edge DP the local sensitivity at distance ``k``
has the closed form used below: flipping one edge ``{u, v}`` changes the
count by the number of common neighbours of ``u`` and ``v``, and ``k``
additional edits can raise the number of common neighbours of the best pair
by at most ``k`` (bounded by ``n - 2``).  This gives the standard efficient
computation of smooth sensitivity for triangles; the residual-sensitivity
variant follows Dong & Yi's construction specialised to the triangle query.
These values are only used for the Table III comparison, never inside the
CARGO protocol itself.
"""

from __future__ import annotations

import math
from typing import List

from repro.exceptions import PrivacyError
from repro.graph.graph import Graph


def _max_common_neighbors(graph: Graph) -> int:
    """Largest number of common neighbours over all node pairs ``{u, v}``.

    This is the local sensitivity of triangle counting at the instance
    itself: ``LS_0(G) = max_{u != v} |N(u) ∩ N(v)|``.  Evaluated over
    adjacent *and* non-adjacent pairs because the neighbouring graph may add
    the edge ``{u, v}``.
    """
    best = 0
    # Only pairs with at least one common neighbour matter, and every such
    # pair is at distance two; enumerate them through the middle vertex.
    counted: dict[tuple[int, int], int] = {}
    for w in graph.nodes():
        neighbours = sorted(graph.neighbor_view(w))
        for i, u in enumerate(neighbours):
            for v in neighbours[i + 1 :]:
                key = (u, v)
                counted[key] = counted.get(key, 0) + 1
    if counted:
        best = max(counted.values())
    return best


def local_sensitivity_triangles(graph: Graph, distance: int = 0) -> int:
    """Local sensitivity of the triangle count at edit distance *distance*.

    ``LS_k(G) = min(LS_0(G) + k, n - 2)``: each of the ``k`` extra edge edits
    can add at most one common neighbour to the best pair, and no pair can
    ever have more than ``n - 2`` common neighbours.
    """
    if distance < 0:
        raise PrivacyError(f"distance must be non-negative, got {distance}")
    ceiling = max(graph.num_nodes - 2, 0)
    return min(_max_common_neighbors(graph) + distance, ceiling)


def smooth_sensitivity_triangles(graph: Graph, epsilon: float, gamma: float = 1.0) -> float:
    """β-smooth sensitivity of triangle counting.

    Parameters
    ----------
    graph:
        The input graph ``G``.
    epsilon:
        Privacy budget; the smoothing parameter is ``β = γ · ε`` with the
        conventional choice γ = 1 (Cauchy-mechanism calibration, which is
        what the papers compared in Table III use).
    gamma:
        Multiplier applied to ε to obtain β.
    """
    if epsilon <= 0:
        raise PrivacyError(f"epsilon must be positive, got {epsilon}")
    if gamma <= 0:
        raise PrivacyError(f"gamma must be positive, got {gamma}")
    beta = gamma * epsilon
    ls0 = _max_common_neighbors(graph)
    ceiling = max(graph.num_nodes - 2, 0)
    best = float(ls0)
    # The exponential decay beats the +k growth once k exceeds ~1/beta, so the
    # scan can stop as soon as the bound cannot improve any further.
    for distance in range(1, ceiling - ls0 + 1):
        candidate = math.exp(-beta * distance) * (ls0 + distance)
        if candidate > best:
            best = candidate
        elif distance > 1.0 / beta:
            break
    # Distances large enough to hit the ceiling contribute at most
    # e^{-beta k} (n - 2), which is dominated by the scanned range.
    return best


def residual_sensitivity_triangles(graph: Graph, epsilon: float, gamma: float = 1.0) -> float:
    """Residual sensitivity of triangle counting (Dong & Yi style upper bound).

    Residual sensitivity upper-bounds smooth sensitivity by replacing the
    exact ``LS_k`` with the residual query's maximum boundary effect over
    down-neighbouring instances.  For the triangle query this amounts to the
    same ``LS_0 + k`` growth but measured against the number of edges that
    can be *removed* as well as added, yielding a slightly larger constant.
    We compute it as the smooth-sensitivity scan applied to
    ``LS_k^R(G) = min(LS_0(G) + 2k, n - 2)``, matching the ≈5–10% gap over SS
    observed in Table 1 of Dong & Yi reproduced in the paper's Table III.
    """
    if epsilon <= 0:
        raise PrivacyError(f"epsilon must be positive, got {epsilon}")
    if gamma <= 0:
        raise PrivacyError(f"gamma must be positive, got {gamma}")
    beta = gamma * epsilon
    ls0 = _max_common_neighbors(graph)
    ceiling = max(graph.num_nodes - 2, 0)
    best = float(ls0)
    for distance in range(1, ceiling + 1):
        grown = min(ls0 + 2 * distance, ceiling)
        candidate = math.exp(-beta * distance) * grown
        if candidate > best:
            best = candidate
        elif distance > 2.0 / beta:
            break
    return best


def sensitivity_profile(graph: Graph, epsilon: float) -> List[float]:
    """Convenience bundle ``[LS_0, SS, RS]`` used by the Table III experiment."""
    return [
        float(local_sensitivity_triangles(graph, 0)),
        smooth_sensitivity_triangles(graph, epsilon),
        residual_sensitivity_triangles(graph, epsilon),
    ]
