"""Sensitivity analysis for graph queries under Edge DP and Node DP.

CARGO's privacy argument rests on two sensitivities:

* the **degree query** used by `Max` has Edge-LDP sensitivity 1, because the
  paper treats the two directions of an edge as different secrets, so a
  change in one edge changes exactly one reported degree by one
  (Theorem 3);
* the **triangle count** on a degree-``θ``-bounded graph has Edge-DP global
  sensitivity ``θ`` (flipping one edge ``{u, v}`` changes only triangles that
  contain both ``u`` and ``v``, of which there are at most
  ``min(d_u, d_v) - 1 <= θ`` in a θ-bounded graph); without projection the
  sensitivity is ``n - 2``.

The Node-DP variants (Section III-B "Extension to Node DP") are included for
the extension API: a node change can affect ``n - 1`` degrees and up to
``C(θ, 2)`` triangles.
"""

from __future__ import annotations

from repro.exceptions import PrivacyError


def degree_sensitivity_edge_dp() -> int:
    """Edge-LDP sensitivity of a single user's degree query (always 1)."""
    return 1


def degree_sensitivity_node_dp(num_nodes: int) -> int:
    """Node-DP sensitivity of the degree-set query: one node can shift n-1 degrees."""
    if num_nodes < 1:
        raise PrivacyError(f"num_nodes must be at least 1, got {num_nodes}")
    return num_nodes - 1


def triangle_sensitivity_edge_dp(max_degree: float) -> float:
    """Edge-DP global sensitivity of triangle counting on a degree-bounded graph.

    Parameters
    ----------
    max_degree:
        The degree bound θ (CARGO uses the noisy maximum degree ``d'_max``).
        Adding or removing one edge ``{u, v}`` changes the count by at most
        the number of common neighbours of ``u`` and ``v``, which is at most
        the degree bound.
    """
    if max_degree < 0:
        raise PrivacyError(f"max_degree must be non-negative, got {max_degree}")
    return max(float(max_degree), 1.0)


def triangle_sensitivity_unbounded(num_nodes: int) -> int:
    """Edge-DP sensitivity of triangle counting without projection: ``n - 2``."""
    if num_nodes < 2:
        return 0
    return num_nodes - 2


def triangle_sensitivity_node_dp(max_degree: float) -> float:
    """Node-DP sensitivity of triangle counting on a degree-bounded graph.

    Removing a node of degree at most θ destroys at most ``C(θ, 2)``
    triangles (every pair of its neighbours), which is the bound the paper's
    Node-DP extension uses.
    """
    if max_degree < 0:
        raise PrivacyError(f"max_degree must be non-negative, got {max_degree}")
    bounded = float(max_degree)
    return max(bounded * (bounded - 1.0) / 2.0, 1.0)
