"""Privacy budget objects and the CARGO ε1/ε2 split.

The overall CARGO protocol spends ``ε = ε1 + ε2``: ``ε1`` on the private
maximum-degree estimate (Algorithm 2, `Max`) and ``ε2`` on perturbing the
triangle count (Algorithm 5, `Perturb`).  The paper's default split is
``ε1 = 0.1 ε`` and ``ε2 = 0.9 ε`` because the triangle count needs much more
budget than the auxiliary degree estimate (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.exceptions import PrivacyError

#: Default fraction of the total budget spent on the maximum-degree estimate.
DEFAULT_MAX_DEGREE_FRACTION = 0.1


@dataclass(frozen=True)
class PrivacyBudget:
    """An (ε1, ε2) budget pair for one CARGO execution.

    ``epsilon1`` protects the degree publication in `Max`; ``epsilon2``
    protects the triangle count in `Perturb`.  ``total`` is their sum, the
    ε reported on the x-axis of Figures 5 and 6.
    """

    epsilon1: float
    epsilon2: float

    def __post_init__(self) -> None:
        if self.epsilon1 <= 0:
            raise PrivacyError(f"epsilon1 must be positive, got {self.epsilon1}")
        if self.epsilon2 <= 0:
            raise PrivacyError(f"epsilon2 must be positive, got {self.epsilon2}")

    @property
    def total(self) -> float:
        """Total budget ``ε = ε1 + ε2`` consumed by the whole protocol."""
        return self.epsilon1 + self.epsilon2

    @classmethod
    def from_total(
        cls, epsilon: float, max_degree_fraction: float = DEFAULT_MAX_DEGREE_FRACTION
    ) -> "PrivacyBudget":
        """Split a total ε into (ε1, ε2) using *max_degree_fraction* for ε1."""
        if not epsilon > 0:
            raise PrivacyError(f"epsilon must be positive, got {epsilon}")
        if not (0 < max_degree_fraction < 1):
            raise PrivacyError(
                f"max_degree_fraction must be in (0, 1), got {max_degree_fraction}"
            )
        epsilon1 = epsilon * max_degree_fraction
        return cls(epsilon1=epsilon1, epsilon2=epsilon - epsilon1)

    def as_tuple(self) -> Tuple[float, float]:
        """The ``(ε1, ε2)`` pair."""
        return (self.epsilon1, self.epsilon2)


def split_budget(
    epsilon: float, max_degree_fraction: float = DEFAULT_MAX_DEGREE_FRACTION
) -> Tuple[float, float]:
    """Functional shorthand for :meth:`PrivacyBudget.from_total`."""
    budget = PrivacyBudget.from_total(epsilon, max_degree_fraction)
    return budget.as_tuple()
