"""Empirical privacy auditing of randomized mechanisms.

The paper proves its guarantees analytically (Theorems 3-4).  This module
provides the Monte-Carlo counterpart used by the test suite: run a mechanism
many times on two neighbouring inputs, histogram the outputs, and lower-bound
the privacy loss ``max_S ln(P[M(D) in S] / P[M(D') in S])`` from the observed
frequencies.  A correct ε-DP mechanism must produce an audited loss of at
most ε (up to sampling error); an implementation bug that, say, halves the
noise scale is caught because the audited loss then clearly exceeds ε.

This is an *auditing lower bound*, not a certification: passing the audit is
necessary, not sufficient, for the claimed guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, derive_rng, spawn_rngs


@dataclass(frozen=True)
class AuditResult:
    """Outcome of one empirical privacy audit.

    Attributes
    ----------
    epsilon_lower_bound:
        The largest log-ratio of observed bin frequencies between the two
        neighbouring inputs (the empirical privacy loss).
    claimed_epsilon:
        The ε the mechanism claims to satisfy.
    num_trials:
        Number of mechanism invocations per input.
    num_bins:
        Number of histogram bins used for continuous outputs.
    """

    epsilon_lower_bound: float
    claimed_epsilon: float
    num_trials: int
    num_bins: int

    @property
    def passes(self) -> bool:
        """Whether the audited loss stays within the claimed ε.

        The lower bound already discounts per-bin sampling noise (see
        :func:`audit_mechanism`), so only a small fixed tolerance remains.
        """
        return self.epsilon_lower_bound <= self.claimed_epsilon * 1.05 + 0.05


def audit_mechanism(
    mechanism: Callable[[float, np.random.Generator], float],
    input_a: float,
    input_b: float,
    claimed_epsilon: float,
    num_trials: int = 20_000,
    num_bins: int = 40,
    rng: RandomState = None,
) -> AuditResult:
    """Empirically lower-bound the privacy loss of a scalar mechanism.

    Parameters
    ----------
    mechanism:
        Callable ``(value, generator) -> noisy value``; must be the *same*
        randomized mapping applied to both inputs.
    input_a / input_b:
        A neighbouring pair of inputs (for CARGO's degree query these differ
        by 1; for a triangle query by the sensitivity).
    claimed_epsilon:
        The guarantee being audited.
    num_trials:
        Invocations per input; more trials tighten the bound.
    num_bins:
        Histogram resolution for continuous outputs.
    """
    if num_trials <= 0:
        raise ConfigurationError(f"num_trials must be positive, got {num_trials}")
    if num_bins <= 1:
        raise ConfigurationError(f"num_bins must be at least 2, got {num_bins}")
    if claimed_epsilon <= 0:
        raise ConfigurationError(f"claimed_epsilon must be positive, got {claimed_epsilon}")
    generator = derive_rng(rng)
    rng_a, rng_b = spawn_rngs(generator, 2)
    samples_a = np.array([mechanism(input_a, rng_a) for _ in range(num_trials)])
    samples_b = np.array([mechanism(input_b, rng_b) for _ in range(num_trials)])
    worst = epsilon_lower_bound_from_samples(samples_a, samples_b, num_bins=num_bins)
    return AuditResult(
        epsilon_lower_bound=worst,
        claimed_epsilon=claimed_epsilon,
        num_trials=num_trials,
        num_bins=num_bins,
    )


def epsilon_lower_bound_from_samples(
    samples_a: Sequence[float], samples_b: Sequence[float], num_bins: int = 40
) -> float:
    """Histogram lower bound on the privacy loss between two output samples.

    The estimator shared by the scalar-mechanism auditor above and the
    end-to-end protocol auditor (:mod:`repro.verify.audit`): bin both sample
    sets on a common grid and return the worst absolute log-ratio of bin
    frequencies.  Only bins with enough mass on both sides give
    statistically meaningful ratios, and each bin's ratio is discounted by
    twice its standard error so finite-sample noise cannot masquerade as
    extra privacy loss.

    Examples
    --------
    >>> epsilon_lower_bound_from_samples([0.0] * 100, [0.0] * 100)
    0.0
    """
    if num_bins <= 1:
        raise ConfigurationError(f"num_bins must be at least 2, got {num_bins}")
    samples_a = np.asarray(samples_a, dtype=float)
    samples_b = np.asarray(samples_b, dtype=float)
    if samples_a.size == 0 or samples_b.size == 0:
        raise ConfigurationError("both sample sets must be non-empty")
    num_trials = min(samples_a.size, samples_b.size)

    low = float(min(samples_a.min(), samples_b.min()))
    high = float(max(samples_a.max(), samples_b.max()))
    if high <= low:
        high = low + 1.0
    edges = np.linspace(low, high, num_bins + 1)
    hist_a, _ = np.histogram(samples_a, bins=edges)
    hist_b, _ = np.histogram(samples_b, bins=edges)

    minimum_mass = max(num_trials // (num_bins * 10), 5)
    worst = 0.0
    for count_a, count_b in zip(hist_a, hist_b):
        if count_a >= minimum_mass and count_b >= minimum_mass:
            ratio = abs(np.log(count_a / count_b))
            standard_error = np.sqrt(1.0 / count_a + 1.0 / count_b)
            worst = max(worst, float(max(ratio - 2.0 * standard_error, 0.0)))
    return worst


def audit_randomized_response(
    keep_probability: float,
    claimed_epsilon: float,
    num_trials: int = 50_000,
    rng: RandomState = None,
) -> AuditResult:
    """Audit a bit-flipping mechanism from its keep probability.

    For discrete binary outputs the exact empirical ratio is available
    without binning, so this specialised auditor is both tighter and cheaper
    than :func:`audit_mechanism`.
    """
    if not (0 < keep_probability < 1):
        raise ConfigurationError(
            f"keep_probability must be in (0, 1), got {keep_probability}"
        )
    generator = derive_rng(rng)
    kept = generator.random(num_trials) < keep_probability
    # Output "1" frequency when the input is 1 vs when the input is 0.
    frequency_one_given_one = float(np.mean(kept))
    frequency_one_given_zero = 1.0 - frequency_one_given_one
    frequency_one_given_zero = max(frequency_one_given_zero, 1.0 / num_trials)
    loss = abs(np.log(frequency_one_given_one / frequency_one_given_zero))
    return AuditResult(
        epsilon_lower_bound=float(loss),
        claimed_epsilon=claimed_epsilon,
        num_trials=num_trials,
        num_bins=2,
    )
