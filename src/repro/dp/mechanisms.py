"""Standard ε-DP noise mechanisms.

* :class:`LaplaceMechanism` — the workhorse of the central baseline and of
  the `Max` degree estimate,
* :class:`GeometricMechanism` — integer-valued analogue (used by tests and
  available as an alternative perturbation),
* :class:`RandomizedResponse` — the bit-flipping primitive the
  Local2Rounds△ baseline applies to adjacency bits in its first round.

Each mechanism is an object holding its ε and sensitivity so that privacy
accounting (and property tests over the privacy loss) can introspect the
configuration rather than trusting call sites.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.exceptions import PrivacyError
from repro.utils.rng import RandomState, derive_rng

FloatOrArray = Union[float, np.ndarray]


def laplace_from_uniforms(uniforms: np.ndarray, scale: float) -> np.ndarray:
    """Inverse-CDF Laplace sampling from uniforms in ``[0, 1)``.

    ``x = -scale * sign(u - 1/2) * log(1 - 2|u - 1/2|)`` — the stacked
    (loop-free) counterpart of drawing one Laplace variate per user from her
    own substream: each output element is a pure function of the matching
    uniform.  ``log1p`` keeps precision in the tails, and the ``u == 0`` cell
    (probability ``2^-53``) is clamped to the smallest representable tail
    instead of overflowing to infinity.
    """
    u = np.asarray(uniforms, dtype=np.float64)
    centered = u - 0.5
    interior = np.maximum(-2.0 * np.abs(centered), -1.0 + 2.0**-53)
    return -scale * np.sign(centered) * np.log1p(interior)


def _check_epsilon(epsilon: float) -> float:
    if not (epsilon > 0) or math.isinf(epsilon) or math.isnan(epsilon):
        raise PrivacyError(f"epsilon must be a positive finite number, got {epsilon}")
    return float(epsilon)


def _check_sensitivity(sensitivity: float) -> float:
    if not (sensitivity > 0) or math.isinf(sensitivity) or math.isnan(sensitivity):
        raise PrivacyError(f"sensitivity must be a positive finite number, got {sensitivity}")
    return float(sensitivity)


@dataclass(frozen=True)
class LaplaceMechanism:
    """The Laplace mechanism: add ``Lap(sensitivity / epsilon)`` noise."""

    epsilon: float
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        _check_epsilon(self.epsilon)
        _check_sensitivity(self.sensitivity)

    @property
    def scale(self) -> float:
        """The Laplace scale parameter ``b = sensitivity / epsilon``."""
        return self.sensitivity / self.epsilon

    @property
    def variance(self) -> float:
        """Variance ``2 b^2`` of the injected noise."""
        return 2.0 * self.scale**2

    def sample_noise(self, rng: RandomState = None, size=None) -> FloatOrArray:
        """Draw Laplace noise (scalar or array of the given *size*)."""
        generator = derive_rng(rng)
        noise = generator.laplace(loc=0.0, scale=self.scale, size=size)
        return float(noise) if size is None else noise

    def noise_from_uniforms(self, uniforms: np.ndarray) -> np.ndarray:
        """Stacked Laplace noise from per-user uniforms (inverse CDF)."""
        return laplace_from_uniforms(uniforms, self.scale)

    def randomize(self, value: FloatOrArray, rng: RandomState = None) -> FloatOrArray:
        """Return ``value + Lap(sensitivity / epsilon)``."""
        if isinstance(value, np.ndarray):
            return value + self.sample_noise(rng, size=value.shape)
        return float(value) + self.sample_noise(rng)


@dataclass(frozen=True)
class GeometricMechanism:
    """Two-sided geometric (discrete Laplace) mechanism for integer queries.

    Adds ``X - Y`` where ``X, Y`` are i.i.d. geometric variables with success
    probability ``1 - exp(-epsilon / sensitivity)``; satisfies ε-DP for
    integer-valued queries with the given sensitivity.
    """

    epsilon: float
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        _check_epsilon(self.epsilon)
        _check_sensitivity(self.sensitivity)

    @property
    def alpha(self) -> float:
        """The geometric decay parameter ``exp(-epsilon / sensitivity)``."""
        return math.exp(-self.epsilon / self.sensitivity)

    @property
    def variance(self) -> float:
        """Variance ``2 a / (1 - a)^2`` of the two-sided geometric noise."""
        alpha = self.alpha
        return 2.0 * alpha / (1.0 - alpha) ** 2

    def sample_noise(self, rng: RandomState = None, size=None) -> Union[int, np.ndarray]:
        """Draw two-sided geometric noise (scalar or array)."""
        generator = derive_rng(rng)
        probability = 1.0 - self.alpha
        positive = generator.geometric(probability, size=size) - 1
        negative = generator.geometric(probability, size=size) - 1
        noise = positive - negative
        return int(noise) if size is None else noise.astype(np.int64)

    def randomize(self, value: Union[int, np.ndarray], rng: RandomState = None):
        """Return ``value + noise`` with integer-valued noise."""
        if isinstance(value, np.ndarray):
            return value + self.sample_noise(rng, size=value.shape)
        return int(value) + self.sample_noise(rng)


@dataclass(frozen=True)
class RandomizedResponse:
    """Warner's randomized response on bits, parameterised by ε.

    Each input bit is kept with probability ``e^ε / (e^ε + 1)`` and flipped
    otherwise, which satisfies ε-LDP per bit.  The unbiased frequency
    estimator needed by Local2Rounds△'s empirical correction is exposed via
    :attr:`keep_probability` and :meth:`unbias_count`.
    """

    epsilon: float

    def __post_init__(self) -> None:
        _check_epsilon(self.epsilon)

    @property
    def keep_probability(self) -> float:
        """Probability of reporting a bit truthfully."""
        expe = math.exp(self.epsilon)
        return expe / (expe + 1.0)

    @property
    def flip_probability(self) -> float:
        """Probability of flipping a bit."""
        return 1.0 - self.keep_probability

    def randomize_bit(self, bit: int, rng: RandomState = None) -> int:
        """Apply randomized response to a single 0/1 bit."""
        if bit not in (0, 1):
            raise PrivacyError(f"randomized response expects a 0/1 bit, got {bit}")
        generator = derive_rng(rng)
        if generator.random() < self.keep_probability:
            return bit
        return 1 - bit

    def randomize_bits(self, bits: np.ndarray, rng: RandomState = None) -> np.ndarray:
        """Apply randomized response element-wise to a 0/1 array."""
        bits = np.asarray(bits)
        if not np.isin(bits, (0, 1)).all():
            raise PrivacyError("randomized response expects a 0/1 array")
        generator = derive_rng(rng)
        flips = generator.random(bits.shape) >= self.keep_probability
        return np.where(flips, 1 - bits, bits).astype(np.int64)

    def unbias_count(self, noisy_count: float, total: int) -> float:
        """Unbiased estimate of the number of 1s among *total* reported bits."""
        p = self.keep_probability
        q = self.flip_probability
        if total < 0:
            raise PrivacyError(f"total must be non-negative, got {total}")
        return (noisy_count - q * total) / (p - q)
