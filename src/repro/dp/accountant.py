"""Sequential-composition privacy accounting.

CARGO and its baselines only use pure ε-DP with sequential composition, so
the accountant is a simple additive ledger: each mechanism invocation records
the ε it spends and the accountant refuses to exceed the configured budget.
Experiments use it to assert that a protocol's declared guarantee matches the
sum of the budgets its mechanisms actually consumed.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.exceptions import BudgetExhaustedError, PrivacyError


@dataclass
class PrivacyAccountant:
    """Tracks ε spending under sequential composition.

    Parameters
    ----------
    total_budget:
        Maximum ε the accountant will allow.  ``float("inf")`` creates a
        purely descriptive accountant that never refuses a spend.
    """

    total_budget: float = float("inf")
    _spent: float = field(default=0.0, init=False)
    _ledger: List[Tuple[str, float]] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.total_budget <= 0:
            raise PrivacyError(f"total_budget must be positive, got {self.total_budget}")

    @property
    def spent(self) -> float:
        """Total ε spent so far."""
        return self._spent

    @property
    def remaining(self) -> float:
        """Budget still available (may be infinite)."""
        return self.total_budget - self._spent

    def spend(self, epsilon: float, label: str = "mechanism") -> None:
        """Record a spend of *epsilon* attributed to *label*.

        Raises :class:`~repro.exceptions.BudgetExhaustedError` if the spend
        would exceed the configured total (with a small tolerance to avoid
        rejecting splits that only differ by floating-point error).
        """
        if epsilon <= 0:
            raise PrivacyError(f"epsilon spent must be positive, got {epsilon}")
        if self._spent + epsilon > self.total_budget * (1 + 1e-12) + 1e-12:
            raise BudgetExhaustedError(
                f"spending {epsilon} would exceed the remaining budget "
                f"({self.remaining} of {self.total_budget})"
            )
        self._spent += epsilon
        self._ledger.append((label, epsilon))

    def reserve(self) -> Tuple[float, int]:
        """Snapshot the current position for a later :meth:`rollback`.

        The returned token captures the spent total and ledger length; it is
        the mechanism behind :meth:`transaction`.
        """
        return (self._spent, len(self._ledger))

    def rollback(self, reservation: Tuple[float, int]) -> None:
        """Undo every spend recorded since *reservation* was taken.

        Raises :class:`~repro.exceptions.PrivacyError` if spends recorded
        *before* the reservation have already been mutated (the snapshot no
        longer describes a prefix of the ledger).
        """
        spent, length = reservation
        if length > len(self._ledger) or spent > self._spent + 1e-12:
            raise PrivacyError(
                "cannot roll back: the accountant ledger no longer extends "
                "the reserved snapshot"
            )
        del self._ledger[length:]
        self._spent = spent

    @contextmanager
    def transaction(self) -> Iterator["PrivacyAccountant"]:
        """All-or-nothing spending: roll back every spend if the block raises.

        This is what makes a failed-and-retried secure anchor safe — ε spent
        inside an attempt that dies is returned to the budget, so the retry
        spends it exactly once and the ledger matches a fault-free run.

        >>> accountant = PrivacyAccountant(total_budget=1.0)
        >>> try:
        ...     with accountant.transaction():
        ...         accountant.spend(0.4, label="anchor")
        ...         raise OSError("transient failure mid-anchor")
        ... except OSError:
        ...     pass
        >>> accountant.spent
        0.0
        """
        reservation = self.reserve()
        try:
            yield self
        except BaseException:
            self.rollback(reservation)
            raise

    def ledger(self) -> List[Tuple[str, float]]:
        """Chronological list of ``(label, epsilon)`` spends."""
        return list(self._ledger)

    def by_label(self) -> Dict[str, float]:
        """Total ε spent per label."""
        totals: Dict[str, float] = {}
        for label, epsilon in self._ledger:
            totals[label] = totals.get(label, 0.0) + epsilon
        return totals
