"""Sequential-composition privacy accounting.

CARGO and its baselines only use pure ε-DP with sequential composition, so
the accountant is a simple additive ledger: each mechanism invocation records
the ε it spends and the accountant refuses to exceed the configured budget.
Experiments use it to assert that a protocol's declared guarantee matches the
sum of the budgets its mechanisms actually consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.exceptions import BudgetExhaustedError, PrivacyError


@dataclass
class PrivacyAccountant:
    """Tracks ε spending under sequential composition.

    Parameters
    ----------
    total_budget:
        Maximum ε the accountant will allow.  ``float("inf")`` creates a
        purely descriptive accountant that never refuses a spend.
    """

    total_budget: float = float("inf")
    _spent: float = field(default=0.0, init=False)
    _ledger: List[Tuple[str, float]] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.total_budget <= 0:
            raise PrivacyError(f"total_budget must be positive, got {self.total_budget}")

    @property
    def spent(self) -> float:
        """Total ε spent so far."""
        return self._spent

    @property
    def remaining(self) -> float:
        """Budget still available (may be infinite)."""
        return self.total_budget - self._spent

    def spend(self, epsilon: float, label: str = "mechanism") -> None:
        """Record a spend of *epsilon* attributed to *label*.

        Raises :class:`~repro.exceptions.BudgetExhaustedError` if the spend
        would exceed the configured total (with a small tolerance to avoid
        rejecting splits that only differ by floating-point error).
        """
        if epsilon <= 0:
            raise PrivacyError(f"epsilon spent must be positive, got {epsilon}")
        if self._spent + epsilon > self.total_budget * (1 + 1e-12) + 1e-12:
            raise BudgetExhaustedError(
                f"spending {epsilon} would exceed the remaining budget "
                f"({self.remaining} of {self.total_budget})"
            )
        self._spent += epsilon
        self._ledger.append((label, epsilon))

    def ledger(self) -> List[Tuple[str, float]]:
        """Chronological list of ``(label, epsilon)`` spends."""
        return list(self._ledger)

    def by_label(self) -> Dict[str, float]:
        """Total ε spent per label."""
        totals: Dict[str, float] = {}
        for label, epsilon in self._ledger:
            totals[label] = totals.get(label, 0.0) + epsilon
        return totals
