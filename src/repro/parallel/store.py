"""Reusable offline phase: a keyed store of dealt correlated randomness.

The offline phase of the secure protocol — Beaver triples and multiplication
groups — is *input-independent*: the material a run consumes is a
deterministic function of the dealer's seed and the run's public geometry
(user count, backend, statistic, tile/batch sizes, ring width).  Re-dealing
it on every run is therefore pure waste whenever those inputs repeat, which
is exactly what happens for repeated experiment runs, the cells of a
:class:`~repro.experiments.runner.ProtocolSweep`, and the periodic secure
anchors of a :class:`~repro.stream.orchestrator.StreamingCargo` stream.

:class:`TripleStore` memoises dealt material under a
:class:`TripleSignature`.  A *cold* run deals as usual and deposits what it
dealt; a *warm* run fetches the identical bytes back and skips the dealing
entirely (the serve-time accounting is unchanged — the dealers absorb the
recorded tallies).  With a ``cache_dir`` the batches also persist to disk,
so reuse survives the process.

Security note
-------------
The store never changes what a run *would* have dealt — the signature pins
the dealer seed, so a warm hit returns exactly the bytes a cold re-deal from
that seed would reproduce.  Deliberately sharing one seed across runs with
*different* private inputs (``CargoConfig(offline_seed=...)``, sweep reuse)
reuses masks across those inputs, which is sound for benchmarking and
evaluation but must not be done in a deployment; see
``docs/performance.md``.
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DealerError, IntegrityError, RetryExhaustedError
from repro.resilience.faults import FaultKind, corrupt_bytes, fault_point
from repro.resilience.integrity import checksum_bytes, checksum_file, verify_bytes, verify_file

#: On-disk batch format marker; bump when the material layout changes.
#: Version 2 adds content checksums over the pickled material (and, in mmap
#: mode, over the ``.bin`` side-car) so disk corruption is detected on load
#: instead of being served to the protocol; v1 files read as cold misses.
_PERSIST_MAGIC = "repro-triple-store"
_PERSIST_VERSION = 2

#: mmap-mode format marker (``<token>.npk`` + ``<token>.bin`` file pair).
_MMAP_MAGIC = "repro-triple-store-mmap"
#: Array payloads in the flat ``.bin`` file start on 64-byte boundaries so
#: every :class:`numpy.memmap` view is cache-line (and dtype) aligned.
_MMAP_ALIGN = 64


class _ArrayExternalisingPickler(pickle.Pickler):
    """Pickler that spills every numpy array into a flat side-car file.

    The pickle stream keeps only ``(offset, dtype, shape)`` stubs; the bytes
    live in the ``.bin`` file, which the unpickler maps back as
    :class:`numpy.memmap` views.  This is what makes warm mmap loads *paged*:
    the structural pickle is tiny, and array bytes reach memory only when a
    consumer actually touches them.
    """

    def __init__(self, file, bin_handle) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._bin = bin_handle

    def persistent_id(self, obj):
        if isinstance(obj, np.ndarray) and obj.dtype != object and obj.size > 0:
            array = np.ascontiguousarray(obj)
            offset = self._bin.tell()
            padding = (-offset) % _MMAP_ALIGN
            if padding:
                self._bin.write(b"\x00" * padding)
                offset += padding
            self._bin.write(array.tobytes())
            return ("ndarray", offset, array.dtype.str, array.shape)
        return None


class _ArrayMappingUnpickler(pickle.Unpickler):
    """Unpickler resolving array stubs to read-only memmap views."""

    def __init__(self, file, bin_path: Path) -> None:
        super().__init__(file)
        self._bin_path = bin_path

    def persistent_load(self, pid):
        try:
            tag, offset, dtype, shape = pid
        except (TypeError, ValueError) as exc:
            raise pickle.UnpicklingError(f"unexpected persistent id {pid!r}") from exc
        if tag != "ndarray":
            raise pickle.UnpicklingError(f"unexpected persistent id tag {tag!r}")
        return np.memmap(
            self._bin_path,
            mode="r",
            dtype=np.dtype(dtype),
            shape=tuple(shape),
            offset=int(offset),
        )


def dealer_fingerprint(rng: Any) -> str:
    """A stable token for the dealer randomness a run starts from.

    Two dealers with the same fingerprint deal the same material, which is
    what makes memoisation sound.  ``None`` (OS-entropy dealing) gets a
    unique token per call so it can never produce a false warm hit.
    """
    if rng is None:
        import os

        return "entropy:" + os.urandom(8).hex()
    if isinstance(rng, (int, np.integer)):
        return f"seed:{int(rng)}"
    if isinstance(rng, np.random.SeedSequence):
        payload = {"entropy": rng.entropy, "spawn_key": list(rng.spawn_key)}
        return "seq:" + _digest(payload)
    if isinstance(rng, np.random.Generator):
        state = rng.bit_generator.state
        seed_seq = getattr(rng.bit_generator, "seed_seq", None)
        payload = {
            "state": state,
            "children_spawned": getattr(seed_seq, "n_children_spawned", 0),
        }
        return "gen:" + _digest(payload)
    return "other:" + _digest(repr(rng))


def _digest(payload: Any) -> str:
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True)
class TripleSignature:
    """Everything the dealt material of one run is a function of.

    ``geometry`` carries the backend-specific shape knobs as a flat tuple of
    ``(name, value)`` pairs (block size, batch size, provision limit, …) so
    two runs collide only when they would consume byte-identical material.
    """

    statistic: str
    backend: str
    num_users: int
    geometry: Tuple
    ring_bits: int
    dealer_key: str

    def token(self) -> str:
        """Filesystem-safe stable identifier for this signature."""
        payload = (
            self.statistic,
            self.backend,
            int(self.num_users),
            tuple(self.geometry),
            int(self.ring_bits),
            self.dealer_key,
        )
        return _digest(repr(payload))


class MaterialSequence:
    """Ordered dealt material served to concurrent workers by index.

    A thin exhaustion guard: workers address their slice by schedule index,
    and any mismatch between the schedule and the stored material — a
    truncated batch, a geometry drift, an index past the end — raises an
    explicit :class:`~repro.exceptions.DealerError` instead of silently
    recycling or re-dealing randomness.

    Examples
    --------
    >>> seq = MaterialSequence(["a", "b"], label="demo")
    >>> seq.take(1)
    'b'
    >>> seq.take(2)
    Traceback (most recent call last):
        ...
    repro.exceptions.DealerError: demo material exhausted: index 2 of 2 slices
    """

    def __init__(self, items: Sequence[Any], label: str = "triple-store") -> None:
        self._items = list(items)
        self._label = label

    def __len__(self) -> int:
        return len(self._items)

    def require(self, count: int) -> None:
        """Fail loudly unless exactly *count* slices are available."""
        if len(self._items) != count:
            raise DealerError(
                f"{self._label} material mismatch: schedule needs {count} "
                f"slices but {len(self._items)} are stored"
            )

    def take(self, index: int) -> Any:
        """The slice at schedule position *index* (explicit exhaustion error)."""
        if not (0 <= index < len(self._items)):
            raise DealerError(
                f"{self._label} material exhausted: index {index} of "
                f"{len(self._items)} slices"
            )
        return self._items[index]


def material_nbytes(material: Any) -> int:
    """Approximate memory footprint of a nested material structure."""
    if isinstance(material, np.ndarray):
        return int(material.nbytes)
    if isinstance(material, dict):
        return sum(material_nbytes(value) for value in material.values())
    if isinstance(material, (list, tuple)):
        return sum(material_nbytes(item) for item in material)
    if hasattr(material, "__dict__"):
        return material_nbytes(vars(material))
    return 8


class TripleStore:
    """Keyed cache of dealt correlated randomness, in memory and on disk.

    Parameters
    ----------
    cache_dir:
        Optional directory for persisted batches.  When set, every stored
        batch is also written to ``<token>.triples`` under it, and misses
        fall back to disk before re-dealing — so warm starts survive process
        restarts and are shareable across a process-parallel sweep.
    max_entry_bytes:
        Batches larger than this are not cached at all (the run simply deals
        as if no store were configured); bounds the cost of one giant run
        polluting the cache.
    max_memory_bytes:
        In-memory budget; least-recently-used batches are evicted past it
        (evicted batches remain on disk when *cache_dir* is set).
    mmap:
        When ``True`` (requires *cache_dir*), batches persist as a tiny
        structural pickle (``<token>.npk``) plus a flat aligned binary file
        (``<token>.bin``) holding every array's bytes, and warm fetches
        return structures whose arrays are **read-only memmap views** into
        that file — the OS pages material in as the run touches it and
        evicts it under pressure, so a warm offline phase never loads the
        whole batch into RAM.  The in-memory LRU and the
        ``max_entry_bytes`` decline rule are bypassed (they guard resident
        memory, which mmap entries do not consume); size limits are
        whatever the filesystem allows.

    Examples
    --------
    >>> store = TripleStore()
    >>> sig = TripleSignature("triangles", "matrix", 8, (), 64, "seed:1")
    >>> store.get(sig) is None
    True
    >>> store.put(sig, {"x": 1})
    True
    >>> store.get(sig)
    {'x': 1}
    >>> store.stats()["hits"], store.stats()["misses"]
    (1, 1)
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_entry_bytes: int = 256 << 20,
        max_memory_bytes: int = 512 << 20,
        mmap: bool = False,
    ) -> None:
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        if mmap and self._cache_dir is None:
            raise DealerError("mmap=True requires a cache_dir to map batches from")
        self._mmap = bool(mmap)
        if self._cache_dir is not None:
            self._cache_dir.mkdir(parents=True, exist_ok=True)
        self._max_entry_bytes = int(max_entry_bytes)
        self._max_memory_bytes = int(max_memory_bytes)
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._entry_bytes: dict = {}
        self._memory_bytes = 0
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0
        self._skipped = 0
        self._integrity_failures = 0
        self._strict_integrity = False
        self._retry = None
        self._metrics = None

    def configure_resilience(
        self, retry=None, strict_integrity: Optional[bool] = None, metrics=None
    ) -> None:
        """Attach per-run resilience behaviour to the store.

        Called by the protocol entry points when a run carries a
        :class:`~repro.resilience.ResilienceConfig`: *retry* wraps disk
        reads, *strict_integrity* escalates checksum failures from graceful
        degradation (count + re-deal) to a raised
        :class:`~repro.exceptions.IntegrityError`, and *metrics* receives
        the retry counters.
        """
        if retry is not None:
            self._retry = retry
        if strict_integrity is not None:
            self._strict_integrity = bool(strict_integrity)
        if metrics is not None:
            self._metrics = metrics

    @property
    def cache_dir(self) -> Optional[str]:
        """The persistence directory, or ``None`` for memory-only."""
        return str(self._cache_dir) if self._cache_dir is not None else None

    @property
    def mmap(self) -> bool:
        """Whether warm fetches return memmap-backed (paged) material."""
        return self._mmap

    def accepts_bytes(self, nbytes: int) -> bool:
        """Whether a batch of *nbytes* would be cached rather than declined.

        Backends whose offline phase can be provisioned either fully (to
        make it storable) or lazily in bounded chunks ask this up front, so
        an over-budget run never materialises the full pool just to have the
        store decline it.  mmap entries never become resident, so the
        resident-memory guard does not apply to them.
        """
        if self._mmap:
            return True
        return int(nbytes) <= self._max_entry_bytes

    def get(self, signature: TripleSignature) -> Optional[Any]:
        """The stored material for *signature*, or ``None`` on a cold miss."""
        token = signature.token()
        if self._mmap:
            # No resident copy is ever kept: every warm fetch rebuilds the
            # (tiny) structural pickle and hands back fresh memmap views, so
            # material only occupies page cache, never the Python heap.
            material = self._load_from_disk(token, signature)
            with self._lock:
                if material is not None:
                    self._hits += 1
                else:
                    self._misses += 1
            return material
        with self._lock:
            if token in self._entries:
                self._entries.move_to_end(token)
                self._hits += 1
                return self._entries[token]
        material = self._load_from_disk(token, signature)
        with self._lock:
            if material is not None:
                self._hits += 1
                self._admit(token, material)
                return material
            self._misses += 1
            return None

    def put(self, signature: TripleSignature, material: Any) -> bool:
        """Deposit dealt *material*; returns whether it was cached.

        Oversized batches (``> max_entry_bytes``) are declined — callers
        treat a declined put exactly like running without a store.  In mmap
        mode material goes straight to disk (no decline, no LRU residency).
        """
        token = signature.token()
        if self._mmap:
            self._write_to_disk(token, signature, material)
            with self._lock:
                self._stores += 1
            return True
        size = material_nbytes(material)
        if size > self._max_entry_bytes:
            with self._lock:
                self._skipped += 1
            return False
        with self._lock:
            self._admit(token, material, size)
            self._stores += 1
        if self._cache_dir is not None:
            self._write_to_disk(token, signature, material)
        return True

    def clear(self) -> None:
        """Drop every in-memory batch (disk batches are left untouched)."""
        with self._lock:
            self._entries.clear()
            self._entry_bytes.clear()
            self._memory_bytes = 0

    def stats(self) -> dict:
        """Hit/miss/store counters plus the current memory footprint."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "stores": self._stores,
                "evictions": self._evictions,
                "skipped_oversize": self._skipped,
                "integrity_failures": self._integrity_failures,
                "entries": len(self._entries),
                "memory_bytes": self._memory_bytes,
            }

    @property
    def hits(self) -> int:
        """Number of warm fetches served so far."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of cold lookups so far."""
        return self._misses

    @property
    def integrity_failures(self) -> int:
        """Number of persisted batches that failed checksum verification."""
        return self._integrity_failures

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _admit(self, token: str, material: Any, size: Optional[int] = None) -> None:
        """Insert under the lock, evicting LRU entries past the budget."""
        if size is None:
            size = material_nbytes(material)
        if token in self._entries:
            self._memory_bytes -= self._entry_bytes.get(token, 0)
            self._entries.pop(token)
        self._entries[token] = material
        self._entry_bytes[token] = size
        self._memory_bytes += size
        while self._memory_bytes > self._max_memory_bytes and len(self._entries) > 1:
            evicted, _ = self._entries.popitem(last=False)
            self._memory_bytes -= self._entry_bytes.pop(evicted, 0)
            self._evictions += 1

    def _path_for(self, token: str) -> Path:
        assert self._cache_dir is not None
        if self._mmap:
            return self._cache_dir / f"{token}.npk"
        return self._cache_dir / f"{token}.triples"

    def _bin_path_for(self, token: str) -> Path:
        assert self._cache_dir is not None
        return self._cache_dir / f"{token}.bin"

    def _write_to_disk(self, token: str, signature: TripleSignature, material: Any) -> None:
        path = self._path_for(token)
        tmp = path.with_suffix(".tmp")
        if self._mmap:
            bin_path = self._bin_path_for(token)
            bin_tmp = bin_path.with_suffix(".bin.tmp")
            # The structural pickle is tiny (array stubs only), so buffering
            # it in memory to checksum it costs nothing; the array bytes
            # stream straight to the .bin side-car as before.
            buffer = io.BytesIO()
            with bin_tmp.open("wb") as bin_handle:
                pickler = _ArrayExternalisingPickler(buffer, bin_handle)
                pickler.dump(material)
            struct_bytes = buffer.getvalue()
            # The bin file must land before the pickle that references it.
            bin_tmp.replace(bin_path)
            checksums = {
                "pickle": checksum_bytes(struct_bytes),
                "bin": checksum_file(bin_path),
            }
            with tmp.open("wb") as handle:
                pickle.dump(
                    (_MMAP_MAGIC, _PERSIST_VERSION, signature, checksums, struct_bytes),
                    handle,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            tmp.replace(path)
            return
        payload = pickle.dumps(material, protocol=pickle.HIGHEST_PROTOCOL)
        with tmp.open("wb") as handle:
            pickle.dump(
                (_PERSIST_MAGIC, _PERSIST_VERSION, signature, checksum_bytes(payload), payload),
                handle,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        tmp.replace(path)

    def _integrity_failure(self, context: str, error: Optional[BaseException] = None):
        """Count one verification failure; raise under strict integrity.

        The graceful (default) path returns ``None``, which the caller
        reports as a cold miss — the run re-deals fresh material instead of
        consuming corrupt shares.
        """
        with self._lock:
            self._integrity_failures += 1
        if self._metrics is not None:
            self._metrics.increment("store_integrity_failures")
        if self._strict_integrity:
            if isinstance(error, IntegrityError):
                raise error
            raise IntegrityError(f"persisted triple batch failed verification: {context}") from error
        return None

    def _load_from_disk(self, token: str, signature: TripleSignature) -> Optional[Any]:
        if self._cache_dir is None:
            return None
        path = self._path_for(token)
        if not path.exists():
            return None

        def read_file() -> bytes:
            spec = fault_point("triple_store.read")
            data = path.read_bytes()
            if spec is not None and spec.kind is FaultKind.BITFLIP:
                data = corrupt_bytes(data, spec)
            return data

        try:
            if self._retry is not None:
                blob = self._retry.run("triple_store.read", read_file, metrics=self._metrics)
            else:
                blob = read_file()
        except (OSError, RetryExhaustedError):
            # An unreadable batch degrades to a cold miss: the run re-deals.
            return None
        expected_magic = _MMAP_MAGIC if self._mmap else _PERSIST_MAGIC
        try:
            magic, version, stored_signature, checksum, payload = pickle.loads(blob)
        except Exception as error:
            # The file exists but does not parse — corruption, not staleness.
            return self._integrity_failure(f"unreadable batch envelope {path.name}", error)
        if magic != expected_magic or version != _PERSIST_VERSION:
            # A stale or foreign format (including pre-checksum v1 batches)
            # is a plain miss, not an integrity event.
            return None
        if stored_signature != signature:
            # Token collision or stale file: never serve mismatched material.
            return None
        try:
            if self._mmap:
                verify_bytes(payload, checksum["pickle"], context=f"batch pickle {path.name}")
                bin_path = self._bin_path_for(token)
                if not bin_path.exists():
                    raise IntegrityError(f"missing side-car {bin_path.name} for batch {path.name}")
                verify_file(bin_path, checksum["bin"], context=f"batch side-car {bin_path.name}")
                unpickler = _ArrayMappingUnpickler(io.BytesIO(payload), bin_path)
                return unpickler.load()
            verify_bytes(payload, checksum, context=f"batch {path.name}")
            return pickle.loads(payload)
        except (IntegrityError, pickle.UnpicklingError, ValueError, EOFError, KeyError) as error:
            return self._integrity_failure(f"batch {path.name}", error)
