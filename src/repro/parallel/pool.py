"""Deterministic worker pool for the tile-parallel online phase.

The secure backends decompose their work into independent units (tiles,
candidate blocks, row strips) whose outputs are pure functions of the input
shares and the unit's correlated randomness.  :class:`WorkerPool` fans those
units out over a thread pool and hands the results back **in schedule
order**, so every reduction downstream happens in the same canonical order
regardless of which worker finished first.  Combined with per-unit view
shards (merged in schedule order) this makes the engine's transcripts
bit-identical for any worker count.

Threads, not processes: the hot loops are numpy kernels (`uint64` matmuls,
fused gathers, vectorised ring arithmetic) that release the GIL, so tiles
genuinely overlap on multicore hosts while shares and correlated randomness
stay shared by reference instead of being pickled across process boundaries.
Process-level parallelism lives at two other layers: whole experiment sweep
cells fan out over a process pool
(:class:`~repro.experiments.runner.ProtocolSweep` ``use_processes``), and
the protocol parties themselves can run as separate OS processes connected
by sockets (:mod:`repro.runtime`, ``CargoConfig(distributed=True)`` — see
``docs/distributed-runtime.md``).  Within one party's online phase, this
thread pool remains the parallelism mechanism.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.resilience.faults import fault_point


def resolve_workers(config: Any) -> int:
    """The effective worker count a duck-typed *config* requests.

    ``None`` (or a missing attribute) means the legacy serial path — the
    engine is not engaged at all; any integer ``>= 1`` selects the parallel
    engine with that many workers.  ``workers=1`` still runs the engine
    (single-worker), which is what the worker-count equivalence tests compare
    against.
    """
    workers = getattr(config, "workers", None)
    if workers is None:
        return 0
    workers = int(workers)
    if workers < 1:
        raise ConfigurationError(f"workers must be at least 1, got {workers}")
    return workers


class WorkerPool:
    """Fan independent tasks out over a thread pool, deterministically.

    Parameters
    ----------
    workers:
        Number of worker threads.  ``1`` executes tasks inline (no pool),
        which is bit-identical to any larger count because results are
        always consumed in task order.

    Examples
    --------
    >>> pool = WorkerPool(2)
    >>> pool.map([lambda: 1, lambda: 2, lambda: 3])
    [1, 2, 3]
    """

    def __init__(self, workers: int, retry=None, metrics=None) -> None:
        workers = int(workers)
        if workers < 1:
            raise ConfigurationError(f"workers must be at least 1, got {workers}")
        self._workers = workers
        self._executor: ThreadPoolExecutor | None = None
        self._retry = retry
        self._metrics = metrics

    @property
    def workers(self) -> int:
        """Number of worker threads this pool fans out to."""
        return self._workers

    def configure_resilience(self, retry=None, metrics=None) -> None:
        """Attach a retry policy (and metrics sink) to every task execution.

        A task that raises a transient failure (an injected ``OSError`` from
        a worker-crash fault, a flaky I/O boundary inside a tile) is re-run
        under the policy's deterministic schedule.  Tasks are pure functions
        of their inputs, so a retried task reproduces the exact output the
        first attempt would have produced — transcripts stay bit-identical.
        """
        if retry is not None:
            self._retry = retry
        if metrics is not None:
            self._metrics = metrics

    def _run_task(self, task: Callable[[], Any]) -> Any:
        def attempt():
            fault_point("pool.task")
            return task()

        if self._retry is not None:
            return self._retry.run("pool.task", attempt, metrics=self._metrics)
        return attempt()

    def map(self, tasks: Sequence[Callable[[], Any]]) -> List[Any]:
        """Run every task and return the results **in task order**.

        The order tasks *complete* in is scheduler-dependent; the order their
        results are returned (and therefore reduced, and their view shards
        merged) never is.  The underlying thread pool is created lazily and
        reused across calls (the wave-based engines call :meth:`map` many
        times per run); its idle workers exit when the pool is
        garbage-collected.
        """
        tasks = list(tasks)
        if self._workers == 1 or len(tasks) <= 1:
            return [self._run_task(task) for task in tasks]
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self._workers)
        futures = [self._executor.submit(self._run_task, task) for task in tasks]
        return [future.result() for future in futures]

    def matmul(self, ring, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Ring matrix product ``a @ b`` computed in parallel row strips.

        Each output row is a function of one row of *a* and all of *b*, so
        splitting *a* into contiguous strips and concatenating the strip
        products reproduces the serial result element for element — the
        parallelism is invisible to the transcript.
        """
        a = np.asarray(a, dtype=ring.dtype)
        b = np.asarray(b, dtype=ring.dtype)
        strips = min(self._workers, max(int(a.shape[0]), 1))
        if strips <= 1:
            return ring.matmul(a, b)
        bounds = np.linspace(0, a.shape[0], strips + 1, dtype=np.int64)
        pieces = self.map(
            [
                (lambda lo=lo, hi=hi: ring.matmul(a[lo:hi], b))
                for lo, hi in zip(bounds[:-1], bounds[1:])
                if hi > lo
            ]
        )
        return np.concatenate(pieces, axis=0)

    def ring_matmul(self, ring) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
        """A ``matmul(a, b)`` callable bound to *ring* (dealer/secure-op hook)."""
        return lambda a, b: self.matmul(ring, a, b)


def make_pool(workers: int) -> Optional[WorkerPool]:
    """A :class:`WorkerPool` for *workers* ``>= 1``, ``None`` for the serial path."""
    return WorkerPool(workers) if workers else None
