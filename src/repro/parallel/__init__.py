"""Parallel execution engine for the secure protocol.

The online phase of every counting backend decomposes into independent units
of work — ``(I, J, K)`` tiles for the blocked matrix formulation, candidate
blocks for the faithful/batched schedule, row strips of the local matrix
products for the monolithic matrix backend.  This package provides the two
pieces that turn that decomposition into a multicore engine without changing
a single value on the wire:

* :class:`~repro.parallel.pool.WorkerPool` — a deterministic fan-out of
  independent tasks onto a thread pool.  Results always come back in task
  order, reductions happen in a fixed canonical order, and per-task
  :class:`~repro.crypto.views.ViewRecorder` shards are merged in schedule
  order, so transcripts, ledgers, and released counts are bit-identical for
  any worker count (``tests/test_parallel_engine.py`` proves it).
* :class:`~repro.parallel.store.TripleStore` — a reusable offline phase.
  The dealers' correlated randomness is a deterministic function of the
  dealer seed and the run geometry, so the store memoises it under a
  :class:`~repro.parallel.store.TripleSignature` and serves it back to
  repeated runs, sweep cells, and streaming anchors, skipping the re-deal
  entirely (and optionally persisting batches to disk).

Select the engine with ``CargoConfig(workers=...)`` (CLI ``--workers``); the
default ``workers=None`` keeps the exact legacy serial path.
"""

from repro.parallel.pool import WorkerPool, resolve_workers
from repro.parallel.store import (
    MaterialSequence,
    TripleSignature,
    TripleStore,
    dealer_fingerprint,
)

__all__ = [
    "WorkerPool",
    "resolve_workers",
    "MaterialSequence",
    "TripleSignature",
    "TripleStore",
    "dealer_fingerprint",
]
