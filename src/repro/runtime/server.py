"""Server role drivers for the process-separated runtime.

Each computation server runs :func:`run_server` in its own OS process.  A
server owns three links — driver, dealer, and its peer server — and evaluates
*only its role's side* of the secure protocol: it receives its half of every
share payload and every piece of correlated randomness, performs the local
ring arithmetic the in-process backends perform for that role, and exchanges
opening rounds directly with its peer over :class:`~repro.runtime.wire`
frames (one frame per opening round, never one per element).

Bit-exactness contract
----------------------
The count loops below mirror the *serial* paths of the in-process backends
(:mod:`repro.core.backends.faithful` / ``matrix`` / ``blocked``) statement
for statement: the same gather schedule, the same tile order, the same ring
operations in the same order.  Because every ring operation is exact modulo
``2^l``, the shares each server derives — and therefore every opened value
that crosses the wire — are bit-identical to what the in-process engine
opens for the same seed and configuration.

Authenticated openings re-derive the in-process MAC scheme
(:mod:`repro.crypto.mac`) in two-sided form: both servers derive the same
key and the same lockstep tag stream from the run seed (the trusted-dealer
shortcut the in-process authenticator already takes), each computes its tag
share locally, and the swapped tag shares must cancel —
``sigma_1 + sigma_2 = alpha_1 * (opened_2 - opened_1)``, which is zero
exactly when both servers opened the same values.  A server that lies on
the wire is detected by both sides and the run aborts with the same typed
:class:`~repro.exceptions.CheaterDetectedError` message the in-process
authenticator raises.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backends.base import num_candidate_triples
from repro.core.backends.faithful import _gather_schedule
from repro.crypto.beaver import BeaverTriple
from repro.crypto.mac import MacKey, _TAG_DOMAIN
from repro.crypto.multiplication_groups import MG_FIELDS, MultiplicationGroup
from repro.crypto.views import ViewRecorder
from repro.exceptions import CheaterDetectedError, ProtocolError, WireFormatError
from repro.resilience.faults import FaultPlan, InjectedCrash, fault_point, install_fault_plan
from repro.runtime.wire import (
    CONTROL_RUN,
    CONTROL_SHUTDOWN,
    KIND_CONTROL,
    KIND_OPEN_MAC,
    KIND_OPEN_VALUES,
    KIND_PROVISION,
    KIND_RESULT,
    KIND_SHARES,
    WireEndpoint,
    summary_delta,
)
from repro.telemetry.spans import NULL_TRACER, Tracer
from repro.utils.rng import derive_rng, stable_seed_from_name

__all__ = ["OpeningChannel", "run_server"]


class OpeningChannel:
    """One server's side of the peer-to-peer opening rounds.

    Every interactive secure operation funnels its opening through
    :meth:`exchange`: the server's local mask-differences go out in one
    ``OPEN_VALUES`` frame, the peer's arrive in one, and the opened values
    are their ring sum.  With ``authenticate=True`` each round is followed
    by one ``OPEN_MAC`` tag-share swap and the batched SPDZ-style check of
    :mod:`repro.crypto.mac` — same key derivation, same lockstep tag
    stream, same error messages, so the MAC counters and any cheater abort
    are indistinguishable from an in-process authenticated run.

    ``tamper_round`` is the active-adversary hook for tests: on that
    opening round the server lies about its first outbound value *on the
    wire only* (its local arithmetic keeps the true value), which is
    exactly the one-sided tamper the MAC check is designed to catch.
    """

    def __init__(
        self,
        endpoint: WireEndpoint,
        role: int,
        ring,
        authenticate: bool = False,
        seed: int = 0,
        tamper_round: Optional[int] = None,
    ) -> None:
        self._endpoint = endpoint
        self._role = int(role)
        self._ring = ring
        self._authenticate = bool(authenticate)
        self._tamper_round = None if tamper_round is None else int(tamper_round)
        self._rounds_started = 0
        self.rounds_checked = 0
        self.values_checked = 0
        if self._authenticate:
            # Both servers derive the same key and tag stream from the run
            # seed — the distributed form of the in-process trusted-dealer
            # shortcut (the dealer already knows every secret it deals).
            self._key = MacKey.generate(int(seed), ring)
            self._tag_rng = derive_rng(stable_seed_from_name(_TAG_DOMAIN, int(seed)))

    def exchange(self, label: str, shares: Sequence, phase: Optional[str] = None) -> List:
        """Open one round of this server's *shares* against the peer's.

        Mirrors ``OpeningAuthenticator.exchange`` flattening: scalars and
        arrays concatenate into one value vector per round, and the opened
        results come back with their original shapes (scalars as ints).
        *phase* overrides the frame's accounting phase (the release opening
        is labelled ``release_opening`` but ledgered as
        ``noisy_count_share``); it defaults to the label.
        """
        fault_point("runtime.round")
        ring = self._ring
        parts: List[np.ndarray] = []
        layout: List[Tuple[bool, Tuple[int, ...], int]] = []
        for share in shares:
            scalar = not isinstance(share, np.ndarray)
            arr = np.atleast_1d(np.asarray(share, dtype=ring.dtype))
            layout.append((scalar, arr.shape, arr.size))
            parts.append(arr.ravel())
        values = np.concatenate(parts) if len(parts) > 1 else parts[0].ravel()
        total = int(values.size)
        round_index = self._rounds_started
        self._rounds_started += 1

        outbound = values
        if self._tamper_round is not None and self._tamper_round == round_index:
            # Lie on the wire only: the local combination keeps the true
            # values, so the inconsistency lives purely in the transcript.
            outbound = values.copy()
            outbound[0] = ring.add(int(outbound[0]), 1)

        meta = {"label": label, "round": round_index, "phase": phase or label}
        peer_meta, received = self._swap(KIND_OPEN_VALUES, meta, outbound)
        peer_role = 3 - self._role
        if peer_meta.get("label") != label or peer_meta.get("round") != round_index:
            raise WireFormatError(
                f"opening round desync with server {peer_role}: expected "
                f"round {round_index} ({label!r}), got round "
                f"{peer_meta.get('round')!r} ({peer_meta.get('label')!r})"
            )
        if received.shape != (total,):
            raise CheaterDetectedError(
                f"opening round {round_index} ({label!r}): server {peer_role} "
                f"sent a malformed round (expected {total} values, got values "
                f"{received.shape}) — truncation detected",
                label=label,
                round_index=round_index,
            )
        if received.dtype != ring.dtype:
            raise CheaterDetectedError(
                f"opening round {round_index} ({label!r}): server {peer_role} "
                f"sent dtype {received.dtype}, expected {ring.dtype}",
                label=label,
                round_index=round_index,
            )
        opened = ring.add(values, received)

        if self._authenticate:
            # Lockstep tag shares: both servers draw the identical tags1
            # vector, so the swapped sigmas cancel iff both opened the same
            # values.  sigma1 + sigma2 = alpha1 * (opened_2 - opened_1).
            tags1 = ring.random_array(total, self._tag_rng)
            if self._role == 1:
                sigma_own = ring.sub(tags1, ring.mul(self._key.alpha1, opened))
            else:
                tags2 = ring.sub(ring.mul(self._key.alpha(ring), opened), tags1)
                sigma_own = ring.sub(tags2, ring.mul(self._key.alpha2, opened))
            mac_meta = {"label": label, "round": round_index}
            _, sigma_theirs = self._swap(KIND_OPEN_MAC, mac_meta, sigma_own)
            if sigma_theirs.shape != (total,) or sigma_theirs.dtype != ring.dtype:
                raise CheaterDetectedError(
                    f"opening round {round_index} ({label!r}): server "
                    f"{peer_role} sent a malformed tag share — truncation "
                    "detected",
                    label=label,
                    round_index=round_index,
                )
            residual = ring.add(sigma_own, sigma_theirs)
            if np.any(residual):
                position = int(np.flatnonzero(residual)[0])
                raise CheaterDetectedError(
                    f"MAC check failed in opening round {round_index} "
                    f"({label!r}): {int(np.count_nonzero(residual))} of "
                    f"{total} opened values carry inconsistent tags "
                    f"(first at position {position}) — a server cheated",
                    label=label,
                    round_index=round_index,
                )
            self.rounds_checked += 1
            self.values_checked += total

        results: List = []
        offset = 0
        for scalar, shape, size in layout:
            chunk = opened[offset : offset + size]
            offset += size
            results.append(int(chunk[0]) if scalar else chunk.reshape(shape))
        return results

    def _swap(self, kind: int, meta: dict, array: np.ndarray):
        """Role-asymmetric exchange: role 1 sends first, role 2 receives first."""
        if self._role == 1:
            self._endpoint.send(kind, meta, [array])
            peer_meta, arrays = self._endpoint.recv_expect(kind)
        else:
            peer_meta, arrays = self._endpoint.recv_expect(kind)
            self._endpoint.send(kind, meta, [array])
        if len(arrays) != 1:
            raise WireFormatError(
                f"opening frame must carry exactly one array, got {len(arrays)}"
            )
        return peer_meta, arrays[0]


# ---------------------------------------------------------------------- #
# Role-side secure operations (one server's half of repro.crypto.secure_ops)
# ---------------------------------------------------------------------- #
def _multiply_pair(channel, role, ring, a, b, triple, views):
    """This role's side of ``secure_multiply_pair`` (one Beaver opening)."""
    e, f = channel.exchange(
        "beaver_opening", [ring.sub(a, triple.x), ring.sub(b, triple.y)]
    )
    if views is not None:
        views.observe(role, "beaver_opening", (e, f))
    share = ring.add(ring.add(triple.z, ring.mul(e, triple.y)), ring.mul(f, triple.x))
    if role == 2:
        share = ring.add(share, ring.mul(e, f))
    return share


def _multiply_triple(channel, role, ring, a, b, c, mg, views):
    """This role's side of ``secure_multiply_triple`` (Theorem 1)."""
    e, f, g = channel.exchange(
        "mg_opening", [ring.sub(a, mg.x), ring.sub(b, mg.y), ring.sub(c, mg.z)]
    )
    if views is not None:
        views.observe(role, "mg_opening", (e, f, g))
    fg = ring.mul(f, g)
    eg = ring.mul(e, g)
    ef = ring.mul(e, f)
    result = mg.w
    result = ring.add(result, ring.mul(mg.o, g))
    result = ring.add(result, ring.mul(mg.p, f))
    result = ring.add(result, ring.mul(mg.q, e))
    result = ring.add(result, ring.mul(mg.x, fg))
    result = ring.add(result, ring.mul(mg.y, eg))
    result = ring.add(result, ring.mul(mg.z, ef))
    if role == 2:
        result = ring.add(result, ring.mul(e, fg))
    return result


def _matrix_multiply(channel, role, ring, a, b, triple, views):
    """This role's side of ``secure_matrix_multiply`` (matrix Beaver)."""
    a = np.asarray(a, dtype=ring.dtype)
    b = np.asarray(b, dtype=ring.dtype)
    if np.shape(triple.x) != a.shape or np.shape(triple.y) != b.shape:
        raise ProtocolError(
            "matrix triple shape does not match the operands: "
            f"triple {np.shape(triple.x)}@{np.shape(triple.y)}, "
            f"operands {a.shape}@{b.shape}"
        )
    e, f = channel.exchange(
        "matrix_beaver_opening", [ring.sub(a, triple.x), ring.sub(b, triple.y)]
    )
    if views is not None:
        views.observe(role, "matrix_beaver_opening", (e, f))
    share = ring.add(
        ring.add(triple.z, ring.matmul(e, np.asarray(triple.y, dtype=ring.dtype))),
        ring.matmul(np.asarray(triple.x, dtype=ring.dtype), f),
    )
    if role == 2:
        share = ring.add(share, ring.matmul(e, f))
    return share


# ---------------------------------------------------------------------- #
# Correlated-randomness consumption (dealer PROVISION frames)
# ---------------------------------------------------------------------- #
def _recv_group(endpoint: WireEndpoint) -> MultiplicationGroup:
    """One multiplication-group half from the dealer link."""
    meta, arrays = endpoint.recv_expect(KIND_PROVISION)
    if meta.get("label") != "mg_group" or len(arrays) != len(MG_FIELDS):
        raise WireFormatError(
            f"expected an mg_group provisioning frame, got label "
            f"{meta.get('label')!r} with {len(arrays)} arrays"
        )
    return MultiplicationGroup(**dict(zip(MG_FIELDS, arrays)))


def _recv_triple(endpoint: WireEndpoint, label: str) -> BeaverTriple:
    """One Beaver-triple half (``matrix_triple`` / ``vector_triple``)."""
    meta, arrays = endpoint.recv_expect(KIND_PROVISION)
    if meta.get("label") != label or len(arrays) != 3:
        raise WireFormatError(
            f"expected a {label} provisioning frame, got label "
            f"{meta.get('label')!r} with {len(arrays)} arrays"
        )
    return BeaverTriple(x=arrays[0], y=arrays[1], z=arrays[2])


# ---------------------------------------------------------------------- #
# Count phase — one role's half of each serial backend schedule
# ---------------------------------------------------------------------- #
def _strict_upper_mask(ring, r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
    rows = np.arange(r0, r1, dtype=np.int64)[:, None]
    cols = np.arange(c0, c1, dtype=np.int64)[None, :]
    return (rows < cols).astype(ring.dtype)


def _upper_block(ring, shares: np.ndarray, r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
    block = shares[r0:r1, c0:c1]
    if r1 <= c0:
        return block
    return ring.mul(block, _strict_upper_mask(ring, r0, r1, c0, c1))


def _count_mg(dealer_ep, channel, ring, share, role, batch_size, views, tracer):
    """The faithful/batched schedule for this role's share matrix."""
    num_users = share.shape[0]
    total = 0
    triples_processed = 0
    opening_rounds = 0
    with tracer.span(
        "backend",
        backend="faithful" if batch_size == 1 else "batched",
        num_users=num_users,
        batch_size=batch_size,
        candidates=num_candidate_triples(num_users),
    ) as backend_span:
        for size, rows, cols in _gather_schedule(num_users, batch_size):
            gathered = share[rows, cols].reshape(3, size)
            group = _recv_group(dealer_ep)
            product = _multiply_triple(
                channel, role, ring, gathered[0], gathered[1], gathered[2], group, views
            )
            total = ring.add(total, ring.sum(product))
            triples_processed += size
            opening_rounds += 1
        backend_span.annotate(opening_rounds=opening_rounds)
    return int(total), triples_processed, opening_rounds


def _count_matrix(dealer_ep, channel, ring, share, role, views, tracer):
    """The monolithic matrix schedule for this role's share matrix."""
    n = share.shape[0]
    if n < 3:
        return 0, 0, 0
    num_triples = num_candidate_triples(n)
    with tracer.span("backend", backend="matrix", num_users=n, candidates=num_triples):
        upper_mask = np.triu(np.ones((n, n), dtype=ring.dtype), k=1)
        c = ring.mul(share, upper_mask)
        with tracer.span("offline"):
            matrix_triple = _recv_triple(dealer_ep, "matrix_triple")
            elementwise_triple = _recv_triple(dealer_ep, "vector_triple")
        with tracer.span("online", opening_rounds=2):
            m = _matrix_multiply(channel, role, ring, c.T.copy(), c, matrix_triple, views)
            prod = _multiply_pair(
                channel, role, ring, c, ring.mul(m, upper_mask), elementwise_triple, views
            )
            total = ring.sum(prod)
    return int(total), num_triples, 2


def _count_blocked(dealer_ep, channel, ring, share, role, block_size, views, tracer):
    """The blocked (tiled) serial schedule for this role's share matrix."""
    n = share.shape[0]
    if n < 3:
        return 0, 0, 0
    blocks = [(start, min(start + block_size, n)) for start in range(0, n, block_size)]
    total = 0
    opening_rounds = 0
    with tracer.span(
        "backend", backend="blocked", num_users=n, block_size=block_size
    ) as backend_span:
        for j0, j1 in blocks:
            for k0, k1 in blocks:
                if j0 >= k1 - 1:
                    continue
                rows_j = j1 - j0
                cols_k = k1 - k0
                with tracer.span("tile_group", j0=j0, k0=k0) as group_span:
                    m = np.zeros((rows_j, cols_k), dtype=ring.dtype)
                    group_rounds = 0
                    for i0, i1 in blocks:
                        if i0 >= j1 - 1:
                            continue
                        left = np.ascontiguousarray(
                            _upper_block(ring, share, i0, i1, j0, j1).T
                        )
                        right = _upper_block(ring, share, i0, i1, k0, k1)
                        tile_triple = _recv_triple(dealer_ep, "matrix_triple")
                        partial = _matrix_multiply(
                            channel, role, ring, left, right, tile_triple, views
                        )
                        m = ring.add(m, partial)
                        group_rounds += 1
                    tile_mask = _strict_upper_mask(ring, j0, j1, k0, k1)
                    c_tile = _upper_block(ring, share, j0, j1, k0, k1)
                    elementwise_triple = _recv_triple(dealer_ep, "vector_triple")
                    prod = _multiply_pair(
                        channel, role, ring, c_tile, ring.mul(m, tile_mask),
                        elementwise_triple, views,
                    )
                    total = ring.add(total, ring.sum(prod))
                    group_rounds += 1
                    group_span.annotate(opening_rounds=group_rounds)
                opening_rounds += group_rounds
        backend_span.annotate(opening_rounds=opening_rounds)
    return int(total), num_candidate_triples(n), opening_rounds


# ---------------------------------------------------------------------- #
# Release execution and the server main loop
# ---------------------------------------------------------------------- #
def _run_release(role, spec, driver_ep, dealer_ep, peer_ep) -> None:
    """One release: Max clamp (S1), count, perturb, final report."""
    started = time.perf_counter()
    ring = spec["ring"]
    n = int(spec["num_users"])
    telemetry_on = bool(spec.get("telemetry"))
    tracer = Tracer() if telemetry_on else NULL_TRACER
    views = ViewRecorder() if spec.get("record_views") else None
    channel = OpeningChannel(
        peer_ep,
        role=role,
        ring=ring,
        authenticate=bool(spec.get("authenticate")),
        seed=int(spec.get("seed") or 0),
        tamper_round=spec.get("tamper_round"),
    )
    driver_before = driver_ep.sent_summary()
    peer_before = peer_ep.sent_summary()

    plan = None
    if spec.get("fault_plan") and spec.get("fault_target") == f"server{role}":
        plan = FaultPlan.from_json(spec["fault_plan"])
    with install_fault_plan(plan):
        # Max — S1 computes the clamped noisy maximum from the users' noisy
        # degrees (skipped entirely on a checkpoint resume).
        if role == 1 and spec.get("run_max") and n > 0:
            meta, arrays = driver_ep.recv_expect(KIND_SHARES)
            if meta.get("phase") != "noisy_degree":
                raise WireFormatError(
                    f"expected the noisy_degree upload, got phase {meta.get('phase')!r}"
                )
            noisy = np.asarray(arrays[0], dtype=np.float64)
            noisy_max = float(np.max(noisy))
            noisy_max = min(noisy_max, float(n - 1) if n > 1 else 1.0)
            noisy_max = max(noisy_max, 1.0)
            driver_ep.send(
                KIND_RESULT,
                {"phase": "noisy_max_degree"},
                [np.array([noisy_max], dtype=np.float64)],
            )

        # Count — this role's share of the projected adjacency matrix.
        meta, arrays = driver_ep.recv_expect(KIND_SHARES)
        if meta.get("phase") != "adjacency_share":
            raise WireFormatError(
                f"expected the adjacency_share upload, got phase {meta.get('phase')!r}"
            )
        share = arrays[0]
        if share.shape != (n, n) or share.dtype != ring.dtype:
            raise WireFormatError(
                f"adjacency share must be a ({n}, {n}) {ring.dtype} matrix, "
                f"got {share.shape} {share.dtype}"
            )
        backend = spec["backend"]
        if backend in ("faithful", "batched"):
            batch_size = 1 if backend == "faithful" else int(spec["batch_size"])
            total, triples, rounds = _count_mg(
                dealer_ep, channel, ring, share, role, batch_size, views, tracer
            )
        elif backend == "matrix":
            total, triples, rounds = _count_matrix(
                dealer_ep, channel, ring, share, role, views, tracer
            )
        elif backend == "blocked":
            total, triples, rounds = _count_blocked(
                dealer_ep, channel, ring, share, role, int(spec["block_size"]),
                views, tracer,
            )
        else:
            raise ProtocolError(f"unknown counting backend {backend!r}")
        driver_ep.send(
            KIND_RESULT,
            {
                "stage": "count",
                "share": int(total),
                "triples": int(triples),
                "opening_rounds": int(rounds),
                "spans": tracer.roots if telemetry_on else [],
            },
        )

        # Perturb — aggregate the noise plane, lift the count share, and run
        # the MAC-checked release opening against the peer.
        meta, arrays = driver_ep.recv_expect(KIND_SHARES)
        if meta.get("phase") != "noise_share":
            raise WireFormatError(
                f"expected the noise_share upload, got phase {meta.get('phase')!r}"
            )
        factor = int(meta["factor"])
        plane = arrays[0]
        scaled = ring.mul(ring.encode(int(total)), factor)
        noisy_share = ring.add(scaled, ring.sum(plane))
        (opened,) = channel.exchange(
            "release_opening", [int(noisy_share)], phase="noisy_count_share"
        )

    driver_ep.send(
        KIND_RESULT,
        {
            "stage": "release",
            "noisy_share": int(noisy_share),
            "opened": int(opened),
            "rounds_checked": int(channel.rounds_checked),
            "values_checked": int(channel.values_checked),
            "views": views,
            "seconds": time.perf_counter() - started,
            "sent": {
                "driver": summary_delta(driver_before, driver_ep.sent_summary()),
                "peer": summary_delta(peer_before, peer_ep.sent_summary()),
            },
        },
    )


def run_server(role: int, driver_sock, dealer_sock, peer_sock) -> None:
    """Main loop of one computation-server process.

    Handshakes its three links (driver, dealer, peer — in that fixed order,
    which is what keeps the four-process handshake deadlock-free), then
    serves ``RUN`` control frames until ``SHUTDOWN`` or link EOF.  A failure
    inside a release is reported as an ``ERROR`` frame on *both* the peer
    and the driver link (so neither ever blocks on a round that will not
    come) and ends the process; an :class:`InjectedCrash` exits immediately
    with status 2, simulating the process dying mid-round.
    """
    name = f"server{int(role)}"
    driver_ep = WireEndpoint(driver_sock, name=name, peer="driver")
    dealer_ep = WireEndpoint(dealer_sock, name=name, peer="dealer")
    peer_ep = WireEndpoint(peer_sock, name=name, peer=f"server{3 - int(role)}")
    try:
        driver_ep.hello()
        dealer_ep.hello()
        peer_ep.hello()
        while True:
            try:
                meta, _ = driver_ep.recv_expect(KIND_CONTROL)
            except WireFormatError:
                break  # driver went away; nothing left to serve
            verb = meta.get("verb")
            if verb == CONTROL_SHUTDOWN:
                break
            if verb != CONTROL_RUN:
                driver_ep.send_error(
                    WireFormatError(f"{name} cannot handle control verb {verb!r}")
                )
                break
            try:
                _run_release(int(role), meta["spec"], driver_ep, dealer_ep, peer_ep)
            except InjectedCrash:
                os._exit(2)
            except BaseException as error:  # noqa: BLE001 - reported, then fatal
                peer_ep.send_error(error)
                driver_ep.send_error(error)
                break
    finally:
        driver_ep.close()
        dealer_ep.close()
        peer_ep.close()
