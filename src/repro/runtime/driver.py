"""The user-batch driver of the process-separated runtime.

:class:`DistributedRuntime` forks the dealer and the two computation servers
as separate OS processes, wires the four parties together with six
``socketpair`` links, and then drives the same four protocol phases the
in-process :class:`~repro.core.cargo.Cargo` orchestrator drives — Max,
Project, Count, Perturb — except that every share payload, every piece of
correlated randomness, and every opening round now physically crosses a
process boundary as :mod:`repro.runtime.wire` frames.

Three guarantees define the runtime:

* **Bit-identity** — the released count, the noisy maximum degree, the
  communication ledger, the recorded adversarial views, and the MAC
  counters are bit-identical to an in-process run with the same seed and
  configuration, for every counting backend.  The driver re-derives the
  same RNG substreams, the dealer replays the same provisioning order, and
  the servers execute the same serial ring arithmetic.
* **Ledger/wire reconciliation** — the
  :class:`~repro.crypto.protocol.CommunicationLedger` stops being a mere
  estimate: after every release the driver reconciles each ledgered
  phase's logical byte count against the payload bytes actually written to
  the transport for that phase, exactly (broadcasts reconcile as
  ``messages x physical payload``).  Framing overhead is reported
  separately in the ``transport`` summary, never mixed into protocol
  bytes.  A mismatch raises :class:`~repro.exceptions.RuntimeProcessError`.
* **Crash safety** — with a ``resilience`` checkpoint configured, the
  driver checkpoints the user-phase outputs (noisy degrees, projection)
  after Project; if a server process dies mid-round the run fails with
  :class:`RuntimeProcessError` and a fresh runtime resumes from the
  checkpoint, skipping the user-facing Max exchange and re-running the
  secure phases to the bit-identical release.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import socket
import time
from types import SimpleNamespace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.cargo import (
    feed_run_telemetry,
    record_cheater_event,
    resolve_sparse_mode,
)
from repro.core.config import CargoConfig
from repro.core.counting import CountResult
from repro.core.backends.base import share_adjacency_rows
from repro.core.max_degree import MaxDegreeEstimator
from repro.core.perturbation import DistributedPerturbation, PerturbationResult
from repro.core.projection import SimilarityProjection
from repro.core.result import CargoResult
from repro.crypto.protocol import TwoServerRuntime
from repro.crypto.sharing import share_scalar
from repro.dp.gamma_noise import stacked_noise_supported
from repro.exceptions import (
    CheaterDetectedError,
    ConfigurationError,
    RuntimeProcessError,
    WireFormatError,
)
from repro.resilience import Checkpointer, resolve_resilience
from repro.runtime.dealer import run_dealer
from repro.runtime.server import run_server
from repro.runtime.wire import (
    CONTROL_RUN,
    CONTROL_SHUTDOWN,
    KIND_CONTROL,
    KIND_RESULT,
    KIND_SHARES,
    WireEndpoint,
    summary_delta,
)
from repro.stats import create_statistic
from repro.telemetry import Tracer, resolve_telemetry
from repro.telemetry.spans import NULL_TRACER
from repro.utils.rng import (
    derive_rng,
    spawn_rngs,
    spawn_state_matrix,
    uniforms_from_states,
)

__all__ = ["DistributedRuntime", "run_distributed"]

_BACKENDS = ("faithful", "batched", "matrix", "blocked")

#: Frame kinds whose phased payloads correspond to ledgered protocol bytes.
_LEDGERED_KINDS = ("SHARES", "OPEN_VALUES", "RESULT")


def _validate_distributed_config(config: CargoConfig) -> None:
    """Reject configurations the process-separated runtime cannot honour."""
    if config.statistic != "triangles":
        raise ConfigurationError(
            "the distributed runtime currently serves the 'triangles' "
            f"statistic only, got {config.statistic!r}"
        )
    if getattr(config, "sparse", "auto") == "force":
        raise ConfigurationError(
            "sparse='force' has no distributed execution path (triangles "
            "never run sparse)"
        )
    if getattr(config, "workers", None):
        raise ConfigurationError(
            "in-process worker pools cannot cross the process boundary; "
            "unset workers for distributed runs"
        )
    if getattr(config, "triple_store", None) is not None:
        raise ConfigurationError(
            "triple stores are not supported by the distributed runtime; "
            "the dealer process provisions material directly"
        )
    if getattr(config, "tile_window", None):
        raise ConfigurationError(
            "tile_window streaming is not supported by the distributed runtime"
        )
    if getattr(config, "authenticator", None) is not None:
        raise ConfigurationError(
            "injected authenticators cannot be shipped to server processes; "
            "use authenticate=True instead"
        )
    if config.backend_name not in _BACKENDS:
        raise ConfigurationError(
            f"the distributed runtime has no schedule for backend "
            f"{config.backend_name!r}; supported: {', '.join(_BACKENDS)}"
        )


def _checkpoint_token(config: CargoConfig, num_users: int) -> str:
    """Fingerprint binding a distributed checkpoint to its configuration."""
    budget = config.resolved_budget()
    payload = "|".join(
        str(part)
        for part in (
            "distributed",
            num_users,
            config.statistic,
            config.backend_name,
            config.batch_size,
            config.block_size,
            config.fixed_point_bits,
            config.ring.mask,
            budget.epsilon1,
            budget.epsilon2,
            config.seed,
            config.offline_seed,
            config.authenticate,
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def _aggregate_transport(
    reports: List[Tuple[str, str, Dict[str, Dict[str, int]]]],
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Fold per-link sent-summaries into totals and per-phase payload bytes."""
    totals = {"frames": 0, "payload_bytes": 0, "wire_bytes": 0}
    by_phase: Dict[str, int] = {}
    for _process, _link, delta in reports:
        for key, counter in delta.items():
            kind_name, _, phase = key.partition("/")
            totals["frames"] += counter["frames"]
            totals["payload_bytes"] += counter["payload_bytes"]
            totals["wire_bytes"] += counter["wire_bytes"]
            if phase and kind_name in _LEDGERED_KINDS:
                by_phase[phase] = by_phase.get(phase, 0) + counter["payload_bytes"]
    return totals, by_phase


def _reconcile_ledger(
    ledger_phases: Dict[str, Dict[str, int]],
    by_phase: Dict[str, int],
    skip: Tuple[str, ...] = (),
) -> int:
    """Check every ledgered phase against the bytes the transport carried.

    Point-to-point phases must match exactly; broadcast phases
    (``noisy_max_degree``) reconcile as ``messages x physical payload``
    because one 8-byte frame logically fans out to every user.  Returns the
    total payload bytes accounted for by ledgered phases.
    """
    accounted = 0
    for phase, stats in ledger_phases.items():
        if phase in skip:
            continue
        carried = by_phase.get(phase, 0)
        accounted += carried
        if phase == "noisy_max_degree":
            matches = stats["bytes"] == stats["messages"] * carried
        else:
            matches = stats["bytes"] == carried
        if not matches:
            raise RuntimeProcessError(
                f"ledger/wire reconciliation failed for phase {phase!r}: the "
                f"ledger records {stats['bytes']} logical bytes over "
                f"{stats['messages']} messages but the transport carried "
                f"{carried} payload bytes"
            )
    return accounted


class DistributedRuntime:
    """A persistent four-process CARGO runtime.

    Forks the dealer and both servers once; every :meth:`run` call then
    executes one full release over the standing processes (the per-release
    cost is the protocol itself, not process startup).  Use as a context
    manager, or call :meth:`close` explicitly to shut the processes down.

    Parameters
    ----------
    config:
        The run configuration; defaults to ``CargoConfig()``.  Statistics
        other than triangles, worker pools, triple stores, tile windows and
        injected authenticators are rejected — see
        ``docs/distributed-runtime.md`` for the supported envelope.
    fault_plan / fault_target:
        Optional fault-injection schedule (JSON from
        :meth:`~repro.resilience.faults.FaultPlan.to_json`) installed in the
        named process (``"server1"`` / ``"server2"``) for chaos tests.
    tamper:
        Optional ``(role, round_index)`` pair instructing that server to lie
        on the wire in the given opening round — the active-adversary probe
        the MAC check must catch.
    """

    def __init__(
        self,
        config: Optional[CargoConfig] = None,
        fault_plan: Optional[str] = None,
        fault_target: Optional[str] = None,
        tamper: Optional[Tuple[int, int]] = None,
    ) -> None:
        self._config = config if config is not None else CargoConfig()
        _validate_distributed_config(self._config)
        self._fault_plan = fault_plan
        self._fault_target = fault_target
        self._tamper = tamper
        self._closed = False
        self._broken = False
        self._processes: List = []
        self._spawn_processes()

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    def _spawn_processes(self) -> None:
        ctx = multiprocessing.get_context("fork")
        d_s1, s1_d = socket.socketpair()
        d_s2, s2_d = socket.socketpair()
        d_dl, dl_d = socket.socketpair()
        s1_s2, s2_s1 = socket.socketpair()
        dl_s1, s1_dl = socket.socketpair()
        dl_s2, s2_dl = socket.socketpair()
        every = [d_s1, s1_d, d_s2, s2_d, d_dl, dl_d, s1_s2, s2_s1, dl_s1, s1_dl, dl_s2, s2_dl]

        def entry(target, own):
            # Each process closes every link end it does not own, so a dead
            # process is observed as EOF by every peer (no hung recvs).
            def main() -> None:
                keep = {id(sock) for sock in own}
                for sock in every:
                    if id(sock) not in keep:
                        sock.close()
                target(*own)

            return main

        plans = [
            (entry(lambda a, b, c: run_server(1, a, b, c), (s1_d, s1_dl, s1_s2)), "server1"),
            (entry(lambda a, b, c: run_server(2, a, b, c), (s2_d, s2_dl, s2_s1)), "server2"),
            (entry(run_dealer, (dl_d, dl_s1, dl_s2)), "dealer"),
        ]
        for main, name in plans:
            process = ctx.Process(target=main, name=f"repro-{name}", daemon=True)
            process.start()
            self._processes.append(process)
        for sock in (s1_d, s1_dl, s1_s2, s2_d, s2_dl, s2_s1, dl_d, dl_s1, dl_s2):
            sock.close()
        self._s1 = WireEndpoint(d_s1, name="driver", peer="server1")
        self._s2 = WireEndpoint(d_s2, name="driver", peer="server2")
        self._dealer = WireEndpoint(d_dl, name="driver", peer="dealer")
        self._s1.hello()
        self._s2.hello()
        self._dealer.hello()

    def __enter__(self) -> "DistributedRuntime":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the dealer and server processes and close every link."""
        if self._closed:
            return
        self._closed = True
        for endpoint in (self._s1, self._s2, self._dealer):
            try:
                endpoint.send(KIND_CONTROL, {"verb": CONTROL_SHUTDOWN})
            except Exception:  # noqa: BLE001 - link may already be dead
                pass
            endpoint.close()
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2)

    def _fail(self, error: BaseException) -> RuntimeProcessError:
        """Mark the runtime unusable after a mid-run failure and wrap it."""
        self._broken = True
        self.close()
        if isinstance(error, RuntimeProcessError):
            return error
        return RuntimeProcessError(f"distributed run failed: {error}")

    # ------------------------------------------------------------------ #
    # One release
    # ------------------------------------------------------------------ #
    def run(self, graph, views=None) -> CargoResult:
        """Execute one full release of *graph* over the standing processes."""
        if self._closed or self._broken:
            raise RuntimeProcessError(
                "this DistributedRuntime is closed; create a fresh one"
            )
        try:
            return self._run_release(graph, views)
        except CheaterDetectedError as error:
            record_cheater_event(
                self._config,
                resolve_telemetry(self._config),
                backend=self._config.backend_name,
                error=error,
            )
            self._broken = True
            self.close()
            raise
        except (WireFormatError, RuntimeProcessError, OSError, EOFError) as error:
            raise self._fail(error) from error

    def _run_release(self, graph, views) -> CargoResult:
        config = self._config
        driver_started = time.perf_counter()
        budget = config.resolved_budget()
        statistic = create_statistic(config.statistic, config)
        telemetry = resolve_telemetry(config)
        resilience = resolve_resilience(config)
        tracer = telemetry.tracer if telemetry.enabled else Tracer()
        master_rng = derive_rng(config.seed)
        max_rng, share_rng, noise_rng, dealer_rng = spawn_rngs(master_rng, 4)
        if config.offline_seed is not None:
            dealer_rng = derive_rng(config.offline_seed)
        n = graph.num_nodes
        ring = config.ring

        # The ledger is always kept — it is the reconciliation oracle — but
        # it only surfaces in the result when the caller asked for it, so
        # results stay bit-identical to in-process runs either way.
        runtime = TwoServerRuntime(n)

        checkpointer = None
        if resilience.checkpoint_path is not None:
            checkpointer = Checkpointer(
                resilience.checkpoint_path,
                kind="distributed",
                token=_checkpoint_token(config, n),
                retry=resilience.retry,
                metrics=telemetry.metrics if telemetry.enabled else None,
            )
        resumed = None
        if checkpointer is not None and resilience.resume and checkpointer.exists():
            resumed = checkpointer.load()

        spec = {
            "backend": config.backend_name,
            "batch_size": config.batch_size,
            "block_size": config.block_size,
            "ring": ring,
            "authenticate": bool(config.authenticate),
            "seed": int(getattr(config, "seed", 0) or 0),
            "record_views": views is not None,
            "telemetry": telemetry.enabled,
            "num_users": n,
            "run_max": resumed is None,
        }
        specs = {1: dict(spec), 2: dict(spec)}
        if self._tamper is not None:
            role, round_index = self._tamper
            specs[int(role)]["tamper_round"] = int(round_index)
        if self._fault_plan is not None and self._fault_target in ("server1", "server2"):
            target_role = 1 if self._fault_target == "server1" else 2
            specs[target_role]["fault_plan"] = self._fault_plan
            specs[target_role]["fault_target"] = self._fault_target
        dealer_spec = {
            "backend": config.backend_name,
            "ring": ring,
            "num_users": n,
            "batch_size": config.batch_size,
            "block_size": config.block_size,
            "dealer_rng": dealer_rng,
        }

        sent_before = {
            "server1": self._s1.sent_summary(),
            "server2": self._s2.sent_summary(),
            "dealer": self._dealer.sent_summary(),
        }
        self._s1.send(KIND_CONTROL, {"verb": CONTROL_RUN, "spec": specs[1]})
        self._s2.send(KIND_CONTROL, {"verb": CONTROL_RUN, "spec": specs[2]})
        self._dealer.send(KIND_CONTROL, {"verb": CONTROL_RUN, "spec": dealer_spec})

        with tracer.span(
            "total", backend=config.backend_name, statistic=config.statistic
        ) as run_span:
            # -------------------------------------------------------- #
            # Max — S1 genuinely computes d'_max from the uploaded noisy
            # degrees; the driver cross-checks it against the local clamp.
            # -------------------------------------------------------- #
            with tracer.span("max"):
                if resumed is None:
                    estimator = MaxDegreeEstimator(budget.epsilon1)
                    max_result = estimator.run(
                        graph.degrees(), rng=max_rng, runtime=runtime
                    )
                    noisy_degrees = max_result.noisy_degrees
                    noisy_max = max_result.noisy_max_degree
                    if n > 0:
                        noisy_array = np.asarray(noisy_degrees, dtype=np.float64)
                        self._s1.send(
                            KIND_SHARES, {"phase": "noisy_degree"}, [noisy_array]
                        )
                        meta, arrays = self._s1.recv_expect(KIND_RESULT)
                        if meta.get("phase") != "noisy_max_degree":
                            raise RuntimeProcessError(
                                "server1 answered the Max phase with "
                                f"{meta.get('phase')!r}"
                            )
                        remote_max = float(arrays[0][0])
                        if remote_max != noisy_max:
                            raise RuntimeProcessError(
                                f"server1 computed d'_max={remote_max!r}, the "
                                f"driver expected {noisy_max!r}"
                            )
                else:
                    noisy_degrees = list(resumed["noisy_degrees"])
                    noisy_max = float(resumed["noisy_max"])
                    if n > 0:
                        # Replay the ledger records the live exchange would
                        # have produced; reconciliation skips these phases.
                        runtime.users_to_server(
                            1,
                            "noisy_degree",
                            np.asarray(noisy_degrees, dtype=np.float64),
                        )
                        runtime.broadcast_to_users(1, "noisy_max_degree", noisy_max)

            # -------------------------------------------------------- #
            # Project — driver-local degree bounding (the users' step).
            # -------------------------------------------------------- #
            use_sparse = resolve_sparse_mode(config, statistic)
            if use_sparse:
                raise ConfigurationError(
                    "sparse execution is not supported by the distributed runtime"
                )
            with tracer.span("project", sparse=use_sparse):
                if resumed is None:
                    projection = SimilarityProjection(noisy_max)
                    projection_result = projection.project_graph(
                        graph, noisy_degrees=noisy_degrees
                    )
                    projected_rows = projection_result.projected_rows
                    edges_removed = projection_result.edges_removed
                    projected_count = statistic.projected_count(projected_rows)
                else:
                    projected_rows = np.asarray(resumed["projected_rows"])
                    edges_removed = int(resumed["edges_removed"])
                    projected_count = int(resumed["projected_count"])

            if checkpointer is not None and resumed is None:
                checkpointer.save(
                    {
                        "num_users": n,
                        "noisy_degrees": noisy_degrees,
                        "noisy_max": noisy_max,
                        "projected_rows": projected_rows,
                        "edges_removed": edges_removed,
                        "projected_count": projected_count,
                    }
                )

            # -------------------------------------------------------- #
            # Count — share upload, then the servers run the backend.
            # -------------------------------------------------------- #
            share_tracer = (
                telemetry.tracer
                if telemetry.enabled and config.track_communication
                else NULL_TRACER
            )
            with tracer.span("count", backend=config.backend_name) as count_span:
                with share_tracer.span(
                    "share", num_users=int(np.asarray(projected_rows).shape[0])
                ):
                    share1, share2 = share_adjacency_rows(
                        projected_rows, ring=ring, rng=share_rng
                    )
                    runtime.users_to_server(1, "adjacency_share", share1)
                    runtime.users_to_server(2, "adjacency_share", share2)
                self._s1.send(KIND_SHARES, {"phase": "adjacency_share"}, [share1])
                self._s2.send(KIND_SHARES, {"phase": "adjacency_share"}, [share2])
                meta1, _ = self._s1.recv_expect(KIND_RESULT)
                meta2, _ = self._s2.recv_expect(KIND_RESULT)
                if meta1.get("stage") != "count" or meta2.get("stage") != "count":
                    raise RuntimeProcessError(
                        "servers answered the Count phase out of order: "
                        f"{meta1.get('stage')!r} / {meta2.get('stage')!r}"
                    )
                if (
                    meta1["triples"] != meta2["triples"]
                    or meta1["opening_rounds"] != meta2["opening_rounds"]
                ):
                    raise RuntimeProcessError(
                        "the two servers disagree on the counting schedule: "
                        f"{meta1['triples']}/{meta1['opening_rounds']} vs "
                        f"{meta2['triples']}/{meta2['opening_rounds']}"
                    )
                count_result = CountResult(
                    share1=int(meta1["share"]),
                    share2=int(meta2["share"]),
                    num_triples_processed=int(meta1["triples"]),
                    opening_rounds=int(meta1["opening_rounds"]),
                )
                if telemetry.enabled and meta1.get("spans"):
                    # Server 1's span tree is the canonical backend trace —
                    # both servers execute the identical schedule.
                    count_span.children.extend(meta1["spans"])

            # -------------------------------------------------------- #
            # Perturb — the users' noise planes, then the MAC-checked
            # release opening between the servers.
            # -------------------------------------------------------- #
            with tracer.span("perturb"):
                perturbation = DistributedPerturbation(
                    epsilon2=budget.epsilon2,
                    sensitivity=statistic.secure_output_sensitivity(noisy_max),
                    num_users=max(n, 1),
                    ring=ring,
                    fixed_point_bits=config.fixed_point_bits,
                )
                noise = perturbation.noise_config
                factor = noise.fixed_point_factor
                num_noise_users = noise.num_users
                if stacked_noise_supported():
                    states = spawn_state_matrix(noise_rng, num_noise_users, words=3)
                    gammas = noise.sample_noises_from_uniforms(
                        uniforms_from_states(states[:, 0]),
                        uniforms_from_states(states[:, 1]),
                    )
                    encoded = noise.encode_array(gammas)
                    noise_total_encoded = int(np.sum(encoded.astype(object)))
                    share1_plane = states[:, 2] & np.uint64(ring.mask)
                    share2_plane = ring.sub(ring.encode(encoded), share1_plane)
                else:
                    user_rngs = spawn_rngs(noise_rng, num_noise_users)
                    noise_total_encoded = 0
                    share1_list = []
                    share2_list = []
                    for user_rng in user_rngs:
                        gamma = noise.sample_user_noise(user_rng)
                        encoded_value = noise.encode(gamma)
                        noise_total_encoded += encoded_value
                        pair = share_scalar(encoded_value, ring=ring, rng=user_rng)
                        share1_list.append(pair.share1)
                        share2_list.append(pair.share2)
                    share1_plane = np.asarray(share1_list, dtype=ring.dtype)
                    share2_plane = np.asarray(share2_list, dtype=ring.dtype)
                runtime.users_to_server(1, "noise_share", share1_plane)
                runtime.users_to_server(2, "noise_share", share2_plane)
                noise_meta = {"phase": "noise_share", "factor": int(factor)}
                self._s1.send(KIND_SHARES, noise_meta, [share1_plane])
                self._s2.send(KIND_SHARES, noise_meta, [share2_plane])
                final1, _ = self._s1.recv_expect(KIND_RESULT)
                final2, _ = self._s2.recv_expect(KIND_RESULT)
                if final1.get("stage") != "release" or final2.get("stage") != "release":
                    raise RuntimeProcessError(
                        "servers answered the Perturb phase out of order: "
                        f"{final1.get('stage')!r} / {final2.get('stage')!r}"
                    )
                noisy_share1 = int(final1["noisy_share"])
                noisy_share2 = int(final2["noisy_share"])
                runtime.server_to_server(1, 2).send("noisy_count_share", noisy_share1)
                runtime.server_to_server(2, 1).send("noisy_count_share", noisy_share2)
                opened = int(final1["opened"])
                if opened != int(final2["opened"]) or opened != int(
                    ring.add(noisy_share1, noisy_share2)
                ):
                    raise RuntimeProcessError(
                        "the release opening does not reconstruct: "
                        f"{final1['opened']} / {final2['opened']} vs shares "
                        f"{noisy_share1} + {noisy_share2}"
                    )
                perturb_result = PerturbationResult(
                    noisy_count=float(ring.decode_signed(opened) / factor),
                    aggregate_noise=noise.decode(noise_total_encoded),
                    noisy_share1=noisy_share1,
                    noisy_share2=noisy_share2,
                    epsilon2=noise.epsilon,
                    sensitivity=noise.sensitivity,
                )

        # Dealer report (sent as soon as its replay finished, read last).
        dealer_meta, _ = self._dealer.recv_expect(KIND_RESULT)
        if dealer_meta.get("stage") != "dealer":
            raise RuntimeProcessError(
                f"dealer answered with stage {dealer_meta.get('stage')!r}"
            )

        # Adversarial views and MAC counters, merged in server order.
        if views is not None:
            views.merge_from(final1["views"])
            views.merge_from(final2["views"])
        authenticator = None
        if config.authenticate:
            if (
                final1["rounds_checked"] != final2["rounds_checked"]
                or final1["values_checked"] != final2["values_checked"]
            ):
                raise RuntimeProcessError(
                    "the two servers disagree on the MAC counters: "
                    f"{final1['rounds_checked']}/{final1['values_checked']} vs "
                    f"{final2['rounds_checked']}/{final2['values_checked']}"
                )
            authenticator = SimpleNamespace(
                enabled=True,
                rounds_checked=int(final1["rounds_checked"]),
                values_checked=int(final1["values_checked"]),
            )

        # ------------------------------------------------------------ #
        # Ledger/wire reconciliation and the transport summary.
        # ------------------------------------------------------------ #
        reports: List[Tuple[str, str, Dict]] = [
            ("driver", "server1", summary_delta(sent_before["server1"], self._s1.sent_summary())),
            ("driver", "server2", summary_delta(sent_before["server2"], self._s2.sent_summary())),
            ("driver", "dealer", summary_delta(sent_before["dealer"], self._dealer.sent_summary())),
            ("server1", "driver", final1["sent"]["driver"]),
            ("server1", "server2", final1["sent"]["peer"]),
            ("server2", "driver", final2["sent"]["driver"]),
            ("server2", "server1", final2["sent"]["peer"]),
            ("dealer", "server1", dealer_meta["sent"]["server1"]),
            ("dealer", "server2", dealer_meta["sent"]["server2"]),
        ]
        totals, by_phase = _aggregate_transport(reports)
        ledger_phases = runtime.ledger.phase_summary()
        skip = ("noisy_degree", "noisy_max_degree") if resumed is not None else ()
        accounted = _reconcile_ledger(ledger_phases, by_phase, skip=skip)
        transport = {
            "frames": totals["frames"],
            "payload_bytes": totals["payload_bytes"],
            "wire_bytes": totals["wire_bytes"],
            "overhead_bytes": totals["wire_bytes"] - totals["payload_bytes"],
            "unledgered_payload_bytes": totals["payload_bytes"] - accounted,
            "processes": {
                "driver": time.perf_counter() - driver_started,
                "server1": float(final1.get("seconds", 0.0)),
                "server2": float(final2.get("seconds", 0.0)),
                "dealer": float(dealer_meta.get("seconds", 0.0)),
            },
        }

        # ------------------------------------------------------------ #
        # Result assembly — identical to the in-process orchestrator.
        # ------------------------------------------------------------ #
        true_count = statistic.plain_count(graph)
        noisy_count = statistic.finalise(perturb_result.noisy_count)
        timings = run_span.timings()
        communication_phases = ledger_phases if config.track_communication else {}
        result_telemetry = feed_run_telemetry(
            config,
            telemetry,
            backend=config.backend_name,
            timings=timings,
            communication_phases=communication_phases,
            count_result=count_result,
            budget=budget,
            noisy_count=noisy_count,
            true_count=true_count,
            projected_count=projected_count,
            noisy_max_degree=noisy_max,
            authenticator=authenticator,
            transport=transport,
        )
        return CargoResult(
            noisy_triangle_count=noisy_count,
            true_triangle_count=true_count,
            projected_triangle_count=projected_count,
            noisy_max_degree=noisy_max,
            epsilon1=budget.epsilon1,
            epsilon2=budget.epsilon2,
            edges_removed=edges_removed,
            timings=timings,
            communication=runtime.ledger.summary() if config.track_communication else {},
            communication_phases=communication_phases,
            backend=config.backend_name,
            statistic=config.statistic,
            telemetry=result_telemetry,
        )


def run_distributed(
    graph,
    config: Optional[CargoConfig] = None,
    views=None,
    fault_plan: Optional[str] = None,
    fault_target: Optional[str] = None,
    tamper: Optional[Tuple[int, int]] = None,
) -> CargoResult:
    """One-shot convenience: fork the runtime, run one release, shut down."""
    with DistributedRuntime(
        config,
        fault_plan=fault_plan,
        fault_target=fault_target,
        tamper=tamper,
    ) as runtime:
        return runtime.run(graph, views=views)
