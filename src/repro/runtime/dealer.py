"""The dealer process of the process-separated runtime.

The in-process engine keeps the trusted dealer as an object the backends call
into mid-protocol.  Here the dealer is what the paper actually describes: a
third process that knows the counting schedule, deals every piece of
correlated randomness *in the exact order the serial backends consume it*,
and ships each half to its server as ``PROVISION`` frames.  Because both the
dealer classes (:class:`~repro.crypto.multiplication_groups.MultiplicationGroupDealer`,
:class:`~repro.crypto.beaver.BeaverTripleDealer`) and the replayed schedule
are identical to the in-process ones — same RNG stream, same bulk-provision
chunking, same draw order — the dealt material is bit-identical, which is
what makes the whole distributed transcript bit-identical.

The dealer never sees the graph, the shares, or any opened value: its links
carry correlated randomness out and nothing in, matching the non-collusion
assumption the privacy argument rests on.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.core.backends.base import num_candidate_triples
from repro.core.backends.faithful import DEFAULT_PROVISION_LIMIT
from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.multiplication_groups import MG_FIELDS, MultiplicationGroupDealer
from repro.exceptions import WireFormatError
from repro.runtime.wire import (
    CONTROL_RUN,
    CONTROL_SHUTDOWN,
    KIND_CONTROL,
    KIND_PROVISION,
    KIND_RESULT,
    WireEndpoint,
    summary_delta,
)

__all__ = ["run_dealer"]


def _deal_mg(spec: Dict, server1: WireEndpoint, server2: WireEndpoint) -> None:
    """Replay the faithful/batched provisioning order and ship each group."""
    ring = spec["ring"]
    n = int(spec["num_users"])
    batch_size = 1 if spec["backend"] == "faithful" else int(spec["batch_size"])
    dealer = MultiplicationGroupDealer(ring=ring, seed=spec["dealer_rng"])
    provision_limit = DEFAULT_PROVISION_LIMIT
    to_provision = num_candidate_triples(n) if provision_limit else 0
    remaining = num_candidate_triples(n)
    while remaining:
        size = min(batch_size, remaining)
        remaining -= size
        while to_provision and dealer.provisioned_remaining < size:
            draw = min(to_provision, provision_limit)
            dealer.provision(draw)
            to_provision -= draw
        group = dealer.vector_group((size,))
        meta = {"label": "mg_group"}
        server1.send(
            KIND_PROVISION, meta, [getattr(group.server1, field) for field in MG_FIELDS]
        )
        server2.send(
            KIND_PROVISION, meta, [getattr(group.server2, field) for field in MG_FIELDS]
        )


def _ship_triple(pair, label: str, server1: WireEndpoint, server2: WireEndpoint) -> None:
    meta = {"label": label}
    server1.send(KIND_PROVISION, meta, [pair.server1.x, pair.server1.y, pair.server1.z])
    server2.send(KIND_PROVISION, meta, [pair.server2.x, pair.server2.y, pair.server2.z])


def _deal_matrix(spec: Dict, server1: WireEndpoint, server2: WireEndpoint) -> None:
    """Replay the matrix backend's two offline draws."""
    ring = spec["ring"]
    n = int(spec["num_users"])
    if n < 3:
        return
    dealer = BeaverTripleDealer(ring=ring, seed=spec["dealer_rng"])
    _ship_triple(dealer.matrix_triple((n, n), (n, n)), "matrix_triple", server1, server2)
    _ship_triple(dealer.vector_triple((n, n)), "vector_triple", server1, server2)


def _deal_blocked(spec: Dict, server1: WireEndpoint, server2: WireEndpoint) -> None:
    """Replay the blocked backend's serial tile order, draw by draw."""
    ring = spec["ring"]
    n = int(spec["num_users"])
    block_size = int(spec["block_size"])
    if n < 3:
        return
    dealer = BeaverTripleDealer(ring=ring, seed=spec["dealer_rng"])
    blocks = [(start, min(start + block_size, n)) for start in range(0, n, block_size)]
    for j0, j1 in blocks:
        for k0, k1 in blocks:
            if j0 >= k1 - 1:
                continue
            rows_j = j1 - j0
            cols_k = k1 - k0
            for i0, i1 in blocks:
                if i0 >= j1 - 1:
                    continue
                _ship_triple(
                    dealer.matrix_triple((rows_j, i1 - i0), (i1 - i0, cols_k)),
                    "matrix_triple",
                    server1,
                    server2,
                )
            _ship_triple(
                dealer.vector_triple((rows_j, cols_k)), "vector_triple", server1, server2
            )


_DEALERS = {
    "faithful": _deal_mg,
    "batched": _deal_mg,
    "matrix": _deal_matrix,
    "blocked": _deal_blocked,
}


def run_dealer(driver_sock, s1_sock, s2_sock) -> None:
    """Main loop of the dealer process.

    Handshakes driver, server 1, server 2 (in that order), then serves one
    full provisioning replay per ``RUN`` control frame.  Any failure — a
    server dying mid-provision surfaces here as a send error — is reported
    to the driver as an ``ERROR`` frame and ends the process.
    """
    driver_ep = WireEndpoint(driver_sock, name="dealer", peer="driver")
    server1 = WireEndpoint(s1_sock, name="dealer", peer="server1")
    server2 = WireEndpoint(s2_sock, name="dealer", peer="server2")
    try:
        driver_ep.hello()
        server1.hello()
        server2.hello()
        while True:
            try:
                meta, _ = driver_ep.recv_expect(KIND_CONTROL)
            except WireFormatError:
                break  # driver went away
            verb = meta.get("verb")
            if verb == CONTROL_SHUTDOWN:
                break
            if verb != CONTROL_RUN:
                driver_ep.send_error(
                    WireFormatError(f"dealer cannot handle control verb {verb!r}")
                )
                break
            spec = meta["spec"]
            try:
                deal = _DEALERS.get(spec["backend"])
                if deal is None:
                    raise WireFormatError(
                        f"dealer has no schedule for backend {spec['backend']!r}"
                    )
                started = time.perf_counter()
                before1 = server1.sent_summary()
                before2 = server2.sent_summary()
                deal(spec, server1, server2)
                driver_ep.send(
                    KIND_RESULT,
                    {
                        "stage": "dealer",
                        "seconds": time.perf_counter() - started,
                        "sent": {
                            "server1": summary_delta(before1, server1.sent_summary()),
                            "server2": summary_delta(before2, server2.sent_summary()),
                        },
                    },
                )
            except BaseException as error:  # noqa: BLE001 - reported, then fatal
                driver_ep.send_error(error)
                break
    finally:
        driver_ep.close()
        server1.close()
        server2.close()
