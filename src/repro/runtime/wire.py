"""Versioned, length-prefixed binary wire format for the distributed runtime.

Every message crossing a runtime link is one **frame**::

    +-------+---------+------+----------+-------------+------+---------+
    | magic | version | kind | meta_len | payload_len | meta | payload |
    | 4 B   | u16     | u16  | u32      | u64         | ...  | ...     |
    +-------+---------+------+----------+-------------+------+---------+

with all header fields little-endian (``struct`` format ``<4sHHIQ``,
20 bytes).  ``meta`` is a pickled dict of small control fields (phase label,
sequence number, array descriptors); ``payload`` is the raw concatenation of
the C-order buffers of every numpy array the frame carries.  Pickle is
acceptable for the *meta* block because every link connects processes forked
from the same trusted parent — the wire format's job is framing and byte
accounting, not cross-trust-domain hardening — while the bulk share payloads
never round-trip through pickle at all: they are scattered straight from the
array buffers with ``socket.sendmsg`` and gathered back with ``recv_into``,
so serialisation is zero-copy in both directions.

One frame carries one protocol event (an opening round, a provisioning item,
a share matrix), never one element — the framing overhead is 20 bytes plus a
small meta dict per *round*, which is what keeps the wire path from giving
back what process parallelism gains.

Frames carry a per-direction sequence number checked on receipt, and every
decode failure — bad magic, unsupported version, unknown kind, length
mismatch, truncation/EOF, out-of-order sequence — raises the typed
:class:`~repro.exceptions.WireFormatError` before any payload byte is
interpreted as a share.

Examples
--------
>>> import numpy as np
>>> frame = encode_frame_bytes(KIND_SHARES, {"phase": "adjacency_share"},
...                            [np.arange(4, dtype=np.uint64)])
>>> kind, meta, arrays = decode_frame(frame)
>>> kind == KIND_SHARES, meta["phase"], arrays[0].tolist()
(True, 'adjacency_share', [0, 1, 2, 3])
"""

from __future__ import annotations

import pickle
import struct
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import (
    CheaterDetectedError,
    ProtocolError,
    RuntimeProcessError,
    WireFormatError,
)

__all__ = [
    "WIRE_VERSION",
    "MAGIC",
    "HEADER",
    "KIND_HELLO",
    "KIND_CONTROL",
    "KIND_PROVISION",
    "KIND_SHARES",
    "KIND_OPEN_VALUES",
    "KIND_OPEN_MAC",
    "KIND_RESULT",
    "KIND_ERROR",
    "KIND_NAMES",
    "CONTROL_RUN",
    "CONTROL_CHECKPOINT",
    "CONTROL_ABORT",
    "CONTROL_SHUTDOWN",
    "WireEndpoint",
    "decode_frame",
    "encode_error_meta",
    "encode_frame_bytes",
    "raise_remote_error",
    "summary_delta",
]

#: Version of the wire format; bumped on any incompatible framing change.
WIRE_VERSION = 1

#: Frame preamble — rejects cross-talk from anything that is not a peer.
MAGIC = b"CRGO"

#: Fixed-size frame header: magic, version, kind, meta length, payload length.
HEADER = struct.Struct("<4sHHIQ")

# ---------------------------------------------------------------------- #
# Message kinds
# ---------------------------------------------------------------------- #
KIND_HELLO = 1  #: link handshake (wire version + role names)
KIND_CONTROL = 2  #: control verbs: run / checkpoint / abort / shutdown
KIND_PROVISION = 3  #: dealer -> server correlated-randomness halves
KIND_SHARES = 4  #: driver -> server user share payloads
KIND_OPEN_VALUES = 5  #: server <-> server opening-round value vectors
KIND_OPEN_MAC = 6  #: server <-> server MAC tag-share vectors
KIND_RESULT = 7  #: server -> driver phase or run results
KIND_ERROR = 8  #: any -> any typed error report

KIND_NAMES: Dict[int, str] = {
    KIND_HELLO: "HELLO",
    KIND_CONTROL: "CONTROL",
    KIND_PROVISION: "PROVISION",
    KIND_SHARES: "SHARES",
    KIND_OPEN_VALUES: "OPEN_VALUES",
    KIND_OPEN_MAC: "OPEN_MAC",
    KIND_RESULT: "RESULT",
    KIND_ERROR: "ERROR",
}

#: Control verbs carried in a CONTROL frame's ``meta["verb"]``.
CONTROL_RUN = "run"
CONTROL_CHECKPOINT = "checkpoint"
CONTROL_ABORT = "abort"
CONTROL_SHUTDOWN = "shutdown"

# Guard rails: a corrupted length field must not make a receiver allocate
# gigabytes before the frame is rejected.  Generous for real traffic (the
# largest legitimate payload is a few n^2 x 8-byte share matrices).
MAX_META_LEN = 1 << 24
MAX_PAYLOAD_LEN = 1 << 34


def _array_parts(arrays: Sequence[np.ndarray]) -> Tuple[List[Tuple[str, Tuple[int, ...]]], List[memoryview], int]:
    """Descriptors, flat byte views, and total byte length for *arrays*."""
    descriptors: List[Tuple[str, Tuple[int, ...]]] = []
    views: List[memoryview] = []
    total = 0
    for array in arrays:
        array = np.asarray(array)
        if not array.flags.c_contiguous:
            array = np.ascontiguousarray(array)
        descriptors.append((array.dtype.str, tuple(int(dim) for dim in array.shape)))
        # Flatten before casting: 0-d and zero-length arrays cannot be cast
        # to a byte view directly (reshape of a contiguous array is free).
        view = memoryview(array.reshape(-1)).cast("B")
        views.append(view)
        total += view.nbytes
    return descriptors, views, total


def _decode_arrays(
    descriptors: Sequence[Tuple[str, Sequence[int]]], payload: memoryview
) -> List[np.ndarray]:
    """Rebuild the frame's arrays as views over *payload* (no copies)."""
    arrays: List[np.ndarray] = []
    offset = 0
    total = payload.nbytes
    for dtype_str, shape in descriptors:
        try:
            dtype = np.dtype(dtype_str)
        except TypeError as error:
            raise WireFormatError(f"frame carries unknown dtype {dtype_str!r}") from error
        shape = tuple(int(dim) for dim in shape)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = count * dtype.itemsize
        if offset + nbytes > total:
            raise WireFormatError(
                f"frame payload too short: array {dtype_str}{shape} needs "
                f"{nbytes} bytes at offset {offset} of a {total}-byte payload"
            )
        array = np.frombuffer(payload, dtype=dtype, count=count, offset=offset)
        arrays.append(array.reshape(shape))
        offset += nbytes
    if offset != total:
        raise WireFormatError(
            f"frame payload length mismatch: descriptors cover {offset} bytes "
            f"but the payload holds {total}"
        )
    return arrays


def _unpack_header(header: bytes) -> Tuple[int, int, int]:
    """Validate a raw header; return (kind, meta_len, payload_len)."""
    magic, version, kind, meta_len, payload_len = HEADER.unpack(header)
    if magic != MAGIC:
        raise WireFormatError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version} (this runtime speaks {WIRE_VERSION})"
        )
    if kind not in KIND_NAMES:
        raise WireFormatError(f"unknown frame kind {kind}")
    if meta_len > MAX_META_LEN:
        raise WireFormatError(f"frame meta length {meta_len} exceeds the {MAX_META_LEN} cap")
    if payload_len > MAX_PAYLOAD_LEN:
        raise WireFormatError(
            f"frame payload length {payload_len} exceeds the {MAX_PAYLOAD_LEN} cap"
        )
    return kind, meta_len, payload_len


def _load_meta(raw: bytes) -> Dict:
    try:
        meta = pickle.loads(raw)
    except Exception as error:  # noqa: BLE001 - any unpickling failure is a framing error
        raise WireFormatError(f"frame meta block failed to decode: {error}") from error
    if not isinstance(meta, dict):
        raise WireFormatError(f"frame meta must be a dict, got {type(meta).__name__}")
    return meta


# ---------------------------------------------------------------------- #
# Pure encode/decode (property tests, fuzzing)
# ---------------------------------------------------------------------- #
def encode_frame_bytes(
    kind: int, meta: Dict, arrays: Sequence[np.ndarray] = ()
) -> bytes:
    """One frame as a contiguous byte string (copying; tests and small frames).

    The socket send path (:meth:`WireEndpoint.send`) scatters the same parts
    without this concatenation; both produce identical bytes.
    """
    if kind not in KIND_NAMES:
        raise WireFormatError(f"unknown frame kind {kind}")
    descriptors, views, payload_len = _array_parts(arrays)
    meta = dict(meta)
    meta["arrays"] = descriptors
    meta_blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
    header = HEADER.pack(MAGIC, WIRE_VERSION, kind, len(meta_blob), payload_len)
    return b"".join([header, meta_blob, *views])


def decode_frame(data: bytes) -> Tuple[int, Dict, List[np.ndarray]]:
    """Decode one frame from bytes; inverse of :func:`encode_frame_bytes`.

    Arrays are returned as (possibly read-only) views over *data*.  Raises
    :class:`~repro.exceptions.WireFormatError` on any malformation,
    including trailing garbage after the frame.
    """
    if len(data) < HEADER.size:
        raise WireFormatError(
            f"truncated frame: {len(data)} bytes is shorter than the "
            f"{HEADER.size}-byte header"
        )
    kind, meta_len, payload_len = _unpack_header(data[: HEADER.size])
    end = HEADER.size + meta_len + payload_len
    if len(data) < end:
        raise WireFormatError(
            f"truncated frame: header promises {end} bytes, got {len(data)}"
        )
    if len(data) > end:
        raise WireFormatError(
            f"{len(data) - end} trailing bytes after a {end}-byte frame"
        )
    meta = _load_meta(data[HEADER.size : HEADER.size + meta_len])
    payload = memoryview(data)[HEADER.size + meta_len : end]
    arrays = _decode_arrays(meta.get("arrays", []), payload)
    return kind, meta, arrays


# ---------------------------------------------------------------------- #
# Remote error transport
# ---------------------------------------------------------------------- #
def encode_error_meta(error: BaseException) -> Dict:
    """The meta dict an ERROR frame carries for *error*."""
    meta: Dict = {
        "error_type": type(error).__name__,
        "message": str(error),
    }
    if isinstance(error, CheaterDetectedError):
        meta["label"] = error.label
        meta["round_index"] = error.round_index
    return meta


def raise_remote_error(meta: Dict, source: str) -> None:
    """Re-raise the error a peer reported in an ERROR frame.

    :class:`~repro.exceptions.CheaterDetectedError` is reconstructed with
    its label and round index so the driver's cheater handling sees exactly
    what an in-process run would; every other peer failure surfaces as
    :class:`~repro.exceptions.RuntimeProcessError`.
    """
    error_type = meta.get("error_type", "Error")
    message = meta.get("message", "")
    if error_type == "CheaterDetectedError":
        raise CheaterDetectedError(
            message,
            label=str(meta.get("label", "")),
            round_index=int(meta.get("round_index", -1)),
        )
    raise RuntimeProcessError(f"{source} failed with {error_type}: {message}")


# ---------------------------------------------------------------------- #
# Socket endpoint
# ---------------------------------------------------------------------- #
class WireEndpoint:
    """One end of a runtime link: framed sends/receives plus byte accounting.

    Sends scatter the header, meta block, and every array buffer through
    ``socket.sendmsg`` (with a partial-send advance loop), so share payloads
    go from numpy memory to the kernel without an intermediate copy.
    Receives gather into a preallocated writable buffer with ``recv_into``
    and rebuild the arrays as views over it, so decoded shares are writable
    and copy-free as well.

    The endpoint counts every frame it *sends*, keyed by
    ``(kind_name, phase)`` — frames, logical payload bytes, and total wire
    bytes — which is what the driver's post-run ledger reconciliation sums
    over all processes.
    """

    def __init__(self, sock, name: str = "", peer: str = "") -> None:
        self._sock = sock
        self.name = name
        self.peer = peer
        self._send_seq = 0
        self._recv_seq = 0
        self._sent: Dict[Tuple[str, str], Dict[str, int]] = {}

    # -- sending ------------------------------------------------------- #
    def send(self, kind: int, meta: Dict, arrays: Sequence[np.ndarray] = ()) -> None:
        """Frame and send one message (blocking until fully written)."""
        if kind not in KIND_NAMES:
            raise WireFormatError(f"unknown frame kind {kind}")
        descriptors, views, payload_len = _array_parts(arrays)
        meta = dict(meta)
        meta["arrays"] = descriptors
        meta["seq"] = self._send_seq
        self._send_seq += 1
        meta_blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
        header = HEADER.pack(MAGIC, WIRE_VERSION, kind, len(meta_blob), payload_len)
        self._send_all([memoryview(header), memoryview(meta_blob), *views])
        wire_bytes = HEADER.size + len(meta_blob) + payload_len
        counter = self._sent.setdefault(
            (KIND_NAMES[kind], str(meta.get("phase", ""))),
            {"frames": 0, "payload_bytes": 0, "wire_bytes": 0},
        )
        counter["frames"] += 1
        counter["payload_bytes"] += payload_len
        counter["wire_bytes"] += wire_bytes

    def _send_all(self, views: List[memoryview]) -> None:
        """Scatter-gather write with an advance loop for partial sends."""
        pending = [view for view in views if view.nbytes]
        while pending:
            try:
                sent = self._sock.sendmsg(pending)
            except BrokenPipeError as error:
                raise WireFormatError(
                    f"link {self.name}->{self.peer} closed mid-send"
                ) from error
            while sent:
                head = pending[0]
                if sent >= head.nbytes:
                    sent -= head.nbytes
                    pending.pop(0)
                else:
                    pending[0] = head[sent:]
                    sent = 0

    def send_error(self, error: BaseException, phase: str = "") -> None:
        """Report *error* to the peer as an ERROR frame (best effort)."""
        meta = encode_error_meta(error)
        if phase:
            meta["phase"] = phase
        try:
            self.send(KIND_ERROR, meta)
        except (OSError, WireFormatError):
            pass

    # -- receiving ----------------------------------------------------- #
    def recv(self) -> Tuple[int, Dict, List[np.ndarray]]:
        """Receive one frame; returns ``(kind, meta, arrays)``.

        Arrays are writable views over a fresh buffer owned by the frame.
        Raises :class:`~repro.exceptions.WireFormatError` on EOF or any
        malformed frame.
        """
        header = self._recv_exact(HEADER.size, context="frame header")
        kind, meta_len, payload_len = _unpack_header(bytes(header))
        meta = _load_meta(bytes(self._recv_exact(meta_len, context="frame meta")))
        seq = meta.get("seq")
        if seq != self._recv_seq:
            raise WireFormatError(
                f"out-of-order frame on link {self.peer}->{self.name}: "
                f"expected seq {self._recv_seq}, got {seq!r}"
            )
        self._recv_seq += 1
        payload = self._recv_exact(payload_len, context="frame payload")
        arrays = _decode_arrays(meta.get("arrays", []), payload)
        return kind, meta, arrays

    def _recv_exact(self, nbytes: int, context: str) -> memoryview:
        """Exactly *nbytes* from the socket into a fresh writable buffer."""
        buffer = bytearray(nbytes)
        view = memoryview(buffer)
        received = 0
        while received < nbytes:
            try:
                chunk = self._sock.recv_into(view[received:])
            except ConnectionResetError as error:
                raise WireFormatError(
                    f"link {self.peer}->{self.name} reset while reading {context}"
                ) from error
            if chunk == 0:
                raise WireFormatError(
                    f"EOF on link {self.peer}->{self.name} after {received} of "
                    f"{nbytes} bytes of {context} — the peer process died"
                )
            received += chunk
        return memoryview(buffer)

    def recv_expect(self, kind: int) -> Tuple[Dict, List[np.ndarray]]:
        """Receive one frame, requiring *kind*; ERROR frames re-raise."""
        got, meta, arrays = self.recv()
        if got == KIND_ERROR and kind != KIND_ERROR:
            raise_remote_error(meta, source=self.peer or "peer")
        if got != kind:
            raise WireFormatError(
                f"expected {KIND_NAMES[kind]} frame from {self.peer or 'peer'}, "
                f"got {KIND_NAMES[got]}"
            )
        return meta, arrays

    # -- handshake ----------------------------------------------------- #
    def hello(self) -> None:
        """Exchange HELLO frames; verifies both ends speak this version."""
        self.send(KIND_HELLO, {"role": self.name})
        meta, _ = self.recv_expect(KIND_HELLO)
        remote = meta.get("role", "")
        if self.peer and remote != self.peer:
            raise WireFormatError(
                f"link handshake mismatch: expected peer {self.peer!r}, "
                f"got {remote!r}"
            )

    # -- accounting ---------------------------------------------------- #
    def sent_summary(self) -> Dict[str, Dict[str, int]]:
        """Bytes sent by this endpoint, keyed ``"KIND/phase"``."""
        return {
            f"{kind}/{phase}": dict(counter)
            for (kind, phase), counter in sorted(self._sent.items())
        }

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def summary_delta(
    before: Dict[str, Dict[str, int]], after: Dict[str, Dict[str, int]]
) -> Dict[str, Dict[str, int]]:
    """Per-key counter differences between two :meth:`WireEndpoint.sent_summary` snapshots.

    Endpoint counters accumulate for the life of a link, so a persistent
    runtime that serves several releases over the same sockets takes a
    snapshot before each run and reports the delta — the traffic of *this*
    release only.  Keys whose counters did not move are dropped.
    """
    delta: Dict[str, Dict[str, int]] = {}
    for key, counter in after.items():
        base = before.get(key, {})
        entry = {name: counter[name] - base.get(name, 0) for name in counter}
        if any(entry.values()):
            delta[key] = entry
    return delta
