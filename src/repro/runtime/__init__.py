"""Process-separated two-server runtime.

The paper's deployment model is two non-colluding servers exchanging share
payloads over a network.  This package is the honest version of that model:
the dealer, the two computation servers, and the user-batch driver run as
separate OS processes connected by socketpair links carrying a versioned,
length-prefixed binary wire format (:mod:`repro.runtime.wire`).

* :mod:`repro.runtime.wire` — the framing layer: message kinds, zero-copy
  numpy payload packing, per-endpoint byte accounting.
* :mod:`repro.runtime.dealer` — the dealer process: replays the serial
  backends' correlated-randomness draw order and ships each dealt half to
  its server.
* :mod:`repro.runtime.server` — the two server role drivers: each evaluates
  only its role's side of the secure protocol, exchanging opening rounds
  (optionally MAC-authenticated) directly with its peer.
* :mod:`repro.runtime.driver` — the orchestrator: forks the three peer
  processes, runs the user-side phases, reconciles the
  :class:`~repro.crypto.protocol.CommunicationLedger` against bytes actually
  written to the transport, and assembles a :class:`~repro.core.CargoResult`
  bit-identical to the in-process engine.

Entry points: :class:`repro.runtime.driver.DistributedRuntime` (persistent,
reusable across releases) and :func:`repro.runtime.driver.run_distributed`
(one-shot convenience).
"""

from repro.runtime.driver import DistributedRuntime, run_distributed
from repro.runtime.wire import (
    WIRE_VERSION,
    WireEndpoint,
    decode_frame,
    encode_frame_bytes,
)

__all__ = [
    "WIRE_VERSION",
    "WireEndpoint",
    "DistributedRuntime",
    "decode_frame",
    "encode_frame_bytes",
    "run_distributed",
]
