"""Deterministic fault injection for the protocol runtime.

The resilience layer treats failures as first-class, *reproducible* events: a
:class:`FaultPlan` is a seeded schedule of faults pinned to named **sites** —
the fallible boundaries the runtime crosses (triple-store disk reads, dealer
provisioning, worker-pool tile tasks, stream anchor execution, checkpoint and
export writes).  Each site calls :func:`fault_point` on every invocation;
with no plan installed that is a single global read and the runtime behaves
exactly as before.  With a plan installed, the *n*-th invocation of a site
fires whatever fault the plan pinned there:

``oserror``
    a transient :class:`OSError`, the classic retryable failure;
``crash``
    an :class:`InjectedCrash` — simulates the process dying at that point
    (never retried; chaos tests catch it and resume from checkpoint);
``exhaust``
    a :class:`~repro.exceptions.DealerError`, modelling an exhausted
    correlated-randomness dealer;
``bitflip``
    no exception — the spec is *returned* so the caller corrupts the bytes
    it just read or is about to write (integrity checks must catch it).

Plans serialise to JSON (:meth:`FaultPlan.to_json`) so chaos CI jobs can
archive the exact schedule a run was subjected to, and every triggered fault
is logged (:meth:`FaultPlan.triggered`) for the same artefact.

Examples
--------
>>> plan = FaultPlan([FaultSpec("dealer.provision", FaultKind.OSERROR, at=2)])
>>> with install_fault_plan(plan):
...     fault_point("dealer.provision")  # first invocation: no fault
...     try:
...         fault_point("dealer.provision")  # second invocation fires
...     except OSError as error:
...         print("injected:", error)
injected: injected transient I/O failure at dealer.provision (invocation 2)
>>> [entry["site"] for entry in plan.triggered()]
['dealer.provision']
"""

from __future__ import annotations

import enum
import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, DealerError

__all__ = [
    "FAULT_SITES",
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "InjectedCrash",
    "active_fault_plan",
    "corrupt_bytes",
    "fault_point",
    "install_fault_plan",
]

#: Every registered fault site — the named fallible boundaries of the runtime.
FAULT_SITES: Tuple[str, ...] = (
    "checkpoint.read",
    "checkpoint.write",
    "dealer.provision",
    "export.write",
    "pool.task",
    "runtime.round",
    "stream.anchor",
    "triple_store.read",
)


class InjectedCrash(RuntimeError):
    """A simulated process death at a fault site.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: it models the
    process being killed, so nothing in the library catches it — it unwinds
    the whole run, exactly like a real crash, and the chaos harness resumes
    from the last checkpoint.
    """


class FaultKind(str, enum.Enum):
    """What happens when a pinned fault fires."""

    BITFLIP = "bitflip"
    OSERROR = "oserror"
    CRASH = "crash"
    EXHAUST = "exhaust"


@dataclass(frozen=True)
class FaultSpec:
    """One pinned fault: *kind* fires on the *at*-th invocation of *site*.

    ``payload`` seeds :func:`corrupt_bytes` for ``bitflip`` faults so the
    corrupted byte/bit position is deterministic per spec.
    """

    site: str
    kind: FaultKind
    at: int = 1
    payload: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; registered sites: "
                f"{', '.join(FAULT_SITES)}"
            )
        object.__setattr__(self, "kind", FaultKind(self.kind))
        if self.at < 1:
            raise ConfigurationError(
                f"fault invocation index 'at' must be >= 1, got {self.at}"
            )

    def as_dict(self) -> Dict:
        """JSON-ready representation of this spec."""
        payload = {"site": self.site, "kind": self.kind.value, "at": self.at}
        if self.payload is not None:
            payload["payload"] = int(self.payload)
        return payload


def corrupt_bytes(data: bytes, spec: FaultSpec) -> bytes:
    """*data* with one deterministically chosen bit flipped.

    The position is a pure function of the spec (its ``payload`` when set,
    its ``at`` index otherwise), so a bit-flip fault corrupts the same bit on
    every run of the same plan.

    >>> corrupted = corrupt_bytes(b"hello", FaultSpec("export.write", "bitflip"))
    >>> corrupted != b"hello" and len(corrupted) == 5
    True
    """
    if not data:
        return data
    rng = np.random.default_rng(spec.payload if spec.payload is not None else spec.at)
    position = int(rng.integers(0, len(data)))
    bit = int(rng.integers(0, 8))
    flipped = bytearray(data)
    flipped[position] ^= 1 << bit
    return bytes(flipped)


class FaultPlan:
    """A deterministic schedule of faults over the registered sites.

    Thread-safe: per-site invocation counters are lock-protected, so sites
    exercised from worker threads (pool tasks, parallel dealing) still count
    invocations exactly once each.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: Optional[int] = None) -> None:
        self._specs: Dict[str, Dict[int, FaultSpec]] = {}
        self._seed = seed
        for spec in specs:
            per_site = self._specs.setdefault(spec.site, {})
            if spec.at in per_site:
                raise ConfigurationError(
                    f"duplicate fault pinned at {spec.site!r} invocation {spec.at}"
                )
            per_site[spec.at] = spec
        self._counters: Dict[str, int] = {}
        self._triggered: List[Dict] = []
        self._lock = threading.Lock()

    @classmethod
    def random(
        cls,
        seed: int,
        sites: Optional[Sequence[str]] = None,
        num_faults: int = 4,
        max_at: int = 8,
        kinds: Optional[Sequence[FaultKind]] = None,
    ) -> "FaultPlan":
        """A seeded random schedule — the chaos suite's workhorse.

        Two plans built from the same arguments are identical, which is what
        makes a chaos failure replayable from nothing but its seed.
        """
        rng = np.random.default_rng(seed)
        sites = tuple(sites) if sites is not None else FAULT_SITES
        kinds = tuple(kinds) if kinds is not None else tuple(FaultKind)
        specs: Dict[Tuple[str, int], FaultSpec] = {}
        for _ in range(num_faults):
            site = sites[int(rng.integers(0, len(sites)))]
            at = int(rng.integers(1, max_at + 1))
            kind = kinds[int(rng.integers(0, len(kinds)))]
            # Last write wins on (site, at) collisions: keeps exactly one
            # fault per invocation slot without rejection sampling.
            specs[(site, at)] = FaultSpec(
                site, kind, at=at, payload=int(rng.integers(0, 1 << 31))
            )
        return cls(specs.values(), seed=seed)

    @property
    def specs(self) -> List[FaultSpec]:
        """Every pinned fault, in (site, at) order."""
        return [
            spec
            for site in sorted(self._specs)
            for _, spec in sorted(self._specs[site].items())
        ]

    def trigger(self, site: str) -> Optional[FaultSpec]:
        """Count one invocation of *site*; fire any fault pinned there.

        Raising kinds raise; ``bitflip`` specs are returned for the caller to
        apply with :func:`corrupt_bytes`; ``None`` means no fault is due.
        """
        with self._lock:
            count = self._counters.get(site, 0) + 1
            self._counters[site] = count
            spec = self._specs.get(site, {}).get(count)
            if spec is not None:
                self._triggered.append(
                    {"site": site, "kind": spec.kind.value, "at": count}
                )
        if spec is None:
            return None
        if spec.kind is FaultKind.OSERROR:
            raise OSError(
                f"injected transient I/O failure at {site} (invocation {count})"
            )
        if spec.kind is FaultKind.CRASH:
            raise InjectedCrash(
                f"injected crash at {site} (invocation {count})"
            )
        if spec.kind is FaultKind.EXHAUST:
            raise DealerError(
                f"injected dealer exhaustion at {site} (invocation {count})"
            )
        return spec

    def counts(self) -> Dict[str, int]:
        """Invocations observed per site so far."""
        with self._lock:
            return dict(self._counters)

    def triggered(self) -> List[Dict]:
        """Chronological log of every fault that actually fired."""
        with self._lock:
            return list(self._triggered)

    # ------------------------------------------------------------------ #
    # Serialisation (CI artefacts)
    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        """The schedule (and any triggered log) as a JSON document."""
        return json.dumps(
            {
                "seed": self._seed,
                "faults": [spec.as_dict() for spec in self.specs],
                "triggered": self.triggered(),
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_json` output (triggered log reset)."""
        payload = json.loads(text)
        if "faults" not in payload:
            raise KeyError(
                "fault plan JSON is missing its 'faults' list "
                "(produce plans with FaultPlan.to_json)"
            )
        specs = [
            FaultSpec(
                entry["site"],
                FaultKind(entry["kind"]),
                at=int(entry.get("at", 1)),
                payload=entry.get("payload"),
            )
            for entry in payload.get("faults", [])
        ]
        return cls(specs, seed=payload.get("seed"))


#: The globally installed plan; ``None`` keeps every fault point a no-op.
_ACTIVE_PLAN: Optional[FaultPlan] = None


def active_fault_plan() -> Optional[FaultPlan]:
    """The currently installed plan, or ``None``."""
    return _ACTIVE_PLAN


@contextmanager
def install_fault_plan(plan: Optional[FaultPlan]):
    """Install *plan* for the duration of the ``with`` block.

    Plans nest (the previous plan is restored on exit); installing ``None``
    temporarily disables an outer plan.
    """
    global _ACTIVE_PLAN
    previous = _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    try:
        yield plan
    finally:
        _ACTIVE_PLAN = previous


def fault_point(site: str) -> Optional[FaultSpec]:
    """One invocation of the fault site *site*.

    The hook every fallible boundary calls.  Without an installed plan this
    is a single global read — the resilience machinery's entire disabled
    cost.  With a plan, raising faults raise here and ``bitflip`` specs are
    returned for the caller to apply.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return None
    return plan.trigger(site)
