"""Fault-tolerant protocol runtime: inject, retry, verify, resume.

The package makes failure a first-class, *deterministic* event across four
layers:

* :mod:`~repro.resilience.faults` — a seeded :class:`FaultPlan` fires
  bit-flips, transient ``OSError``\\ s, crashes, and dealer exhaustion at
  named runtime sites, reproducibly;
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy` bounds and
  deterministically jitters retries around those same sites, feeding
  retry/give-up counters into the metrics registry;
* :mod:`~repro.resilience.integrity` — sha256 content checksums on every
  persisted artefact, verified on load
  (:class:`~repro.exceptions.IntegrityError`, never silent corruption);
* :mod:`~repro.resilience.checkpoint` — atomic, schema-versioned
  :class:`Checkpointer` state so a killed streaming or tile-window run
  resumes bit-identically.

Runs opt in through :class:`ResilienceConfig` (``CargoConfig(resilience=…)``
/ ``StreamingConfig(resilience=…)``); the default is a frozen no-op whose
runtime cost is a handful of ``None`` checks — the same off-by-default
discipline as telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.resilience.checkpoint import CHECKPOINT_VERSION, Checkpointer
from repro.resilience.faults import (
    FAULT_SITES,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    active_fault_plan,
    corrupt_bytes,
    fault_point,
    install_fault_plan,
)
from repro.resilience.integrity import (
    checksum_bytes,
    checksum_file,
    verify_bytes,
    verify_file,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpointer",
    "FAULT_SITES",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "NULL_RESILIENCE",
    "ResilienceConfig",
    "RetryPolicy",
    "active_fault_plan",
    "checksum_bytes",
    "checksum_file",
    "corrupt_bytes",
    "fault_point",
    "install_fault_plan",
    "resolve_resilience",
    "verify_bytes",
    "verify_file",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Per-run resilience switches carried on protocol configs.

    Parameters
    ----------
    retry:
        Retry policy wrapped around fallible boundaries (store reads,
        dealer provisioning, anchors, checkpoint I/O); ``None`` disables
        retrying.
    checkpoint_path:
        Where to persist crash-recovery checkpoints; ``None`` disables
        checkpointing entirely.
    checkpoint_every:
        Checkpoint cadence — every Nth release (streaming) or tile window
        (blocked pipeline).
    resume:
        Resume from an existing checkpoint at ``checkpoint_path`` when one
        is present (a missing file starts fresh).
    strict_integrity:
        Escalate triple-store integrity failures to
        :class:`~repro.exceptions.IntegrityError` instead of the default
        graceful degradation (count the failure, re-deal fresh material).
    """

    retry: Optional[RetryPolicy] = None
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 1
    resume: bool = False
    strict_integrity: bool = False

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.resume and self.checkpoint_path is None:
            raise ConfigurationError(
                "resume=True requires a checkpoint_path to resume from"
            )

    @property
    def enabled(self) -> bool:
        """Whether any resilience machinery is switched on."""
        return (
            self.retry is not None
            or self.checkpoint_path is not None
            or self.strict_integrity
        )


#: Shared all-off config — the default on every protocol configuration.
NULL_RESILIENCE = ResilienceConfig()


def resolve_resilience(config) -> ResilienceConfig:
    """The resilience config carried by *config*, or the shared no-op.

    Mirrors :func:`~repro.telemetry.resolve_telemetry` so call sites can
    accept configs that predate the ``resilience`` field.
    """
    resilience = getattr(config, "resilience", None)
    return resilience if resilience is not None else NULL_RESILIENCE
