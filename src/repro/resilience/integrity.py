"""Content-checksum helpers for persisted protocol material.

Everything the runtime persists — spilled triple batches, mmap ``.bin``
sidecars, crash-recovery checkpoints — is hashed with sha256 at write time
and re-verified at load time.  A mismatch means the bytes on disk are not
the bytes that were written (bit rot, a truncated write, tampering) and the
loader must never hand them to the protocol: it raises
:class:`~repro.exceptions.IntegrityError` or, on the gracefully degrading
triple-store path, counts the failure and re-deals fresh material.

Large mmap sidecars are hashed in bounded chunks so verification never
pages a multi-gigabyte file into resident memory at once.

Examples
--------
>>> digest = checksum_bytes(b"beaver triples")
>>> verify_bytes(b"beaver triples", digest, context="demo")
>>> try:
...     verify_bytes(b"beaver triplez", digest, context="demo")
... except IntegrityError:
...     print("corruption detected")
corruption detected
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Union

from repro.exceptions import IntegrityError

__all__ = ["checksum_bytes", "checksum_file", "verify_bytes", "verify_file"]

#: Read granularity for file hashing — bounds resident memory regardless of
#: how large the mmap sidecar grew.
_CHUNK_BYTES = 1 << 20


def checksum_bytes(data: bytes) -> str:
    """Hex sha256 digest of *data*.

    >>> checksum_bytes(b"")[:8]
    'e3b0c442'
    """
    return hashlib.sha256(data).hexdigest()


def checksum_file(path: Union[str, Path]) -> str:
    """Hex sha256 digest of the file at *path*, hashed in 1 MiB chunks."""
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CHUNK_BYTES)
            if not chunk:
                break
            hasher.update(chunk)
    return hasher.hexdigest()


def verify_bytes(data: bytes, expected: str, context: str = "payload") -> None:
    """Raise :class:`IntegrityError` unless *data* hashes to *expected*."""
    actual = checksum_bytes(data)
    if actual != expected:
        raise IntegrityError(
            f"checksum mismatch for {context}: expected {expected[:16]}…, "
            f"got {actual[:16]}…"
        )


def verify_file(path: Union[str, Path], expected: str, context: str = "file") -> None:
    """Raise :class:`IntegrityError` unless the file hashes to *expected*."""
    actual = checksum_file(path)
    if actual != expected:
        raise IntegrityError(
            f"checksum mismatch for {context} ({path}): expected "
            f"{expected[:16]}…, got {actual[:16]}…"
        )
