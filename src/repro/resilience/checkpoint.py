"""Crash-safe, schema-versioned, checksummed checkpoints.

A :class:`Checkpointer` persists a picklable state dictionary so a killed
run can resume exactly where it stopped.  Three guarantees make the file
trustworthy:

**Atomicity.**  Checkpoints are written through
:func:`~repro.utils.atomic_write_bytes` (temp file + fsync + rename), so a
crash mid-write leaves the previous checkpoint intact, never a truncated
hybrid.

**Integrity.**  The pickled state is checksummed at write time and verified
on load; a corrupted file raises :class:`~repro.exceptions.IntegrityError`
instead of resuming from garbage.

**Compatibility.**  The envelope records a schema version, a *kind*
(``"stream"`` vs ``"tiles"``) and a caller-supplied configuration *token*;
resuming with a mismatched configuration raises
:class:`~repro.exceptions.CheckpointError` rather than silently producing a
run that diverges from the one that was killed.

Reads and writes pass through the ``checkpoint.read`` / ``checkpoint.write``
fault sites and an optional :class:`~repro.resilience.retry.RetryPolicy`.

Examples
--------
>>> import os, tempfile
>>> path = os.path.join(tempfile.mkdtemp(), "run.ckpt")
>>> ckpt = Checkpointer(path, kind="stream", token="eps=1.0/seed=7")
>>> ckpt.exists()
False
>>> ckpt.save({"releases": 3})
>>> ckpt.load()["releases"]
3
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Dict, Optional, Union

from repro.exceptions import CheckpointError, IntegrityError
from repro.resilience.faults import fault_point
from repro.resilience.integrity import checksum_bytes, verify_bytes
from repro.resilience.retry import RetryPolicy
from repro.utils.atomic import atomic_write_bytes

__all__ = ["CHECKPOINT_VERSION", "Checkpointer"]

_MAGIC = "repro-checkpoint"

#: Schema version of the checkpoint envelope; bumped on layout changes.
CHECKPOINT_VERSION = 1


class Checkpointer:
    """Persist and restore one run's recovery state at a fixed path.

    Parameters
    ----------
    path:
        Where the checkpoint lives; overwritten atomically on every save.
    kind:
        What is being checkpointed (``"stream"`` or ``"tiles"``); loading a
        checkpoint of the wrong kind raises :class:`CheckpointError`.
    token:
        A string identifying the producing configuration (statistic,
        epsilon, seed, geometry …).  Any mismatch on load raises
        :class:`CheckpointError` — resuming under a different configuration
        can never be bit-identical, so it is refused outright.
    retry:
        Optional :class:`RetryPolicy` wrapped around reads and writes.
    metrics:
        Optional metrics registry receiving checkpoint/retry counters.
    """

    def __init__(
        self,
        path: Union[str, Path],
        kind: str,
        token: str,
        retry: Optional[RetryPolicy] = None,
        metrics=None,
    ) -> None:
        self.path = Path(path)
        self.kind = kind
        self.token = token
        self._retry = retry
        self._metrics = metrics

    def exists(self) -> bool:
        """Whether a checkpoint file is present at the configured path."""
        return self.path.is_file()

    def save(self, state: Dict) -> None:
        """Atomically persist *state*, replacing any previous checkpoint."""
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "magic": _MAGIC,
            "version": CHECKPOINT_VERSION,
            "kind": self.kind,
            "token": self.token,
            "checksum": checksum_bytes(payload),
            "payload": payload,
        }
        blob = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)

        def write() -> None:
            atomic_write_bytes(self.path, blob, site="checkpoint.write")

        if self._retry is not None:
            self._retry.run("checkpoint.write", write, metrics=self._metrics)
        else:
            write()
        if self._metrics is not None:
            self._metrics.increment("checkpoint_saves", kind=self.kind)

    def load(self) -> Dict:
        """Verify and return the persisted state dictionary.

        Raises
        ------
        CheckpointError
            Missing file, unknown schema version, or kind/token mismatch.
        IntegrityError
            The file is unreadable or fails its checksum.
        """

        def read() -> bytes:
            fault_point("checkpoint.read")
            return self.path.read_bytes()

        if not self.exists():
            raise CheckpointError(f"no checkpoint at {self.path}")
        if self._retry is not None:
            blob = self._retry.run("checkpoint.read", read, metrics=self._metrics)
        else:
            blob = read()
        try:
            envelope = pickle.loads(blob)
            magic = envelope["magic"]
            version = envelope["version"]
        except Exception as error:
            raise IntegrityError(
                f"checkpoint {self.path} is unreadable: {error}"
            ) from error
        if magic != _MAGIC:
            raise CheckpointError(f"{self.path} is not a repro checkpoint")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has schema version {version}, "
                f"expected {CHECKPOINT_VERSION}"
            )
        verify_bytes(
            envelope["payload"],
            envelope["checksum"],
            context=f"checkpoint {self.path}",
        )
        if envelope["kind"] != self.kind:
            raise CheckpointError(
                f"checkpoint {self.path} holds {envelope['kind']!r} state, "
                f"expected {self.kind!r}"
            )
        if envelope["token"] != self.token:
            raise CheckpointError(
                f"checkpoint {self.path} was written by a different "
                f"configuration (token {envelope['token']!r}, expected "
                f"{self.token!r}); refusing to resume"
            )
        if self._metrics is not None:
            self._metrics.increment("checkpoint_loads", kind=self.kind)
        return pickle.loads(envelope["payload"])
