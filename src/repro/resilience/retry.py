"""Deterministic retry policies for fallible runtime boundaries.

A :class:`RetryPolicy` wraps an operation (a triple-store disk read, a dealer
provisioning call, a checkpoint write) in a bounded retry loop.  Everything
about the loop is deterministic: the backoff *schedule* — including jitter —
is a pure function of the policy seed and the site label, so a retried run
replays byte-for-byte.  Sleeps are injectable and default to ``None`` (no
real sleeping) because the deterministic test-and-CI environment has nothing
to wait *for*; production callers can pass ``time.sleep``.

Only *transient* failures are retried: :class:`OSError` by default.  Typed
protocol errors (:class:`~repro.exceptions.DealerError`, integrity failures
handled by their own degradation paths) and :class:`InjectedCrash` propagate
immediately.  When the per-site attempt budget is exhausted the policy raises
:class:`~repro.exceptions.RetryExhaustedError` with the last failure chained
as ``__cause__``.

Retry and give-up totals are counted into a
:class:`~repro.telemetry.metrics.MetricsRegistry` (``retry_attempts`` /
``retry_giveups``, labelled by site) so chaos runs can be audited from their
metrics export alone.

Examples
--------
>>> policy = RetryPolicy(max_attempts=3, seed=7)
>>> calls = []
>>> def flaky():
...     calls.append(1)
...     if len(calls) < 3:
...         raise OSError("transient")
...     return "ok"
>>> policy.run("triple_store.read", flaky)
'ok'
>>> len(calls)
3
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, TypeVar

from repro.exceptions import ConfigurationError, RetryExhaustedError
from repro.resilience.faults import InjectedCrash

__all__ = ["RetryPolicy"]

T = TypeVar("T")


def _site_jitter(seed: int, site: str, attempt: int) -> float:
    """Deterministic jitter in [0, 1) for (*seed*, *site*, *attempt*).

    Derived via sha256 rather than :func:`hash` — Python string hashing is
    salted per process, which would make backoff schedules unreproducible.
    """
    digest = hashlib.sha256(f"{seed}:{site}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry with exponential backoff and seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total tries per operation (first call included); must be >= 1.
    base_delay:
        Backoff before the second attempt, in seconds; doubles each retry.
    max_delay:
        Ceiling on any single backoff interval.
    seed:
        Seeds the jitter so schedules replay exactly.
    retry_on:
        Exception types considered transient.  :class:`InjectedCrash` is
        never retried even if listed.
    sleep:
        Callable invoked with each backoff delay; ``None`` skips sleeping
        (the schedule is still computed, so tests can assert on it).
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    max_delay: float = 1.0
    seed: int = 0
    retry_on: Tuple[type, ...] = (OSError,)
    sleep: Optional[Callable[[float], None]] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("retry delays must be non-negative")

    def delay(self, site: str, attempt: int) -> float:
        """The backoff scheduled after failed *attempt* (1-based) at *site*.

        >>> RetryPolicy(seed=1).delay("pool.task", 1) == RetryPolicy(seed=1).delay("pool.task", 1)
        True
        """
        base = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        return base * (0.5 + 0.5 * _site_jitter(self.seed, site, attempt))

    def run(self, site: str, operation: Callable[[], T], metrics=None) -> T:
        """Invoke *operation*, retrying transient failures at *site*.

        Counts each retry into *metrics* (``retry_attempts``) and each
        terminal give-up (``retry_giveups``); raises
        :class:`~repro.exceptions.RetryExhaustedError` once the attempt
        budget is spent, chaining the final transient failure.
        """
        last_error: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return operation()
            except InjectedCrash:
                raise
            except self.retry_on as error:  # type: ignore[misc]
                last_error = error
                if metrics is not None:
                    metrics.increment("retry_attempts", site=site)
                if attempt < self.max_attempts and self.sleep is not None:
                    self.sleep(self.delay(site, attempt))
        if metrics is not None:
            metrics.increment("retry_giveups", site=site)
        raise RetryExhaustedError(
            f"{site} still failing after {self.max_attempts} attempts: {last_error}",
            site=site,
            attempts=self.max_attempts,
        ) from last_error
