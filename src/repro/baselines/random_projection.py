"""``GraphProjection`` — random edge-deletion projection (LDP baseline).

Imola et al.'s local projection bounds a user's degree by *randomly* deleting
edges from her adjacency list until at most ``θ`` remain.  The paper's
Figures 9-10 compare this against CARGO's similarity-based `Project` and show
that random deletion loses many more triangles because it is oblivious to
which edges support triangles.

The class mirrors :class:`~repro.core.projection.SimilarityProjection` so the
two can be swapped in the projection-loss experiments.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.projection import ProjectionResult
from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph
from repro.utils.rng import RandomState, derive_rng, spawn_rngs


class RandomProjection:
    """Random edge-deletion projection onto a degree bound.

    Parameters
    ----------
    degree_bound:
        Maximum number of neighbours each user keeps (θ).
    """

    def __init__(self, degree_bound: float) -> None:
        if degree_bound < 0:
            raise ConfigurationError(f"degree_bound must be non-negative, got {degree_bound}")
        self._degree_bound = float(degree_bound)

    @property
    def degree_bound(self) -> float:
        """The enforced degree bound θ."""
        return self._degree_bound

    def project_user(
        self,
        bit_vector: np.ndarray,
        rng: RandomState = None,
    ) -> np.ndarray:
        """Randomly keep at most ``floor(θ)`` of the user's neighbours."""
        bits = np.asarray(bit_vector, dtype=np.int64)
        keep_budget = int(self._degree_bound)
        neighbors = np.nonzero(bits)[0]
        if len(neighbors) <= keep_budget:
            return bits.copy()
        generator = derive_rng(rng)
        kept = generator.choice(neighbors, size=keep_budget, replace=False)
        projected = np.zeros_like(bits)
        projected[kept] = 1
        return projected

    def project_graph(
        self,
        graph: Graph,
        noisy_degrees: Optional[Sequence[float]] = None,
        rng: RandomState = None,
    ) -> ProjectionResult:
        """Project every user's bit vector by random deletion.

        *noisy_degrees* is accepted (and ignored) so the call signature
        matches :class:`~repro.core.projection.SimilarityProjection`.
        """
        del noisy_degrees  # random deletion does not look at degrees
        user_rngs = spawn_rngs(rng if rng is not None else derive_rng(None), graph.num_nodes)
        rows = np.zeros((graph.num_nodes, graph.num_nodes), dtype=np.int64)
        edges_removed = 0
        users_projected = 0
        for user, user_rng in zip(graph.nodes(), user_rngs):
            original = graph.adjacency_bit_vector(user)
            projected = self.project_user(original, rng=user_rng)
            removed = int(original.sum() - projected.sum())
            if removed > 0:
                users_projected += 1
                edges_removed += removed
            rows[user] = projected
        return ProjectionResult(
            projected_rows=rows,
            degree_bound=self._degree_bound,
            edges_removed=edges_removed,
            users_projected=users_projected,
        )
