"""Baseline protocols CARGO is compared against in the paper.

* :mod:`repro.baselines.central_lap` — ``CentralLap△``: a trusted server
  counts triangles exactly and adds Laplace noise calibrated to the
  degree-bounded sensitivity (the central-DP upper bound on utility).
* :mod:`repro.baselines.local_two_rounds` — ``Local2Rounds△``: the two-round
  Edge-LDP protocol of Imola et al. (USENIX Security 2021), the
  state-of-the-art untrusted baseline.
* :mod:`repro.baselines.random_projection` — ``GraphProjection``: the random
  edge-deletion projection used by the LDP baseline, compared against
  CARGO's similarity-based projection in Figures 9-10.
* :mod:`repro.baselines.one_round_ldp` — a one-round randomized-response
  baseline included as an extra reference point.
* :mod:`repro.baselines.nonprivate` — the exact count (sanity baseline).
"""

from repro.baselines.central_lap import CentralLaplaceTriangleCounting
from repro.baselines.local_two_rounds import LocalTwoRoundsTriangleCounting
from repro.baselines.nonprivate import NonPrivateTriangleCounting
from repro.baselines.one_round_ldp import OneRoundLdpTriangleCounting
from repro.baselines.random_projection import RandomProjection

__all__ = [
    "CentralLaplaceTriangleCounting",
    "LocalTwoRoundsTriangleCounting",
    "NonPrivateTriangleCounting",
    "OneRoundLdpTriangleCounting",
    "RandomProjection",
]
