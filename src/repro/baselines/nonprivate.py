"""Non-private exact counting, wrapped in the common baseline interface."""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.graph import Graph
from repro.graph.triangles import count_triangles
from repro.utils.rng import RandomState
from repro.telemetry import TimerRegistry


@dataclass(frozen=True)
class NonPrivateResult:
    """Output of the exact (no-privacy) counter."""

    noisy_triangle_count: float
    true_triangle_count: int
    timings: dict

    @property
    def l2_loss(self) -> float:
        """Always zero — included so result objects are interchangeable."""
        return 0.0

    @property
    def relative_error(self) -> float:
        """Always zero — included so result objects are interchangeable."""
        return 0.0


class NonPrivateTriangleCounting:
    """Exact triangle counting with no privacy protection (sanity baseline)."""

    def run(self, graph: Graph, rng: RandomState = None) -> NonPrivateResult:
        """Count triangles exactly."""
        del rng  # the exact count is deterministic
        timers = TimerRegistry()
        with timers.measure("total"):
            count = count_triangles(graph)
        return NonPrivateResult(
            noisy_triangle_count=float(count),
            true_triangle_count=count,
            timings=timers.as_dict(),
        )
