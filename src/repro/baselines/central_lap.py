"""``CentralLap△`` — the central-DP baseline.

A trusted server holds the whole graph, counts triangles exactly, and
releases ``T + Lap(Δ/ε)`` where Δ is the edge-DP sensitivity of the count.
Following the paper (and Imola et al.), the sensitivity is the maximum
degree: the server either knows ``d_max`` exactly (it has the graph) or, for
a like-for-like comparison with CARGO, spends a small slice of the budget on
a noisy estimate first.  The paper's headline comparison uses the exact
``d_max``, which is what :class:`CentralLaplaceTriangleCounting` defaults to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dp.mechanisms import LaplaceMechanism
from repro.dp.sensitivity import triangle_sensitivity_edge_dp
from repro.exceptions import PrivacyError
from repro.graph.graph import Graph
from repro.graph.triangles import count_triangles
from repro.utils.rng import RandomState, derive_rng
from repro.telemetry import TimerRegistry


@dataclass(frozen=True)
class CentralLapResult:
    """Output of one ``CentralLap△`` run."""

    noisy_triangle_count: float
    true_triangle_count: int
    sensitivity: float
    epsilon: float
    timings: dict

    @property
    def l2_loss(self) -> float:
        """Squared error of the estimate."""
        return (self.true_triangle_count - self.noisy_triangle_count) ** 2

    @property
    def relative_error(self) -> float:
        """Relative error ``|T - T'| / T``."""
        if self.true_triangle_count == 0:
            return float("inf")
        return abs(self.true_triangle_count - self.noisy_triangle_count) / self.true_triangle_count


class CentralLaplaceTriangleCounting:
    """Trusted-server Laplace mechanism for triangle counting (ε-Edge CDP).

    Parameters
    ----------
    epsilon:
        Total privacy budget.
    use_exact_max_degree:
        When ``True`` (default) the sensitivity is the true maximum degree,
        matching the paper's ``CentralLap△`` competitor.  When ``False`` the
        server first spends ``max_degree_fraction`` of ε on a Laplace
        estimate of ``d_max`` and uses the noisy value as the sensitivity,
        mirroring CARGO's own two-stage budget.
    max_degree_fraction:
        Budget fraction for the degree estimate when it is enabled.
    """

    def __init__(
        self,
        epsilon: float,
        use_exact_max_degree: bool = True,
        max_degree_fraction: float = 0.1,
    ) -> None:
        if epsilon <= 0:
            raise PrivacyError(f"epsilon must be positive, got {epsilon}")
        if not (0 < max_degree_fraction < 1):
            raise PrivacyError(
                f"max_degree_fraction must be in (0, 1), got {max_degree_fraction}"
            )
        self._epsilon = float(epsilon)
        self._use_exact_max_degree = use_exact_max_degree
        self._max_degree_fraction = max_degree_fraction

    @property
    def epsilon(self) -> float:
        """Total privacy budget ε."""
        return self._epsilon

    def run(self, graph: Graph, rng: RandomState = None) -> CentralLapResult:
        """Count triangles on *graph* and release a Laplace-noised estimate."""
        generator = derive_rng(rng)
        timers = TimerRegistry()
        with timers.measure("total"):
            with timers.measure("count"):
                true_count = count_triangles(graph)
            if self._use_exact_max_degree:
                sensitivity = triangle_sensitivity_edge_dp(graph.max_degree())
                count_epsilon = self._epsilon
            else:
                degree_epsilon = self._epsilon * self._max_degree_fraction
                count_epsilon = self._epsilon - degree_epsilon
                degree_mechanism = LaplaceMechanism(epsilon=degree_epsilon, sensitivity=1.0)
                noisy_max = max(
                    float(graph.max_degree()) + degree_mechanism.sample_noise(generator), 1.0
                )
                sensitivity = triangle_sensitivity_edge_dp(noisy_max)
            with timers.measure("perturb"):
                mechanism = LaplaceMechanism(epsilon=count_epsilon, sensitivity=sensitivity)
                noisy_count = mechanism.randomize(float(true_count), rng=generator)
        return CentralLapResult(
            noisy_triangle_count=float(noisy_count),
            true_triangle_count=true_count,
            sensitivity=float(sensitivity),
            epsilon=self._epsilon,
            timings=timers.as_dict(),
        )

    def expected_l2_loss(self, max_degree: int) -> float:
        """The analytic ``O(d_max^2 / ε^2)`` bound: ``2 (d_max / ε)^2``."""
        sensitivity = triangle_sensitivity_edge_dp(max_degree)
        return 2.0 * (sensitivity / self._epsilon) ** 2
