"""One-round randomized-response LDP baseline.

Included as an additional reference point below ``Local2Rounds△``: each user
randomizes the bits she owns (lower triangle) with the full budget and the
server estimates the triangle count from the noisy graph alone using the
standard unbiased bit estimator.  Its variance is far worse than the
two-round protocol's, which is why the paper (and Imola et al.) moved to two
rounds; having it in the repository lets the examples show the whole spectrum
local → two-round local → CARGO → central.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dp.mechanisms import RandomizedResponse
from repro.exceptions import PrivacyError
from repro.graph.graph import Graph
from repro.graph.triangles import count_triangles
from repro.utils.rng import RandomState, derive_rng
from repro.telemetry import TimerRegistry


@dataclass(frozen=True)
class OneRoundLdpResult:
    """Output of one run of the one-round LDP estimator."""

    noisy_triangle_count: float
    true_triangle_count: int
    epsilon: float
    timings: dict

    @property
    def l2_loss(self) -> float:
        """Squared error of the estimate."""
        return (self.true_triangle_count - self.noisy_triangle_count) ** 2

    @property
    def relative_error(self) -> float:
        """Relative error ``|T - T'| / T``."""
        if self.true_triangle_count == 0:
            return float("inf")
        return abs(self.true_triangle_count - self.noisy_triangle_count) / self.true_triangle_count


class OneRoundLdpTriangleCounting:
    """One-round randomized-response triangle estimation under ε-Edge LDP."""

    def __init__(self, epsilon: float) -> None:
        if epsilon <= 0:
            raise PrivacyError(f"epsilon must be positive, got {epsilon}")
        self._epsilon = float(epsilon)

    @property
    def epsilon(self) -> float:
        """Privacy budget ε spent on the single randomized-response round."""
        return self._epsilon

    def run(self, graph: Graph, rng: RandomState = None) -> OneRoundLdpResult:
        """Randomize every owned bit once and debias the triangle estimate."""
        generator = derive_rng(rng)
        timers = TimerRegistry()
        n = graph.num_nodes
        with timers.measure("total"):
            response = RandomizedResponse(epsilon=self._epsilon)
            adjacency = graph.adjacency_matrix()
            lower_mask = np.tril(np.ones((n, n), dtype=np.int64), k=-1)
            owned = adjacency * lower_mask
            noisy_lower = response.randomize_bits(owned, rng=generator) * lower_mask
            noisy_adjacency = noisy_lower + noisy_lower.T
            p = response.keep_probability
            q = response.flip_probability
            # Unbiased per-edge estimate of the true bit, then the product of
            # three independent unbiased estimates is unbiased for the triangle
            # indicator (each edge is owned, and randomized, by exactly one user).
            debiased = (noisy_adjacency - q) / (p - q)
            np.fill_diagonal(debiased, 0.0)
            estimate = float(np.trace(debiased @ debiased @ debiased) / 6.0)
        return OneRoundLdpResult(
            noisy_triangle_count=estimate,
            true_triangle_count=count_triangles(graph),
            epsilon=self._epsilon,
            timings=timers.as_dict(),
        )
