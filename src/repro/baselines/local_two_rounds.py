"""``Local2Rounds△`` — the two-round Edge-LDP baseline (Imola et al. 2021).

The state-of-the-art local-model competitor in the paper.  The protocol:

* **Round 1.**  Each user applies randomized response (budget ε_rr) to the
  lower-triangular half of her adjacent bit vector (the bits she "owns") and
  sends the noisy bits to the server, which assembles a noisy graph ``G'``
  and publishes it back to the users.
* **Round 2.**  Each user ``i``, who knows her *true* edges, counts — among
  pairs of her true neighbours ``j < k < i`` — how many are connected in the
  noisy graph (``t_i``) and how many pairs there are at all (``s_i``).  She
  adds ``Lap(d̃_max / ε_count)`` to ``t_i`` and reports the pair
  ``(t_i + noise, s_i)``.  The server debiases each report with the
  randomized-response keep/flip probabilities and sums:
  ``T' = Σ_i (t_i + noise_i − q·s_i) / (p − q)``.

As in Imola et al., each user first projects her adjacency list to a noisy
maximum degree via *random* edge deletion (``GraphProjection``), which both
bounds the round-2 sensitivity and is the projection CARGO's `Project` is
compared against.

The estimator is unbiased but its variance carries both the ``O(d^3 n)``
randomized-response term and the ``O(d^2 n)`` Laplace term, which is the
utility gap CARGO closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.random_projection import RandomProjection
from repro.dp.mechanisms import LaplaceMechanism, RandomizedResponse
from repro.exceptions import PrivacyError
from repro.graph.graph import Graph
from repro.graph.triangles import count_triangles
from repro.utils.rng import RandomState, derive_rng, spawn_rngs
from repro.telemetry import TimerRegistry

#: Default budget split: (noisy max degree, randomized response, count noise).
DEFAULT_SPLIT = (0.1, 0.45, 0.45)


@dataclass(frozen=True)
class LocalTwoRoundsResult:
    """Output of one ``Local2Rounds△`` run."""

    noisy_triangle_count: float
    true_triangle_count: int
    noisy_max_degree: float
    epsilon: float
    timings: dict

    @property
    def l2_loss(self) -> float:
        """Squared error of the estimate."""
        return (self.true_triangle_count - self.noisy_triangle_count) ** 2

    @property
    def relative_error(self) -> float:
        """Relative error ``|T - T'| / T``."""
        if self.true_triangle_count == 0:
            return float("inf")
        return abs(self.true_triangle_count - self.noisy_triangle_count) / self.true_triangle_count


class LocalTwoRoundsTriangleCounting:
    """Two-round Edge-LDP triangle counting.

    Parameters
    ----------
    epsilon:
        Total privacy budget ε, split according to *split* into the noisy
        maximum-degree estimate, the round-1 randomized response, and the
        round-2 Laplace noise.
    split:
        Budget fractions ``(degree, randomized_response, count)``; must be
        positive and sum to 1.
    """

    def __init__(self, epsilon: float, split: tuple = DEFAULT_SPLIT) -> None:
        if epsilon <= 0:
            raise PrivacyError(f"epsilon must be positive, got {epsilon}")
        if len(split) != 3 or any(fraction <= 0 for fraction in split):
            raise PrivacyError(f"split must be three positive fractions, got {split}")
        if abs(sum(split) - 1.0) > 1e-9:
            raise PrivacyError(f"split must sum to 1, got {split} (sum {sum(split)})")
        self._epsilon = float(epsilon)
        self._split = tuple(float(fraction) for fraction in split)

    @property
    def epsilon(self) -> float:
        """Total privacy budget ε."""
        return self._epsilon

    def run(self, graph: Graph, rng: RandomState = None) -> LocalTwoRoundsResult:
        """Execute the two-round protocol on *graph*."""
        generator = derive_rng(rng)
        timers = TimerRegistry()
        n = graph.num_nodes
        epsilon_degree = self._epsilon * self._split[0]
        epsilon_rr = self._epsilon * self._split[1]
        epsilon_count = self._epsilon * self._split[2]

        with timers.measure("total"):
            # Noisy maximum degree (each user perturbs her own degree).
            degree_mechanism = LaplaceMechanism(epsilon=epsilon_degree, sensitivity=1.0)
            degrees = graph.degrees()
            noisy_degrees = degrees + degree_mechanism.sample_noise(generator, size=n)
            noisy_max = float(max(np.max(noisy_degrees), 1.0)) if n else 1.0
            noisy_max = min(noisy_max, float(max(n - 1, 1)))

            # Local projection via random edge deletion.
            with timers.measure("project"):
                projection = RandomProjection(noisy_max)
                projected = projection.project_graph(graph, rng=generator)
                rows = projected.projected_rows

            # Round 1 — randomized response on the lower-triangular bits.
            with timers.measure("round1"):
                response = RandomizedResponse(epsilon=epsilon_rr)
                lower_mask = np.tril(np.ones((n, n), dtype=np.int64), k=-1)
                owned_bits = rows * lower_mask
                noisy_lower = response.randomize_bits(owned_bits, rng=generator) * lower_mask
                noisy_adjacency = noisy_lower + noisy_lower.T

            # Round 2 — each user counts noisy edges among her true neighbours.
            with timers.measure("round2"):
                p = response.keep_probability
                q = response.flip_probability
                count_mechanism = LaplaceMechanism(
                    epsilon=epsilon_count, sensitivity=max(noisy_max, 1.0)
                )
                user_rngs = spawn_rngs(generator, n)
                estimate = 0.0
                for i in range(n):
                    neighbours = np.nonzero(rows[i][:i])[0]
                    m = len(neighbours)
                    pairs = m * (m - 1) / 2.0
                    if m >= 2:
                        block = noisy_adjacency[np.ix_(neighbours, neighbours)]
                        noisy_pairs = float(np.triu(block, k=1).sum())
                    else:
                        noisy_pairs = 0.0
                    noise = count_mechanism.sample_noise(user_rngs[i])
                    estimate += (noisy_pairs + noise - q * pairs) / (p - q)

        return LocalTwoRoundsResult(
            noisy_triangle_count=float(estimate),
            true_triangle_count=count_triangles(graph),
            noisy_max_degree=noisy_max,
            epsilon=self._epsilon,
            timings=timers.as_dict(),
        )
