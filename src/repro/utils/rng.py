"""Deterministic random-number management.

Every stochastic component in the library (graph generators, DP mechanisms,
secret-sharing masks, protocol simulations) accepts either an integer seed or
a :class:`numpy.random.Generator`.  This module centralises the conversion so
experiments are reproducible end to end: a single top-level seed is expanded
into independent child generators for each logical role (users, servers,
dealer, noise) without the children sharing state.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

#: Anything accepted where randomness is needed.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def derive_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` produces a fresh, OS-entropy-seeded generator; an ``int`` or
    :class:`~numpy.random.SeedSequence` produces a deterministic generator;
    an existing generator is returned unchanged so callers can thread one
    generator through a pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Split *seed* into *count* statistically independent generators.

    The split is stable: the same seed always yields the same children, and
    children never share the parent's stream.  Used to give each simulated
    user / server its own generator while keeping a whole experiment
    reproducible from one integer.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(count)]  # type: ignore[union-attr]
    if isinstance(seed, np.random.SeedSequence):
        sequence = seed
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def spawn_seed_sequences(seed: RandomState, count: int) -> list[np.random.SeedSequence]:
    """The *count* child :class:`~numpy.random.SeedSequence`\\ s of *seed*.

    These are exactly the children :func:`spawn_rngs` builds its generators
    from, exposed so vectorised code can derive per-user randomness without
    instantiating one :class:`~numpy.random.Generator` per user.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return list(seed.bit_generator.seed_seq.spawn(count))  # type: ignore[union-attr]
    if isinstance(seed, np.random.SeedSequence):
        return list(seed.spawn(count))
    return list(np.random.SeedSequence(seed).spawn(count))


def spawn_state_matrix(seed: RandomState, count: int, words: int = 2) -> np.ndarray:
    """A deterministic ``(count, words)`` uint64 matrix, one row per substream.

    Row ``i`` is drawn from the ``i``-th spawned child of *seed* — the same
    per-user substreams :func:`spawn_rngs` would hand out — so each user's
    words depend only on her own substream, but the whole matrix is available
    to stacked (loop-free) transforms such as inverse-CDF sampling.
    """
    if words <= 0:
        raise ValueError(f"words must be positive, got {words}")
    children = spawn_seed_sequences(seed, count)
    matrix = np.empty((count, words), dtype=np.uint64)
    for index, child in enumerate(children):
        matrix[index] = child.generate_state(words, np.uint64)
    return matrix


def uniforms_from_states(states: np.ndarray) -> np.ndarray:
    """Map uint64 state words to uniform doubles in ``[0, 1)``.

    Uses the standard 53-bit mantissa construction (the same one numpy's
    generators use), so the result is a deterministic pure function of the
    state words.
    """
    return (np.asarray(states, dtype=np.uint64) >> np.uint64(11)) * np.float64(2.0**-53)


def choice_without_replacement(
    rng: np.random.Generator, items: Sequence[int], size: int
) -> list[int]:
    """Sample *size* distinct items from *items* (a thin, typed wrapper)."""
    if size > len(items):
        raise ValueError(
            f"cannot sample {size} items without replacement from {len(items)}"
        )
    picked = rng.choice(np.asarray(items), size=size, replace=False)
    return [int(x) for x in picked]


def shuffled(rng: np.random.Generator, items: Iterable[int]) -> list[int]:
    """Return a shuffled copy of *items* without mutating the input."""
    values = list(items)
    rng.shuffle(values)
    return values


def stable_seed_from_name(name: str, base_seed: Optional[int] = None) -> int:
    """Derive a deterministic 63-bit seed from a string label.

    Dataset generators use this so that, e.g., the synthetic "facebook"
    graph is identical across runs and machines regardless of generation
    order, while still being perturbed by an optional experiment-level
    *base_seed*.
    """
    acc = 1469598103934665603  # FNV-1a 64-bit offset basis
    for byte in name.encode("utf-8"):
        acc ^= byte
        acc = (acc * 1099511628211) % (1 << 64)
    if base_seed is not None:
        acc ^= (base_seed * 0x9E3779B97F4A7C15) % (1 << 64)
    return acc % (1 << 63)
