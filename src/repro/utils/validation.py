"""Argument validation helpers used across the library.

The helpers raise :class:`repro.exceptions.ConfigurationError` with a message
naming the offending parameter, so public entry points can validate inputs in
one line each and users get actionable errors instead of downstream numpy
failures.
"""

from __future__ import annotations

from numbers import Real
from typing import Any, Optional, Tuple, Type

from repro.exceptions import ConfigurationError


def check_type(name: str, value: Any, expected: Type | Tuple[Type, ...]) -> Any:
    """Raise unless *value* is an instance of *expected*; return the value."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise ConfigurationError(
            f"{name} must be of type {expected_names}, got {type(value).__name__}"
        )
    return value


def check_positive(name: str, value: Real) -> Real:
    """Raise unless *value* is a finite number strictly greater than zero."""
    _check_real(name, value)
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: Real) -> Real:
    """Raise unless *value* is a finite number greater than or equal to zero."""
    _check_real(name, value)
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(name: str, value: Real) -> Real:
    """Raise unless *value* lies in the closed interval [0, 1]."""
    _check_real(name, value)
    if not (0 <= value <= 1):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(
    name: str,
    value: Real,
    low: Optional[Real] = None,
    high: Optional[Real] = None,
    inclusive: bool = True,
) -> Real:
    """Raise unless *value* lies in the requested interval."""
    _check_real(name, value)
    if inclusive:
        if low is not None and value < low:
            raise ConfigurationError(f"{name} must be >= {low}, got {value!r}")
        if high is not None and value > high:
            raise ConfigurationError(f"{name} must be <= {high}, got {value!r}")
    else:
        if low is not None and value <= low:
            raise ConfigurationError(f"{name} must be > {low}, got {value!r}")
        if high is not None and value >= high:
            raise ConfigurationError(f"{name} must be < {high}, got {value!r}")
    return value


def check_integer(name: str, value: Any) -> int:
    """Raise unless *value* is an integral number; return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    return int(value)


def _check_real(name: str, value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, Real):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    if value != value or value in (float("inf"), float("-inf")):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
