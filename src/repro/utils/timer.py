"""Backwards-compatible shim: timers moved to :mod:`repro.telemetry.timers`.

The flat :class:`Timer`/:class:`TimerRegistry` pair now lives in the
telemetry package alongside the hierarchical :class:`~repro.telemetry.Tracer`
that superseded it inside the protocol.  This module keeps the historical
import path working for external callers and old notebooks.
"""

from __future__ import annotations

from repro.telemetry.timers import Timer, TimerRegistry

__all__ = ["Timer", "TimerRegistry"]
