"""Crash-safe file writes: temp file + fsync + atomic rename.

Every JSON or binary artefact the runtime emits — trace exports, metrics
exports, run manifests, benchmark results, checkpoints — goes through
:func:`atomic_write_bytes` (or its text/JSON wrappers).  The data is written
to a temporary sibling, flushed and fsynced, then renamed over the target
with :func:`os.replace`, which is atomic on POSIX: a crash at any point
leaves either the previous file or the complete new one, never a truncated
hybrid.

Each write is also a fault-injection site (``export.write`` by default, or
the *site* the caller names): an installed
:class:`~repro.resilience.faults.FaultPlan` can fail the write transiently,
crash it, or silently flip a bit in the payload — which is how the chaos
suite proves downstream checksum verification actually catches disk
corruption.

Examples
--------
>>> import json, os, tempfile
>>> target = os.path.join(tempfile.mkdtemp(), "out", "result.json")
>>> atomic_write_json(target, {"status": "ok"})
>>> json.loads(open(target).read())["status"]
'ok'
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_bytes", "atomic_write_json", "atomic_write_text"]


def atomic_write_bytes(
    path: Union[str, Path], data: bytes, site: str = "export.write"
) -> None:
    """Write *data* to *path* atomically (temp file + fsync + rename).

    Parent directories are created as needed.  *site* names the
    fault-injection point this write passes through.
    """
    # Imported lazily: utils must stay importable before the resilience
    # package finishes initialising (checkpointing imports this module).
    from repro.resilience.faults import FaultKind, corrupt_bytes, fault_point

    spec = fault_point(site)
    if spec is not None and spec.kind is FaultKind.BITFLIP:
        data = corrupt_bytes(data, spec)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    finally:
        if tmp.exists():
            tmp.unlink()


def atomic_write_text(
    path: Union[str, Path], text: str, site: str = "export.write"
) -> None:
    """Write *text* (UTF-8) to *path* atomically."""
    atomic_write_bytes(path, text.encode("utf-8"), site=site)


def atomic_write_json(
    path: Union[str, Path], payload, indent: int = 2, site: str = "export.write"
) -> None:
    """Serialise *payload* as JSON and write it to *path* atomically."""
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n", site=site)
