"""Small shared utilities: seeded randomness, validation, and timing."""

from repro.utils.atomic import atomic_write_bytes, atomic_write_json, atomic_write_text
from repro.utils.rng import RandomState, derive_rng, spawn_rngs
from repro.utils.timer import Timer, TimerRegistry
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RandomState",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "derive_rng",
    "spawn_rngs",
    "Timer",
    "TimerRegistry",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
