"""Continual-observation DP release of a running triangle count.

Releasing a fresh ε-DP count after every one of ``T`` stream updates costs
``T · ε`` under sequential composition.  The classic *binary (tree) mechanism*
for continual observation (Chan–Shi–Song 2011; Dwork et al. 2010) does far
better: it maintains noisy partial sums over the dyadic decomposition of the
release index.  Every release contributes to at most ``L = ⌊log2 T⌋ + 1``
tree nodes and every released prefix sum reads at most ``L`` noisy nodes, so

* the whole stream of ``T`` releases satisfies ε-DP in total (each level of
  the tree partitions the releases, so levels compose in parallel at
  ``ε / L`` each), and
* the error per release is ``O(log^{1.5} T / ε)`` instead of growing with
  ``T``.

:class:`BinaryTreeRelease` implements the mechanism on top of
:class:`~repro.dp.mechanisms.LaplaceMechanism` and charges its budget to a
:class:`~repro.dp.accountant.PrivacyAccountant` — one ledger entry per tree
*level* on first use, so the ledger length is ``O(log T)`` no matter how many
releases happen.  Release *timing* is factored out into small policy objects
(:class:`EveryKEventsPolicy`, :class:`FixedIntervalPolicy`) so the
orchestrator can trade release frequency against noise without touching the
mechanism.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import List, Optional

from repro.dp.accountant import PrivacyAccountant
from repro.dp.mechanisms import LaplaceMechanism
from repro.exceptions import PrivacyError, StreamError
from repro.utils.rng import RandomState, derive_rng

__all__ = [
    "ReleasePolicy",
    "EveryKEventsPolicy",
    "FixedIntervalPolicy",
    "BinaryTreeRelease",
    "tree_depth",
]


# --------------------------------------------------------------------- #
# Release policies
# --------------------------------------------------------------------- #
class ReleasePolicy(abc.ABC):
    """Decides, per event, whether the orchestrator should publish a release."""

    @abc.abstractmethod
    def should_release(
        self,
        event_index: int,
        event_time: float,
        last_release_index: int,
        last_release_time: float,
    ) -> bool:
        """Whether to release after the event numbered *event_index* (1-based)."""


@dataclass(frozen=True)
class EveryKEventsPolicy(ReleasePolicy):
    """Release after every *k*-th applied event."""

    k: int

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise StreamError(f"release cadence k must be positive, got {self.k}")

    def should_release(
        self,
        event_index: int,
        event_time: float,
        last_release_index: int,
        last_release_time: float,
    ) -> bool:
        return event_index - last_release_index >= self.k


@dataclass(frozen=True)
class FixedIntervalPolicy(ReleasePolicy):
    """Release whenever at least *interval* stream-seconds have elapsed."""

    interval: float

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise StreamError(f"release interval must be positive, got {self.interval}")

    def should_release(
        self,
        event_index: int,
        event_time: float,
        last_release_index: int,
        last_release_time: float,
    ) -> bool:
        return event_time - last_release_time >= self.interval


# --------------------------------------------------------------------- #
# The binary mechanism
# --------------------------------------------------------------------- #
def tree_depth(max_releases: int) -> int:
    """Number of dyadic levels needed for up to *max_releases* releases."""
    if max_releases <= 0:
        raise StreamError(f"max_releases must be positive, got {max_releases}")
    return max_releases.bit_length()


class BinaryTreeRelease:
    """Noisy prefix sums of a stream of deltas under a single total ε.

    Parameters
    ----------
    epsilon:
        Total privacy budget for the whole stream of releases.
    max_releases:
        Capacity ``T``; determines the tree depth ``L`` (and therefore the
        per-node noise scale ``L · sensitivity / ε``).  Asking for more than
        ``T`` releases raises :class:`~repro.exceptions.StreamError` rather
        than silently degrading the guarantee.
    sensitivity:
        L1 sensitivity of one release's delta (how much one protected unit —
        one edge in Edge-DP — can change the value fed to a single
        :meth:`release` call).
    accountant:
        Optional :class:`~repro.dp.accountant.PrivacyAccountant` to charge.
        The mechanism spends ``ε / L`` per tree level, lazily on the first
        release that touches the level, under labels ``{label}/level-{d}`` —
        so ``T`` releases leave only ``O(log T)`` ledger entries summing to
        at most ε.
    rng:
        Seed or generator for the Laplace node noise.
    label:
        Prefix for the accountant ledger entries.
    """

    def __init__(
        self,
        epsilon: float,
        max_releases: int,
        sensitivity: float = 1.0,
        accountant: Optional[PrivacyAccountant] = None,
        rng: RandomState = None,
        label: str = "stream-release",
    ) -> None:
        if epsilon <= 0:
            raise PrivacyError(f"epsilon must be positive, got {epsilon}")
        if sensitivity <= 0:
            raise PrivacyError(f"sensitivity must be positive, got {sensitivity}")
        self._epsilon = float(epsilon)
        self._capacity = int(max_releases)
        self._levels = tree_depth(self._capacity)
        self._sensitivity = float(sensitivity)
        self._accountant = accountant if accountant is not None else PrivacyAccountant(
            total_budget=self._epsilon * (1.0 + 1e-9)
        )
        self._rng = derive_rng(rng)
        self._label = label
        self._mechanism = LaplaceMechanism(
            epsilon=self._epsilon / self._levels, sensitivity=self._sensitivity
        )
        # alpha[d] / alpha_hat[d]: the true and noisy partial sum currently
        # stored at dyadic level d (0.0 when the level is empty; the prefix
        # read only touches levels named by the set bits of t, and budget
        # charging is tracked separately in _level_charged).
        self._alpha: List[float] = [0.0] * self._levels
        self._alpha_hat: List[float] = [0.0] * self._levels
        self._level_charged: List[bool] = [False] * self._levels
        self._releases = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def epsilon(self) -> float:
        """Total budget the mechanism is allowed to spend."""
        return self._epsilon

    @property
    def levels(self) -> int:
        """Tree depth ``L = ⌊log2 T⌋ + 1``."""
        return self._levels

    @property
    def capacity(self) -> int:
        """Maximum number of releases this instance was budgeted for."""
        return self._capacity

    @property
    def releases_made(self) -> int:
        """How many releases have been produced so far."""
        return self._releases

    @property
    def noise_scale(self) -> float:
        """Laplace scale of each tree node, ``L · sensitivity / ε``."""
        return self._mechanism.scale

    @property
    def accountant(self) -> PrivacyAccountant:
        """The accountant being charged (one entry per tree level used)."""
        return self._accountant

    def per_release_noise_std(self) -> float:
        """Upper bound on the noise standard deviation of one released sum.

        At most ``L`` noisy nodes are summed per release, each with variance
        ``2 · scale²``.
        """
        return math.sqrt(2.0 * self._levels) * self._mechanism.scale

    # ------------------------------------------------------------------ #
    # Releasing
    # ------------------------------------------------------------------ #
    def release(self, delta: float) -> float:
        """Absorb *delta* as release ``t`` and return the noisy prefix sum.

        The returned value estimates ``sum(delta_1 .. delta_t)`` with
        ``O(log T)`` Laplace noise terms.
        """
        if self._releases >= self._capacity:
            raise StreamError(
                f"binary-tree release capacity exhausted after {self._capacity} "
                "releases; budget a larger max_releases up front"
            )
        self._releases += 1
        t = self._releases
        # Lowest set bit of t names the level that absorbs all lower levels.
        absorb = (t & -t).bit_length() - 1
        total = float(delta)
        for level in range(absorb):
            total += self._alpha[level]
            self._alpha[level] = 0.0
            self._alpha_hat[level] = 0.0
        self._alpha[absorb] = total
        self._charge_level(absorb)
        self._alpha_hat[absorb] = total + self._mechanism.sample_noise(self._rng)
        # The dyadic decomposition of [1..t] is exactly the set bits of t.
        prefix = 0.0
        for level in range(self._levels):
            if t & (1 << level):
                prefix += self._alpha_hat[level]
        return prefix

    def _charge_level(self, level: int) -> None:
        """Spend this level's ε/L on first use (parallel composition within)."""
        if not self._level_charged[level]:
            self._accountant.spend(
                self._epsilon / self._levels, label=f"{self._label}/level-{level}"
            )
            self._level_charged[level] = True
