"""Edge-event model for dynamic graphs.

The streaming subsystem views a dynamic graph as an initial
:class:`~repro.graph.graph.Graph` plus a totally ordered sequence of
:class:`EdgeEvent` records (edge additions and removals, each carrying a
stream timestamp).  Two generators cover the common evaluation setups:

* :func:`replay_stream` / :func:`replay_dataset` — replay a frozen graph's
  edge set as a randomized arrival sequence of ``add`` events, turning any
  ``repro.graph`` dataset into a growth stream that ends at the original
  graph;
* :func:`churn_stream` — starting from an existing graph, interleave valid
  edge additions (currently absent edges) and removals (currently present
  edges), modelling a social graph with user churn.

Timestamps are synthetic "stream seconds": events arrive with exponential
inter-arrival times at a configurable mean *rate*, so wall-clock release
policies (:class:`~repro.stream.release.FixedIntervalPolicy`) have something
meaningful to trigger on while the whole stream stays deterministic under a
seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.exceptions import StreamError
from repro.graph.datasets import load_dataset
from repro.graph.graph import Graph
from repro.utils.rng import RandomState, derive_rng


class EdgeEventKind(str, enum.Enum):
    """Whether an event inserts or deletes an undirected edge."""

    ADD = "add"
    REMOVE = "remove"


@dataclass(frozen=True)
class EdgeEvent:
    """One timestamped mutation of the dynamic graph.

    Attributes
    ----------
    kind:
        :attr:`EdgeEventKind.ADD` or :attr:`EdgeEventKind.REMOVE`.
    u / v:
        The endpoints of the undirected edge ``{u, v}``.  Stored sorted
        (``u < v``) so two events on the same edge compare equal regardless
        of the orientation the producer used.
    time:
        Stream timestamp in synthetic seconds; streams are non-decreasing in
        time.
    """

    kind: EdgeEventKind
    u: int
    v: int
    time: float = 0.0

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise StreamError(f"self-loop event on node {self.u} is not allowed")
        if self.u < 0 or self.v < 0:
            raise StreamError(f"event endpoints must be non-negative, got ({self.u}, {self.v})")
        if self.u > self.v:
            low, high = self.v, self.u
            object.__setattr__(self, "u", low)
            object.__setattr__(self, "v", high)
        if self.time < 0:
            raise StreamError(f"event time must be non-negative, got {self.time}")

    @property
    def edge(self) -> Tuple[int, int]:
        """The undirected edge as a sorted ``(u, v)`` pair."""
        return (self.u, self.v)

    @property
    def is_addition(self) -> bool:
        """Whether this event inserts the edge."""
        return self.kind is EdgeEventKind.ADD


@dataclass(frozen=True)
class EdgeStream:
    """An ordered, validated sequence of edge events over ``num_nodes`` nodes.

    Construction checks that every event's endpoints are in range and that
    timestamps never decrease, so downstream consumers (the maintainer, the
    release policies) can rely on both invariants.
    """

    num_nodes: int
    events: Tuple[EdgeEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.num_nodes < 0:
            raise StreamError(f"num_nodes must be non-negative, got {self.num_nodes}")
        object.__setattr__(self, "events", tuple(self.events))
        previous_time = 0.0
        for event in self.events:
            if event.v >= self.num_nodes:
                raise StreamError(
                    f"event on edge ({event.u}, {event.v}) is out of range for "
                    f"a stream over {self.num_nodes} nodes"
                )
            if event.time < previous_time:
                raise StreamError(
                    f"event timestamps must be non-decreasing, got {event.time} "
                    f"after {previous_time}"
                )
            previous_time = event.time

    def __iter__(self) -> Iterator[EdgeEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def duration(self) -> float:
        """Timestamp of the last event (0.0 for an empty stream)."""
        return self.events[-1].time if self.events else 0.0

    def additions(self) -> int:
        """Number of ``add`` events in the stream."""
        return sum(1 for event in self.events if event.is_addition)

    def removals(self) -> int:
        """Number of ``remove`` events in the stream."""
        return len(self.events) - self.additions()


def _arrival_times(count: int, rate: float, rng) -> List[float]:
    """Cumulative exponential inter-arrival times for *count* events."""
    if rate <= 0:
        raise StreamError(f"event rate must be positive, got {rate}")
    if count == 0:
        return []
    return np.cumsum(rng.exponential(1.0 / rate, size=count)).tolist()


def replay_stream(graph: Graph, rng: RandomState = None, rate: float = 1.0) -> EdgeStream:
    """Replay *graph*'s edges as a randomized arrival sequence of additions.

    The edge set is shuffled with *rng* and each edge becomes one ``add``
    event; applying the whole stream to an empty graph reconstructs *graph*
    exactly.  Inter-arrival times are exponential with mean ``1 / rate``.

    Examples
    --------
    >>> from repro.graph.graph import Graph
    >>> stream = replay_stream(Graph(3, edges=[(0, 1), (1, 2)]), rng=0)
    >>> len(stream), stream.additions(), stream.removals()
    (2, 2, 0)
    """
    generator = derive_rng(rng)
    edges = graph.edge_list()
    order = list(range(len(edges)))
    generator.shuffle(order)
    times = _arrival_times(len(edges), rate, generator)
    events = tuple(
        EdgeEvent(kind=EdgeEventKind.ADD, u=edges[index][0], v=edges[index][1], time=time)
        for index, time in zip(order, times)
    )
    return EdgeStream(num_nodes=graph.num_nodes, events=events)


def replay_dataset(
    dataset: str,
    num_nodes: Optional[int] = None,
    rng: RandomState = None,
    rate: float = 1.0,
) -> EdgeStream:
    """Replay a named ``repro.graph`` dataset as a randomized edge stream."""
    graph = load_dataset(dataset, num_nodes=num_nodes)
    return replay_stream(graph, rng=rng, rate=rate)


def churn_stream(
    graph: Graph,
    num_events: int,
    rng: RandomState = None,
    add_fraction: float = 0.5,
    rate: float = 1.0,
) -> EdgeStream:
    """Generate a mixed add/remove stream that is valid against *graph*.

    Starting from *graph*'s edge set, each event is an addition of a
    currently-absent edge with probability *add_fraction* and a removal of a
    currently-present edge otherwise (falling back to the other kind when one
    side is exhausted — e.g. removals on an empty graph become additions).
    Applying the events in order to a copy of *graph* is always legal: no
    duplicate additions, no removals of missing edges.
    """
    if num_events < 0:
        raise StreamError(f"num_events must be non-negative, got {num_events}")
    if not (0.0 <= add_fraction <= 1.0):
        raise StreamError(f"add_fraction must be in [0, 1], got {add_fraction}")
    n = graph.num_nodes
    if n < 2 and num_events > 0:
        raise StreamError("churn requires at least two nodes")
    generator = derive_rng(rng)
    # Present edges kept in a list + index map so a uniform removal is an
    # O(1) swap-pop instead of a sort over the whole edge set per event.
    edge_pool: List[Tuple[int, int]] = graph.edge_list()
    edge_index = {edge: position for position, edge in enumerate(edge_pool)}
    max_edges = n * (n - 1) // 2
    times = _arrival_times(num_events, rate, generator)
    events: List[EdgeEvent] = []
    for time in times:
        want_add = generator.random() < add_fraction
        if want_add and len(edge_pool) == max_edges:
            want_add = False
        elif not want_add and not edge_pool:
            want_add = True
        if want_add:
            # Rejection sampling is O(1) expected on sparse graphs; cap the
            # attempts so a near-complete graph degrades to one explicit
            # absent-edge scan instead of unbounded RNG draws.
            edge = None
            for _ in range(64):
                u = int(generator.integers(0, n))
                v = int(generator.integers(0, n))
                if u == v:
                    continue
                candidate = (u, v) if u < v else (v, u)
                if candidate not in edge_index:
                    edge = candidate
                    break
            if edge is None:
                absent = [
                    (u, v)
                    for u in range(n)
                    for v in range(u + 1, n)
                    if (u, v) not in edge_index
                ]
                edge = absent[int(generator.integers(0, len(absent)))]
            edge_index[edge] = len(edge_pool)
            edge_pool.append(edge)
            events.append(EdgeEvent(kind=EdgeEventKind.ADD, u=edge[0], v=edge[1], time=time))
        else:
            position = int(generator.integers(0, len(edge_pool)))
            edge = edge_pool[position]
            last = edge_pool[-1]
            edge_pool[position] = last
            edge_index[last] = position
            edge_pool.pop()
            del edge_index[edge]
            events.append(EdgeEvent(kind=EdgeEventKind.REMOVE, u=edge[0], v=edge[1], time=time))
    return EdgeStream(num_nodes=n, events=tuple(events))
