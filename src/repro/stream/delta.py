"""Incremental triangle maintenance over edge events.

Recounting triangles from scratch after every edge event costs
``O(sum_e min(d_u, d_v))`` per event; the incremental maintainer instead
exploits that inserting or deleting one edge ``{u, v}`` changes the global
triangle count by exactly ``|N(u) ∩ N(v)|`` — the number of common
neighbours, evaluated while the rest of the graph is fixed.  A single event
therefore costs one set intersection, ``O(min(d_u, d_v))``, via
:meth:`~repro.graph.graph.Graph.common_neighbor_count` (which intersects the
adjacency sets in place, without copying either neighbourhood).

The maintainer owns its graph copy and keeps the running count exactly in
sync with it; the test suite validates the running count bit-identically
against :func:`~repro.graph.triangles.count_triangles` on snapshots of long
randomized replays.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.exceptions import StreamError
from repro.graph.graph import Graph
from repro.graph.triangles import count_triangles
from repro.stream.events import EdgeEvent

__all__ = ["IncrementalTriangleMaintainer"]


class IncrementalTriangleMaintainer:
    """Maintains the exact triangle count of a mutating graph per edge event.

    Parameters
    ----------
    num_nodes:
        Size of the (initially empty) dynamic graph.  Ignored when
        *initial_graph* is given.
    initial_graph:
        Optional starting graph; the maintainer works on a private copy so
        callers keep an unmodified original.  The initial exact count is
        computed once at construction.
    """

    def __init__(
        self, num_nodes: int = 0, initial_graph: Optional[Graph] = None
    ) -> None:
        if initial_graph is not None:
            self._graph = initial_graph.copy()
        else:
            self._graph = Graph(num_nodes)
        self._count = count_triangles(self._graph)
        self._events_applied = 0

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> Graph:
        """The maintainer's internal graph.

        Mutate it only through :meth:`apply`; direct edge mutation would
        desynchronise the running count.  Use :meth:`snapshot` for a safe
        independent copy.
        """
        return self._graph

    @property
    def triangle_count(self) -> int:
        """The exact triangle count of the current graph."""
        return self._count

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the dynamic graph."""
        return self._graph.num_nodes

    @property
    def events_applied(self) -> int:
        """How many events have been applied so far."""
        return self._events_applied

    def snapshot(self) -> Graph:
        """An independent copy of the current graph state."""
        return self._graph.copy()

    # ------------------------------------------------------------------ #
    # Event application
    # ------------------------------------------------------------------ #
    def apply(self, event: EdgeEvent) -> int:
        """Apply one event and return the triangle-count delta it caused.

        Additions of already-present edges and removals of absent edges are
        no-ops with delta 0 (the stream generators never produce them, but a
        live deployment's dedup logic should not have to be perfect).  No-op
        events still count toward :attr:`events_applied` — it tracks events
        *consumed*, matching the orchestrator's throughput accounting.
        """
        graph = self._graph
        u, v = event.edge
        if v >= graph.num_nodes:
            raise StreamError(
                f"event on edge ({u}, {v}) is out of range for a maintainer "
                f"over {graph.num_nodes} nodes"
            )
        self._events_applied += 1
        if event.is_addition:
            if graph.has_edge(u, v):
                return 0
            # Common neighbours before the insertion = new triangles closed.
            delta = graph.common_neighbor_count(u, v)
            graph.add_edge(u, v)
        else:
            if not graph.has_edge(u, v):
                return 0
            # Common neighbours while the edge is present = triangles broken.
            delta = -graph.common_neighbor_count(u, v)
            graph.remove_edge(u, v)
        self._count += delta
        # The running count is exact, so re-seed the per-graph memo that the
        # mutation just invalidated; evaluation code calling count_triangles
        # on the maintainer's graph then costs O(1).
        graph.cached_triangle_count = self._count
        return delta

    def apply_all(self, events: Iterable[EdgeEvent]) -> int:
        """Apply every event in order; return the cumulative delta."""
        total = 0
        for event in events:
            total += self.apply(event)
        return total
