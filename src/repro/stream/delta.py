"""Incremental subgraph-statistic maintenance over edge events.

Recounting a statistic from scratch after every edge event is wasteful; each
maintainer instead applies the exact *delta* a single edge flip causes:

* **triangles** — inserting or deleting edge ``{u, v}`` changes the count by
  exactly ``|N(u) ∩ N(v)|`` — one set intersection, ``O(min(d_u, d_v))``,
  via :meth:`~repro.graph.graph.Graph.common_neighbor_count` (which
  intersects the adjacency sets in place, without copying either
  neighbourhood);
* **k-stars** — only the two endpoint degrees move, so the delta is two
  binomial-coefficient differences, ``O(1)`` set operations;
* **4-cycles** — the delta is the number of length-3 paths between ``u``
  and ``v``, one neighbourhood scan of the smaller endpoint with a common-
  neighbour count per step.

Every maintainer owns its graph copy and keeps the running count exactly in
sync with it; the test suite validates the running counts bit-identically
against the statistics' plain kernels on snapshots of long randomized
replays.  :func:`make_maintainer` dispatches a
:class:`~repro.stats.SubgraphStatistic` to its incremental maintainer,
falling back to exact recounting for statistics without one.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np

from repro.exceptions import StreamError
from repro.graph.graph import Graph
from repro.graph.triangles import count_triangles
from repro.stream.events import EdgeEvent

#: ``np.bitwise_count`` (the packed-row popcount the block ingest rides on)
#: arrived in NumPy 2.0; older installs fall back to the per-event path.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

__all__ = [
    "IncrementalTriangleMaintainer",
    "IncrementalKStarMaintainer",
    "IncrementalFourCycleMaintainer",
    "DegreeVectorKStarMaintainer",
    "CappedTriangleMaintainer",
    "RecountingMaintainer",
    "make_maintainer",
    "DEFAULT_NEIGHBOR_CAP",
]

#: Default per-node neighbour budget of :class:`CappedTriangleMaintainer`.
DEFAULT_NEIGHBOR_CAP = 64


class _GraphMaintainerBase:
    """Shared event-application semantics for every statistic maintainer.

    Subclasses implement :meth:`_initial_count` plus :meth:`_delta_add` /
    :meth:`_delta_remove`, each delta hook called *before* the corresponding
    mutation is applied.

    Parameters
    ----------
    num_nodes:
        Size of the (initially empty) dynamic graph.  Ignored when
        *initial_graph* is given.
    initial_graph:
        Optional starting graph; the maintainer works on a private copy so
        callers keep an unmodified original.  The initial exact count is
        computed once at construction.
    """

    def __init__(
        self, num_nodes: int = 0, initial_graph: Optional[Graph] = None
    ) -> None:
        if initial_graph is not None:
            self._graph = initial_graph.copy()
        else:
            self._graph = Graph(num_nodes)
        self._count = self._initial_count()
        self._events_applied = 0

    # ------------------------------------------------------------------ #
    # Statistic hooks
    # ------------------------------------------------------------------ #
    def _initial_count(self) -> int:
        raise NotImplementedError

    def _delta_add(self, u: int, v: int) -> int:
        raise NotImplementedError

    def _delta_remove(self, u: int, v: int) -> int:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> Graph:
        """The maintainer's internal graph.

        Mutate it only through :meth:`apply`; direct edge mutation would
        desynchronise the running count.  Use :meth:`snapshot` for a safe
        independent copy.
        """
        return self._graph

    @property
    def count(self) -> int:
        """The exact statistic value of the current graph.

        Every maintainer exposes ``count``; the streaming orchestrator only
        reads this name so it can maintain any registered statistic.
        """
        return self._count

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the dynamic graph."""
        return self._graph.num_nodes

    @property
    def events_applied(self) -> int:
        """How many events have been applied so far."""
        return self._events_applied

    def degrees(self) -> List[int]:
        """Degree of every node as a plain list (uniform maintainer surface)."""
        return self._graph.degrees()

    def degree_vector(self, copy: bool = True) -> np.ndarray:
        """Degree of every node as an int64 array (uniform maintainer surface)."""
        return self._graph.degree_vector(copy=copy)

    def snapshot(self) -> Graph:
        """An independent copy of the current graph state."""
        return self._graph.copy()

    # ------------------------------------------------------------------ #
    # Event application
    # ------------------------------------------------------------------ #
    def apply(self, event: EdgeEvent) -> int:
        """Apply one event and return the statistic delta it caused.

        Additions of already-present edges and removals of absent edges are
        no-ops with delta 0 (the stream generators never produce them, but a
        live deployment's dedup logic should not have to be perfect).  No-op
        events still count toward :attr:`events_applied` — it tracks events
        *consumed*, matching the orchestrator's throughput accounting.
        """
        graph = self._graph
        u, v = event.edge
        if v >= graph.num_nodes:
            raise StreamError(
                f"event on edge ({u}, {v}) is out of range for a maintainer "
                f"over {graph.num_nodes} nodes"
            )
        self._events_applied += 1
        if event.is_addition:
            if graph.has_edge(u, v):
                return 0
            delta = self._delta_add(u, v)
            graph.add_edge(u, v)
        else:
            if not graph.has_edge(u, v):
                return 0
            delta = self._delta_remove(u, v)
            graph.remove_edge(u, v)
        self._count += delta
        return delta

    def apply_all(self, events: Iterable[EdgeEvent]) -> int:
        """Apply every event in order; return the cumulative delta."""
        total = 0
        for event in events:
            total += self.apply(event)
        return total


class IncrementalTriangleMaintainer(_GraphMaintainerBase):
    """Maintains the exact triangle count of a mutating graph per edge event.

    Flipping edge ``{u, v}`` changes the count by exactly the number of
    common neighbours of ``u`` and ``v`` — one in-place set intersection,
    ``O(min(d_u, d_v))`` per event.

    Examples
    --------
    >>> from repro.stream.events import EdgeEvent, EdgeEventKind
    >>> maintainer = IncrementalTriangleMaintainer(num_nodes=3)
    >>> deltas = [
    ...     maintainer.apply(EdgeEvent(EdgeEventKind.ADD, u, v))
    ...     for u, v in [(0, 1), (1, 2), (0, 2)]
    ... ]
    >>> deltas, maintainer.count
    ([0, 0, 1], 1)
    """

    def _initial_count(self) -> int:
        return count_triangles(self._graph)

    @property
    def triangle_count(self) -> int:
        """The exact triangle count of the current graph (alias of :attr:`count`)."""
        return self._count

    #: Dense block ingest bounds: below this many events the per-event path
    #: wins (no packed matrix to amortise); above this many nodes the O(n²)
    #: working matrix stops being worth building; and below this projected
    #: average degree the per-event set intersection (O(min degree)) beats
    #: the batched popcount (O(n/64) words/row + per-round numpy overhead) —
    #: the crossover sits near average degree ≈ 130 on the committed
    #: baseline machine (see ``bench_stream_throughput.py``).
    _BLOCK_INGEST_MIN_EVENTS = 32
    _BLOCK_INGEST_MAX_NODES = 4096
    _BLOCK_INGEST_MIN_AVG_DEGREE = 128

    def _delta_add(self, u: int, v: int) -> int:
        # Common neighbours before the insertion = new triangles closed.
        return self._graph.common_neighbor_count(u, v)

    def _delta_remove(self, u: int, v: int) -> int:
        # Common neighbours while the edge is present = triangles broken.
        return -self._graph.common_neighbor_count(u, v)

    def apply(self, event: EdgeEvent) -> int:
        delta = super().apply(event)
        # The running count is exact, so re-seed the per-graph memo that any
        # mutation just invalidated; evaluation code calling count_triangles
        # on the maintainer's graph then costs O(1).
        self._graph.cached_triangle_count = self._count
        return delta

    def apply_all(self, events: Iterable[EdgeEvent]) -> int:
        """Array-native block ingest: batched common-neighbour counts.

        Events are consumed in order, partitioned greedily into *rounds* of
        vertex-disjoint edge flips.  Within a round no event can change
        another's common-neighbour count (flipping ``{u2, v2}`` only alters
        the adjacency of ``u2`` and ``v2``, and neither is an endpoint of a
        disjoint event), so the whole round's deltas come from one batched
        popcount over a bit-packed working adjacency matrix —
        ``delta_i = popcount(A[u_i] & A[v_i])``, ``n/64`` words per row —
        instead of one Python set intersection per event.  No-op events
        (re-adding a present edge, removing an absent one) contribute delta
        0 without breaking the round, exactly matching :meth:`apply`'s
        semantics; the result, graph state, and ``events_applied`` are
        bit-identical to the per-event path
        (``tests/test_stream_delta.py`` pins it).

        Small blocks, very large graphs, and sparse regimes (where the
        per-event ``O(min degree)`` set intersection is cheaper than the
        per-round numpy dispatch) fall back to the per-event path; the
        result is identical either way.
        """
        if not isinstance(events, (list, tuple)):
            events = list(events)
        graph = self._graph
        n = graph.num_nodes
        if (
            not _HAS_BITWISE_COUNT
            or len(events) < self._BLOCK_INGEST_MIN_EVENTS
            or n > self._BLOCK_INGEST_MAX_NODES
        ):
            return super().apply_all(events)
        # One pass over the event objects up front: the scan below then
        # works on plain ints (attribute access per event is a measurable
        # cost at stream rates).
        flat: List[tuple] = []
        additions = 0
        for event in events:
            u, v = event.edge
            if v >= n:
                raise StreamError(
                    f"event on edge ({u}, {v}) is out of range for a maintainer "
                    f"over {n} nodes"
                )
            adding = event.is_addition
            additions += adding
            flat.append((u, v, adding))
        # Density gate: the batched path only wins when neighbourhoods are
        # large; project the end-of-block average degree as an upper bound.
        projected_degree = 2.0 * (graph.num_edges + additions) / max(n, 1)
        if projected_degree < self._BLOCK_INGEST_MIN_AVG_DEGREE:
            return super().apply_all(events)
        # Bit-packed adjacency: row u holds n bits in ceil(n/64) uint64
        # words, so one round's common-neighbour counts are a single
        # AND + popcount over an (r, words) block.
        words = (n + 63) >> 6
        packed = np.packbits(
            graph.adjacency_matrix(copy=False).astype(np.uint8, copy=False),
            axis=1,
            bitorder="little",
        )
        pad = words * 8 - packed.shape[1]
        if pad:
            packed = np.pad(packed, ((0, 0), (0, pad)))
        packed = packed.view(np.uint64)
        edge_bit = np.uint64(1)

        total = 0
        cursor = 0
        round_u: List[int] = []
        round_v: List[int] = []
        round_sign: List[int] = []
        touched: set = set()

        def flush_round() -> int:
            if not round_u:
                return 0
            uu = np.asarray(round_u, dtype=np.int64)
            vv = np.asarray(round_v, dtype=np.int64)
            signs = np.asarray(round_sign, dtype=np.int64)
            # One batched common-neighbour count for the whole round.
            deltas = np.bitwise_count(packed[uu] & packed[vv]).sum(axis=1).astype(np.int64)
            # Apply the round's flips to the packed rows.  Edges in a round
            # are vertex-disjoint, so every (row, word) index pair below is
            # unique and plain fancy assignment is race-free.
            u_masks = edge_bit << (vv.astype(np.uint64) & np.uint64(63))
            v_masks = edge_bit << (uu.astype(np.uint64) & np.uint64(63))
            adds = signs > 0
            if adds.any():
                au, av = uu[adds], vv[adds]
                packed[au, av >> 6] |= u_masks[adds]
                packed[av, au >> 6] |= v_masks[adds]
            removes = ~adds
            if removes.any():
                ru, rv = uu[removes], vv[removes]
                packed[ru, rv >> 6] &= ~u_masks[removes]
                packed[rv, ru >> 6] &= ~v_masks[removes]
            round_u.clear()
            round_v.clear()
            round_sign.clear()
            touched.clear()
            return int(np.dot(signs, deltas))

        adjacency_sets = graph._adjacency
        applied = 0
        while cursor < len(flat):
            u, v, adding = flat[cursor]
            if u in touched or v in touched:
                total += flush_round()
                continue
            # Presence check against the *current* state (the graph is kept
            # in sync event by event, and its set lookup is O(1) — far
            # cheaper than scalar bit-fiddling on the packed rows); no-ops
            # mutate nothing, so they need not join (or break) the round.
            applied += 1
            cursor += 1
            if adding == (v in adjacency_sets[u]):
                continue
            round_u.append(u)
            round_v.append(v)
            touched.add(u)
            touched.add(v)
            if adding:
                round_sign.append(1)
                graph.add_edge(u, v)
            else:
                round_sign.append(-1)
                graph.remove_edge(u, v)
        total += flush_round()
        self._events_applied += applied
        self._count += total
        self._graph.cached_triangle_count = self._count
        return total


class IncrementalKStarMaintainer(_GraphMaintainerBase):
    """Maintains ``sum_v C(d_v, k)`` per edge event in ``O(1)``.

    Only the two endpoint degrees change, each by one, so the delta is
    ``±(C(d_u', k) - C(d_u, k)) ± (C(d_v', k) - C(d_v, k))`` — two binomial
    differences, no neighbourhood scans at all.
    """

    def __init__(
        self,
        k: int = 2,
        num_nodes: int = 0,
        initial_graph: Optional[Graph] = None,
    ) -> None:
        if k < 1:
            raise StreamError(f"k must be at least 1, got {k}")
        self._k = int(k)
        super().__init__(num_nodes=num_nodes, initial_graph=initial_graph)

    @property
    def k(self) -> int:
        """The star size being maintained."""
        return self._k

    def _initial_count(self) -> int:
        return sum(math.comb(d, self._k) for d in self._graph.degrees())

    def _endpoint_delta(self, node: int, direction: int) -> int:
        degree = self._graph.degree(node)
        return math.comb(degree + direction, self._k) - math.comb(degree, self._k)

    def _delta_add(self, u: int, v: int) -> int:
        return self._endpoint_delta(u, +1) + self._endpoint_delta(v, +1)

    def _delta_remove(self, u: int, v: int) -> int:
        return self._endpoint_delta(u, -1) + self._endpoint_delta(v, -1)


class IncrementalFourCycleMaintainer(_GraphMaintainerBase):
    """Maintains the exact 4-cycle count per edge event.

    Flipping edge ``{u, v}`` changes the count by the number of length-3
    paths ``u – c – b – v`` in the rest of the graph: one scan over the
    smaller endpoint's neighbourhood with a common-neighbour count per
    step, ``O(d_u · min-degree)`` — the 4-cycle analogue of the triangle
    maintainer's single intersection.
    """

    def _initial_count(self) -> int:
        from repro.stats.four_cycles import count_four_cycles_exact

        return count_four_cycles_exact(self._graph)

    def _paths_of_length_three(self, u: int, v: int, edge_present: bool) -> int:
        """Count paths ``u – c – b – v`` with ``c ≠ v``, ``b ≠ u``.

        When the edge ``{u, v}`` is present, ``u`` itself is a common
        neighbour of every ``c ∈ N(u)`` and ``v`` and must be excluded from
        the ``b`` candidates; the walk never uses the edge ``{u, v}``
        otherwise, so the same formula serves additions (edge absent) and
        removals (edge present).
        """
        graph = self._graph
        if graph.degree(u) > graph.degree(v):
            u, v = v, u
        total = 0
        for c in graph.neighbor_view(u):
            if c == v:
                continue
            total += graph.common_neighbor_count(c, v)
            if edge_present:
                total -= 1
        return total

    def _delta_add(self, u: int, v: int) -> int:
        return self._paths_of_length_three(u, v, edge_present=False)

    def _delta_remove(self, u: int, v: int) -> int:
        return -self._paths_of_length_three(u, v, edge_present=True)


class _BoundedMaintainerBase:
    """Bounded-memory analogue of :class:`_GraphMaintainerBase` — no ``Graph``.

    The only state is an int64 degree vector plus one flat set of integer
    edge keys (``u·n + v`` with ``u < v``) — ``O(n + m)`` with small
    constants and no per-node set objects.  Event semantics (no-op
    duplicate adds and absent removes, ``events_applied`` counting consumed
    events, the delta hook firing *before* the mutation) mirror
    :class:`_GraphMaintainerBase` exactly, so running counts are
    bit-identical to the full-memory maintainers on any event sequence.

    Because no graph object is materialised, :attr:`graph` raises; the
    uniform degree surface (:meth:`degrees` / :meth:`degree_vector`) is what
    the streaming orchestrator's degree-local anchor path reads instead.
    """

    def __init__(
        self, num_nodes: int = 0, initial_graph: Optional[Graph] = None
    ) -> None:
        if initial_graph is not None:
            num_nodes = initial_graph.num_nodes
        if num_nodes < 0:
            raise StreamError(f"num_nodes must be non-negative, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        self._degrees = np.zeros(self._num_nodes, dtype=np.int64)
        self._edges: set = set()
        self._setup_state()
        if initial_graph is not None:
            for u, v in initial_graph.edges():
                self._edges.add(self._edge_key(u, v))
                self._after_add(u, v)
            self._degrees = initial_graph.degree_vector()
        self._count = self._initial_count(initial_graph)
        self._events_applied = 0

    # ------------------------------------------------------------------ #
    # Statistic hooks
    # ------------------------------------------------------------------ #
    def _setup_state(self) -> None:
        """Initialise subclass state that depends on ``num_nodes``."""

    def _initial_count(self, initial_graph: Optional[Graph]) -> int:
        raise NotImplementedError

    def _delta_add(self, u: int, v: int) -> int:
        raise NotImplementedError

    def _delta_remove(self, u: int, v: int) -> int:
        raise NotImplementedError

    def _after_add(self, u: int, v: int) -> None:
        """Post-mutation hook (degrees and edge set already updated)."""

    def _after_remove(self, u: int, v: int) -> None:
        """Post-mutation hook (degrees and edge set already updated)."""

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    def _edge_key(self, u: int, v: int) -> int:
        if u > v:
            u, v = v, u
        return u * self._num_nodes + v

    @property
    def graph(self) -> Graph:
        """Bounded-memory maintainers keep no graph object — always raises.

        Use :meth:`snapshot` for a one-off reconstruction or the degree
        surface (:meth:`degrees` / :meth:`degree_vector`) for anchor input.
        """
        raise StreamError(
            "a bounded-memory maintainer keeps no graph; use snapshot() for "
            "a transient reconstruction or degrees()/degree_vector() for the "
            "degree-local anchor path"
        )

    @property
    def count(self) -> int:
        """The exact statistic value of the current edge set."""
        return self._count

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the dynamic graph."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of edges currently present."""
        return len(self._edges)

    @property
    def events_applied(self) -> int:
        """How many events have been applied so far."""
        return self._events_applied

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is currently present."""
        return self._edge_key(u, v) in self._edges

    def degrees(self) -> List[int]:
        """Degree of every node as a plain list (the `Max` step's input)."""
        return self._degrees.tolist()

    def degree_vector(self, copy: bool = True) -> np.ndarray:
        """Degree of every node as a length-``n`` int64 array.

        ``copy=False`` returns the live internal array — callers must treat
        it as read-only.
        """
        if copy:
            return self._degrees.copy()
        return self._degrees

    def snapshot(self) -> Graph:
        """Reconstruct an independent :class:`Graph` from the flat edge set.

        Transient ``O(n + m)`` — the maintainer itself keeps holding only
        the bounded state.
        """
        graph = Graph(self._num_nodes)
        for key in self._edges:
            u, v = divmod(key, self._num_nodes)
            graph.add_edge(u, v)
        return graph

    # ------------------------------------------------------------------ #
    # Event application
    # ------------------------------------------------------------------ #
    def apply(self, event: EdgeEvent) -> int:
        """Apply one event and return the statistic delta it caused.

        Same semantics as :meth:`_GraphMaintainerBase.apply`: no-op events
        have delta 0 but still count toward :attr:`events_applied`.
        """
        u, v = event.edge
        if u >= self._num_nodes or v >= self._num_nodes:
            raise StreamError(
                f"event on edge ({u}, {v}) is out of range for a maintainer "
                f"over {self._num_nodes} nodes"
            )
        self._events_applied += 1
        key = self._edge_key(u, v)
        if event.is_addition:
            if key in self._edges:
                return 0
            delta = self._delta_add(u, v)
            self._edges.add(key)
            self._degrees[u] += 1
            self._degrees[v] += 1
            self._after_add(u, v)
        else:
            if key not in self._edges:
                return 0
            delta = self._delta_remove(u, v)
            self._edges.discard(key)
            self._degrees[u] -= 1
            self._degrees[v] -= 1
            self._after_remove(u, v)
        self._count += delta
        return delta

    def apply_all(self, events: Iterable[EdgeEvent]) -> int:
        """Apply every event in order; return the cumulative delta."""
        total = 0
        for event in events:
            total += self.apply(event)
        return total


class DegreeVectorKStarMaintainer(_BoundedMaintainerBase):
    """Maintains ``sum_v C(d_v, k)`` from degree-vector state alone.

    The k-star count is a pure function of the degree vector, so the
    maintainer's working state is one int64 array plus the flat edge-key set
    (needed only to honour the no-op semantics for duplicate adds and absent
    removes) — ``O(n + m)`` integers, no adjacency sets, no ``Graph``
    object.  Deltas are the same two ``O(1)`` binomial differences as
    :class:`IncrementalKStarMaintainer`, so running counts are bit-identical
    to the full-memory maintainer on any event sequence.

    Examples
    --------
    >>> from repro.stream.events import EdgeEvent, EdgeEventKind
    >>> maintainer = DegreeVectorKStarMaintainer(k=2, num_nodes=4)
    >>> deltas = [
    ...     maintainer.apply(EdgeEvent(EdgeEventKind.ADD, u, v))
    ...     for u, v in [(0, 1), (0, 2), (0, 3)]
    ... ]
    >>> deltas, maintainer.count
    ([0, 1, 2], 3)
    """

    def __init__(
        self,
        k: int = 2,
        num_nodes: int = 0,
        initial_graph: Optional[Graph] = None,
    ) -> None:
        if k < 1:
            raise StreamError(f"k must be at least 1, got {k}")
        self._k = int(k)
        super().__init__(num_nodes=num_nodes, initial_graph=initial_graph)

    @property
    def k(self) -> int:
        """The star size being maintained."""
        return self._k

    def _initial_count(self, initial_graph: Optional[Graph]) -> int:
        return sum(math.comb(int(d), self._k) for d in self._degrees.tolist())

    def _endpoint_delta(self, node: int, direction: int) -> int:
        degree = int(self._degrees[node])
        return math.comb(degree + direction, self._k) - math.comb(degree, self._k)

    def _delta_add(self, u: int, v: int) -> int:
        return self._endpoint_delta(u, +1) + self._endpoint_delta(v, +1)

    def _delta_remove(self, u: int, v: int) -> int:
        return self._endpoint_delta(u, -1) + self._endpoint_delta(v, -1)


class CappedTriangleMaintainer(_BoundedMaintainerBase):
    """Maintains the exact triangle count with capped neighbour sets.

    Per-node neighbour sets are capped at *neighbor_cap* entries, so the
    working state is ``O(n·cap + m)`` instead of the full adjacency's
    ``O(n + m)`` set objects with unbounded per-node fan-out.  A node whose
    degree exceeds the cap is marked *saturated* (its capped set is cleared
    — its contents are no longer a faithful neighbourhood); deltas touching
    a saturated endpoint fall back to exact membership probes against the
    flat edge-key set (``O(d)`` when one endpoint is exact, ``O(n)`` when
    both saturated), so the running count stays **exact** — bit-identical to
    :class:`IncrementalTriangleMaintainer` on any event sequence — while
    memory stays bounded.

    After *resync_every* fallback deltas the maintainer re-synchronises:
    saturated nodes whose degree has dropped back to the cap or below
    (edge removals) get their exact neighbour sets rebuilt from the edge-key
    set in one ``O(n + m)`` pass, restoring the fast intersection path.

    Examples
    --------
    >>> from repro.stream.events import EdgeEvent, EdgeEventKind
    >>> maintainer = CappedTriangleMaintainer(num_nodes=3, neighbor_cap=1)
    >>> deltas = [
    ...     maintainer.apply(EdgeEvent(EdgeEventKind.ADD, u, v))
    ...     for u, v in [(0, 1), (1, 2), (0, 2)]
    ... ]
    >>> deltas, maintainer.count
    ([0, 0, 1], 1)
    """

    def __init__(
        self,
        num_nodes: int = 0,
        initial_graph: Optional[Graph] = None,
        neighbor_cap: int = DEFAULT_NEIGHBOR_CAP,
        resync_every: Optional[int] = None,
    ) -> None:
        if neighbor_cap < 1:
            raise StreamError(
                f"neighbor_cap must be at least 1, got {neighbor_cap}"
            )
        if resync_every is not None and resync_every < 1:
            raise StreamError(
                f"resync_every must be at least 1, got {resync_every}"
            )
        self._cap = int(neighbor_cap)
        self._resync_every = (
            int(resync_every)
            if resync_every is not None
            else max(64, 2 * self._cap)
        )
        super().__init__(num_nodes=num_nodes, initial_graph=initial_graph)

    def _setup_state(self) -> None:
        self._capped: List[set] = [set() for _ in range(self._num_nodes)]
        self._saturated = bytearray(self._num_nodes)
        self._fallbacks = 0
        self._fallbacks_since_resync = 0
        self._resyncs = 0

    @property
    def neighbor_cap(self) -> int:
        """The per-node neighbour budget."""
        return self._cap

    @property
    def fallbacks(self) -> int:
        """How many deltas used the exact edge-set fallback (observability)."""
        return self._fallbacks

    @property
    def resyncs(self) -> int:
        """How many capped-set rebuilds have run (observability)."""
        return self._resyncs

    @property
    def saturated_nodes(self) -> int:
        """How many nodes currently exceed the neighbour cap."""
        return sum(self._saturated)

    @property
    def triangle_count(self) -> int:
        """The exact triangle count (alias of :attr:`count`)."""
        return self._count

    def _initial_count(self, initial_graph: Optional[Graph]) -> int:
        if initial_graph is None:
            return 0
        return count_triangles(initial_graph)

    def _common_neighbors(self, u: int, v: int) -> int:
        if not self._saturated[u] and not self._saturated[v]:
            # Both capped sets are faithful neighbourhoods: one intersection.
            return len(self._capped[u] & self._capped[v])
        self._fallbacks += 1
        self._fallbacks_since_resync += 1
        if self._fallbacks_since_resync >= self._resync_every:
            self._fallbacks_since_resync = 0
            self._maybe_resync()
            if not self._saturated[u] and not self._saturated[v]:
                return len(self._capped[u] & self._capped[v])
        edges = self._edges
        if not self._saturated[u]:
            return sum(
                1 for w in self._capped[u] if self._edge_key(v, w) in edges
            )
        if not self._saturated[v]:
            return sum(
                1 for w in self._capped[v] if self._edge_key(u, w) in edges
            )
        # Both endpoints saturated: exact O(n) membership scan.
        return sum(
            1
            for w in range(self._num_nodes)
            if w != u
            and w != v
            and self._edge_key(u, w) in edges
            and self._edge_key(v, w) in edges
        )

    def _maybe_resync(self) -> None:
        """Rebuild capped sets when some saturated node can become exact again."""
        saturated = np.frombuffer(self._saturated, dtype=np.uint8) != 0
        if not bool(np.any(saturated & (self._degrees <= self._cap))):
            return
        n = self._num_nodes
        capped: List[set] = [set() for _ in range(n)]
        marks = bytearray(
            int(d > self._cap) for d in self._degrees.tolist()
        )
        for key in self._edges:
            u, v = divmod(key, n)
            if not marks[u]:
                capped[u].add(v)
            if not marks[v]:
                capped[v].add(u)
        self._capped = capped
        self._saturated = marks
        self._resyncs += 1

    def _delta_add(self, u: int, v: int) -> int:
        return self._common_neighbors(u, v)

    def _delta_remove(self, u: int, v: int) -> int:
        return -self._common_neighbors(u, v)

    def _after_add(self, u: int, v: int) -> None:
        for a, b in ((u, v), (v, u)):
            if self._saturated[a]:
                continue
            capped = self._capped[a]
            if len(capped) < self._cap:
                capped.add(b)
            else:
                # Over budget: the set stops being a faithful neighbourhood,
                # so free it outright rather than keeping a misleading subset.
                self._saturated[a] = 1
                capped.clear()

    def _after_remove(self, u: int, v: int) -> None:
        for a, b in ((u, v), (v, u)):
            if not self._saturated[a]:
                self._capped[a].discard(b)


class RecountingMaintainer(_GraphMaintainerBase):
    """Fallback maintainer: recount with the statistic's plain kernel per event.

    Correct for *any* registered statistic at ``O(plain_count)`` per event;
    third-party statistics get streaming support for free and can ship a
    bespoke incremental maintainer later.
    """

    def __init__(
        self,
        statistic,
        num_nodes: int = 0,
        initial_graph: Optional[Graph] = None,
    ) -> None:
        self._statistic = statistic
        super().__init__(num_nodes=num_nodes, initial_graph=initial_graph)

    def _initial_count(self) -> int:
        return int(self._statistic.plain_count(self._graph))

    def _recount_delta(self, u: int, v: int, is_addition: bool) -> int:
        probe = self._graph.copy()
        if is_addition:
            probe.add_edge(u, v)
        else:
            probe.remove_edge(u, v)
        return int(self._statistic.plain_count(probe)) - self._count

    def _delta_add(self, u: int, v: int) -> int:
        return self._recount_delta(u, v, is_addition=True)

    def _delta_remove(self, u: int, v: int) -> int:
        return self._recount_delta(u, v, is_addition=False)


def make_maintainer(
    statistic,
    num_nodes: int = 0,
    initial_graph: Optional[Graph] = None,
    *,
    memory_mode: str = "full",
    neighbor_cap: Optional[int] = None,
):
    """Build the incremental maintainer matching a statistic object.

    Dispatches the built-in statistics onto their bespoke maintainers and
    everything else onto :class:`RecountingMaintainer`.  The returned object
    exposes the uniform surface the orchestrator consumes: ``count``,
    ``events_applied``, ``degrees``/``degree_vector``, ``apply``,
    ``apply_all``, ``snapshot`` (plus ``graph`` in full-memory mode).

    ``memory_mode="bounded"`` selects the bounded-memory maintainers —
    degree-vector state for k-stars/wedges
    (:class:`DegreeVectorKStarMaintainer`) and capped neighbour sets with an
    exact recount fallback for triangles (:class:`CappedTriangleMaintainer`,
    whose per-node budget is *neighbor_cap*, default
    :data:`DEFAULT_NEIGHBOR_CAP`).  Running counts are bit-identical to the
    full-memory maintainers; statistics without a bounded maintainer raise.
    """
    from repro.stats.four_cycles import FourCycleStatistic
    from repro.stats.kstars import KStarStatistic
    from repro.stats.triangles import TriangleStatistic

    if memory_mode not in ("full", "bounded"):
        raise StreamError(
            f"memory_mode must be 'full' or 'bounded', got {memory_mode!r}"
        )
    if neighbor_cap is not None and neighbor_cap < 1:
        raise StreamError(f"neighbor_cap must be at least 1, got {neighbor_cap}")
    if memory_mode == "bounded":
        if isinstance(statistic, TriangleStatistic):
            return CappedTriangleMaintainer(
                num_nodes=num_nodes,
                initial_graph=initial_graph,
                neighbor_cap=(
                    neighbor_cap if neighbor_cap is not None else DEFAULT_NEIGHBOR_CAP
                ),
            )
        if isinstance(statistic, KStarStatistic):
            return DegreeVectorKStarMaintainer(
                k=statistic.k, num_nodes=num_nodes, initial_graph=initial_graph
            )
        raise StreamError(
            "memory_mode='bounded' supports the triangles and k-star/wedge "
            f"statistics, not {type(statistic).__name__}"
        )
    if isinstance(statistic, TriangleStatistic):
        return IncrementalTriangleMaintainer(
            num_nodes=num_nodes, initial_graph=initial_graph
        )
    if isinstance(statistic, KStarStatistic):
        return IncrementalKStarMaintainer(
            k=statistic.k, num_nodes=num_nodes, initial_graph=initial_graph
        )
    if isinstance(statistic, FourCycleStatistic):
        return IncrementalFourCycleMaintainer(
            num_nodes=num_nodes, initial_graph=initial_graph
        )
    return RecountingMaintainer(
        statistic, num_nodes=num_nodes, initial_graph=initial_graph
    )
