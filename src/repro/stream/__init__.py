"""Streaming dynamic-graph subsystem: continual private triangle counting.

The one-shot CARGO pipeline answers a single query over a frozen graph; this
subpackage serves a *stream* of edge additions and removals:

* :mod:`repro.stream.events` — the edge-event model (:class:`EdgeEvent`,
  :class:`EdgeStream`) and stream generators that replay any
  ``repro.graph`` dataset as a randomized arrival sequence or synthesise
  add/remove churn,
* :mod:`repro.stream.delta` — incremental maintainers that update the exact
  statistic per event (triangles in ``O(min degree)`` via neighbourhood
  intersection, k-stars in ``O(1)``, 4-cycles via length-3 path counting),
  dispatched from any registered statistic by :func:`make_maintainer`,
* :mod:`repro.stream.release` — the binary-tree continual-observation DP
  mechanism (``T`` releases under one total ε with ``O(log T)`` ledger
  entries) plus pluggable release policies,
* :mod:`repro.stream.orchestrator` — :class:`StreamingCargo`, which serves
  continual DP estimates between periodic secure-count anchors executed
  through any registered counting backend.
"""

from repro.stream.events import (
    EdgeEvent,
    EdgeEventKind,
    EdgeStream,
    churn_stream,
    replay_dataset,
    replay_stream,
)
from repro.stream.delta import (
    DEFAULT_NEIGHBOR_CAP,
    CappedTriangleMaintainer,
    DegreeVectorKStarMaintainer,
    IncrementalFourCycleMaintainer,
    IncrementalKStarMaintainer,
    IncrementalTriangleMaintainer,
    RecountingMaintainer,
    make_maintainer,
)
from repro.stream.release import (
    BinaryTreeRelease,
    EveryKEventsPolicy,
    FixedIntervalPolicy,
    ReleasePolicy,
    tree_depth,
)
from repro.stream.orchestrator import (
    StreamRelease,
    StreamingCargo,
    StreamingConfig,
    StreamingResult,
)

__all__ = [
    "EdgeEvent",
    "EdgeEventKind",
    "EdgeStream",
    "churn_stream",
    "replay_dataset",
    "replay_stream",
    "IncrementalTriangleMaintainer",
    "IncrementalKStarMaintainer",
    "IncrementalFourCycleMaintainer",
    "DegreeVectorKStarMaintainer",
    "CappedTriangleMaintainer",
    "DEFAULT_NEIGHBOR_CAP",
    "RecountingMaintainer",
    "make_maintainer",
    "BinaryTreeRelease",
    "EveryKEventsPolicy",
    "FixedIntervalPolicy",
    "ReleasePolicy",
    "tree_depth",
    "StreamRelease",
    "StreamingCargo",
    "StreamingConfig",
    "StreamingResult",
]
