"""Continual private subgraph-statistic release over an edge stream.

:class:`StreamingCargo` turns the one-shot CARGO pipeline into a continual-
release system for any registered statistic (triangles by default):

1. an incremental maintainer (:func:`~repro.stream.delta.make_maintainer`)
   tracks the exact count per edge event — ``O(min degree)`` for triangles,
   ``O(1)`` for k-stars, a length-3 path count for 4-cycles,
2. a release policy (every-``k``-events or a fixed stream-time cadence)
   decides *when* an estimate is published,
3. a :class:`~repro.stream.release.BinaryTreeRelease` turns the per-release
   deltas into noisy prefix sums, so ``T`` releases cost a single total ε
   with only ``O(log T)`` accountant ledger entries, and
4. optionally, every *anchor_every*-th release re-runs the statistic's
   secure `Count` kernel (through any registered counting backend) to
   obtain a fresh, independently perturbed absolute count.  The anchor is *blended* with the
   continual estimate by inverse-variance weighting (the continual side uses
   a conservative upper bound on its variance), so a noisy anchor is
   discounted instead of replacing the estimate outright and
   continual-release noise cannot accumulate unboundedly across the stream
   lifetime.  Between anchors the served estimate is ``base + (noisy prefix
   now − noisy prefix at the anchor)``.

Sensitivity caveats: the anchor's Laplace scale uses ``anchor_sensitivity``
when configured; otherwise each anchor spends a
:data:`~repro.dp.budget.DEFAULT_MAX_DEGREE_FRACTION` slice of its own budget
on a private maximum-degree estimate (one-shot CARGO's `Max` step).  Either
way the snapshot is *projected* to the bound before the secure count — a
degree bound is only a valid statistic sensitivity for the projected
graph — so each anchor is a faithful mini-CARGO pass and ε-DP end to end.
The tree mechanism's noise is scaled by ``delta_sensitivity``, whose
default of 1.0 bounds the edge-event count rather than the statistic delta
(one edge closes up to ``d_max`` triangles and up to ``(d_max-1)²``
4-cycles); production deployments should supply the configured statistic's
sensitivity at their projection's degree bound
(``statistic.statistic_sensitivity(θ)``), mirroring the anchor path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.core.config import CountingBackend
from repro.core.backends.registry import (
    available_backends,
    backend_registered,
    resolve_backend_name,
)
from repro.core.cargo import resolve_sparse_mode
from repro.core.max_degree import MaxDegreeEstimator
from repro.core.projection import SimilarityProjection
from repro.crypto.ring import DEFAULT_RING, Ring
from repro.dp.accountant import PrivacyAccountant
from repro.dp.budget import DEFAULT_MAX_DEGREE_FRACTION
from repro.dp.mechanisms import LaplaceMechanism
from repro.exceptions import ConfigurationError, StreamError
from repro.graph.graph import Graph
from repro.stats import (
    available_statistics,
    create_statistic,
    resolve_statistic_name,
    statistic_registered,
)
from repro.stream.delta import make_maintainer
from repro.stream.events import EdgeStream
from repro.resilience import Checkpointer, resolve_resilience
from repro.resilience.faults import fault_point
from repro.stream.release import (
    BinaryTreeRelease,
    EveryKEventsPolicy,
    FixedIntervalPolicy,
    ReleasePolicy,
)
from repro.telemetry import Tracer, build_result_telemetry, resolve_telemetry
from repro.utils.rng import derive_rng, spawn_rngs

__all__ = ["StreamingConfig", "StreamRelease", "StreamingResult", "StreamingCargo"]


def _release_schedule(stream: "EdgeStream", policy, final_release: bool):
    """Yield ``(event_index, event, release_now)`` for every event in *stream*.

    This is the single source of truth for when a release happens — both
    :meth:`StreamingConfig.expected_releases` (capacity and anchor planning)
    and :meth:`StreamingCargo.run` iterate it, so the plan can never diverge
    from what the run publishes.
    """
    num_events = len(stream)
    last_index = 0
    last_time = 0.0
    for index, event in enumerate(stream, start=1):
        due = policy.should_release(index, event.time, last_index, last_time)
        release_now = due or (index == num_events and final_release)
        if release_now:
            last_index = index
            last_time = event.time
        yield index, event, release_now


@dataclass(frozen=True)
class StreamingConfig:
    """All knobs of one continual-release run.

    Parameters
    ----------
    epsilon:
        Total privacy budget for the whole stream.  When anchors are enabled
        it is split: ``(1 - anchor_fraction) · ε`` funds the binary-tree
        continual release and ``anchor_fraction · ε`` is divided evenly among
        the planned anchors.
    release_every:
        Publish a release every this many applied events (the default
        policy).  Ignored when *release_interval* is set.
    release_interval:
        When set, publish on a fixed stream-time cadence (synthetic seconds)
        instead of an event count.
    anchor_every:
        Re-run the secure `Count` phase every this many releases; ``0``
        disables anchoring.
    anchor_fraction:
        Fraction of ε reserved for anchors when they are enabled.  The
        reserved budget is divided evenly among the anchors the *actual
        stream* can produce (computed at ``run()`` time), not the tree
        capacity, so long capacity headroom does not starve each anchor.
    max_releases:
        Capacity ``T`` of the binary-tree mechanism.  ``None`` (the default)
        derives a tight capacity from the stream at ``run()`` time — the
        right choice for almost all callers.  An explicit value fixes the
        tree depth up front (e.g. for an open-ended deployment); streams
        that would release more often than it raise rather than silently
        overspending.
    delta_sensitivity:
        L1 sensitivity of one release's aggregated delta — how much the
        protected unit (one edge, under Edge-DP) can change the sum of deltas
        inside a single release window.  **The ε guarantee is only as honest
        as this bound**, and the bound is *per statistic*: one edge flip
        moves the count by up to ``θ`` for triangles, ``2·C(θ-1, k-1)`` for
        k-stars, and ``(θ-1)²`` for 4-cycles on a θ-degree-bounded graph —
        exactly ``statistic.statistic_sensitivity(θ)``, the same bound the
        anchor path applies.  The default of 1.0 protects only the
        *edge-event count* and understates every statistic's delta.
        Deployments must set it to the configured statistic's sensitivity at
        the degree bound their projection enforces; the evaluation
        experiments keep the default because they report accuracy
        trajectories, not a formal guarantee.
    anchor_sensitivity:
        Public sensitivity bound for the anchor perturbation.  ``None`` (the
        default) makes each anchor privately estimate the maximum degree
        with a fraction of its own budget — CARGO's `Max` step — and use
        that ``d'_max``, keeping the anchor ε-DP without any configured
        bound.
    counting_backend:
        Registered name (or :class:`~repro.core.config.CountingBackend`
        member) of the secure backend anchors run through.
    statistic:
        Registered name of the subgraph statistic the stream maintains and
        anchors (default ``triangles``; any
        :func:`repro.stats.register_statistic` name works — built-ins get a
        bespoke incremental maintainer, others fall back to exact
        recounting per event).
    star_k:
        Star size for the ``kstars`` statistic; ignored by other statistics.
    ring / block_size / batch_size:
        Backend construction parameters, mirroring
        :class:`~repro.core.config.CargoConfig`.
    workers:
        ``None`` keeps the serial anchor path; ``>= 1`` runs each anchor's
        secure count through the tile-parallel engine with that many worker
        threads (released estimates are identical either way).
    sparse:
        Degree-local anchor policy, mirroring ``CargoConfig.sparse``:
        ``"auto"`` (the default) runs anchors for degree statistics
        (k-stars/wedges) on the ``O(n)`` secret-shared degree vector
        instead of the ``n x n`` projected rows — released estimates are
        bit-identical either way; ``"never"`` forces the dense path;
        ``"force"`` raises for statistics without a degree kernel.
    memory_mode:
        ``"full"`` (the default) keeps the classic graph-backed incremental
        maintainer; ``"bounded"`` swaps in the bounded-memory maintainers —
        degree-vector state for k-stars/wedges, capped neighbour sets with
        an exact edge-set fallback for triangles — with bit-identical
        running counts.  Bounded mode keeps no graph snapshot, so anchors
        require the degree-local path (a non-degree statistic with anchors
        enabled raises at ``run()``).
    neighbor_cap:
        Per-node neighbour budget for the bounded triangle maintainer
        (``None`` uses :data:`repro.stream.delta.DEFAULT_NEIGHBOR_CAP`);
        ignored outside ``memory_mode="bounded"``.
    triple_store:
        Optional :class:`~repro.parallel.store.TripleStore`.  When set, the
        offline dealer randomness is pinned per run (one fixed substream
        reused by every anchor) so all anchors after the first fetch their
        correlated randomness warm instead of re-dealing.  Like
        ``offline_seed``, this reuses masks across anchor snapshots —
        evaluation-only; see ``docs/performance.md``.
    offline_seed:
        When set, anchors deal from ``derive_rng(offline_seed)`` (shared
        with any other run pinning the same value), making the dealt
        material reusable across whole runs, not just within one.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` session.  When set (and
        enabled) the run records a hierarchical span tree (run → anchor /
        release), stream metrics (events, releases, anchors, per-ledger-entry
        ε, anchor/release latency histograms), and a release entry for the
        exportable run manifest.  ``None`` (the default) is a true no-op and
        never perturbs released estimates either way.
    resilience:
        Optional :class:`~repro.resilience.ResilienceConfig`.  When set, each
        anchor runs inside an accountant transaction with its randomness
        substreams snapshotted (a failed anchor is retried under the
        configured policy with no double-spent ε and no divergent
        randomness), triple-store reads are retried/verified as configured,
        and — with a ``checkpoint_path`` — the run checkpoints its complete
        recovery state after every ``checkpoint_every``-th release so a
        killed process resumes (``resume=True``) with bit-identical
        releases, ledger, and transcripts.  ``None`` (the default) disables
        everything.
    seed:
        Master seed; the tree noise, the anchor noise, the share masks and
        the dealer all derive independent substreams from it.
    final_release:
        Publish one last release at end-of-stream even if the policy has not
        fired, so the stream's terminal state is always served.
    """

    epsilon: float = 2.0
    release_every: int = 64
    release_interval: Optional[float] = None
    anchor_every: int = 0
    anchor_fraction: float = 0.5
    max_releases: Optional[int] = None
    delta_sensitivity: float = 1.0
    anchor_sensitivity: Optional[float] = None
    counting_backend: Union[CountingBackend, str] = CountingBackend.MATRIX
    statistic: str = "triangles"
    star_k: int = 2
    ring: Ring = DEFAULT_RING
    block_size: int = 128
    batch_size: int = 4096
    workers: Optional[int] = None
    sparse: str = "auto"
    memory_mode: str = "full"
    neighbor_cap: Optional[int] = None
    triple_store: Optional[object] = field(default=None, compare=False, repr=False)
    offline_seed: Optional[int] = None
    telemetry: Optional[object] = field(default=None, compare=False, repr=False)
    resilience: Optional[object] = field(default=None, compare=False, repr=False)
    seed: Optional[int] = None
    final_release: bool = True

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {self.epsilon}")
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(
                f"workers must be at least 1 (or None for the serial path), "
                f"got {self.workers}"
            )
        if self.release_every <= 0:
            raise ConfigurationError(
                f"release_every must be positive, got {self.release_every}"
            )
        if self.release_interval is not None and self.release_interval <= 0:
            raise ConfigurationError(
                f"release_interval must be positive, got {self.release_interval}"
            )
        if self.anchor_every < 0:
            raise ConfigurationError(
                f"anchor_every must be non-negative, got {self.anchor_every}"
            )
        if self.anchor_every > 0 and not (0 < self.anchor_fraction < 1):
            raise ConfigurationError(
                f"anchor_fraction must be in (0, 1), got {self.anchor_fraction}"
            )
        if self.max_releases is not None and self.max_releases <= 0:
            raise ConfigurationError(
                f"max_releases must be positive, got {self.max_releases}"
            )
        if self.delta_sensitivity <= 0:
            raise ConfigurationError(
                f"delta_sensitivity must be positive, got {self.delta_sensitivity}"
            )
        if self.anchor_sensitivity is not None and self.anchor_sensitivity <= 0:
            raise ConfigurationError(
                f"anchor_sensitivity must be positive, got {self.anchor_sensitivity}"
            )
        if self.sparse not in ("auto", "never", "force"):
            raise ConfigurationError(
                f"sparse must be 'auto', 'never' or 'force', got {self.sparse!r}"
            )
        if self.memory_mode not in ("full", "bounded"):
            raise ConfigurationError(
                f"memory_mode must be 'full' or 'bounded', got {self.memory_mode!r}"
            )
        if self.neighbor_cap is not None and self.neighbor_cap < 1:
            raise ConfigurationError(
                f"neighbor_cap must be at least 1, got {self.neighbor_cap}"
            )
        # Validate the backend and statistic names eagerly (mirroring
        # CargoConfig) so a typo fails at construction rather than thousands
        # of events into the run.
        if not backend_registered(self.counting_backend):
            raise ConfigurationError(
                f"unknown counting backend {self.counting_backend!r}; "
                f"registered: {', '.join(available_backends())}"
            )
        if self.star_k < 1:
            raise ConfigurationError(f"star_k must be at least 1, got {self.star_k}")
        statistic_name = resolve_statistic_name(self.statistic)
        if not statistic_registered(statistic_name):
            raise ConfigurationError(
                f"unknown statistic {self.statistic!r}; "
                f"registered: {', '.join(available_statistics())}"
            )
        object.__setattr__(self, "statistic", statistic_name)

    @property
    def backend_name(self) -> str:
        """Registry name of the anchor backend."""
        return resolve_backend_name(self.counting_backend)

    def release_policy(self) -> ReleasePolicy:
        """The policy object this configuration resolves to."""
        if self.release_interval is not None:
            return FixedIntervalPolicy(self.release_interval)
        return EveryKEventsPolicy(self.release_every)

    def expected_releases(self, stream: "EdgeStream") -> int:
        """Exact number of releases this configuration publishes on *stream*.

        Replays the configured policy over the stream via the same
        :func:`_release_schedule` iterator :class:`StreamingCargo` runs on,
        so tree capacity and anchor budgeting are sized to exactly what the
        run will publish — for any policy, with no over-bound leaving budget
        unspent.
        """
        schedule = _release_schedule(stream, self.release_policy(), self.final_release)
        return sum(1 for _, _, release_now in schedule if release_now)

    def planned_anchors(self, num_releases: Optional[int] = None) -> int:
        """How many cadence anchors the budget is divided among (0 when disabled).

        *num_releases* is how many releases the run will actually publish;
        it defaults to ``max_releases`` (and must be supplied when that is
        ``None`` and anchors are enabled).
        """
        if self.anchor_every <= 0:
            return 0
        if num_releases is None:
            num_releases = self.max_releases
        if num_releases is None:
            raise ConfigurationError(
                "planned_anchors needs num_releases when max_releases is None"
            )
        return num_releases // self.anchor_every

    def release_epsilon(self) -> float:
        """Budget funding the binary-tree continual release."""
        if self.anchor_every > 0:
            return self.epsilon * (1.0 - self.anchor_fraction)
        return self.epsilon

    def anchor_epsilon(self, num_anchors: Optional[int] = None) -> float:
        """Budget for each individual anchor (0.0 when anchors are disabled).

        *num_anchors* is the total number of anchors planned (cadence plus a
        possible bootstrap); it defaults to :meth:`planned_anchors`.
        """
        if self.anchor_every <= 0:
            return 0.0
        if num_anchors is None:
            num_anchors = self.planned_anchors()
        if num_anchors <= 0:
            return 0.0
        return self.epsilon * self.anchor_fraction / num_anchors


@dataclass(frozen=True)
class StreamRelease:
    """One published estimate.

    ``true_count`` is evaluation-only ground truth (a deployment would not
    have it); ``is_anchor`` marks releases backed by a fresh secure count.
    ``epsilon_spent`` and ``ledger_entries`` snapshot the accountant *at this
    release*, so the O(log T) budget trajectory is visible release by
    release.
    """

    index: int
    event_index: int
    time: float
    estimate: float
    true_count: int
    is_anchor: bool
    epsilon_spent: float = 0.0
    ledger_entries: int = 0

    @property
    def absolute_error(self) -> float:
        """``|T - T'|`` for this release."""
        return abs(self.true_count - self.estimate)


@dataclass
class StreamingResult:
    """Everything an experiment needs from one continual-release run."""

    releases: List[StreamRelease] = field(default_factory=list)
    events_processed: int = 0
    anchors_run: int = 0
    epsilon_spent: float = 0.0
    ledger: List[tuple] = field(default_factory=list)
    backend: str = "matrix"
    statistic: str = "triangles"
    timings: dict = field(default_factory=dict)
    capacity: int = 0
    telemetry: Optional[dict] = None

    @property
    def final_estimate(self) -> float:
        """The last published estimate (NaN when nothing was released)."""
        return self.releases[-1].estimate if self.releases else float("nan")

    @property
    def final_true_count(self) -> int:
        """Ground-truth count at the last release (0 when nothing was released)."""
        return self.releases[-1].true_count if self.releases else 0

    def mean_absolute_error(self) -> float:
        """Mean ``|T - T'|`` across releases (NaN when nothing was released)."""
        if not self.releases:
            return float("nan")
        return sum(r.absolute_error for r in self.releases) / len(self.releases)


class StreamingCargo:
    """Continual private triangle counting orchestrator.

    Examples
    --------
    >>> from repro.graph import load_dataset
    >>> from repro.stream import StreamingCargo, StreamingConfig, replay_stream
    >>> stream = replay_stream(load_dataset("facebook", num_nodes=80), rng=0)
    >>> config = StreamingConfig(epsilon=4.0, release_every=20, seed=7)
    >>> result = StreamingCargo(config).run(stream)
    >>> len(result.releases) > 0
    True
    """

    def __init__(self, config: Optional[StreamingConfig] = None) -> None:
        self._config = config if config is not None else StreamingConfig()

    @property
    def config(self) -> StreamingConfig:
        """The configuration this instance runs with."""
        return self._config

    def run(
        self, stream: EdgeStream, initial_graph: Optional[Graph] = None
    ) -> StreamingResult:
        """Process *stream* end to end and return every published release.

        The dynamic graph starts from *initial_graph* when given and from the
        empty graph on ``stream.num_nodes`` nodes otherwise.  With anchors
        enabled, a non-empty starting graph is *bootstrapped* through the
        secure-count + Laplace anchor path before the first event, so no
        release ever serves its exact count; with anchors disabled the
        starting count is treated as public (exactly like the empty graph's
        zero).
        """
        config = self._config
        if initial_graph is not None and initial_graph.num_nodes != stream.num_nodes:
            raise ConfigurationError(
                f"initial graph has {initial_graph.num_nodes} nodes but the "
                f"stream covers {stream.num_nodes}"
            )
        statistic = create_statistic(config.statistic, config)
        telemetry = resolve_telemetry(config)
        resilience = resolve_resilience(config)
        resilience_metrics = telemetry.metrics if telemetry.enabled else None
        if config.triple_store is not None and resilience.enabled:
            config.triple_store.configure_resilience(
                retry=resilience.retry,
                strict_integrity=resilience.strict_integrity,
                metrics=resilience_metrics,
            )
        # An untraced run still times its phases: a private enabled tracer
        # records only the legacy spans, so ``result.timings`` keeps the
        # exact key set the TimerRegistry era produced.
        tracer = telemetry.tracer if telemetry.enabled else Tracer()
        master_rng = derive_rng(config.seed)
        tree_rng, anchor_rng, share_rng, dealer_rng = spawn_rngs(master_rng, 4)
        # With a triple store (or an explicit offline seed) every anchor
        # deals from the same pinned substream: the dealt material becomes a
        # pure function of (seed, anchor geometry), so anchors after the
        # first fetch it warm instead of re-dealing.  Released estimates are
        # unaffected — the secure count is exact regardless of the masks.
        anchor_offline_seed: Optional[int] = None
        if config.offline_seed is not None:
            anchor_offline_seed = int(config.offline_seed)
        elif config.triple_store is not None:
            anchor_offline_seed = int(dealer_rng.integers(0, 1 << 63))

        def anchor_dealer_rng():
            if anchor_offline_seed is not None:
                return derive_rng(anchor_offline_seed)
            return dealer_rng

        # Size the tree from the stream unless the caller pinned a capacity,
        # and divide the anchor budget among the anchors this stream can
        # actually produce (capacity headroom must not starve each anchor).
        expected = config.expected_releases(stream)
        capacity = (
            config.max_releases if config.max_releases is not None else max(1, expected)
        )
        if expected > capacity:
            # Fail before any event is processed (and any budget spent)
            # rather than exhausting the tree mid-run.
            raise StreamError(
                f"stream would publish {expected} releases but max_releases "
                f"pins the tree capacity at {capacity}; raise max_releases or "
                "leave it unset to auto-size from the stream"
            )
        # A starting graph with no edges has a public count of 0 (same as no
        # starting graph), and a stream that publishes nothing has nobody to
        # serve the bootstrapped estimate to — neither may consume an
        # anchor's budget.
        bootstrap = (
            initial_graph is not None
            and initial_graph.num_edges > 0
            and config.anchor_every > 0
            and expected > 0
        )
        cadence_anchors = config.planned_anchors(min(capacity, expected))
        total_anchors = cadence_anchors + (1 if bootstrap else 0)
        epsilon_anchor = config.anchor_epsilon(total_anchors)
        # If anchors are enabled but this stream is too short for any to
        # fire, fold the reserved anchor budget back into the tree instead of
        # silently leaving it unspent (and the estimates doubly noisy).
        epsilon_release = (
            config.release_epsilon() if total_anchors > 0 else config.epsilon
        )

        accountant = PrivacyAccountant(total_budget=config.epsilon * (1.0 + 1e-9))
        tree = BinaryTreeRelease(
            epsilon=epsilon_release,
            max_releases=capacity,
            sensitivity=config.delta_sensitivity,
            accountant=accountant,
            rng=tree_rng,
        )
        # Degree-local anchors (mirroring one-shot CARGO's sparse path):
        # resolved once per run so a "force" typo on a non-degree statistic
        # fails before any budget is spent.
        use_sparse = resolve_sparse_mode(config, statistic)
        if (
            config.memory_mode == "bounded"
            and config.anchor_every > 0
            and not use_sparse
        ):
            raise ConfigurationError(
                "memory_mode='bounded' keeps no graph snapshot, so anchors "
                f"need the degree-local path; statistic {config.statistic!r} "
                "has no degree kernel (disable anchors or use memory_mode="
                "'full')"
            )
        policy = config.release_policy()
        maintainer = make_maintainer(
            statistic,
            num_nodes=stream.num_nodes,
            initial_graph=initial_graph,
            memory_mode=config.memory_mode,
            neighbor_cap=config.neighbor_cap,
        )

        result = StreamingResult(
            backend=config.backend_name,
            statistic=config.statistic,
            capacity=capacity,
        )
        # The continual estimate is served relative to the latest anchor:
        # estimate = anchor_base + (noisy prefix now - noisy prefix at anchor).
        # base_var / diff_var track the noise variance of the two terms so an
        # anchor can be blended by inverse-variance weighting below.
        anchor_base = float(maintainer.count)
        prefix_at_anchor = 0.0
        base_var = 0.0
        # Upper bound on Var(prefix_t - prefix_anchor): each prefix reads at
        # most `levels` noisy nodes of variance 2·scale² apiece.
        diff_var = 4.0 * tree.levels * tree.noise_scale**2
        pending_delta = 0
        releases_since_anchor = 0

        # Crash recovery: a checkpointer bound to this (config, stream)
        # identity, and — when resuming — the saved state swapped in before
        # any event is replayed.  Everything the continuation depends on is
        # restored bit-for-bit: the tree (with its noise substream), the
        # accountant ledger, the maintainer, the blend state, and the
        # anchor/share/dealer substream positions, so the resumed run's
        # releases and ledger are indistinguishable from an uninterrupted
        # run's.
        checkpointer = None
        resumed_event_index = 0
        if resilience.checkpoint_path is not None:
            checkpointer = Checkpointer(
                resilience.checkpoint_path,
                kind="stream",
                token=self._checkpoint_token(stream),
                retry=resilience.retry,
                metrics=resilience_metrics,
            )
        if checkpointer is not None and resilience.resume and checkpointer.exists():
            state = checkpointer.load()
            tree = state["tree"]
            accountant = state["accountant"]
            maintainer = state["maintainer"]
            anchor_rng.bit_generator.state = state["anchor_rng"]
            share_rng.bit_generator.state = state["share_rng"]
            dealer_rng.bit_generator.state = state["dealer_rng"]
            anchor_offline_seed = state["anchor_offline_seed"]
            anchor_base = state["anchor_base"]
            prefix_at_anchor = state["prefix_at_anchor"]
            base_var = state["base_var"]
            releases_since_anchor = state["releases_since_anchor"]
            result.releases = list(state["releases"])
            result.anchors_run = state["anchors_run"]
            resumed_event_index = state["event_index"]
            diff_var = 4.0 * tree.levels * tree.noise_scale**2
            bootstrap = False  # already ran (or was never due) before the save

        def run_anchor():
            """One anchor attempt, transactional and retryable.

            Each attempt snapshots the anchor/share/dealer substream
            positions and opens an accountant transaction; a failure rolls
            both back, so a retried anchor consumes exactly the randomness
            and ε the first attempt would have — the released estimate and
            the ledger are bit-identical to a fault-free run.
            """

            def attempt():
                anchor_state = anchor_rng.bit_generator.state
                share_state = share_rng.bit_generator.state
                dealer_state = dealer_rng.bit_generator.state
                reservation = accountant.reserve()
                try:
                    fault_point("stream.anchor")
                    return self._run_anchor(
                        statistic, maintainer, accountant, epsilon_anchor,
                        anchor_rng, share_rng, anchor_dealer_rng(), use_sparse,
                    )
                except BaseException:
                    accountant.rollback(reservation)
                    anchor_rng.bit_generator.state = anchor_state
                    share_rng.bit_generator.state = share_state
                    dealer_rng.bit_generator.state = dealer_state
                    raise

            if resilience.retry is not None:
                return resilience.retry.run(
                    "stream.anchor", attempt, metrics=resilience_metrics
                )
            return attempt()

        # The root span covers the whole run *including* any bootstrap
        # anchor, so the "total" timing is genuinely end to end (the
        # TimerRegistry era excluded the bootstrap from "total").
        with tracer.span(
            "total",
            backend=config.backend_name,
            statistic=config.statistic,
            capacity=capacity,
        ) as run_span:
            if bootstrap:
                # Bootstrap anchor: a private starting graph must never be
                # served exactly, so its count is released through the secure
                # count + Laplace path before the first event, consuming one
                # planned anchor's budget.
                with tracer.span("anchor", bootstrap=True) as anchor_span:
                    anchor_base, base_var = run_anchor()
                telemetry.metrics.observe(
                    "anchor_seconds", anchor_span.seconds, statistic=config.statistic
                )
                result.anchors_run += 1
            for event_index, event, release_now in _release_schedule(
                stream, policy, config.final_release
            ):
                if event_index <= resumed_event_index:
                    # Already applied (and possibly released) before the
                    # checkpoint; the restored maintainer carries its effect.
                    continue
                pending_delta += maintainer.apply(event)
                if not release_now:
                    continue
                with tracer.span("release") as release_span:
                    noisy_prefix = tree.release(float(pending_delta))
                telemetry.metrics.observe(
                    "release_seconds", release_span.seconds, statistic=config.statistic
                )
                pending_delta = 0
                releases_since_anchor += 1
                estimate = anchor_base + (noisy_prefix - prefix_at_anchor)
                is_anchor = (
                    config.anchor_every > 0
                    and releases_since_anchor >= config.anchor_every
                    and result.anchors_run < total_anchors
                )
                if is_anchor:
                    with tracer.span("anchor") as anchor_span:
                        anchored, anchored_var = run_anchor()
                    telemetry.metrics.observe(
                        "anchor_seconds",
                        anchor_span.seconds,
                        statistic=config.statistic,
                    )
                    # Precision-weighted blend of the fresh anchor and the
                    # continual estimate; estimate_var is a conservative
                    # upper bound, so a noisy anchor is discounted rather
                    # than replacing the estimate outright.
                    estimate_var = base_var + diff_var
                    weight = estimate_var / (estimate_var + anchored_var)
                    estimate = weight * anchored + (1.0 - weight) * estimate
                    base_var = (estimate_var * anchored_var) / (
                        estimate_var + anchored_var
                    )
                    anchor_base = estimate
                    prefix_at_anchor = noisy_prefix
                    releases_since_anchor = 0
                    result.anchors_run += 1
                result.releases.append(
                    StreamRelease(
                        index=len(result.releases) + 1,
                        event_index=event_index,
                        time=event.time,
                        estimate=float(estimate),
                        true_count=maintainer.count,
                        is_anchor=is_anchor,
                        epsilon_spent=accountant.spent,
                        ledger_entries=len(accountant.ledger()),
                    )
                )
                if (
                    checkpointer is not None
                    and len(result.releases) % resilience.checkpoint_every == 0
                ):
                    # One pickle holds tree + accountant + maintainer +
                    # releases, so shared references (the tree spends through
                    # this very accountant) survive the round-trip.
                    checkpointer.save(
                        {
                            "event_index": event_index,
                            "tree": tree,
                            "accountant": accountant,
                            "maintainer": maintainer,
                            "releases": list(result.releases),
                            "anchors_run": result.anchors_run,
                            "anchor_rng": anchor_rng.bit_generator.state,
                            "share_rng": share_rng.bit_generator.state,
                            "dealer_rng": dealer_rng.bit_generator.state,
                            "anchor_offline_seed": anchor_offline_seed,
                            "anchor_base": anchor_base,
                            "prefix_at_anchor": prefix_at_anchor,
                            "base_var": base_var,
                            "releases_since_anchor": releases_since_anchor,
                        }
                    )
        result.events_processed = maintainer.events_applied
        result.epsilon_spent = accountant.spent
        result.ledger = accountant.ledger()
        timings = run_span.timings()
        result.timings = timings
        if telemetry.enabled:
            metrics = telemetry.metrics
            labels = {"statistic": config.statistic, "backend": config.backend_name}
            metrics.increment("stream_events", maintainer.events_applied, **labels)
            metrics.increment("stream_releases", len(result.releases), **labels)
            metrics.increment("stream_anchors", result.anchors_run, **labels)
            for label, eps in result.ledger:
                metrics.increment("epsilon_spent", eps, mechanism=label)
            store_stats = None
            if config.triple_store is not None:
                store_stats = config.triple_store.stats()
                for key, value in store_stats.items():
                    metrics.gauge_set(f"triple_store_{key}", value)
            telemetry.record_release(
                {
                    "kind": "streaming",
                    "statistic": config.statistic,
                    "backend": config.backend_name,
                    "seed": config.seed,
                    "noisy_count": result.final_estimate,
                    "releases": len(result.releases),
                    "anchors": result.anchors_run,
                    "events": maintainer.events_applied,
                    "capacity": capacity,
                    "epsilon": {"total": config.epsilon, "spent": accountant.spent},
                    "timings": timings,
                }
            )
            result.telemetry = build_result_telemetry(
                timings, {}, triple_store_stats=store_stats
            )
        return result

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _checkpoint_token(self, stream: EdgeStream) -> str:
        """Identity token binding a checkpoint to this (config, stream) pair.

        A checkpoint resumed under a different configuration or stream shape
        could never reproduce the killed run bit-for-bit, so the
        :class:`~repro.resilience.Checkpointer` refuses it outright on a
        token mismatch.  The frozen config's ``repr`` covers every
        transcript-relevant knob (runtime-only attachments — store,
        telemetry, resilience — are ``repr=False`` and rightly excluded).
        """
        payload = f"{self._config!r}|{stream.num_nodes}|{len(stream)}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]

    def _run_anchor(
        self, statistic, maintainer, accountant, epsilon_anchor,
        anchor_rng, share_rng, dealer_rng, use_sparse=False,
    ):
        """One mini-CARGO pass over the current graph: Max → Project → Count → noise.

        The degree bound used for the Laplace sensitivity is *enforced* by
        projecting the snapshot before the secure count (exactly as
        Algorithm 1 does — a noisy ``d'_max`` is only a valid sensitivity
        bound for the projected graph), so the anchor is ε-DP whether the
        bound is the configured public ``anchor_sensitivity`` or the private
        `Max` estimate bought with a slice of this anchor's budget.  The
        secure count runs the configured statistic's share kernel and the
        noise scale is that statistic's post-projection sensitivity at the
        bound.

        With *use_sparse* (degree statistics) the anchor never materialises
        the ``n x n`` projected rows: the projection truncates the degree
        vector directly and the count runs the statistic's degree kernel,
        consuming the same randomness substreams — released estimates are
        bit-identical to the dense path wherever both can run.

        Returns ``(noisy_count, noise_variance)`` so the caller can blend the
        anchor with the continual estimate by inverse-variance weighting.
        """
        config = self._config
        degree_bound = config.anchor_sensitivity
        epsilon_count = epsilon_anchor
        noisy_degrees = None
        if degree_bound is None:
            # No public bound configured: privately estimate the maximum
            # degree with a slice of this anchor's budget, exactly as
            # one-shot CARGO's `Max` step does.
            epsilon_degree = epsilon_anchor * DEFAULT_MAX_DEGREE_FRACTION
            epsilon_count = epsilon_anchor - epsilon_degree
            estimator = MaxDegreeEstimator(epsilon_degree)
            max_result = estimator.run(maintainer.degrees(), rng=anchor_rng)
            degree_bound = max_result.noisy_max_degree
            noisy_degrees = max_result.noisy_degrees
            accountant.spend(epsilon_degree, label="anchor/max-degree")
        # Projection is a local per-user operation; with a configured public
        # bound the similarity reference falls back to the users' own degree
        # knowledge (project_graph's default).
        projection = SimilarityProjection(degree_bound)
        if use_sparse:
            projection_result = projection.project_degrees(
                maintainer.degree_vector(copy=False)
            )
            count_result = statistic.secure_count_from_degrees(
                projection_result.projected_degrees,
                config=config,
                share_rng=share_rng,
                dealer_rng=dealer_rng,
            )
        else:
            projection_result = projection.project_graph(
                maintainer.graph, noisy_degrees=noisy_degrees
            )
            count_result = statistic.secure_count(
                projection_result.projected_rows,
                config=config,
                share_rng=share_rng,
                dealer_rng=dealer_rng,
            )
        exact = statistic.finalise(float(count_result.reconstruct(config.ring)))
        mechanism = LaplaceMechanism(
            epsilon=epsilon_count,
            sensitivity=statistic.statistic_sensitivity(degree_bound),
        )
        accountant.spend(epsilon_count, label="anchor")
        return exact + mechanism.sample_noise(anchor_rng), mechanism.variance
