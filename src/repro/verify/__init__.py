"""Adversarial verification: cheater detection, privacy audit, fuzzing.

The protocol's correctness story so far was *passive*: honest-but-curious
servers, analytically proved DP guarantees, transcript-equality tests.  This
package adds the three active counterparts:

* :mod:`repro.verify.adversary` — an active-adversary harness that corrupts
  one server's contribution to an opening round (flip a share, lie in an
  opening, forge a tag, truncate the round) and asserts the MAC layer
  (:mod:`repro.crypto.mac`) aborts with a typed
  :class:`~repro.exceptions.CheaterDetectedError` rather than releasing a
  silently wrong count;
* :mod:`repro.verify.audit` — an end-to-end empirical privacy audit that
  runs the full ``Cargo`` / ``NodeDpCargo`` release on neighbouring graphs,
  lower-bounds the realized ε from the released counts, and compares it
  against the accountant's claimed spend (plus a view-indistinguishability
  check on a single server's recorded transcript);
* :mod:`repro.verify.fuzz` — a seeded, dependency-free property-based
  harness drawing random graphs × statistics × backends × configuration
  knobs and checking the repo's standing invariants (cross-backend count
  equality, worker/transcript invariance, honest-authentication
  bit-identity, manifest validity and ledger reconciliation).

Everything here is deterministic given its seed, so every failure a CI run
reports is replayable from the embedded case JSON.
"""

from repro.verify.adversary import (
    CORRUPTION_KINDS,
    CorruptingChannel,
    Corruption,
    CorruptionOutcome,
    count_opening_rounds,
    run_with_corruption,
)
from repro.verify.audit import (
    ProtocolAuditResult,
    audit_experiment,
    audit_protocol,
    neighbouring_graphs,
    worst_case_graph,
)
from repro.verify.fuzz import (
    FuzzCase,
    FuzzFailure,
    FuzzReport,
    draw_case,
    run_case,
    run_fuzz,
    transcripts_equal,
)

__all__ = [
    "CORRUPTION_KINDS",
    "CorruptingChannel",
    "Corruption",
    "CorruptionOutcome",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "ProtocolAuditResult",
    "audit_experiment",
    "audit_protocol",
    "count_opening_rounds",
    "draw_case",
    "neighbouring_graphs",
    "run_case",
    "run_fuzz",
    "run_with_corruption",
    "transcripts_equal",
    "worst_case_graph",
]
