"""Seeded transcript fuzzing: random configurations vs standing invariants.

The repo's correctness story rests on a handful of *standing invariants*
that every PR so far has pinned with hand-written tests:

1. **determinism** — the same configuration releases the same count (and
   records the same transcript) on every run;
2. **cross-backend equality** — all four counting backends release the
   bit-identical noisy count for the same seed;
3. **honest-authentication bit-identity** — ``authenticate=True`` changes
   nothing about an honest release except that its openings are MAC-checked;
4. **worker invariance** — the tile-parallel engine's transcripts and
   counts match the serial path for any worker count;
5. **manifest validity** — a traced run's manifest validates against the
   schema and its ledger reconciles against the metric counters;
6. **wire round-trip** — every distributed-runtime frame kind
   serialize→deserializes bit-identically, and truncating or corrupting a
   frame raises the typed :class:`~repro.exceptions.WireFormatError`
   instead of mis-decoding.

Hand-written tests pin these at a few points of the configuration space;
this harness samples the space: a seeded, dependency-free generator draws
random graphs × statistics × backends × {workers, sparse, tile_window,
block/batch size} cases and checks all six invariants on each.  Every
failure report embeds the case's JSON, so ``FuzzCase.from_json(...)`` +
:func:`run_case` replays it exactly — same seed, same cases, same verdicts.

Examples
--------
>>> report = run_fuzz(num_cases=2, seed=7)
>>> report.passed
True
>>> run_fuzz(num_cases=2, seed=7).cases == report.cases  # replayable
True
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.cargo import Cargo
from repro.core.config import CargoConfig
from repro.crypto.mac import OpeningAuthenticator
from repro.crypto.views import ViewRecorder
from repro.exceptions import ConfigurationError, ReproError
from repro.graph.graph import Graph
from repro.utils.rng import derive_rng

__all__ = [
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "build_graph",
    "check_wire_invariant",
    "draw_case",
    "run_case",
    "run_fuzz",
    "transcripts_equal",
]

_STATISTICS = ("triangles", "kstars", "wedges", "4cycles")
_BACKENDS = ("faithful", "batched", "matrix", "blocked")


@dataclass(frozen=True)
class FuzzCase:
    """One sampled point of the configuration space, JSON-round-trippable."""

    seed: int
    num_nodes: int
    edge_probability: float
    statistic: str
    backend: str
    workers: Optional[int] = None
    sparse: str = "auto"
    tile_window: Optional[int] = None
    block_size: int = 128
    batch_size: int = 4096
    star_k: int = 2

    def config_kwargs(self, **overrides) -> dict:
        """The ``CargoConfig`` keyword arguments this case runs with."""
        kwargs = dict(
            seed=self.seed,
            statistic=self.statistic,
            counting_backend=self.backend,
            workers=self.workers,
            sparse=self.sparse,
            tile_window=self.tile_window,
            block_size=self.block_size,
            batch_size=self.batch_size,
            star_k=self.star_k,
        )
        kwargs.update(overrides)
        return kwargs

    def to_json(self) -> str:
        """Canonical JSON encoding (the repro string failure reports embed)."""
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        """Rebuild a case from :meth:`to_json` output."""
        return cls(**json.loads(text))


def build_graph(case: FuzzCase) -> Graph:
    """The case's ``G(n, p)`` input graph — a pure function of the case."""
    rng = derive_rng(case.seed)
    num_nodes = case.num_nodes
    mask = rng.random((num_nodes, num_nodes)) < case.edge_probability
    edges = [
        (u, v) for u in range(num_nodes) for v in range(u + 1, num_nodes) if mask[u, v]
    ]
    return Graph(num_nodes, edges=edges)


def draw_case(rng, index: int) -> FuzzCase:
    """Draw one bounded random case from *rng*.

    Bounds keep a ~200-case CI budget under a minute: the faithful backend
    (O(n³) scalar rounds) only sees small graphs, and the blocked backend's
    knobs (block size, tile window, workers) are only drawn when they do
    something.
    """
    statistic = _STATISTICS[int(rng.integers(len(_STATISTICS)))]
    backend = _BACKENDS[int(rng.integers(len(_BACKENDS)))]
    num_nodes = int(rng.integers(6, 10 if backend == "faithful" else 19))
    sparse_choices = (
        ("auto", "never", "force") if statistic in ("kstars", "wedges") else ("auto", "never")
    )
    kwargs = {}
    if backend == "blocked":
        kwargs["block_size"] = int(rng.choice((4, 8, 16)))
        if rng.random() < 0.5:
            kwargs["tile_window"] = int(rng.choice((1, 2)))
        if rng.random() < 0.5:
            kwargs["workers"] = int(rng.choice((1, 2)))
    if backend == "batched":
        kwargs["batch_size"] = int(rng.choice((16, 64, 4096)))
    if statistic == "kstars":
        kwargs["star_k"] = int(rng.choice((2, 3)))
    return FuzzCase(
        seed=int(rng.integers(0, 2**31 - 1)),
        num_nodes=num_nodes,
        edge_probability=float(rng.choice((0.15, 0.3, 0.5))),
        statistic=statistic,
        backend=backend,
        sparse=str(rng.choice(sparse_choices)),
        **kwargs,
    )


def _values_equal(value_a, value_b) -> bool:
    """Bit-for-bit equality, recursing into tuple/list values.

    Some kernels record composite openings (e.g. a tuple of differently
    shaped arrays per tile), which ``np.asarray`` would reject as ragged.
    """
    if isinstance(value_a, (tuple, list)) or isinstance(value_b, (tuple, list)):
        if not (
            isinstance(value_a, (tuple, list))
            and isinstance(value_b, (tuple, list))
            and len(value_a) == len(value_b)
        ):
            return False
        return all(_values_equal(a, b) for a, b in zip(value_a, value_b))
    return bool(np.array_equal(np.asarray(value_a), np.asarray(value_b)))


def transcripts_equal(recorder_a: ViewRecorder, recorder_b: ViewRecorder) -> bool:
    """Whether two recorded transcripts match entry-for-entry, bit-for-bit."""
    for server in (1, 2):
        entries_a = recorder_a.view(server).entries
        entries_b = recorder_b.view(server).entries
        if len(entries_a) != len(entries_b):
            return False
        for entry_a, entry_b in zip(entries_a, entries_b):
            if entry_a.label != entry_b.label:
                return False
            if not _values_equal(entry_a.value, entry_b.value):
                return False
    return True


def check_wire_invariant(seed: int, num_frames: int = 4) -> List[str]:
    """Invariant 6: random wire frames round-trip; mutations fail typed.

    Draws *num_frames* frames with random kinds, meta fields, and payload
    arrays from *seed*, then for each: (a) encode→decode must reproduce the
    kind, meta fields, and every array bit-for-bit; (b) a random strict
    prefix and a random single-byte corruption of the header must raise
    :class:`~repro.exceptions.WireFormatError` — never decode to anything.
    """
    from repro.exceptions import WireFormatError
    from repro.runtime.wire import KIND_NAMES, decode_frame, encode_frame_bytes

    problems: List[str] = []
    rng = derive_rng(seed ^ 0x57495245)  # "WIRE": independent of the run RNG
    kinds = sorted(KIND_NAMES)
    dtypes = (np.uint64, np.int64, np.float64)
    for index in range(num_frames):
        kind = kinds[int(rng.integers(len(kinds)))]
        meta = {"phase": f"fuzz{index}", "round": int(rng.integers(0, 1 << 16))}
        arrays = [
            rng.integers(0, 1 << 30, size=tuple(rng.integers(0, 5, size=2))).astype(
                dtypes[int(rng.integers(len(dtypes)))]
            )
            for _ in range(int(rng.integers(0, 3)))
        ]
        frame = encode_frame_bytes(kind, meta, arrays)

        try:
            kind2, meta2, arrays2 = decode_frame(frame)
        except WireFormatError as error:
            problems.append(f"wire: well-formed frame rejected: {error}")
            continue
        if kind2 != kind or meta2.get("phase") != meta["phase"] or (
            meta2.get("round") != meta["round"]
        ):
            problems.append(f"wire: kind/meta did not round-trip for {KIND_NAMES[kind]}")
        if len(arrays2) != len(arrays) or any(
            decoded.dtype != original.dtype
            or decoded.shape != original.shape
            or not np.array_equal(decoded, original)
            for original, decoded in zip(arrays, arrays2)
        ):
            problems.append(f"wire: payload did not round-trip for {KIND_NAMES[kind]}")

        truncated = frame[: int(rng.integers(0, len(frame)))]
        try:
            decode_frame(truncated)
            problems.append(
                f"wire: truncated {KIND_NAMES[kind]} frame decoded "
                f"({len(truncated)} of {len(frame)} bytes)"
            )
        except WireFormatError:
            pass

        corrupted = bytearray(frame)
        offset = int(rng.integers(0, 8))  # magic / version / kind fields
        corrupted[offset] ^= 0xFF
        try:
            decode_frame(bytes(corrupted))
            problems.append(
                f"wire: header-corrupted {KIND_NAMES[kind]} frame decoded "
                f"(byte {offset} flipped)"
            )
        except WireFormatError:
            pass
    return problems


def _release(graph: Graph, config: CargoConfig) -> Tuple[float, Optional[ViewRecorder]]:
    cargo = Cargo(config)
    result = cargo.run(graph)
    return float(result.noisy_triangle_count), cargo.views


def run_case(case: FuzzCase) -> List[str]:
    """Check every standing invariant on *case*; returns the violations.

    An empty list means the case passed.  Unexpected exceptions are folded
    into the report as violations rather than propagated, so one broken case
    cannot mask the rest of a fuzz run.
    """
    problems: List[str] = []
    try:
        graph = build_graph(case)
        epsilon = 2.0

        base = CargoConfig(epsilon=epsilon, record_views=True, **case.config_kwargs())
        count, views = _release(graph, base)

        # 1. Determinism: an identical rerun matches count and transcript.
        rerun_count, rerun_views = _release(
            graph, CargoConfig(epsilon=epsilon, record_views=True, **case.config_kwargs())
        )
        if rerun_count != count:
            problems.append(f"nondeterministic release: {count} vs {rerun_count}")
        elif not transcripts_equal(views, rerun_views):
            problems.append("nondeterministic transcript on identical rerun")

        # 2. Cross-backend equality against the matrix reference.
        if case.backend != "matrix":
            reference, _ = _release(
                graph,
                CargoConfig(
                    epsilon=epsilon,
                    **case.config_kwargs(
                        counting_backend="matrix", workers=None, tile_window=None
                    ),
                ),
            )
            if reference != count:
                problems.append(
                    f"backend {case.backend!r} released {count}, "
                    f"matrix reference released {reference}"
                )

        # 3. Honest authentication is bit-identical and actually checked.
        authenticator = OpeningAuthenticator(seed=case.seed)
        authed, _ = _release(
            graph,
            CargoConfig(
                epsilon=epsilon, authenticator=authenticator, **case.config_kwargs()
            ),
        )
        if authed != count:
            problems.append(
                f"authenticated release {authed} differs from plain {count}"
            )
        if authenticator.rounds_checked < 1:
            problems.append("authenticated run checked zero opening rounds")

        # 4. Worker invariance.  The released count is worker-independent
        # outright (serial included); the *transcript* is pinned within the
        # tile-parallel engine only (workers=N vs workers=1), because the
        # engine deals each group from its own sub-dealer substream while
        # the serial path draws from one sequential dealer stream — same
        # count, different (equally valid) correlated randomness.
        if case.workers is not None:
            serial_count, _ = _release(
                graph,
                CargoConfig(
                    epsilon=epsilon,
                    record_views=True,
                    **case.config_kwargs(workers=None),
                ),
            )
            if serial_count != count:
                problems.append(
                    f"workers={case.workers} released {count}, serial {serial_count}"
                )
            one_count, one_views = _release(
                graph,
                CargoConfig(
                    epsilon=epsilon,
                    record_views=True,
                    **case.config_kwargs(workers=1),
                ),
            )
            if one_count != count:
                problems.append(
                    f"workers={case.workers} released {count}, workers=1 {one_count}"
                )
            elif not transcripts_equal(views, one_views):
                problems.append(
                    f"workers={case.workers} transcript differs from workers=1"
                )

        # 5. Manifest validity + ledger reconciliation on a traced run.
        from repro.telemetry import (
            Telemetry,
            build_manifest,
            validate_manifest,
            verify_ledger_reconciliation,
        )

        telemetry = Telemetry()
        _release(
            graph,
            CargoConfig(
                epsilon=epsilon,
                telemetry=telemetry,
                track_communication=True,
                **case.config_kwargs(),
            ),
        )
        manifest = build_manifest(telemetry)
        problems.extend(f"manifest: {issue}" for issue in validate_manifest(manifest))
        problems.extend(
            f"ledger: {issue}" for issue in verify_ledger_reconciliation(manifest)
        )

        # 6. Wire round-trip: the distributed runtime's framing layer must
        # reproduce random frames exactly and reject mutations typed.
        problems.extend(check_wire_invariant(case.seed))
    except ReproError as error:
        problems.append(f"typed failure: {type(error).__name__}: {error}")
    except Exception as error:  # pragma: no cover - only on harness bugs
        problems.append(f"unexpected {type(error).__name__}: {error}")
    return problems


@dataclass(frozen=True)
class FuzzFailure:
    """One failed case plus everything needed to replay it."""

    case: FuzzCase
    problems: Tuple[str, ...]

    @property
    def repro(self) -> str:
        """A self-contained repro line: the case JSON plus the verdicts."""
        return f"FuzzCase.from_json({self.case.to_json()!r}) -> {list(self.problems)}"


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one fuzz run."""

    seed: int
    num_cases: int
    cases: Tuple[FuzzCase, ...]
    failures: Tuple[FuzzFailure, ...] = field(default_factory=tuple)

    @property
    def passed(self) -> bool:
        """Whether every sampled case satisfied every invariant."""
        return not self.failures

    def summary(self) -> str:
        """One-paragraph human summary (what CI prints)."""
        lines = [
            f"fuzz: {self.num_cases} cases from seed {self.seed}, "
            f"{len(self.failures)} failing"
        ]
        lines.extend(failure.repro for failure in self.failures)
        return "\n".join(lines)

    def to_json(self) -> str:
        """JSON artifact (failure seeds + configs) CI uploads on red runs."""
        return json.dumps(
            {
                "seed": self.seed,
                "num_cases": self.num_cases,
                "failures": [
                    {"case": asdict(failure.case), "problems": list(failure.problems)}
                    for failure in self.failures
                ],
            },
            indent=2,
            sort_keys=True,
        )


def run_fuzz(
    num_cases: int = 50,
    seed: int = 0,
    on_case: Optional[Callable[[int, FuzzCase, List[str]], None]] = None,
) -> FuzzReport:
    """Draw and check *num_cases* cases; deterministic given *seed*.

    The optional *on_case* callback receives ``(index, case, problems)``
    after each case — the smoke benchmark uses it for progress output.
    """
    if num_cases < 1:
        raise ConfigurationError(f"num_cases must be at least 1, got {num_cases}")
    rng = derive_rng(seed)
    cases: List[FuzzCase] = []
    failures: List[FuzzFailure] = []
    for index in range(num_cases):
        case = draw_case(rng, index)
        cases.append(case)
        problems = run_case(case)
        if problems:
            failures.append(FuzzFailure(case=case, problems=tuple(problems)))
        if on_case is not None:
            on_case(index, case, problems)
    return FuzzReport(
        seed=seed,
        num_cases=num_cases,
        cases=tuple(cases),
        failures=tuple(failures),
    )
