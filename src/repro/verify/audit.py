"""End-to-end empirical privacy audit of the full CARGO release.

:mod:`repro.dp.auditing` audits bare mechanisms — one Laplace draw on two
neighbouring scalars.  This module audits what is actually deployed: the
whole ``Cargo`` / ``NodeDpCargo`` pipeline (`Max` → `Project` → `Count` →
`Perturb`), run many times on a pair of neighbouring *graphs*, with the
realized privacy loss lower-bounded from the released counts and compared
against the accountant's claimed spend ``ε = ε1 + ε2``.

Audit inputs are worst-case by construction: the default graph is complete,
and :func:`neighbouring_graphs` removes the edge with the most common
neighbours (edge adjacency) or the highest-degree node's edges (node
adjacency), so the count gap between the two inputs sits near the
sensitivity bound and a calibration bug has nowhere to hide.  The planted
failure the CI gate pins — running with noise for ``2·ε2`` while claiming
``ε2`` — is injected through *epsilon2_scale*, not by monkeypatching.

The audit also checks *view privacy*: a single server's recorded opening
transcript must be statistically indistinguishable across the two
neighbouring inputs (every message a server sees is uniformly masked), which
is the empirical counterpart of the paper's simulation argument.

Caveats (see ``docs/verification.md``): this is a lower-bound audit over the
released count alone.  Passing is necessary, never sufficient, for the
claimed guarantee, and the noisy max degree — itself ε1-DP — is treated as
part of the mechanism's internal randomness rather than audited as a second
output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cargo import Cargo
from repro.core.config import CargoConfig
from repro.core.node_dp import NodeDpCargo
from repro.dp.auditing import epsilon_lower_bound_from_samples
from repro.dp.budget import PrivacyBudget
from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph
from repro.utils.rng import derive_rng

__all__ = [
    "ProtocolAuditResult",
    "audit_experiment",
    "audit_protocol",
    "neighbouring_graphs",
    "worst_case_graph",
]


def worst_case_graph(num_nodes: int = 12) -> Graph:
    """The complete graph — the audit's distinguishing-power-maximising input.

    On ``K_n`` the worst-case edge has ``n - 2`` common neighbours and the
    hub node touches every triangle, so the neighbouring count gap sits at
    the sensitivity bound instead of far below it; auditing a sparse random
    graph would under-estimate the realized loss of correct *and* broken
    implementations alike.
    """
    if num_nodes < 3:
        raise ConfigurationError(f"num_nodes must be at least 3, got {num_nodes}")
    edges = [(u, v) for u in range(num_nodes) for v in range(u + 1, num_nodes)]
    return Graph(num_nodes, edges=edges)


def neighbouring_graphs(graph: Graph, mode: str = "edge"):
    """A deterministic worst-case neighbouring pair ``(D, D')`` of *graph*.

    ``mode="edge"`` removes the edge whose endpoints share the most common
    neighbours; ``mode="node"`` isolates the highest-degree node (node
    adjacency keeps the vertex set fixed — the standard remove-all-edges
    formulation).  Ties break towards the smallest edge/node, so the pair is
    a pure function of the input graph.
    """
    if mode == "edge":
        best = None
        best_common = -1
        for u, v in graph.edge_list():
            common = len(graph.neighbors(u) & graph.neighbors(v))
            if common > best_common:
                best, best_common = (u, v), common
        if best is None:
            raise ConfigurationError("graph has no edges; cannot form an edge-neighbour")
        neighbour = graph.copy()
        neighbour.remove_edge(*best)
        return graph, neighbour
    if mode == "node":
        degrees = graph.degrees()
        target = max(range(graph.num_nodes), key=lambda node: (degrees[node], -node))
        if degrees[target] == 0:
            raise ConfigurationError("graph has no edges; cannot form a node-neighbour")
        neighbour = graph.copy()
        for other in sorted(graph.neighbors(target)):
            neighbour.remove_edge(target, other)
        return graph, neighbour
    raise ConfigurationError(f"mode must be 'edge' or 'node', got {mode!r}")


@dataclass(frozen=True)
class ProtocolAuditResult:
    """Outcome of one end-to-end protocol audit."""

    epsilon_lower_bound: float
    claimed_epsilon: float
    realized_epsilon: float
    num_trials: int
    num_bins: int
    mode: str
    statistic: str
    backend: str
    node_dp: bool
    #: Kolmogorov–Smirnov distance between one server's flattened opening
    #: views on the two inputs (``None`` when view auditing was skipped).
    view_divergence: Optional[float] = None
    #: KS acceptance threshold the divergence was compared against.
    view_threshold: Optional[float] = None

    @property
    def passes(self) -> bool:
        """Audited loss within the claimed ε (same tolerance as AuditResult)."""
        return self.epsilon_lower_bound <= self.claimed_epsilon * 1.05 + 0.05

    @property
    def view_passes(self) -> bool:
        """Server views indistinguishable across the neighbouring inputs."""
        if self.view_divergence is None:
            return True
        return self.view_divergence <= self.view_threshold


def _run_release(graph: Graph, config: CargoConfig, node_dp: bool) -> float:
    orchestrator = NodeDpCargo(config) if node_dp else Cargo(config)
    return float(orchestrator.run(graph).noisy_triangle_count)


def _flatten_view(graph: Graph, config_kwargs: dict, node_dp: bool, server: int):
    """One server's opening view of a single run, as floats in ``[0, 1)``.

    ``NodeDpCargo`` has no recorder plumbing, but its secure kernel (and
    hence its server views) is the Edge-DP one — only the noise scales
    differ — so view auditing always records through ``Cargo``.
    """
    del node_dp
    config = CargoConfig(record_views=True, **config_kwargs)
    orchestrator = Cargo(config)
    orchestrator.run(graph)
    parts = []
    for entry in orchestrator.views.view(server).entries:
        parts.append(np.atleast_1d(np.asarray(entry.value, dtype=np.uint64)).ravel())
    if not parts:
        return np.zeros(0)
    flat = np.concatenate(parts).astype(np.float64)
    return flat / float(1 << 64)


def _ks_distance(samples_a: np.ndarray, samples_b: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (dependency-free)."""
    pooled = np.sort(np.concatenate([samples_a, samples_b]))
    cdf_a = np.searchsorted(np.sort(samples_a), pooled, side="right") / samples_a.size
    cdf_b = np.searchsorted(np.sort(samples_b), pooled, side="right") / samples_b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def audit_protocol(
    graph: Optional[Graph] = None,
    *,
    mode: str = "edge",
    statistic: str = "triangles",
    backend: str = "matrix",
    epsilon: float = 2.0,
    num_trials: int = 800,
    num_bins: int = 24,
    seed: int = 0,
    node_dp: bool = False,
    epsilon2_scale: float = 1.0,
    audit_views: bool = True,
) -> ProtocolAuditResult:
    """Monte-Carlo lower bound on the realized ε of the full release.

    Runs the whole protocol *num_trials* times on each of a neighbouring
    graph pair (fresh independent seeds per trial, derived from *seed*) and
    lower-bounds the privacy loss from the released counts with the same
    discounted-histogram estimator the mechanism auditor uses.

    *epsilon2_scale* is the planted-bug knob: the runs execute with budget
    ``(ε1, scale·ε2)`` — so ``scale=2`` halves the `Perturb` noise — while
    the audit still compares against the **claimed** ``ε1 + ε2``.  The CI
    gate pins both directions: ``scale=1`` must pass, ``scale=2`` must fail.
    """
    if num_trials < 10:
        raise ConfigurationError(f"num_trials must be at least 10, got {num_trials}")
    if epsilon2_scale <= 0:
        raise ConfigurationError(
            f"epsilon2_scale must be positive, got {epsilon2_scale}"
        )
    if graph is None:
        graph = worst_case_graph()
    graph_a, graph_b = neighbouring_graphs(graph, mode=mode)
    claimed = PrivacyBudget.from_total(epsilon)
    run_budget = PrivacyBudget(
        epsilon1=claimed.epsilon1, epsilon2=claimed.epsilon2 * epsilon2_scale
    )

    seed_rng = derive_rng(seed)
    trial_seeds = seed_rng.integers(0, 2**31 - 1, size=2 * num_trials)

    def release(target: Graph, trial_seed: int) -> float:
        config = CargoConfig(
            budget=run_budget,
            seed=int(trial_seed),
            statistic=statistic,
            counting_backend=backend,
        )
        return _run_release(target, config, node_dp)

    samples_a = np.array(
        [release(graph_a, s) for s in trial_seeds[:num_trials]]
    )
    samples_b = np.array(
        [release(graph_b, s) for s in trial_seeds[num_trials:]]
    )
    lower_bound = epsilon_lower_bound_from_samples(
        samples_a, samples_b, num_bins=num_bins
    )

    view_divergence = None
    view_threshold = None
    if audit_views:
        config_kwargs = dict(
            budget=run_budget,
            seed=seed,
            statistic=statistic,
            counting_backend=backend,
        )
        view_a = _flatten_view(graph_a, config_kwargs, node_dp, server=2)
        view_b = _flatten_view(graph_b, config_kwargs, node_dp, server=2)
        if view_a.size and view_b.size:
            view_divergence = _ks_distance(view_a, view_b)
            # 1% two-sample KS critical value: uniformly masked views on
            # neighbouring inputs should sit comfortably below it.
            view_threshold = 1.63 * float(
                np.sqrt((view_a.size + view_b.size) / (view_a.size * view_b.size))
            )

    return ProtocolAuditResult(
        epsilon_lower_bound=lower_bound,
        claimed_epsilon=claimed.total,
        realized_epsilon=claimed.epsilon1 + claimed.epsilon2 * epsilon2_scale,
        num_trials=num_trials,
        num_bins=num_bins,
        mode=mode,
        statistic=statistic,
        backend=backend,
        node_dp=node_dp,
        view_divergence=view_divergence,
        view_threshold=view_threshold,
    )


def audit_experiment(
    num_nodes: int = 12,
    epsilon: float = 2.0,
    num_trials: int = 800,
    seed: int = 0,
    statistic: Optional[str] = None,
    counting_backend: Optional[str] = None,
):
    """The CLI's ``audit`` experiment: honest pass + planted-bug failure.

    One row per audited configuration: the honest release on edge- and
    node-adjacent inputs (both must pass), and a deliberately broken release
    with half-scale `Perturb` noise (which must fail) — so a single
    invocation demonstrates the audit has teeth, not just green lights.
    """
    from repro.experiments.runner import ExperimentReport

    graph = worst_case_graph(num_nodes)
    statistic = statistic or "triangles"
    backend = counting_backend or "matrix"
    report = ExperimentReport(
        name="audit",
        description=(
            f"empirical privacy audit of the full release on K_{num_nodes} "
            f"(statistic={statistic}, backend={backend}, epsilon={epsilon})"
        ),
        columns=[
            "case",
            "mode",
            "audited_epsilon",
            "claimed_epsilon",
            "realized_epsilon",
            "passes",
            "expected",
            "view_divergence",
        ],
    )
    cases = (
        ("honest", "edge", 1.0, True),
        ("honest", "node", 1.0, True),
        ("half-noise bug", "edge", 2.0, False),
    )
    for label, mode, scale, expected_pass in cases:
        result = audit_protocol(
            graph,
            mode=mode,
            statistic=statistic,
            backend=backend,
            epsilon=epsilon,
            num_trials=num_trials,
            seed=seed,
            node_dp=(mode == "node"),
            epsilon2_scale=scale,
            audit_views=(label == "honest"),
        )
        report.add_row(
            case=label,
            mode=mode,
            audited_epsilon=round(result.epsilon_lower_bound, 4),
            claimed_epsilon=result.claimed_epsilon,
            realized_epsilon=round(result.realized_epsilon, 4),
            passes=result.passes and result.view_passes,
            expected=expected_pass,
            view_divergence=(
                None
                if result.view_divergence is None
                else round(result.view_divergence, 4)
            ),
        )
    return report
