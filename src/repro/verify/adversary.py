"""Active-adversary harness: corrupt one server, assert the MAC check aborts.

The threat model of :mod:`repro.crypto.mac` is *one actively malicious
server*: it may send a wrong value share in an opening, forge its tag share,
or drop values from a round entirely.  This module packages those attacks as
a declarative :class:`Corruption` and executes the full protocol with the
corruption installed through the authenticator's tamper hook, so tests can
sweep a (round × server × tamper kind) matrix across every backend and
statistic and assert the only possible outcomes are

* the corruption never fired (the targeted round does not exist), or
* a typed :class:`~repro.exceptions.CheaterDetectedError` naming the round —

never a silently wrong released count.

Round indices are deterministic for serial runs (``workers=None``), which is
what the corruption matrix relies on to target, say, "the second Beaver
opening of the blocked backend".  Under a thread pool the order in which
rounds reach the authenticator may vary, so corruption-targeting runs must
stay serial.

Examples
--------
>>> from repro.graph.graph import Graph
>>> graph = Graph(5, edges=[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)])
>>> outcome = run_with_corruption(graph, Corruption(round_index=0))
>>> outcome.detected and outcome.fired
True
>>> outcome.error.round_index
0
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cargo import Cargo
from repro.core.config import CargoConfig
from repro.core.node_dp import NodeDpCargo
from repro.core.result import CargoResult
from repro.crypto.mac import OpeningAuthenticator, OpeningRound
from repro.exceptions import CheaterDetectedError, ConfigurationError
from repro.graph.graph import Graph

__all__ = [
    "CORRUPTION_KINDS",
    "CorruptingChannel",
    "Corruption",
    "CorruptionOutcome",
    "count_opening_rounds",
    "run_with_corruption",
]

#: The tamper kinds the harness knows how to apply.
CORRUPTION_KINDS = ("flip_value", "flip_tag", "lie_value", "truncate")


@dataclass(frozen=True)
class Corruption:
    """One single-shot corruption of an opening round.

    Parameters
    ----------
    round_index:
        Which opening round (authenticator numbering, release opening
        included) the corruption targets.
    server:
        Which server misbehaves (1 or 2).
    kind:
        ``flip_value`` xors the lowest bit of one opened value share,
        ``flip_tag`` does the same to the tag share (an attempted forgery
        with a wrong tag), ``lie_value`` adds *magnitude* to a value share
        (a biased count, the attack MACs exist to stop), ``truncate`` drops
        the last element of the server's round message.
    position:
        Index of the targeted value within the round's flattened batch
        (reduced modulo the batch length).
    magnitude:
        Additive offset used by ``lie_value``.
    """

    round_index: int
    server: int = 1
    kind: str = "flip_value"
    position: int = 0
    magnitude: int = 1

    def __post_init__(self) -> None:
        if self.kind not in CORRUPTION_KINDS:
            raise ConfigurationError(
                f"unknown corruption kind {self.kind!r}; "
                f"known: {', '.join(CORRUPTION_KINDS)}"
            )
        if self.server not in (1, 2):
            raise ConfigurationError(f"server must be 1 or 2, got {self.server}")
        if self.round_index < 0:
            raise ConfigurationError(
                f"round_index must be non-negative, got {self.round_index}"
            )
        if self.kind == "lie_value" and self.magnitude % (1 << 64) == 0:
            raise ConfigurationError(
                "lie_value with magnitude ≡ 0 (mod 2^64) is not a corruption"
            )


class CorruptingChannel:
    """A tamper hook applying one :class:`Corruption` when its round comes up.

    Records whether the corruption actually fired, so a test targeting a
    round that does not exist for some backend can tell "survived because
    nothing was tampered" apart from "tamper went undetected".
    """

    def __init__(self, corruption: Corruption) -> None:
        self.corruption = corruption
        self.fired = False

    def __call__(self, opening: OpeningRound) -> None:
        corruption = self.corruption
        if opening.index != corruption.round_index:
            return
        message = opening.messages[corruption.server - 1]
        size = int(np.asarray(message.values).size)
        if size == 0:
            return
        position = corruption.position % size
        mask = (1 << 64) - 1
        if corruption.kind == "flip_value":
            message.values[position] ^= np.uint64(1)
        elif corruption.kind == "flip_tag":
            message.tags[position] ^= np.uint64(1)
        elif corruption.kind == "lie_value":
            lied = (int(message.values[position]) + corruption.magnitude) & mask
            message.values[position] = np.uint64(lied)
        elif corruption.kind == "truncate":
            message.values = message.values[:-1]
            message.tags = message.tags[:-1]
        self.fired = True


@dataclass(frozen=True)
class CorruptionOutcome:
    """What happened when the protocol ran against one corruption."""

    detected: bool
    fired: bool
    error: Optional[CheaterDetectedError]
    result: Optional[CargoResult]

    @property
    def safe(self) -> bool:
        """No silent wrong count: every fired corruption was detected."""
        return self.detected or not self.fired


def _build_config(
    *,
    statistic: str,
    backend: str,
    epsilon: float,
    seed: int,
    authenticator: OpeningAuthenticator,
    **config_kwargs,
) -> CargoConfig:
    return CargoConfig(
        epsilon=epsilon,
        seed=seed,
        statistic=statistic,
        counting_backend=backend,
        authenticator=authenticator,
        **config_kwargs,
    )


def run_with_corruption(
    graph: Graph,
    corruption: Corruption,
    *,
    statistic: str = "triangles",
    backend: str = "matrix",
    epsilon: float = 2.0,
    seed: int = 0,
    node_dp: bool = False,
    **config_kwargs,
) -> CorruptionOutcome:
    """Run the full protocol with *corruption* installed and report the outcome.

    The run is authenticated (the corruption is applied through the MAC
    layer's tamper hook), serial, and otherwise identical to an honest run
    of the same configuration.
    """
    channel = CorruptingChannel(corruption)
    authenticator = OpeningAuthenticator(seed=seed, tamper=channel)
    config = _build_config(
        statistic=statistic,
        backend=backend,
        epsilon=epsilon,
        seed=seed,
        authenticator=authenticator,
        **config_kwargs,
    )
    orchestrator = NodeDpCargo(config) if node_dp else Cargo(config)
    try:
        result = orchestrator.run(graph)
    except CheaterDetectedError as error:
        return CorruptionOutcome(
            detected=True, fired=channel.fired, error=error, result=None
        )
    return CorruptionOutcome(
        detected=False, fired=channel.fired, error=None, result=result
    )


def count_opening_rounds(
    graph: Graph,
    *,
    statistic: str = "triangles",
    backend: str = "matrix",
    epsilon: float = 2.0,
    seed: int = 0,
    node_dp: bool = False,
    **config_kwargs,
) -> int:
    """MAC-checked rounds of one honest run (release reconstruction included).

    The corruption matrix uses this probe to enumerate the valid
    ``round_index`` targets for a given backend × statistic before sweeping
    them; it also pins the invariant that *every* configuration has at least
    one checked round (the release opening), so even statistics whose secure
    kernel needs no openings at all are covered by the MAC layer.
    """
    authenticator = OpeningAuthenticator(seed=seed)
    config = _build_config(
        statistic=statistic,
        backend=backend,
        epsilon=epsilon,
        seed=seed,
        authenticator=authenticator,
        **config_kwargs,
    )
    orchestrator = NodeDpCargo(config) if node_dp else Cargo(config)
    orchestrator.run(graph)
    return authenticator.rounds_checked
