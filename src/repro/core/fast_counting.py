"""Vectorised secure counting backends (compatibility re-exports).

The implementations moved to the pluggable backend package
:mod:`repro.core.backends`:

* :class:`MatrixTriangleCounter` — the monolithic secret-shared ``C^T C``
  formulation (:mod:`repro.core.backends.matrix`),
* :class:`BlockedMatrixTriangleCounter` — the same formulation streamed in
  fixed-size tiles for bounded peak memory
  (:mod:`repro.core.backends.blocked`).
"""

from __future__ import annotations

from repro.core.backends.blocked import BlockedMatrixTriangleCounter
from repro.core.backends.matrix import MatrixTriangleCounter

__all__ = ["MatrixTriangleCounter", "BlockedMatrixTriangleCounter"]
