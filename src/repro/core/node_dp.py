"""Node-DP extension of CARGO (Section III-B, "Extension to Node DP").

Edge DP hides the presence of a single edge; Node DP hides a whole user
together with all her edges, which is strictly stronger and proportionally
noisier.  The paper sketches the extension: only the sensitivities of `Max`
and `Perturb` change —

* in `Max`, removing one node can change the degree of every other node, so
  the sensitivity of the degree query becomes ``n - 1`` instead of 1;
* in `Perturb`, removing one node of degree at most ``d'_max`` destroys at
  most ``C(d'_max, 2)`` triangles, so the noise scale becomes
  ``C(d'_max, 2) / ε2`` instead of ``d'_max / ε2``.

Projection and the secure counting protocol are unchanged.  This module
provides :class:`NodeDpCargo`, a thin orchestration that reuses every
building block of the Edge-DP pipeline with the adjusted sensitivities, so
the utility penalty of Node DP can be measured directly (it is large — the
point of the paper's "future work" remark).
"""

from __future__ import annotations

from typing import Optional

from repro.core.cargo import (
    Cargo,
    feed_run_telemetry,
    record_cheater_event,
    resolve_sparse_mode,
)
from repro.core.config import CargoConfig
from repro.core.max_degree import MaxDegreeEstimator, MaxDegreeResult
from repro.core.perturbation import DistributedPerturbation
from repro.core.projection import SimilarityProjection
from repro.core.result import CargoResult
from repro.crypto.mac import resolve_authenticator
from repro.dp.mechanisms import LaplaceMechanism
from repro.dp.sensitivity import degree_sensitivity_node_dp
from repro.exceptions import CheaterDetectedError
from repro.graph.graph import Graph
from repro.stats import create_statistic
from repro.telemetry import Tracer, resolve_telemetry
from repro.utils.rng import derive_rng, spawn_rngs


class NodeDpMaxDegreeEstimator:
    """`Max` under Node DP: each degree is perturbed with sensitivity ``n - 1``."""

    def __init__(self, epsilon1: float, num_users: int) -> None:
        self._epsilon1 = float(epsilon1)
        self._num_users = int(num_users)
        sensitivity = float(max(degree_sensitivity_node_dp(max(num_users, 1)), 1))
        self._mechanism = LaplaceMechanism(epsilon=self._epsilon1, sensitivity=sensitivity)

    @property
    def sensitivity(self) -> float:
        """The Node-DP sensitivity used for the degree noise."""
        return self._mechanism.sensitivity

    def run(self, degrees, rng=None) -> MaxDegreeResult:
        """Perturb every degree with ``Lap((n-1)/ε1)`` and take the maximum."""
        if not degrees:
            return MaxDegreeResult(noisy_degrees=[], noisy_max_degree=1.0, epsilon1=self._epsilon1)
        user_rngs = spawn_rngs(rng if rng is not None else derive_rng(None), len(degrees))
        noisy = [
            float(degree) + self._mechanism.sample_noise(user_rng)
            for degree, user_rng in zip(degrees, user_rngs)
        ]
        noisy_max = max(max(noisy), 1.0)
        noisy_max = min(noisy_max, float(max(len(degrees) - 1, 1)))
        return MaxDegreeResult(
            noisy_degrees=noisy, noisy_max_degree=noisy_max, epsilon1=self._epsilon1
        )


class NodeDpCargo:
    """CARGO with Node-DP sensitivities in `Max` and `Perturb`.

    The interface mirrors :class:`~repro.core.cargo.Cargo`; results are
    directly comparable, which is how the Node-vs-Edge utility gap is
    measured in the tests.
    """

    def __init__(self, config: Optional[CargoConfig] = None) -> None:
        self._config = config if config is not None else CargoConfig()

    @property
    def config(self) -> CargoConfig:
        """The configuration this instance runs with."""
        return self._config

    def run(self, graph: Graph) -> CargoResult:
        """Execute the Node-DP variant of the full protocol on *graph*."""
        config = self._config
        budget = config.resolved_budget()
        statistic = create_statistic(config.statistic, config)
        telemetry = resolve_telemetry(config)
        tracer = telemetry.tracer if telemetry.enabled else Tracer()
        master_rng = derive_rng(config.seed)
        max_rng, share_rng, noise_rng, dealer_rng = spawn_rngs(master_rng, 4)
        if config.offline_seed is not None:
            # Same pinned-offline-randomness semantics as the Edge-DP
            # orchestrator (evaluation-only; enables triple-store reuse).
            dealer_rng = derive_rng(config.offline_seed)

        backend_label = f"node-dp/{config.backend_name}"
        # Same per-run authenticated-opening semantics as the Edge-DP
        # orchestrator: the Node-DP variant changes sensitivities only, not
        # the secure transcript, so the MAC layer drops in unchanged.
        authenticator = resolve_authenticator(config)
        try:
            return self._run_protocol(
                graph,
                config=config,
                budget=budget,
                statistic=statistic,
                telemetry=telemetry,
                tracer=tracer,
                backend_label=backend_label,
                authenticator=authenticator,
                rngs=(max_rng, share_rng, noise_rng, dealer_rng),
            )
        except CheaterDetectedError as error:
            record_cheater_event(config, telemetry, backend=backend_label, error=error)
            raise

    def _run_protocol(
        self,
        graph: Graph,
        *,
        config,
        budget,
        statistic,
        telemetry,
        tracer,
        backend_label,
        authenticator,
        rngs,
    ) -> CargoResult:
        max_rng, share_rng, noise_rng, dealer_rng = rngs
        with tracer.span(
            "total", backend=backend_label, statistic=config.statistic
        ) as run_span:
            with tracer.span("max"):
                estimator = NodeDpMaxDegreeEstimator(budget.epsilon1, graph.num_nodes)
                max_result = estimator.run(graph.degrees(), rng=max_rng)

            # Same degree-local shortcut as the Edge-DP orchestrator: for
            # degree statistics the projected row sums are determined by the
            # bound alone, so the sparse path never touches the n x n rows.
            use_sparse = resolve_sparse_mode(config, statistic)
            with tracer.span("project", sparse=use_sparse):
                projection = SimilarityProjection(max_result.noisy_max_degree)
                if use_sparse:
                    projection_result = projection.project_degrees(
                        graph.degree_vector(copy=False)
                    )
                    projected_count = statistic.degree_count(
                        projection_result.projected_degrees
                    )
                else:
                    projection_result = projection.project_graph(
                        graph, noisy_degrees=max_result.noisy_degrees
                    )
                    projected_count = statistic.projected_count(
                        projection_result.projected_rows
                    )

            with tracer.span("count", backend=config.backend_name):
                if use_sparse:
                    count_result = statistic.secure_count_from_degrees(
                        projection_result.projected_degrees,
                        config=config,
                        share_rng=share_rng,
                        dealer_rng=dealer_rng,
                        authenticator=authenticator,
                    )
                else:
                    count_result = statistic.secure_count(
                        projection_result.projected_rows,
                        config=config,
                        share_rng=share_rng,
                        dealer_rng=dealer_rng,
                        authenticator=authenticator,
                    )

            with tracer.span("perturb"):
                # The statistic's Node-DP bound, scaled to the raw secure
                # output exactly as the Edge-DP orchestrator scales its bound.
                sensitivity = statistic.release_scale * statistic.node_sensitivity(
                    max_result.noisy_max_degree
                )
                perturbation = DistributedPerturbation(
                    epsilon2=budget.epsilon2,
                    sensitivity=sensitivity,
                    num_users=max(graph.num_nodes, 1),
                    ring=config.ring,
                    fixed_point_bits=config.fixed_point_bits,
                )
                perturb_result = perturbation.run(
                    count_result, rng=noise_rng, authenticator=authenticator
                )

        noisy_count = statistic.finalise(perturb_result.noisy_count)
        true_count = statistic.plain_count(graph)
        timings = run_span.timings()
        result_telemetry = feed_run_telemetry(
            config,
            telemetry,
            backend=backend_label,
            timings=timings,
            communication_phases={},
            count_result=count_result,
            budget=budget,
            noisy_count=noisy_count,
            true_count=true_count,
            projected_count=projected_count,
            noisy_max_degree=max_result.noisy_max_degree,
            authenticator=authenticator,
        )
        return CargoResult(
            noisy_triangle_count=noisy_count,
            true_triangle_count=true_count,
            projected_triangle_count=projected_count,
            noisy_max_degree=max_result.noisy_max_degree,
            epsilon1=budget.epsilon1,
            epsilon2=budget.epsilon2,
            edges_removed=projection_result.edges_removed,
            timings=timings,
            communication={},
            backend=backend_label,
            statistic=config.statistic,
            telemetry=result_telemetry,
        )


def edge_vs_node_dp_gap(graph: Graph, epsilon: float, seed: int = 0) -> dict:
    """Run both variants once and report their l2 losses (utility-gap helper)."""
    edge_result = Cargo(CargoConfig(epsilon=epsilon, seed=seed)).run(graph)
    node_result = NodeDpCargo(CargoConfig(epsilon=epsilon, seed=seed)).run(graph)
    return {
        "edge_dp_l2": edge_result.l2_loss,
        "node_dp_l2": node_result.l2_loss,
        "edge_dp_result": edge_result,
        "node_dp_result": node_result,
    }
