"""Configuration for a CARGO protocol execution."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.backends.registry import (
    available_backends,
    backend_registered,
    resolve_backend_name,
)
from repro.crypto.ring import DEFAULT_RING, Ring
from repro.dp.budget import DEFAULT_MAX_DEGREE_FRACTION, PrivacyBudget
from repro.exceptions import ConfigurationError


class CountingBackend(str, enum.Enum):
    """Which secure counting implementation `Count` uses.

    * ``FAITHFUL`` — the per-triple three-way multiplication exactly as in
      Algorithm 4.  O(n^3) scalar protocol rounds; only practical for small
      graphs but is the reference implementation.
    * ``BATCHED`` — the same per-triple protocol, but candidate triples are
      processed in vectorised blocks so each block needs a single opening
      round.  Identical messages content-wise, far fewer Python-level rounds.
    * ``MATRIX`` — secret-shared matrix formulation (``C^T C`` then an
      element-wise product), producing the same count with two opening
      rounds total.  This is the default backend for the experiments.
    * ``BLOCKED`` — the matrix formulation streamed in fixed-size tiles
      (``block_size``), consuming one small Beaver triple per tile.  Peak
      memory per opening round is ``O(block_size^2)`` instead of ``O(n^2)``
      at the cost of more opening rounds; use it when ``n`` outgrows the
      monolithic matrix triple.

    Beyond these built-ins, ``counting_backend`` also accepts any string
    registered via :func:`repro.core.backends.register_backend`, so
    third-party execution strategies plug in without touching the
    orchestrator.
    """

    FAITHFUL = "faithful"
    BATCHED = "batched"
    MATRIX = "matrix"
    BLOCKED = "blocked"


@dataclass(frozen=True)
class CargoConfig:
    """All knobs of one CARGO run.

    Parameters
    ----------
    epsilon:
        Total privacy budget ε; split into (ε1, ε2) with
        *max_degree_fraction* unless an explicit :class:`PrivacyBudget` is
        supplied via *budget*.
    budget:
        Explicit (ε1, ε2) pair; overrides *epsilon* when given.
    max_degree_fraction:
        Fraction of ε spent on the `Max` step (paper default 0.1).
    counting_backend:
        Secure counting implementation to use (default: matrix backend).
        Accepts a :class:`CountingBackend` member or the registered name of
        any backend (built-in or third-party); names matching a built-in are
        normalised to the enum member, other registered names are kept as
        strings.
    statistic:
        Which subgraph statistic the protocol releases (default:
        ``triangles``).  Any name registered with
        :func:`repro.stats.register_statistic` is accepted — built-ins are
        ``triangles``, ``kstars``, ``wedges``, and ``4cycles``.
    star_k:
        Star size for the ``kstars`` statistic (``2`` counts wedges);
        ignored by other statistics.
    ring:
        Secret-sharing ring.
    fixed_point_bits:
        Fractional bits used to embed the real-valued distributed noise into
        the ring during `Perturb`.
    sparse:
        Degree-local (sparse) execution policy.  ``"auto"`` (default) runs
        the whole release on degree vectors — ``O(n)`` memory, no adjacency
        matrix — whenever the configured statistic supports it (k-stars,
        wedges); transcripts are bit-identical to the dense row path, so
        this is purely a memory/scale lever.  ``"never"`` forces the dense
        path; ``"force"`` demands the sparse path and raises when the
        statistic has no degree-local kernel.
    batch_size:
        Number of candidate triples per opening round for the batched
        backend.
    block_size:
        Tile width of the blocked backend; peak memory per opening round is
        ``O(block_size^2)``.
    tile_window:
        When set, the blocked backend deals, evaluates, and releases its
        tile groups through a bounded window of at most this many groups at
        a time, so peak offline-material memory is set by the window, not by
        ``n``.  Transcripts are bit-identical to the unwindowed engine.
        ``None`` (default) keeps the all-groups-at-once behaviour.
    workers:
        ``None`` (default) runs the exact legacy serial path.  Any integer
        ``>= 1`` engages the tile-parallel engine
        (:mod:`repro.parallel`) with that many worker threads; transcripts,
        ledgers, and released counts are bit-identical for every value
        ``>= 1``, so the knob is purely a wall-clock lever.
    triple_store:
        Optional :class:`~repro.parallel.store.TripleStore` the engine uses
        to memoise (and optionally persist) the offline phase's correlated
        randomness, so repeated runs with the same dealer randomness skip
        re-dealing.  Setting a store engages the engine even when *workers*
        is unset (it then runs with one worker).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` bundle.  When set, the
        run records hierarchical spans and feeds the metrics registry
        (bytes per phase, opening rounds, ε spent, triple-store hits), and
        ``CargoResult.telemetry`` carries the per-phase summary.  ``None``
        (default) disables all instrumentation beyond the legacy phase
        timings; transcripts are bit-identical either way.
    resilience:
        Optional :class:`~repro.resilience.ResilienceConfig`.  When set, the
        run wraps its fallible boundaries (triple-store reads, dealer
        provisioning, pool tasks) in the configured retry policy, verifies
        persisted material strictly if requested, and — for the
        ``tile_window`` blocked pipeline — journals completed tile windows
        to ``checkpoint_path`` so a killed run resumes bit-identically.
        ``None`` (default) keeps every fault hook a no-op.
    offline_seed:
        When set, the offline dealer draws from ``derive_rng(offline_seed)``
        instead of the run's spawned dealer substream, making the dealt
        material identical across runs (and therefore triple-store-reusable
        across different master seeds).  Benchmarking/evaluation aid: it
        deliberately reuses masks across runs, which a deployment must not
        do — see ``docs/performance.md``.
    seed:
        Master seed for the run; all users, servers, and the dealer derive
        independent substreams from it.
    record_views:
        When ``True`` the secure operations record each server's view, which
        the security tests inspect.  Off by default (it costs memory).
    authenticate:
        When ``True`` every opening round (and the final release
        reconstruction) runs under a SPDZ-style information-theoretic MAC
        check (:mod:`repro.crypto.mac`): a cheating server triggers a typed
        :class:`~repro.exceptions.CheaterDetectedError` instead of a
        silently wrong count.  Honest authenticated runs release counts
        bit-identical to unauthenticated runs.  Off by default.
    authenticator:
        Optional pre-built :class:`~repro.crypto.mac.OpeningAuthenticator`
        to use instead of deriving one from the run seed — the injection
        point for the active-adversary harness (tamper hooks) and the perf
        gate's inert arm.  Setting it implies ``authenticate=True``.
    track_communication:
        When ``True`` the protocol routes user/server messages through the
        :class:`~repro.crypto.protocol.TwoServerRuntime` so byte counts are
        available in the result.
    distributed:
        When ``True`` the run executes on the process-separated runtime
        (:mod:`repro.runtime`): the dealer and the two servers fork as
        separate OS processes and every share payload, provisioning frame,
        and opening round crosses a socket as wire frames.  Releases,
        ledgers, views, and MAC counters are bit-identical to the
        in-process engine; the run additionally reconciles the ledger
        against the bytes physically written and reports a ``transport``
        telemetry section.  Requires the ``triangles`` statistic and
        rejects worker pools, triple stores, and tile windows — see
        ``docs/distributed-runtime.md``.

    Examples
    --------
    >>> config = CargoConfig(epsilon=2.0, statistic="Wedges")
    >>> config.statistic, config.backend_name
    ('wedges', 'matrix')
    >>> budget = config.resolved_budget()
    >>> (budget.epsilon1, budget.epsilon2)
    (0.2, 1.8)
    """

    epsilon: float = 2.0
    budget: Optional[PrivacyBudget] = None
    max_degree_fraction: float = DEFAULT_MAX_DEGREE_FRACTION
    counting_backend: Union[CountingBackend, str] = CountingBackend.MATRIX
    statistic: str = "triangles"
    star_k: int = 2
    ring: Ring = DEFAULT_RING
    fixed_point_bits: int = 16
    sparse: str = "auto"
    batch_size: int = 4096
    block_size: int = 128
    tile_window: Optional[int] = None
    workers: Optional[int] = None
    triple_store: Optional[object] = field(default=None, compare=False, repr=False)
    telemetry: Optional[object] = field(default=None, compare=False, repr=False)
    resilience: Optional[object] = field(default=None, compare=False, repr=False)
    offline_seed: Optional[int] = None
    seed: Optional[int] = None
    record_views: bool = False
    track_communication: bool = False
    authenticate: bool = False
    authenticator: Optional[object] = field(default=None, compare=False, repr=False)
    distributed: bool = False

    def __post_init__(self) -> None:
        if self.authenticator is not None and not self.authenticate:
            object.__setattr__(self, "authenticate", True)
        if self.budget is None and self.epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {self.epsilon}")
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(
                f"workers must be at least 1 (or None for the serial path), "
                f"got {self.workers}"
            )
        if not (0 < self.max_degree_fraction < 1):
            raise ConfigurationError(
                f"max_degree_fraction must be in (0, 1), got {self.max_degree_fraction}"
            )
        if self.batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {self.batch_size}")
        if self.block_size <= 0:
            raise ConfigurationError(f"block_size must be positive, got {self.block_size}")
        if self.sparse not in ("auto", "never", "force"):
            raise ConfigurationError(
                f"sparse must be 'auto', 'never', or 'force', got {self.sparse!r}"
            )
        if self.tile_window is not None and self.tile_window < 1:
            raise ConfigurationError(
                f"tile_window must be at least 1 (or None for no windowing), "
                f"got {self.tile_window}"
            )
        if self.fixed_point_bits < 0 or self.fixed_point_bits > 30:
            raise ConfigurationError(
                f"fixed_point_bits must be in [0, 30], got {self.fixed_point_bits}"
            )
        if self.star_k < 1:
            raise ConfigurationError(f"star_k must be at least 1, got {self.star_k}")
        # Imported lazily: repro.stats pulls in repro.core.backends, which
        # initialises repro.core (and therefore this module) — by the time a
        # config is constructed all imports have settled.
        from repro.stats import (
            available_statistics,
            resolve_statistic_name,
            statistic_registered,
        )

        statistic_name = resolve_statistic_name(self.statistic)
        if not statistic_registered(statistic_name):
            raise ConfigurationError(
                f"unknown statistic {self.statistic!r}; "
                f"registered: {', '.join(available_statistics())}"
            )
        object.__setattr__(self, "statistic", statistic_name)
        if not isinstance(self.counting_backend, CountingBackend):
            name = resolve_backend_name(self.counting_backend)
            try:
                backend = CountingBackend(name)
            except ValueError:
                # Not a built-in: keep the registered name as a pass-through
                # so third-party backends plug in without touching this enum.
                if not backend_registered(name):
                    raise ConfigurationError(
                        f"unknown counting backend {self.counting_backend!r}; "
                        f"registered: {', '.join(available_backends())}"
                    ) from None
                backend = name
            object.__setattr__(self, "counting_backend", backend)

    @property
    def backend_name(self) -> str:
        """The configured backend's registry name (enum members normalised)."""
        return resolve_backend_name(self.counting_backend)

    def resolved_budget(self) -> PrivacyBudget:
        """The (ε1, ε2) pair this configuration resolves to."""
        if self.budget is not None:
            return self.budget
        return PrivacyBudget.from_total(self.epsilon, self.max_degree_fraction)
