"""Algorithm 4 — `Count`: ASS-based secure triangle counting.

Every user additively shares each bit of her (projected) adjacent bit vector
with the two servers; the servers then evaluate the triangle count on the
shares without learning anything beyond Beaver-masked openings.

The concrete execution strategies live in the pluggable backend package
:mod:`repro.core.backends` (``faithful``, ``batched``, ``matrix``,
``blocked``); this module re-exports the pieces that historically lived here
so existing imports keep working:

* :class:`CountResult` — the pair of output shares,
* :func:`share_adjacency_rows` — the users' upload step,
* :func:`iter_candidate_triples` — the candidate loop of Algorithm 4,
* :class:`FaithfulTriangleCounter` — the per-triple reference backend (its
  ``batch_size`` parameter gives the batched execution mode).
"""

from __future__ import annotations

from repro.core.backends.base import CountResult, share_adjacency_rows
from repro.core.backends.faithful import FaithfulTriangleCounter, iter_candidate_triples

__all__ = [
    "CountResult",
    "share_adjacency_rows",
    "iter_candidate_triples",
    "FaithfulTriangleCounter",
]
