"""CARGO core: the paper's Algorithms 1-5.

* :mod:`repro.core.max_degree` — Algorithm 2 (`Max`): private estimation of
  the maximum degree under ε1-Edge LDP.
* :mod:`repro.core.projection` — Algorithm 3 (`Project`): similarity-based
  local graph projection that bounds every user's degree by ``d'_max``.
* :mod:`repro.core.counting` — Algorithm 4 (`Count`): ASS-based secure
  triangle counting (faithful per-triple protocol plus a batched variant).
* :mod:`repro.core.fast_counting` — vectorised secure counting backend based
  on secret-shared matrix products (same output, much faster).
* :mod:`repro.core.perturbation` — Algorithm 5 (`Perturb`): distributed
  Gamma-difference noise added inside the secret-shared domain.
* :mod:`repro.core.cargo` — Algorithm 1: the end-to-end protocol
  orchestration, producing a :class:`~repro.core.result.CargoResult`.
"""

from repro.core.config import CargoConfig, CountingBackend
from repro.core.max_degree import MaxDegreeEstimator, MaxDegreeResult
from repro.core.projection import (
    ProjectionResult,
    SimilarityProjection,
    degree_similarity,
    projected_triangle_count,
)
from repro.core.counting import FaithfulTriangleCounter
from repro.core.fast_counting import MatrixTriangleCounter
from repro.core.perturbation import DistributedPerturbation, PerturbationResult
from repro.core.cargo import Cargo
from repro.core.node_dp import NodeDpCargo, NodeDpMaxDegreeEstimator, edge_vs_node_dp_gap
from repro.core.result import CargoResult

__all__ = [
    "CargoConfig",
    "CountingBackend",
    "MaxDegreeEstimator",
    "MaxDegreeResult",
    "SimilarityProjection",
    "ProjectionResult",
    "degree_similarity",
    "projected_triangle_count",
    "FaithfulTriangleCounter",
    "MatrixTriangleCounter",
    "DistributedPerturbation",
    "PerturbationResult",
    "Cargo",
    "NodeDpCargo",
    "NodeDpMaxDegreeEstimator",
    "edge_vs_node_dp_gap",
    "CargoResult",
]
