"""CARGO core: the paper's Algorithms 1-5.

* :mod:`repro.core.max_degree` — Algorithm 2 (`Max`): private estimation of
  the maximum degree under ε1-Edge LDP.
* :mod:`repro.core.projection` — Algorithm 3 (`Project`): similarity-based
  local graph projection that bounds every user's degree by ``d'_max``.
* :mod:`repro.core.backends` — Algorithm 4 (`Count`): the pluggable secure
  counting backends (``faithful``, ``batched``, ``matrix``, ``blocked``) and
  the registry that maps configuration names onto them.
* :mod:`repro.core.perturbation` — Algorithm 5 (`Perturb`): distributed
  Gamma-difference noise added inside the secret-shared domain.
* :mod:`repro.core.cargo` — Algorithm 1: the end-to-end protocol
  orchestration, producing a :class:`~repro.core.result.CargoResult`.

The pipeline is generalised over :mod:`repro.stats`: `Count` executes the
secure kernel of whichever registered subgraph statistic the configuration
names (``triangles`` by default), and `Perturb` calibrates its noise to
that statistic's post-projection sensitivity.
"""

from repro.core.config import CargoConfig, CountingBackend
from repro.core.max_degree import MaxDegreeEstimator, MaxDegreeResult
from repro.core.projection import (
    DegreeProjectionResult,
    ProjectionResult,
    SimilarityProjection,
    degree_similarity,
    projected_triangle_count,
)
from repro.core.backends import (
    BlockedMatrixTriangleCounter,
    FaithfulTriangleCounter,
    MatrixTriangleCounter,
    TriangleCounterBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.core.perturbation import DistributedPerturbation, PerturbationResult
from repro.core.cargo import Cargo
from repro.core.node_dp import NodeDpCargo, NodeDpMaxDegreeEstimator, edge_vs_node_dp_gap
from repro.core.result import CargoResult

__all__ = [
    "CargoConfig",
    "CountingBackend",
    "MaxDegreeEstimator",
    "MaxDegreeResult",
    "SimilarityProjection",
    "ProjectionResult",
    "DegreeProjectionResult",
    "degree_similarity",
    "projected_triangle_count",
    "FaithfulTriangleCounter",
    "MatrixTriangleCounter",
    "BlockedMatrixTriangleCounter",
    "TriangleCounterBackend",
    "available_backends",
    "create_backend",
    "register_backend",
    "DistributedPerturbation",
    "PerturbationResult",
    "Cargo",
    "NodeDpCargo",
    "NodeDpMaxDegreeEstimator",
    "edge_vs_node_dp_gap",
    "CargoResult",
]
