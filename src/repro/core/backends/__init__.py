"""Pluggable secure counting backends for CARGO's `Count` phase.

All backends compute the identical projected triangle count from the same
secret shares; they differ in how the secure multiplications are grouped into
opening rounds (and therefore in round count, wall-clock time, and peak
memory).  Importing this package registers the four built-in strategies:

* ``faithful`` — one scalar three-way multiplication per candidate triple
  (the literal Algorithm 4; the reference implementation),
* ``batched`` — the faithful protocol with candidate triples grouped into
  vectorised blocks sharing one opening round,
* ``matrix`` — the monolithic secret-shared ``C^T C`` formulation: two
  opening rounds, but ``O(n^2)`` peak triple memory,
* ``blocked`` — the matrix formulation streamed in ``block_size``-wide
  tiles: ``O(block_size^2)`` peak memory per opening round, suitable for
  much larger ``n``.

Third-party strategies plug in with :func:`register_backend` and are then
selectable by name via ``CargoConfig(counting_backend="<name>")``.
"""

from repro.core.backends.base import (
    CountResult,
    TriangleCounterBackend,
    share_adjacency_rows,
)
from repro.core.backends.registry import (
    available_backends,
    backend_registered,
    create_backend,
    get_backend_factory,
    register_backend,
    resolve_backend_name,
    unregister_backend,
)
from repro.core.backends.faithful import FaithfulTriangleCounter, iter_candidate_triples
from repro.core.backends.matrix import MatrixTriangleCounter
from repro.core.backends.blocked import DEFAULT_BLOCK_SIZE, BlockedMatrixTriangleCounter

__all__ = [
    "CountResult",
    "TriangleCounterBackend",
    "share_adjacency_rows",
    "available_backends",
    "backend_registered",
    "create_backend",
    "get_backend_factory",
    "register_backend",
    "resolve_backend_name",
    "unregister_backend",
    "FaithfulTriangleCounter",
    "iter_candidate_triples",
    "MatrixTriangleCounter",
    "BlockedMatrixTriangleCounter",
    "DEFAULT_BLOCK_SIZE",
]
