"""Blocked/tiled secure triangle counting — the ``blocked`` backend.

The monolithic matrix backend (:mod:`repro.core.backends.matrix`) is fast but
memory-hungry: its single matrix Beaver triple materialises several ``n x n``
ring arrays at once (per server: ``X``, ``Y``, ``Z`` plus the opened ``E`` and
``F``), so the dealer's peak allocation grows quadratically with the user
count and becomes the protocol's scaling wall long before compute does.

This backend evaluates the identical matrix formulation

``T = sum_{j<k} C[j, k] * (C^T C)[j, k]``

in fixed-size tiles of ``block_size`` columns/rows.  Writing ``J, K, I`` for
``block_size``-wide index ranges, the servers compute, tile by tile,

``M_{JK} = sum_I C[I, J]^T @ C[I, K]``

with one *small* matrix Beaver triple per ``(I, J, K)`` tile, then finish each
``(J, K)`` tile with one small element-wise triple for ``C[J, K] ⊙ M_{JK}``
and a local sum.  Every product that enters the count is the same ring
multiplication the monolithic backend performs — only the grouping of the
openings differs — so the reconstructed count is bit-identical and each
opening reveals only Beaver-masked (uniformly random) values, preserving the
view-security properties.  Tiles that are structurally zero (entirely on or
below the diagonal, where the public strict-upper mask vanishes) are skipped
outright; the decision depends only on public indices.

The payoff: peak additional allocation per opening round is
``O(block_size^2)`` instead of ``O(n^2)``, and the dealer streams one tile
triple at a time instead of allocating a giant triple upfront, at the cost of
more opening rounds (``O((n / block_size)^3)`` instead of two).  Choose
``block_size`` to trade round count against memory; the default suits graphs
in the tens of thousands of users.

**Tile-parallel engine.**  The ``(J, K)`` tile groups are mutually
independent: each consumes its own correlated randomness and its openings
are pure functions of the shares and that randomness.  With
``workers >= 1`` the backend therefore (a) deals each group's triples from
a *per-group deterministic RNG substream* (spawned from the dealer's seed by
group index, never from worker interleaving), (b) fans both the dealing and
the online evaluation out over a
:class:`~repro.parallel.pool.WorkerPool`, (c) records each group's openings
into its own :class:`~repro.crypto.views.ViewRecorder` shard, and (d) merges
shards and reduces the group subtotals in canonical group order — so the
transcript, the accounting, and the output shares are bit-identical for any
worker count.  A configured :class:`~repro.parallel.store.TripleStore`
memoises the dealt group material under the run's signature, so repeated
runs, sweep cells, and streaming anchors skip the offline phase entirely.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Tuple

import numpy as np

from repro.core.backends.base import CountResult, TriangleCounterBackend, num_candidate_triples
from repro.core.backends.registry import register_backend
from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.ring import DEFAULT_RING, Ring
from repro.crypto.secure_ops import secure_matrix_multiply, secure_multiply_pair
from repro.crypto.views import ViewRecorder
from repro.exceptions import ProtocolError
from repro.parallel import MaterialSequence, TripleSignature, WorkerPool, resolve_workers
from repro.resilience import NULL_RESILIENCE, Checkpointer
from repro.telemetry import resolve_telemetry
from repro.utils.rng import RandomState

#: Default tile width; 128² ring elements per triple ≈ 128 KiB per array.
DEFAULT_BLOCK_SIZE = 128


@register_backend("blocked")
class BlockedMatrixTriangleCounter(TriangleCounterBackend):
    """Tile-streamed secure triangle counting with bounded peak memory.

    Parameters
    ----------
    ring:
        Secret-sharing ring.
    dealer:
        Beaver-triple dealer supplying one small triple per tile; a fresh one
        is created when not supplied.
    block_size:
        Tile width.  Peak per-opening allocation is ``O(block_size^2)``;
        smaller values bound memory tighter but cost more opening rounds.
    views:
        Optional view recorder for the security tests.
    workers:
        ``0`` (default) keeps the exact legacy serial path; ``>= 1`` engages
        the tile-parallel engine with that many worker threads (transcripts
        are bit-identical for any value ``>= 1``).
    triple_store:
        Optional :class:`~repro.parallel.store.TripleStore` memoising the
        dealt tile material (engine and windowed paths).
    tile_window:
        When set, the ``(J, K)`` tile groups are dealt, evaluated, and
        released through a bounded window of at most this many groups at a
        time, so peak offline-material memory is ``O(tile_window ·
        block_size²)`` — set by the window, not by ``n``.  Each group still
        draws from the same per-group deterministic RNG substream the engine
        assigns, and subtotals/views reduce in the same canonical schedule
        order, so transcripts are bit-identical to the unwindowed engine.
        With a *triple_store*, material is keyed per window chunk, so warm
        runs also load one chunk at a time (disk spill both ways).
    """

    def __init__(
        self,
        ring: Ring = DEFAULT_RING,
        dealer: Optional[BeaverTripleDealer] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        views: Optional[ViewRecorder] = None,
        workers: int = 0,
        triple_store=None,
        tile_window: Optional[int] = None,
        telemetry=None,
        resilience=None,
        authenticator=None,
    ) -> None:
        if block_size <= 0:
            raise ProtocolError(f"block_size must be positive, got {block_size}")
        if workers < 0:
            raise ProtocolError(f"workers must be non-negative, got {workers}")
        if tile_window is not None and tile_window < 1:
            raise ProtocolError(
                f"tile_window must be at least 1 (or None), got {tile_window}"
            )
        super().__init__(
            ring=ring, views=views, telemetry=telemetry, authenticator=authenticator
        )
        self._dealer = dealer if dealer is not None else BeaverTripleDealer(ring=ring)
        self._block_size = block_size
        self._workers = int(workers)
        self._store = triple_store
        self._tile_window = tile_window
        self._resilience = resilience if resilience is not None else NULL_RESILIENCE

    @property
    def block_size(self) -> int:
        """Tile width used for the streamed matrix products."""
        return self._block_size

    @property
    def tile_window(self) -> Optional[int]:
        """Bounded group window, or ``None`` for all-groups-at-once."""
        return self._tile_window

    @classmethod
    def from_config(
        cls,
        config,
        dealer_rng: RandomState = None,
        views: Optional[ViewRecorder] = None,
        authenticator=None,
    ) -> "BlockedMatrixTriangleCounter":
        dealer = BeaverTripleDealer(ring=config.ring, seed=dealer_rng)
        return cls(
            ring=config.ring,
            dealer=dealer,
            block_size=getattr(config, "block_size", DEFAULT_BLOCK_SIZE),
            views=views,
            workers=resolve_workers(config),
            triple_store=getattr(config, "triple_store", None),
            tile_window=getattr(config, "tile_window", None),
            telemetry=resolve_telemetry(config),
            resilience=getattr(config, "resilience", None),
            authenticator=authenticator,
        )

    def count_from_shares(self, share1: np.ndarray, share2: np.ndarray) -> CountResult:
        """Run the secure count tile by tile given each server's share matrix."""
        ring = self._ring
        share1, share2 = self._validate_share_matrices(share1, share2)
        n = share1.shape[0]
        if n < 3:
            return CountResult(share1=0, share2=0, num_triples_processed=0, opening_rounds=0)
        if self._tile_window is not None:
            return self._count_windowed(share1, share2)
        if self._workers or self._store is not None:
            # A configured triple store engages the engine too (at one
            # worker): its material is organised around the engine's tile
            # schedule, so store users get warm reruns without also having
            # to opt into parallelism.
            return self._count_parallel(share1, share2)

        blocks = [(start, min(start + self._block_size, n)) for start in range(0, n, self._block_size)]
        total1 = 0
        total2 = 0
        opening_rounds = 0
        tracer = self._telemetry.tracer

        with tracer.span(
            "backend", backend="blocked", num_users=n, block_size=self._block_size
        ) as backend_span:
            for j0, j1 in blocks:
                for k0, k1 in blocks:
                    if j0 >= k1 - 1:
                        # No pair j < k falls inside this tile (public index fact).
                        continue
                    rows_j = j1 - j0
                    cols_k = k1 - k0
                    with tracer.span("tile_group", j0=j0, k0=k0) as group_span:
                        m1 = np.zeros((rows_j, cols_k), dtype=ring.dtype)
                        m2 = np.zeros((rows_j, cols_k), dtype=ring.dtype)
                        group_rounds = 0
                        for i0, i1 in blocks:
                            if i0 >= j1 - 1:
                                # C[I, J] is structurally zero (i >= j
                                # throughout), so the tile's contribution to M
                                # is publicly zero.
                                continue
                            left1 = np.ascontiguousarray(self._upper_block(share1, i0, i1, j0, j1).T)
                            left2 = np.ascontiguousarray(self._upper_block(share2, i0, i1, j0, j1).T)
                            right1 = self._upper_block(share1, i0, i1, k0, k1)
                            right2 = self._upper_block(share2, i0, i1, k0, k1)
                            tile_triple = self._dealer.matrix_triple(
                                (rows_j, i1 - i0), (i1 - i0, cols_k)
                            )
                            partial1, partial2 = secure_matrix_multiply(
                                (left1, left2), (right1, right2), tile_triple,
                                ring=ring, views=self._views,
                                authenticator=self._authenticator,
                            )
                            m1 = ring.add(m1, partial1)
                            m2 = ring.add(m2, partial2)
                            group_rounds += 1

                        # Finish the (J, K) tile: C[J, K] ⊙ M_{JK} over the
                        # strict upper triangle, with one small element-wise
                        # triple.
                        tile_mask = self._strict_upper_mask(j0, j1, k0, k1)
                        c_tile1 = self._upper_block(share1, j0, j1, k0, k1)
                        c_tile2 = self._upper_block(share2, j0, j1, k0, k1)
                        elementwise_triple = self._dealer.vector_triple((rows_j, cols_k))
                        prod1, prod2 = secure_multiply_pair(
                            (c_tile1, c_tile2),
                            (ring.mul(m1, tile_mask), ring.mul(m2, tile_mask)),
                            elementwise_triple, ring=ring, views=self._views,
                            authenticator=self._authenticator,
                        )
                        total1 = ring.add(total1, ring.sum(prod1))
                        total2 = ring.add(total2, ring.sum(prod2))
                        group_rounds += 1
                        group_span.annotate(opening_rounds=group_rounds)
                    opening_rounds += group_rounds
            backend_span.annotate(opening_rounds=opening_rounds)

        num_triples = num_candidate_triples(n)
        return CountResult(
            share1=int(total1),
            share2=int(total2),
            num_triples_processed=num_triples,
            opening_rounds=opening_rounds,
        )

    # ------------------------------------------------------------------ #
    # Tile-parallel engine
    # ------------------------------------------------------------------ #
    def _tile_schedule(self, n: int) -> List[tuple]:
        """Canonical ``(J, K)`` group list, each with its contributing I tiles.

        Pure function of public quantities (``n``, ``block_size``); both the
        dealing order and the reduction order are fixed by this list, which
        is what makes the engine's output independent of worker count.
        """
        blocks = [
            (start, min(start + self._block_size, n))
            for start in range(0, n, self._block_size)
        ]
        schedule = []
        for j0, j1 in blocks:
            for k0, k1 in blocks:
                if j0 >= k1 - 1:
                    continue
                i_tiles = [(i0, i1) for i0, i1 in blocks if i0 < j1 - 1]
                schedule.append((j0, j1, k0, k1, i_tiles))
        return schedule

    def _deal_group(self, group: tuple, dealer: BeaverTripleDealer) -> dict:
        """Deal one group's correlated randomness from its own sub-dealer.

        Transactional: a failure mid-deal (an injected worker fault, a real
        transient error) rolls the sub-dealer back to its entry state, so a
        retried attempt replays the identical randomness — the material, and
        every opening built from it, stays bit-identical to a fault-free run.
        """
        snapshot = dealer.state_snapshot()
        try:
            j0, j1, k0, k1, i_tiles = group
            rows_j = j1 - j0
            cols_k = k1 - k0
            matrix_triples = [
                dealer.matrix_triple((rows_j, i1 - i0), (i1 - i0, cols_k))
                for i0, i1 in i_tiles
            ]
            elementwise = dealer.vector_triple((rows_j, cols_k))
        except BaseException:
            dealer.state_restore(snapshot)
            raise
        return {
            "matrix": matrix_triples,
            "elementwise": elementwise,
            "accounting": dealer.accounting(),
        }

    def _make_pool(self) -> WorkerPool:
        """A worker pool carrying this backend's retry policy (if any)."""
        pool = WorkerPool(max(self._workers, 1))
        if self._resilience.retry is not None:
            pool.configure_resilience(
                retry=self._resilience.retry,
                metrics=self._telemetry.metrics if self._telemetry.enabled else None,
            )
        return pool

    def _journal_token(self, n: int, dealer_key: str) -> str:
        """Binds a tile journal to this exact run geometry and dealer stream.

        A checkpoint written by a run with different ``n``, tiling, ring, or
        dealer randomness must never be resumed into this one — the token
        mismatch makes :class:`~repro.resilience.Checkpointer` raise instead.
        """
        payload = (
            f"tiles|{n}|{self._block_size}|{self._tile_window}|"
            f"{self._ring.bits}|{dealer_key}"
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]

    def _run_group(
        self,
        group: tuple,
        material: dict,
        share1: np.ndarray,
        share2: np.ndarray,
    ) -> tuple:
        """Online phase of one ``(J, K)`` group: accumulate, finish, subtotal.

        Telemetry follows the view-shard discipline exactly: the group's span
        lands in a private tracer shard that the coordinator merges back in
        canonical schedule order, so the trace tree is identical for any
        worker count.
        """
        ring = self._ring
        j0, j1, k0, k1, i_tiles = group
        rows_j = j1 - j0
        cols_k = k1 - k0
        shard = ViewRecorder() if self._views is not None else None
        tracer_shard = self._telemetry.tracer.shard()
        matrix_triples = material["matrix"]
        if len(matrix_triples) != len(i_tiles):
            raise ProtocolError(
                f"stored group material carries {len(matrix_triples)} matrix "
                f"triples for {len(i_tiles)} I tiles"
            )
        with tracer_shard.span(
            "tile_group", j0=j0, k0=k0, opening_rounds=len(i_tiles) + 1
        ):
            m1 = np.zeros((rows_j, cols_k), dtype=ring.dtype)
            m2 = np.zeros((rows_j, cols_k), dtype=ring.dtype)
            for (i0, i1), tile_triple in zip(i_tiles, matrix_triples):
                left1 = np.ascontiguousarray(self._upper_block(share1, i0, i1, j0, j1).T)
                left2 = np.ascontiguousarray(self._upper_block(share2, i0, i1, j0, j1).T)
                right1 = self._upper_block(share1, i0, i1, k0, k1)
                right2 = self._upper_block(share2, i0, i1, k0, k1)
                partial1, partial2 = secure_matrix_multiply(
                    (left1, left2), (right1, right2), tile_triple,
                    ring=ring, views=shard,
                    authenticator=self._authenticator,
                )
                m1 = ring.add(m1, partial1)
                m2 = ring.add(m2, partial2)
            tile_mask = self._strict_upper_mask(j0, j1, k0, k1)
            c_tile1 = self._upper_block(share1, j0, j1, k0, k1)
            c_tile2 = self._upper_block(share2, j0, j1, k0, k1)
            prod1, prod2 = secure_multiply_pair(
                (c_tile1, c_tile2),
                (ring.mul(m1, tile_mask), ring.mul(m2, tile_mask)),
                material["elementwise"], ring=ring, views=shard,
                authenticator=self._authenticator,
            )
        return ring.sum(prod1), ring.sum(prod2), len(i_tiles) + 1, shard, tracer_shard

    def offline_materials(self, num_users: int, pool: Optional[WorkerPool] = None):
        """The engine's offline phase: deal (or fetch warm) all tile material.

        Returns ``(schedule, materials)`` where *materials* is a
        :class:`~repro.parallel.store.MaterialSequence` with one entry per
        ``(J, K)`` group of the canonical *schedule*.  On a cold run each
        group is dealt from its own deterministic RNG substream (spawned
        from the dealer's seed by group index), concurrently; with a
        configured triple store a warm run fetches the identical material
        instead of dealing.  Exposed so benchmarks and tests can time the
        offline phase in isolation.
        """
        ring = self._ring
        schedule = self._tile_schedule(num_users)
        if pool is None:
            pool = self._make_pool()
        signature = TripleSignature(
            statistic="triangles",
            backend="blocked",
            num_users=num_users,
            geometry=(("block_size", self._block_size),),
            ring_bits=ring.bits,
            dealer_key=self._dealer.fingerprint(),
        )
        stored = self._store.get(signature) if self._store is not None else None
        if stored is None:
            # Cold offline phase: each group dealt from its own deterministic
            # substream, concurrently.  The substream assignment depends only
            # on the group index, so the material — and every opening built
            # from it — is identical for any worker count.
            sub_dealers = self._dealer.spawn_subdealers(len(schedule))
            materials = pool.map(
                [
                    (lambda g=group, d=dealer: self._deal_group(g, d))
                    for group, dealer in zip(schedule, sub_dealers)
                ]
            )
            if self._store is not None:
                self._store.put(signature, materials)
        else:
            materials = stored
        sequence = MaterialSequence(materials, label="blocked tile")
        sequence.require(len(schedule))
        return schedule, sequence

    def _count_windowed(self, share1: np.ndarray, share2: np.ndarray) -> CountResult:
        """Bounded-memory pipeline: deal/evaluate/release one window at a time.

        The schedule is walked in chunks of ``tile_window`` groups; each
        chunk's material is dealt (or fetched warm under a chunk-level store
        key), consumed, and dropped before the next chunk starts, so peak
        offline-material memory is set by the window.  Determinism hinges on
        two invariants shared with :meth:`_count_parallel`: the sub-dealer
        for group ``g`` is always the ``g``-th child spawned from the
        dealer's seed (children are spawned once for the whole schedule, on
        the first cold chunk), and subtotal reduction plus view-shard merging
        follow the canonical schedule order — which is why the transcript is
        bit-identical to the unwindowed engine for every window size.
        """
        ring = self._ring
        n = share1.shape[0]
        window = self._tile_window
        schedule = self._tile_schedule(n)
        pool = self._make_pool()
        tracer = self._telemetry.tracer
        # The dealer key is taken before any children are spawned so chunk
        # signatures match across runs regardless of which chunks run warm.
        dealer_key = self._dealer.fingerprint()
        sub_dealers = None
        total1 = 0
        total2 = 0
        opening_rounds = 0
        # Crash recovery: a journal of completed chunks.  Each save captures
        # the running subtotals, the opening-round count, every completed
        # group's view shard (merged in canonical order), and the dealer
        # tallies absorbed so far; a resumed run restores them and skips
        # straight to the first incomplete chunk.  Group randomness comes
        # from per-group sub-dealer substreams, so the skipped chunks'
        # absence changes nothing downstream — the transcript is
        # bit-identical to an uninterrupted run.
        resilience = self._resilience
        journal = None
        completed_chunks = 0
        journal_views: Optional[ViewRecorder] = None
        absorbed_accounting: List[tuple] = []
        if resilience.checkpoint_path is not None:
            journal = Checkpointer(
                resilience.checkpoint_path,
                kind="tiles",
                token=self._journal_token(n, dealer_key),
                retry=resilience.retry,
                metrics=self._telemetry.metrics if self._telemetry.enabled else None,
            )
            if resilience.resume and journal.exists():
                state = journal.load()
                completed_chunks = state["completed_chunks"]
                total1 = state["total1"]
                total2 = state["total2"]
                opening_rounds = state["opening_rounds"]
                journal_views = state["views"]
                absorbed_accounting = list(state["accounting"])
                for tallies in absorbed_accounting:
                    self._dealer.absorb_accounting(*tallies)
                if self._views is not None and journal_views is not None:
                    self._views.merge_from(journal_views)
            if self._views is not None and journal_views is None:
                journal_views = ViewRecorder()
        with tracer.span(
            "backend",
            backend="blocked",
            num_users=n,
            block_size=self._block_size,
            tile_window=window,
        ) as backend_span:
            for chunk_index, chunk_start in enumerate(range(0, len(schedule), window)):
                if chunk_index < completed_chunks:
                    # Already journalled by the interrupted run; its subtotals,
                    # rounds, views, and dealer tallies were restored above.
                    continue
                chunk = schedule[chunk_start : chunk_start + window]
                signature = TripleSignature(
                    statistic="triangles",
                    backend="blocked",
                    num_users=n,
                    geometry=(
                        ("block_size", self._block_size),
                        ("tile_window", window),
                        ("chunk", chunk_index),
                    ),
                    ring_bits=ring.bits,
                    dealer_key=dealer_key,
                )
                with tracer.span(
                    "tile_chunk", chunk=chunk_index, groups=len(chunk)
                ):
                    stored = (
                        self._store.get(signature) if self._store is not None else None
                    )
                    with tracer.span("offline", groups=len(chunk)):
                        if stored is None:
                            if sub_dealers is None:
                                sub_dealers = self._dealer.spawn_subdealers(len(schedule))
                            materials = pool.map(
                                [
                                    (lambda g=group, d=sub_dealers[chunk_start + offset]:
                                        self._deal_group(g, d))
                                    for offset, group in enumerate(chunk)
                                ]
                            )
                            if self._store is not None:
                                self._store.put(signature, materials)
                        else:
                            materials = stored
                    sequence = MaterialSequence(materials, label="blocked tile window")
                    sequence.require(len(chunk))
                    for index in range(len(chunk)):
                        tallies = sequence.take(index)["accounting"]
                        self._dealer.absorb_accounting(*tallies)
                        if journal is not None:
                            absorbed_accounting.append(tuple(tallies))
                    results = pool.map(
                        [
                            (lambda i=index: self._run_group(
                                chunk[i], sequence.take(i), share1, share2
                            ))
                            for index in range(len(chunk))
                        ]
                    )
                    for sum1, sum2, rounds, shard, tshard in results:
                        total1 = ring.add(total1, sum1)
                        total2 = ring.add(total2, sum2)
                        opening_rounds += rounds
                        if shard is not None:
                            self._views.merge_from(shard)
                            if journal_views is not None:
                                journal_views.merge_from(shard)
                        tracer.merge_shard(tshard)
                    # Release the window's material before the next chunk is
                    # dealt — this is the bounded-memory property the scale
                    # tests pin.
                    del materials, sequence, results, stored
                if journal is not None and (
                    (chunk_index + 1) % resilience.checkpoint_every == 0
                ):
                    journal.save(
                        {
                            "completed_chunks": chunk_index + 1,
                            "total1": int(total1),
                            "total2": int(total2),
                            "opening_rounds": opening_rounds,
                            "views": journal_views,
                            "accounting": absorbed_accounting,
                        }
                    )
            backend_span.annotate(opening_rounds=opening_rounds)
        return CountResult(
            share1=int(total1),
            share2=int(total2),
            num_triples_processed=num_candidate_triples(n),
            opening_rounds=opening_rounds,
        )

    def _count_parallel(self, share1: np.ndarray, share2: np.ndarray) -> CountResult:
        """The tile-parallel engine: deal and evaluate groups on a worker pool."""
        ring = self._ring
        n = share1.shape[0]
        pool = self._make_pool()
        tracer = self._telemetry.tracer
        with tracer.span(
            "backend", backend="blocked", num_users=n, block_size=self._block_size
        ) as backend_span:
            with tracer.span("offline") as offline_span:
                schedule, sequence = self.offline_materials(n, pool=pool)
                offline_span.annotate(groups=len(schedule))
            for index in range(len(schedule)):
                self._dealer.absorb_accounting(*sequence.take(index)["accounting"])

            results = pool.map(
                [
                    (lambda i=index: self._run_group(
                        schedule[i], sequence.take(i), share1, share2
                    ))
                    for index in range(len(schedule))
                ]
            )
            # Fixed reduction order: canonical group order, exactly as the
            # schedule lists them.  View shards — and tracer shards — merge in
            # the same order.
            total1 = 0
            total2 = 0
            opening_rounds = 0
            for sum1, sum2, rounds, shard, tshard in results:
                total1 = ring.add(total1, sum1)
                total2 = ring.add(total2, sum2)
                opening_rounds += rounds
                if shard is not None:
                    self._views.merge_from(shard)
                tracer.merge_shard(tshard)
            backend_span.annotate(opening_rounds=opening_rounds)
        return CountResult(
            share1=int(total1),
            share2=int(total2),
            num_triples_processed=num_candidate_triples(n),
            opening_rounds=opening_rounds,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _strict_upper_mask(self, r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
        """The strict-upper-triangle indicator restricted to one tile."""
        rows = np.arange(r0, r1, dtype=np.int64)[:, None]
        cols = np.arange(c0, c1, dtype=np.int64)[None, :]
        return (rows < cols).astype(self._ring.dtype)

    def _upper_block(self, shares: np.ndarray, r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
        """One tile of the strictly-upper-masked share matrix ``C``.

        The mask is public, so applying it per tile is the same local linear
        operation the monolithic backend performs globally — without ever
        materialising a second ``n x n`` array.
        """
        block = shares[r0:r1, c0:c1]
        if r1 <= c0:
            # Entirely above the diagonal: the mask is all ones.
            return block
        return self._ring.mul(block, self._strict_upper_mask(r0, r1, c0, c1))
