"""Blocked/tiled secure triangle counting — the ``blocked`` backend.

The monolithic matrix backend (:mod:`repro.core.backends.matrix`) is fast but
memory-hungry: its single matrix Beaver triple materialises several ``n x n``
ring arrays at once (per server: ``X``, ``Y``, ``Z`` plus the opened ``E`` and
``F``), so the dealer's peak allocation grows quadratically with the user
count and becomes the protocol's scaling wall long before compute does.

This backend evaluates the identical matrix formulation

``T = sum_{j<k} C[j, k] * (C^T C)[j, k]``

in fixed-size tiles of ``block_size`` columns/rows.  Writing ``J, K, I`` for
``block_size``-wide index ranges, the servers compute, tile by tile,

``M_{JK} = sum_I C[I, J]^T @ C[I, K]``

with one *small* matrix Beaver triple per ``(I, J, K)`` tile, then finish each
``(J, K)`` tile with one small element-wise triple for ``C[J, K] ⊙ M_{JK}``
and a local sum.  Every product that enters the count is the same ring
multiplication the monolithic backend performs — only the grouping of the
openings differs — so the reconstructed count is bit-identical and each
opening reveals only Beaver-masked (uniformly random) values, preserving the
view-security properties.  Tiles that are structurally zero (entirely on or
below the diagonal, where the public strict-upper mask vanishes) are skipped
outright; the decision depends only on public indices.

The payoff: peak additional allocation per opening round is
``O(block_size^2)`` instead of ``O(n^2)``, and the dealer streams one tile
triple at a time instead of allocating a giant triple upfront, at the cost of
more opening rounds (``O((n / block_size)^3)`` instead of two).  Choose
``block_size`` to trade round count against memory; the default suits graphs
in the tens of thousands of users.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.backends.base import CountResult, TriangleCounterBackend, num_candidate_triples
from repro.core.backends.registry import register_backend
from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.ring import DEFAULT_RING, Ring
from repro.crypto.secure_ops import secure_matrix_multiply, secure_multiply_pair
from repro.crypto.views import ViewRecorder
from repro.exceptions import ProtocolError
from repro.utils.rng import RandomState

#: Default tile width; 128² ring elements per triple ≈ 128 KiB per array.
DEFAULT_BLOCK_SIZE = 128


@register_backend("blocked")
class BlockedMatrixTriangleCounter(TriangleCounterBackend):
    """Tile-streamed secure triangle counting with bounded peak memory.

    Parameters
    ----------
    ring:
        Secret-sharing ring.
    dealer:
        Beaver-triple dealer supplying one small triple per tile; a fresh one
        is created when not supplied.
    block_size:
        Tile width.  Peak per-opening allocation is ``O(block_size^2)``;
        smaller values bound memory tighter but cost more opening rounds.
    views:
        Optional view recorder for the security tests.
    """

    def __init__(
        self,
        ring: Ring = DEFAULT_RING,
        dealer: Optional[BeaverTripleDealer] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        views: Optional[ViewRecorder] = None,
    ) -> None:
        if block_size <= 0:
            raise ProtocolError(f"block_size must be positive, got {block_size}")
        super().__init__(ring=ring, views=views)
        self._dealer = dealer if dealer is not None else BeaverTripleDealer(ring=ring)
        self._block_size = block_size

    @property
    def block_size(self) -> int:
        """Tile width used for the streamed matrix products."""
        return self._block_size

    @classmethod
    def from_config(
        cls,
        config,
        dealer_rng: RandomState = None,
        views: Optional[ViewRecorder] = None,
    ) -> "BlockedMatrixTriangleCounter":
        dealer = BeaverTripleDealer(ring=config.ring, seed=dealer_rng)
        return cls(
            ring=config.ring,
            dealer=dealer,
            block_size=getattr(config, "block_size", DEFAULT_BLOCK_SIZE),
            views=views,
        )

    def count_from_shares(self, share1: np.ndarray, share2: np.ndarray) -> CountResult:
        """Run the secure count tile by tile given each server's share matrix."""
        ring = self._ring
        share1, share2 = self._validate_share_matrices(share1, share2)
        n = share1.shape[0]
        if n < 3:
            return CountResult(share1=0, share2=0, num_triples_processed=0, opening_rounds=0)

        blocks = [(start, min(start + self._block_size, n)) for start in range(0, n, self._block_size)]
        total1 = 0
        total2 = 0
        opening_rounds = 0

        for j0, j1 in blocks:
            for k0, k1 in blocks:
                if j0 >= k1 - 1:
                    # No pair j < k falls inside this tile (public index fact).
                    continue
                rows_j = j1 - j0
                cols_k = k1 - k0
                m1 = np.zeros((rows_j, cols_k), dtype=ring.dtype)
                m2 = np.zeros((rows_j, cols_k), dtype=ring.dtype)
                for i0, i1 in blocks:
                    if i0 >= j1 - 1:
                        # C[I, J] is structurally zero (i >= j throughout), so
                        # the tile's contribution to M is publicly zero.
                        continue
                    left1 = np.ascontiguousarray(self._upper_block(share1, i0, i1, j0, j1).T)
                    left2 = np.ascontiguousarray(self._upper_block(share2, i0, i1, j0, j1).T)
                    right1 = self._upper_block(share1, i0, i1, k0, k1)
                    right2 = self._upper_block(share2, i0, i1, k0, k1)
                    tile_triple = self._dealer.matrix_triple(
                        (rows_j, i1 - i0), (i1 - i0, cols_k)
                    )
                    partial1, partial2 = secure_matrix_multiply(
                        (left1, left2), (right1, right2), tile_triple,
                        ring=ring, views=self._views,
                    )
                    m1 = ring.add(m1, partial1)
                    m2 = ring.add(m2, partial2)
                    opening_rounds += 1

                # Finish the (J, K) tile: C[J, K] ⊙ M_{JK} over the strict
                # upper triangle, with one small element-wise triple.
                tile_mask = self._strict_upper_mask(j0, j1, k0, k1)
                c_tile1 = self._upper_block(share1, j0, j1, k0, k1)
                c_tile2 = self._upper_block(share2, j0, j1, k0, k1)
                elementwise_triple = self._dealer.vector_triple((rows_j, cols_k))
                prod1, prod2 = secure_multiply_pair(
                    (c_tile1, c_tile2),
                    (ring.mul(m1, tile_mask), ring.mul(m2, tile_mask)),
                    elementwise_triple, ring=ring, views=self._views,
                )
                total1 = ring.add(total1, ring.sum(prod1))
                total2 = ring.add(total2, ring.sum(prod2))
                opening_rounds += 1

        num_triples = num_candidate_triples(n)
        return CountResult(
            share1=int(total1),
            share2=int(total2),
            num_triples_processed=num_triples,
            opening_rounds=opening_rounds,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _strict_upper_mask(self, r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
        """The strict-upper-triangle indicator restricted to one tile."""
        rows = np.arange(r0, r1, dtype=np.int64)[:, None]
        cols = np.arange(c0, c1, dtype=np.int64)[None, :]
        return (rows < cols).astype(self._ring.dtype)

    def _upper_block(self, shares: np.ndarray, r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
        """One tile of the strictly-upper-masked share matrix ``C``.

        The mask is public, so applying it per tile is the same local linear
        operation the monolithic backend performs globally — without ever
        materialising a second ``n x n`` array.
        """
        block = shares[r0:r1, c0:c1]
        if r1 <= c0:
            # Entirely above the diagonal: the mask is all ones.
            return block
        return self._ring.mul(block, self._strict_upper_mask(r0, r1, c0, c1))
