"""The counting-backend contract shared by every `Count` implementation.

A *counting backend* is a strategy for executing Algorithm 4 (`Count`) on the
two servers' secret-shared adjacency rows.  All backends compute the identical
quantity

``T = sum_{i<j<k} a_ij * a_ik * a_jk``

over the same shares; they differ only in how the secure multiplications are
grouped into opening rounds (per triple, per batch, one monolithic matrix
product, or a stream of fixed-size tiles).  :class:`TriangleCounterBackend`
pins down the interface so the orchestrator (:class:`~repro.core.cargo.Cargo`)
can stay completely backend-agnostic, and the registry in
:mod:`repro.core.backends.registry` maps configuration names onto concrete
implementations.

This module also owns the two data-plane pieces every backend shares:
:class:`CountResult` (the pair of output shares) and
:func:`share_adjacency_rows` (the users' upload step).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.crypto.ring import DEFAULT_RING, Ring
from repro.crypto.views import ViewRecorder
from repro.exceptions import ProtocolError
from repro.telemetry import NULL_TELEMETRY
from repro.utils.rng import RandomState, derive_rng, spawn_rngs


@dataclass(frozen=True)
class CountResult:
    """Secret shares of the (unperturbed) triangle count held by S1 and S2."""

    share1: int
    share2: int
    num_triples_processed: int
    opening_rounds: int

    def reconstruct(self, ring: Ring = DEFAULT_RING) -> int:
        """Recombine the two shares (used only by tests / the final analyst step)."""
        return int(ring.decode_signed(ring.add(self.share1, self.share2)))


def num_candidate_triples(num_users: int) -> int:
    """``C(num_users, 3)`` — the size of Algorithm 4's candidate set.

    Every backend processes exactly this many three-way products (however it
    groups them into opening rounds), so the count lives here rather than in
    any one execution strategy.

    Examples
    --------
    >>> num_candidate_triples(6)
    20
    >>> num_candidate_triples(2)
    0
    """
    if num_users < 3:
        return 0
    return num_users * (num_users - 1) * (num_users - 2) // 6


def share_adjacency_rows(
    projected_rows: np.ndarray,
    ring: Ring = DEFAULT_RING,
    rng: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Each user secret-shares her projected bit vector with the two servers.

    Returns the two servers' share matrices (same shape as the input).  Each
    row's mask comes from its own spawned generator so the sharing mirrors the
    distributed setting where users do not coordinate masks, but each user's
    whole row is drawn in a single vectorised call and the ``share2 = row -
    mask`` computation is one matrix-level ring subtraction, so the hot path
    stays out of per-element Python.
    """
    rows = np.asarray(projected_rows, dtype=np.int64)
    if rows.ndim != 2 or rows.shape[0] != rows.shape[1]:
        raise ProtocolError(f"projected_rows must be a square matrix, got {rows.shape}")
    num_users = rows.shape[0]
    encoded = ring.encode(rows)
    masks = np.empty(rows.shape, dtype=ring.dtype)
    user_rngs = spawn_rngs(rng if rng is not None else derive_rng(None), num_users)
    for user, user_rng in enumerate(user_rngs):
        masks[user] = ring.random_array((num_users,), user_rng)
    return masks, ring.sub(encoded, masks)


class TriangleCounterBackend(abc.ABC):
    """Abstract base class for secure triangle-counting backends.

    Concrete backends implement :meth:`count_from_shares` (the server-side
    protocol) and :meth:`from_config` (construction from a
    :class:`~repro.core.config.CargoConfig`); the shared :meth:`count`
    convenience performs the users' sharing step first.  Register an
    implementation with
    :func:`~repro.core.backends.registry.register_backend` to make it
    selectable by name through ``CargoConfig(counting_backend=...)``.
    """

    def __init__(
        self,
        ring: Ring = DEFAULT_RING,
        views: Optional[ViewRecorder] = None,
        telemetry=None,
        authenticator=None,
    ) -> None:
        self._ring = ring
        self._views = views
        # The no-op bundle when the run is untraced — backends instrument
        # unconditionally and the disabled tracer swallows every span.
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # Optional MAC authenticator; when set, every opening round this
        # backend performs is routed through its batched MAC check.
        self._authenticator = authenticator

    @property
    def ring(self) -> Ring:
        """The secret-sharing ring in use."""
        return self._ring

    @classmethod
    @abc.abstractmethod
    def from_config(
        cls,
        config,
        dealer_rng: RandomState = None,
        views: Optional[ViewRecorder] = None,
    ) -> "TriangleCounterBackend":
        """Build a backend instance from a :class:`~repro.core.config.CargoConfig`.

        *config* is duck-typed: only the attributes a backend actually uses
        (``ring``, ``batch_size``, ``block_size``, …) are read, so third-party
        configs can plug in.  Built-in backends additionally accept an
        ``authenticator`` keyword (forwarded by
        :func:`~repro.core.backends.registry.create_backend` only when the
        signature declares it) that MAC-checks every opening round.
        """

    @abc.abstractmethod
    def count_from_shares(self, share1: np.ndarray, share2: np.ndarray) -> CountResult:
        """Run the secure count given each server's share matrix."""

    def count(self, projected_rows: np.ndarray, rng: RandomState = None) -> CountResult:
        """Share the rows on behalf of the users and run the secure count."""
        share1, share2 = share_adjacency_rows(projected_rows, ring=self._ring, rng=rng)
        return self.count_from_shares(share1, share2)

    def _validate_share_matrices(
        self, share1: np.ndarray, share2: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Coerce both share matrices to the ring dtype and check their shapes."""
        share1 = np.asarray(share1, dtype=self._ring.dtype)
        share2 = np.asarray(share2, dtype=self._ring.dtype)
        if (
            share1.shape != share2.shape
            or share1.ndim != 2
            or share1.shape[0] != share1.shape[1]
        ):
            raise ProtocolError(
                "share matrices must have identical square shapes, "
                f"got {share1.shape} and {share2.shape}"
            )
        return share1, share2
