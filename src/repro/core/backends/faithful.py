"""Algorithm 4 executed per candidate triple — the ``faithful``/``batched`` backends.

For each candidate triple ``i < j < k`` the servers multiply the three shared
bits ``a_ij`` (row ``i``), ``a_ik`` (row ``i``) and ``a_jk`` (row ``j``) with
the three-way multiplication protocol of Section III-D, consuming one
multiplication group per triple, and accumulate the product shares into their
running shares of the triangle count.

Two execution modes are provided:

* **faithful** — one scalar protocol instance per triple, exactly the loop of
  Algorithm 4.  The reference implementation; cubic in ``n`` with large
  constants, so only sensible for small graphs and tests.
* **batched** — identical arithmetic, but candidate triples are grouped into
  vectorised blocks that share a single opening round.  The messages a server
  sees are the concatenation of what it would have seen in the faithful mode.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.core.backends.base import CountResult, TriangleCounterBackend
from repro.core.backends.registry import register_backend
from repro.crypto.multiplication_groups import MultiplicationGroupDealer
from repro.crypto.ring import DEFAULT_RING, Ring
from repro.crypto.secure_ops import secure_multiply_triple
from repro.crypto.views import ViewRecorder
from repro.exceptions import ProtocolError
from repro.utils.rng import RandomState


def iter_candidate_triples(num_users: int) -> Iterator[Tuple[int, int, int]]:
    """All ordered candidate triples ``i < j < k`` (the loop of Algorithm 4)."""
    for i in range(num_users):
        for j in range(i + 1, num_users):
            for k in range(j + 1, num_users):
                yield (i, j, k)


@register_backend("faithful")
class FaithfulTriangleCounter(TriangleCounterBackend):
    """Per-triple secure counting — the literal Algorithm 4.

    Parameters
    ----------
    ring:
        Secret-sharing ring.
    dealer:
        Multiplication-group dealer for the offline correlated randomness; a
        fresh one is created when not supplied.
    batch_size:
        When greater than 1, candidate triples are processed in vectorised
        blocks of this size (the "batched" execution mode); ``1`` gives the
        strictly scalar faithful loop.
    """

    def __init__(
        self,
        ring: Ring = DEFAULT_RING,
        dealer: Optional[MultiplicationGroupDealer] = None,
        batch_size: int = 1,
        views: Optional[ViewRecorder] = None,
    ) -> None:
        if batch_size <= 0:
            raise ProtocolError(f"batch_size must be positive, got {batch_size}")
        super().__init__(ring=ring, views=views)
        self._dealer = dealer if dealer is not None else MultiplicationGroupDealer(ring=ring)
        self._batch_size = batch_size

    @classmethod
    def from_config(
        cls,
        config,
        dealer_rng: RandomState = None,
        views: Optional[ViewRecorder] = None,
    ) -> "FaithfulTriangleCounter":
        dealer = MultiplicationGroupDealer(ring=config.ring, seed=dealer_rng)
        return cls(ring=config.ring, dealer=dealer, batch_size=1, views=views)

    def count_from_shares(
        self, share1: np.ndarray, share2: np.ndarray
    ) -> CountResult:
        """Run the secure count given each server's share matrix."""
        share1, share2 = self._validate_share_matrices(share1, share2)
        num_users = share1.shape[0]
        ring = self._ring
        total1 = 0
        total2 = 0
        triples_processed = 0
        opening_rounds = 0

        batch_a1, batch_a2 = [], []
        batch_b1, batch_b2 = [], []
        batch_c1, batch_c2 = [], []

        def flush() -> Tuple[int, int, int]:
            """Process the accumulated batch with a single opening round."""
            size = len(batch_a1)
            if size == 0:
                return 0, 0, 0
            group = self._dealer.vector_group((size,))
            a_shares = (np.array(batch_a1, dtype=ring.dtype), np.array(batch_a2, dtype=ring.dtype))
            b_shares = (np.array(batch_b1, dtype=ring.dtype), np.array(batch_b2, dtype=ring.dtype))
            c_shares = (np.array(batch_c1, dtype=ring.dtype), np.array(batch_c2, dtype=ring.dtype))
            product1, product2 = secure_multiply_triple(
                a_shares, b_shares, c_shares, group, ring=ring, views=self._views
            )
            partial1 = int(np.sum(product1, dtype=np.uint64) & np.uint64(ring.mask))
            partial2 = int(np.sum(product2, dtype=np.uint64) & np.uint64(ring.mask))
            for batch in (batch_a1, batch_a2, batch_b1, batch_b2, batch_c1, batch_c2):
                batch.clear()
            return partial1, partial2, size

        for i, j, k in iter_candidate_triples(num_users):
            batch_a1.append(share1[i, j])
            batch_a2.append(share2[i, j])
            batch_b1.append(share1[i, k])
            batch_b2.append(share2[i, k])
            batch_c1.append(share1[j, k])
            batch_c2.append(share2[j, k])
            if len(batch_a1) >= self._batch_size:
                partial1, partial2, size = flush()
                total1 = ring.add(total1, partial1)
                total2 = ring.add(total2, partial2)
                triples_processed += size
                opening_rounds += 1
        partial1, partial2, size = flush()
        if size:
            total1 = ring.add(total1, partial1)
            total2 = ring.add(total2, partial2)
            triples_processed += size
            opening_rounds += 1

        return CountResult(
            share1=int(total1),
            share2=int(total2),
            num_triples_processed=triples_processed,
            opening_rounds=opening_rounds,
        )


@register_backend("batched")
def _build_batched_backend(
    config,
    dealer_rng: RandomState = None,
    views: Optional[ViewRecorder] = None,
) -> FaithfulTriangleCounter:
    """The batched execution mode: the faithful protocol at ``config.batch_size``."""
    dealer = MultiplicationGroupDealer(ring=config.ring, seed=dealer_rng)
    return FaithfulTriangleCounter(
        ring=config.ring,
        dealer=dealer,
        batch_size=config.batch_size,
        views=views,
    )
