"""Algorithm 4 executed per candidate triple — the ``faithful``/``batched`` backends.

For each candidate triple ``i < j < k`` the servers multiply the three shared
bits ``a_ij`` (row ``i``), ``a_ik`` (row ``i``) and ``a_jk`` (row ``j``) with
the three-way multiplication protocol of Section III-D, consuming one
multiplication group per triple, and accumulate the product shares into their
running shares of the triangle count.

Two execution modes are provided:

* **faithful** — one opening round per triple, exactly the loop of
  Algorithm 4.  The reference implementation; cubic in ``n`` with large
  constants, so only sensible for small graphs and tests.
* **batched** — identical arithmetic, but candidate triples are grouped into
  vectorised blocks that share a single opening round.  The messages a server
  sees are the concatenation of what it would have seen in the faithful mode.

The online phase is loop-free at the Python level: the candidate set
``{(i, j, k) : i < j < k}`` depends only on the (public) number of users,
never on the graph, so :func:`candidate_triple_blocks` can emit whole blocks
of index arrays and the batch operands are gathered with one fancy-indexing
read per wire (``share[ii, jj]``).  Vectorising this enumeration is therefore
security-neutral by construction — it changes how the servers *schedule*
their local work, not a single value that crosses the wire.  The offline
phase is pre-provisioned through the dealer's buffered mode in large chunks,
which also makes the openings independent of the batch size (the
transcript-equivalence tests rely on this).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.core.backends.base import CountResult, TriangleCounterBackend, num_candidate_triples
from repro.core.backends.registry import register_backend
from repro.crypto.multiplication_groups import MG_FIELDS, MultiplicationGroupDealer
from repro.crypto.ring import DEFAULT_RING, Ring
from repro.crypto.secure_ops import secure_multiply_triple
from repro.crypto.views import ViewRecorder
from repro.exceptions import DealerError, ProtocolError
from repro.parallel import TripleSignature, WorkerPool, resolve_workers
from repro.telemetry import resolve_telemetry
from repro.utils.rng import RandomState

#: Upper bound on multiplication groups drawn per buffered offline-phase call.
#: 2^18 groups hold 7 ring elements per server each, ~29 MiB per provisioning
#: chunk — large enough to cover every run up to n ≈ 116 in a single call.
DEFAULT_PROVISION_LIMIT = 1 << 18


def iter_candidate_triples(num_users: int) -> Iterator[Tuple[int, int, int]]:
    """All ordered candidate triples ``i < j < k`` (the loop of Algorithm 4).

    Kept as the scalar reference enumeration; the protocol itself consumes
    :func:`candidate_triple_blocks`, which yields the same sequence as whole
    index arrays.
    """
    for i in range(num_users):
        for j in range(i + 1, num_users):
            for k in range(j + 1, num_users):
                yield (i, j, k)


def candidate_triple_blocks(
    num_users: int, batch_size: int
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Vectorised candidate enumeration: ``(ii, jj, kk)`` index-array blocks.

    Yields the exact lexicographic sequence of :func:`iter_candidate_triples`
    split into blocks of exactly *batch_size* triples (the final block may be
    shorter).  The enumeration depends only on the public ``num_users``, so
    emitting it as arrays is security-neutral; per anchor row ``i`` the
    ``(j, k)`` pairs come from one :func:`numpy.triu_indices` call, keeping
    the Python-level work at ``O(n)`` instead of ``O(n^3)``.
    """
    if batch_size <= 0:
        raise ProtocolError(f"batch_size must be positive, got {batch_size}")
    if num_users < 3:
        return
    # One shared pair table: base_j/base_k enumerate all 1 <= j < k < n in
    # lexicographic order.  For anchor i the valid pairs are exactly those
    # with j > i, and because the table is sorted by j they form a suffix —
    # so each anchor's pair list is an O(1) slice, no per-anchor rebuild.
    base_j, base_k = np.triu_indices(num_users - 1, k=1)
    base_j = base_j + 1
    base_k = base_k + 1
    pairs_total = base_j.shape[0]

    def pairs_before(anchor: int) -> int:
        """Number of table entries with j <= anchor (the skipped prefix)."""
        span = num_users - 1 - anchor
        return pairs_total - span * (span - 1) // 2

    pending: list[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    buffered = 0
    for i in range(num_users - 2):
        start = pairs_before(i)
        jj = base_j[start:]
        kk = base_k[start:]
        ii = np.full(jj.shape[0], i, dtype=base_j.dtype)
        pending.append((ii, jj, kk))
        buffered += jj.shape[0]
        if buffered < batch_size:
            continue
        # Concatenate the pending pieces once, then hand out consecutive
        # slice views — a cursor, not a rebuild, so enumeration stays linear
        # in the number of triples even when one anchor spans many blocks.
        if len(pending) == 1:
            ii_all, jj_all, kk_all = pending[0]
        else:
            ii_all, jj_all, kk_all = (
                np.concatenate([part[axis] for part in pending]) for axis in range(3)
            )
        start = 0
        while buffered >= batch_size:
            stop = start + batch_size
            yield ii_all[start:stop], jj_all[start:stop], kk_all[start:stop]
            start = stop
            buffered -= batch_size
        pending = [(ii_all[start:], jj_all[start:], kk_all[start:])] if buffered else []
    if buffered:
        if len(pending) == 1:
            yield pending[0]
        else:
            yield tuple(np.concatenate([part[axis] for part in pending]) for axis in range(3))


#: Cache of fused gather schedules, keyed by ``(num_users, batch_size)``.
#: The schedule is a pure function of public quantities, so sharing it across
#: runs (and across sweep threads — the arrays are marked read-only) is safe.
#: The triple cap bounds each entry at ~6 MiB of index arrays (48 bytes per
#: triple) and the block cap bounds the per-block Python object overhead
#: (which dominates at tiny batch sizes); schedules above either cap are
#: cheap to rebuild relative to their runs.
_GATHER_SCHEDULE_CACHE: dict = {}
_GATHER_SCHEDULE_CACHE_MAX_ENTRIES = 4
_GATHER_SCHEDULE_CACHE_MAX_TRIPLES = 1 << 17
_GATHER_SCHEDULE_CACHE_MAX_BLOCKS = 1 << 12


def _iter_gather_blocks(num_users: int, batch_size: int):
    """Lazily yield per-block fused gather indices ``(size, rows, cols)``."""
    for ii, jj, kk in candidate_triple_blocks(num_users, batch_size):
        rows = np.concatenate((ii, ii, jj))
        cols = np.concatenate((jj, kk, kk))
        rows.flags.writeable = False
        cols.flags.writeable = False
        yield ii.shape[0], rows, cols


def _gather_schedule(num_users: int, batch_size: int):
    """Per-block fused gather indices: an iterable of ``(size, rows, cols)``.

    ``rows``/``cols`` are the concatenated index arrays for the three wires
    ``a_ij, a_ik, a_jk`` of one block, so each server's operands come from a
    single fancy-indexing read.  Schedules for small runs are materialised
    and cached across invocations; larger runs get a lazy generator so peak
    index memory stays ``O(batch_size)`` regardless of ``n``.
    """
    total = num_candidate_triples(num_users)
    if (
        total > _GATHER_SCHEDULE_CACHE_MAX_TRIPLES
        or -(-total // batch_size) > _GATHER_SCHEDULE_CACHE_MAX_BLOCKS
    ):
        return _iter_gather_blocks(num_users, batch_size)
    key = (num_users, batch_size)
    cached = _GATHER_SCHEDULE_CACHE.get(key)
    if cached is not None:
        return cached
    schedule = list(_iter_gather_blocks(num_users, batch_size))
    if len(_GATHER_SCHEDULE_CACHE) >= _GATHER_SCHEDULE_CACHE_MAX_ENTRIES:
        try:
            _GATHER_SCHEDULE_CACHE.pop(next(iter(_GATHER_SCHEDULE_CACHE)), None)
        except (StopIteration, RuntimeError):
            # Another sweep thread evicted concurrently; the cap still holds.
            pass
    _GATHER_SCHEDULE_CACHE[key] = schedule
    return schedule


@register_backend("faithful")
class FaithfulTriangleCounter(TriangleCounterBackend):
    """Per-triple secure counting — the literal Algorithm 4.

    Parameters
    ----------
    ring:
        Secret-sharing ring.
    dealer:
        Multiplication-group dealer for the offline correlated randomness; a
        fresh one is created when not supplied.
    batch_size:
        When greater than 1, candidate triples are processed in vectorised
        blocks of this size (the "batched" execution mode); ``1`` gives the
        faithful one-opening-per-triple schedule.
    provision_limit:
        Maximum number of multiplication groups the backend pre-provisions
        per buffered offline-phase call (memory bound).  ``0`` disables
        buffered dealing and draws one group batch per opening round, exactly
        as the unbuffered dealer would.
    workers:
        ``0`` keeps the serial path; ``>= 1`` fans the candidate blocks out
        over a worker pool.  The provisioned mask stream and the per-block
        slices are fixed serially first (they depend only on the schedule),
        so the transcript is bit-identical to the serial path for any worker
        count.
    triple_store:
        Optional :class:`~repro.parallel.store.TripleStore` memoising the
        provisioned group stream (engine path only; streams larger than the
        store's per-entry budget are dealt lazily and not cached).
    """

    def __init__(
        self,
        ring: Ring = DEFAULT_RING,
        dealer: Optional[MultiplicationGroupDealer] = None,
        batch_size: int = 1,
        views: Optional[ViewRecorder] = None,
        provision_limit: int = DEFAULT_PROVISION_LIMIT,
        workers: int = 0,
        triple_store=None,
        telemetry=None,
        authenticator=None,
    ) -> None:
        if batch_size <= 0:
            raise ProtocolError(f"batch_size must be positive, got {batch_size}")
        if provision_limit < 0:
            raise ProtocolError(f"provision_limit must be non-negative, got {provision_limit}")
        if workers < 0:
            raise ProtocolError(f"workers must be non-negative, got {workers}")
        super().__init__(
            ring=ring, views=views, telemetry=telemetry, authenticator=authenticator
        )
        self._dealer = dealer if dealer is not None else MultiplicationGroupDealer(ring=ring)
        self._batch_size = batch_size
        self._provision_limit = provision_limit
        self._workers = int(workers)
        self._store = triple_store

    @classmethod
    def from_config(
        cls,
        config,
        dealer_rng: RandomState = None,
        views: Optional[ViewRecorder] = None,
        authenticator=None,
    ) -> "FaithfulTriangleCounter":
        dealer = MultiplicationGroupDealer(ring=config.ring, seed=dealer_rng)
        return cls(
            ring=config.ring,
            dealer=dealer,
            batch_size=1,
            views=views,
            workers=resolve_workers(config),
            triple_store=getattr(config, "triple_store", None),
            telemetry=resolve_telemetry(config),
            authenticator=authenticator,
        )

    def count_from_shares(
        self, share1: np.ndarray, share2: np.ndarray
    ) -> CountResult:
        """Run the secure count given each server's share matrix."""
        share1, share2 = self._validate_share_matrices(share1, share2)
        num_users = share1.shape[0]
        if self._workers or self._store is not None:
            # A configured triple store engages the engine too (at one
            # worker); the engine's transcript equals this serial path's, so
            # the switch is unobservable beyond the warm offline phase.
            with self._telemetry.tracer.span(
                "backend",
                backend="faithful" if self._batch_size == 1 else "batched",
                num_users=num_users,
                batch_size=self._batch_size,
                candidates=num_candidate_triples(num_users),
            ) as backend_span:
                result = self._count_parallel(share1, share2)
                backend_span.annotate(opening_rounds=result.opening_rounds)
            return result
        ring = self._ring
        dealer = self._dealer
        total1 = 0
        total2 = 0
        triples_processed = 0
        opening_rounds = 0

        # Buffered offline phase: provision the dealer in chunks of exactly
        # min(still-unprovisioned, provision_limit).  The chunk sequence
        # depends only on the total candidate count and the limit — never on
        # the batch size — so the provisioned mask stream (and therefore
        # every opening) is identical across batch sizes.
        to_provision = num_candidate_triples(num_users) if self._provision_limit else 0

        # One span for the whole backend step: per-triple spans would add
        # C(n, 3) nodes to the trace in faithful mode, so granularity stops
        # at the backend level here (the blocked backend traces per group).
        with self._telemetry.tracer.span(
            "backend",
            backend="faithful" if self._batch_size == 1 else "batched",
            num_users=num_users,
            batch_size=self._batch_size,
            candidates=num_candidate_triples(num_users),
        ) as backend_span:
            for size, rows, cols in _gather_schedule(num_users, self._batch_size):
                while to_provision and dealer.provisioned_remaining < size:
                    draw = min(to_provision, self._provision_limit)
                    dealer.provision(draw)
                    to_provision -= draw
                # One fused gather per server: the three wires a_ij, a_ik,
                # a_jk of every candidate triple in this block share a single
                # fancy-indexing read of shape (3, size).
                gathered1 = share1[rows, cols].reshape(3, size)
                gathered2 = share2[rows, cols].reshape(3, size)
                a_shares = (gathered1[0], gathered2[0])
                b_shares = (gathered1[1], gathered2[1])
                c_shares = (gathered1[2], gathered2[2])
                group = dealer.vector_group((size,))
                product1, product2 = secure_multiply_triple(
                    a_shares, b_shares, c_shares, group, ring=ring, views=self._views,
                    authenticator=self._authenticator,
                )
                total1 = ring.add(total1, ring.sum(product1))
                total2 = ring.add(total2, ring.sum(product2))
                triples_processed += size
                opening_rounds += 1
            backend_span.annotate(opening_rounds=opening_rounds)

        return CountResult(
            share1=int(total1),
            share2=int(total2),
            num_triples_processed=triples_processed,
            opening_rounds=opening_rounds,
        )

    # ------------------------------------------------------------------ #
    # Block-parallel engine
    # ------------------------------------------------------------------ #
    def _run_block(
        self,
        size: int,
        rows: np.ndarray,
        cols: np.ndarray,
        group,
        share1: np.ndarray,
        share2: np.ndarray,
    ) -> tuple:
        """Online phase of one candidate block (pure given shares + group)."""
        ring = self._ring
        shard = ViewRecorder() if self._views is not None else None
        gathered1 = share1[rows, cols].reshape(3, size)
        gathered2 = share2[rows, cols].reshape(3, size)
        product1, product2 = secure_multiply_triple(
            (gathered1[0], gathered2[0]),
            (gathered1[1], gathered2[1]),
            (gathered1[2], gathered2[2]),
            group,
            ring=ring,
            views=shard,
            authenticator=self._authenticator,
        )
        return ring.sum(product1), ring.sum(product2), shard

    def _count_parallel(self, share1: np.ndarray, share2: np.ndarray) -> CountResult:
        """Fan candidate blocks out over a worker pool, in bounded waves.

        The offline phase is fixed serially first: the provisioning chunk
        sequence and the per-block group slices depend only on the schedule
        (never on worker interleaving), so each block's correlated
        randomness — and therefore each opening — is exactly what the serial
        path produces.  Workers then evaluate blocks concurrently; block
        subtotals reduce and view shards merge in canonical block order.
        """
        ring = self._ring
        dealer = self._dealer
        num_users = share1.shape[0]
        total_candidates = num_candidate_triples(num_users)
        pool = WorkerPool(max(self._workers, 1))

        to_provision = total_candidates if self._provision_limit else 0
        # Offline reuse: the provisioned stream is a deterministic function
        # of (dealer seed, total, provision_limit), so it is storable.  A
        # stream past the store's per-entry budget is dealt lazily instead
        # (bounded memory) and simply not cached.
        stream_bytes = total_candidates * len(MG_FIELDS) * 2 * 8
        use_store = (
            self._store is not None and self._provision_limit and total_candidates
        )
        if use_store:
            signature = TripleSignature(
                statistic="triangles",
                backend="faithful",
                num_users=num_users,
                geometry=(("provision_limit", self._provision_limit),),
                ring_bits=ring.bits,
                dealer_key=dealer.fingerprint(),
            )
            with self._telemetry.tracer.span("offline") as offline_span:
                stored = self._store.get(signature)
                if stored is not None:
                    dealer.import_pool(stored["blocks"])
                    if dealer.provisioned_remaining != total_candidates:
                        raise DealerError(
                            f"stored group stream holds {dealer.provisioned_remaining} "
                            f"groups but the run needs {total_candidates}"
                        )
                    to_provision = 0
                elif self._store.accepts_bytes(stream_bytes):
                    while to_provision:
                        draw = min(to_provision, self._provision_limit)
                        dealer.provision(draw)
                        to_provision -= draw
                    self._store.put(signature, {"blocks": dealer.export_pool()})
                offline_span.annotate(groups=total_candidates)

        total1 = 0
        total2 = 0
        triples_processed = 0
        opening_rounds = 0
        wave: list = []
        wave_capacity = max(4 * self._workers, 1)

        def flush() -> None:
            nonlocal total1, total2
            results = pool.map(
                [
                    (
                        lambda s=size, r=rows, c=cols, g=group: self._run_block(
                            s, r, c, g, share1, share2
                        )
                    )
                    for size, rows, cols, group in wave
                ]
            )
            for sum1, sum2, shard in results:
                total1 = ring.add(total1, sum1)
                total2 = ring.add(total2, sum2)
                if shard is not None:
                    self._views.merge_from(shard)
            wave.clear()

        for size, rows, cols in _gather_schedule(num_users, self._batch_size):
            while to_provision and dealer.provisioned_remaining < size:
                draw = min(to_provision, self._provision_limit)
                dealer.provision(draw)
                to_provision -= draw
            # The group slice is assigned serially, in schedule order: the
            # masks a block carries depend only on its stream position.
            group = dealer.vector_group((size,))
            wave.append((size, rows, cols, group))
            triples_processed += size
            opening_rounds += 1
            if len(wave) >= wave_capacity:
                flush()
        flush()
        return CountResult(
            share1=int(total1),
            share2=int(total2),
            num_triples_processed=triples_processed,
            opening_rounds=opening_rounds,
        )


@register_backend("batched")
def _build_batched_backend(
    config,
    dealer_rng: RandomState = None,
    views: Optional[ViewRecorder] = None,
    authenticator=None,
) -> FaithfulTriangleCounter:
    """The batched execution mode: the faithful protocol at ``config.batch_size``."""
    dealer = MultiplicationGroupDealer(ring=config.ring, seed=dealer_rng)
    return FaithfulTriangleCounter(
        ring=config.ring,
        dealer=dealer,
        batch_size=config.batch_size,
        views=views,
        workers=resolve_workers(config),
        triple_store=getattr(config, "triple_store", None),
        telemetry=resolve_telemetry(config),
        authenticator=authenticator,
    )
